// Table 3 reproduction: average values and standard deviations of the
// cache and memory communication rates of the eight configurations.
//
// Means are matched exactly by construction. Several paper std-devs exceed
// mean*sqrt(N-1) — the mathematical maximum for 64 non-negative per-thread
// rates — so they were presumably computed over time samples; we report the
// achievable heavy-tail spread and note that the configs' variance
// *ordering* is what downstream experiments depend on (see DESIGN.md §5.1).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header("table3_workload_stats — synthesized configurations",
                      "paper Table 3 (communication-rate moments of C1..C8)");

  TextTable t({"cfg", "cache avg (paper)", "cache avg (ours)",
               "cache std (paper)", "cache std (ours)", "mem avg (paper)",
               "mem avg (ours)", "mem std (paper)", "mem std (ours)"});
  for (const auto& spec : parsec_table3_configs()) {
    const Workload wl = synthesize_workload(spec, bench::kWorkloadSeed);
    const WorkloadMoments m = measure_moments(wl);
    t.add_row({spec.name, fmt(spec.cache.mean, 3), fmt(m.cache.mean, 3),
               fmt(spec.cache.stddev, 2), fmt(m.cache.stddev, 2),
               fmt(spec.memory.mean, 3), fmt(m.memory.mean, 3),
               fmt(spec.memory.stddev, 2), fmt(m.memory.stddev, 2)});
  }
  t.print(std::cout);

  std::cout << "\nPer-application total rates (ascending; the light-to-heavy "
               "spread drives the Global imbalance):\n";
  TextTable apps({"cfg", "app1", "app2", "app3", "app4", "cache:mem ratio"});
  for (const auto& spec : parsec_table3_configs()) {
    const Workload wl = synthesize_workload(spec, bench::kWorkloadSeed);
    double cache = 0.0, mem = 0.0;
    for (const auto& th : wl.threads()) {
      cache += th.cache_rate;
      mem += th.memory_rate;
    }
    apps.add_row({spec.name, fmt(wl.application(0).total_rate(), 1),
                  fmt(wl.application(1).total_rate(), 1),
                  fmt(wl.application(2).total_rate(), 1),
                  fmt(wl.application(3).total_rate(), 1),
                  fmt(cache / mem, 2)});
  }
  apps.print(std::cout);
  std::cout << "\n(paper: cache rate averages 6.78x the memory rate)\n";
  return 0;
}
