// Extension: mapping-stage balancing vs router-level balancing.
//
// The paper's Section I argues that balancing latency at the *mapping*
// stage avoids the hardware cost of architectural mechanisms like
// probabilistic distance-based arbitration (reference [16], Lee et al.).
// We implement a PDBA-lite arbiter and measure all four combinations of
// {Global, SSS} x {round-robin, distance-weighted} on the cycle-level
// simulator — at the paper's load and at 4x load where arbitration has
// contention to act on.
#include <iostream>

#include "bench_common.h"
#include "netsim/sim.h"
#include "util/thread_pool.h"

int main() {
  using namespace nocmap;
  bench::print_header(
      "ext_arbitration — SSS mapping vs distance-based arbitration",
      "extension of paper Section I (mapping vs NoC-level balancing)");

  const ObmProblem problem = bench::standard_problem("C1");
  GlobalMapper global;
  SortSelectSwapMapper sss;
  const Mapping mg = global.map(problem);
  const Mapping ms = sss.map(problem);

  struct Cell {
    const char* mapping;
    const Mapping* m;
    Arbitration arb;
  };
  const std::vector<Cell> cells{
      {"Global", &mg, Arbitration::kRoundRobin},
      {"Global", &mg, Arbitration::kDistanceWeighted},
      {"SSS", &ms, Arbitration::kRoundRobin},
      {"SSS", &ms, Arbitration::kDistanceWeighted},
  };

  for (double scale : {1.0, 4.0}) {
    std::vector<SimResult> results(cells.size());
    parallel_for(0, cells.size(), [&](std::size_t i) {
      SimConfig cfg;
      cfg.warmup_cycles = 2000;
      cfg.measure_cycles = 40000;
      cfg.traffic.injection_scale = scale;
      cfg.network.arbitration = cells[i].arb;
      results[i] = run_simulation(problem, *cells[i].m, cfg);
    });

    std::cout << "\nInjection scale " << scale
              << (scale == 1.0 ? " (paper operating point)" : " (loaded)")
              << ":\n";
    TextTable t({"mapping", "arbitration", "measured max-APL",
                 "measured dev-APL", "measured g-APL"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      t.add_row({cells[i].mapping,
                 cells[i].arb == Arbitration::kRoundRobin
                     ? "round-robin"
                     : "distance-weighted",
                 fmt(results[i].max_apl), fmt(results[i].dev_apl, 3),
                 fmt(results[i].g_apl)});
    }
    t.print(std::cout);
  }

  std::cout << "\nReading: at the paper's load there is little contention, "
               "so arbitration barely moves\nthe needle (dev-APL -0.005) "
               "while the SSS mapping removes the imbalance outright\n"
               "(dev-APL -1.58) — supporting the paper's claim that "
               "balancing at the mapping stage\nobviates router-level "
               "mechanisms. Under load, distance weighting recovers some "
               "balance\nfor the imbalanced Global mapping but only adds "
               "arbitration noise to the already-\nbalanced SSS one: the "
               "two mechanisms substitute rather than compose.\n";
  return 0;
}
