// Substrate validation: the cycle-level simulator against the analytic
// latency model of Section II.C.
//
// 1. Unloaded point-to-point latency must grow linearly in hop count with
//    slope td_r + td_w (the simulator's per-hop cost) plus serialization.
// 2. Per-application measured APLs under a real workload must track the
//    analytic APLs up to a constant pipeline/ejection offset.
#include <iostream>

#include "bench_common.h"
#include "netsim/sim.h"

int main() {
  using namespace nocmap;
  bench::print_header("validate_netsim — simulator vs analytic model",
                      "model-validation experiment (DESIGN.md §4)");

  const Mesh mesh = Mesh::square(8);
  NetworkConfig net_cfg;

  // --- 1. Unloaded latency vs hop count.
  std::cout << "\n1. Unloaded single-packet latency vs hops (1-flit "
               "packet):\n";
  TextTable hop_table({"hops", "measured [cycles]", "analytic eq.2 "
                       "(td_q=0, td_s=1)", "offset"});
  const LatencyParams unloaded{.td_r = 3.0, .td_w = 1.0, .td_q = 0.0,
                               .td_s = 1.0};
  for (std::uint32_t hops = 1; hops <= 7; ++hops) {
    Network net(mesh, net_cfg);
    PacketInfo p;
    p.id = 1;
    p.src = mesh.tile_at(0, 0);
    p.dst = mesh.tile_at(0, hops);
    p.flits = 1;
    net.inject_packet(p);
    Cycle measured = 0;
    for (int c = 0; c < 1000 && net.packets_in_flight() > 0; ++c) {
      net.step();
      for (const auto& e : net.take_ejections()) measured = e.latency();
    }
    const double analytic = packet_latency(mesh, unloaded, p.src, p.dst);
    hop_table.add_row({std::to_string(hops),
                       std::to_string(measured), fmt(analytic, 1),
                       fmt(static_cast<double>(measured) - analytic, 1)});
  }
  hop_table.print(std::cout);
  std::cout << "Expected: constant offset (source-router pipeline + "
               "ejection), identical slope.\n";

  // --- 2. Loaded per-application APLs: analytic vs measured.
  std::cout << "\n2. Per-application APL, C1 under the Global mapping:\n";
  const ObmProblem problem = bench::standard_problem("C1");
  GlobalMapper global;
  const Mapping mapping = global.map(problem);
  const LatencyReport analytic = evaluate(problem, mapping);

  SimConfig sim_cfg;
  sim_cfg.warmup_cycles = 3000;
  sim_cfg.measure_cycles = 80000;
  const SimResult measured =
      bench::simulate_batch({{&problem, &mapping, sim_cfg}}).front();

  TextTable apl_table({"application", "analytic APL", "measured APL",
                       "measured - analytic"});
  for (std::size_t a = 0; a < problem.num_applications(); ++a) {
    apl_table.add_row({problem.workload().application(a).name,
                       fmt(analytic.apl[a]), fmt(measured.apl[a]),
                       fmt(measured.apl[a] - analytic.apl[a])});
  }
  apl_table.print(std::cout);

  std::cout << "\nmeasured g-APL " << fmt(measured.g_apl) << " vs analytic "
            << fmt(analytic.g_apl) << "\n"
            << "measured per-hop queuing delay td_q = "
            << fmt(measured.activity.avg_queue_wait(), 3)
            << " cycles (paper Section II.C observes 0..1 at these loads; "
               "the analytic model assumes "
            << fmt(LatencyParams{}.td_q, 1) << ")\n"
            << "Packets measured: " << measured.packets_measured
            << ", local (zero-latency) accesses: " << measured.local_accesses
            << ", drain complete: "
            << (measured.drain_incomplete ? "NO" : "yes") << "\n";
  return 0;
}
