// Extension: how close is sort-select-swap to optimal? OBM is NP-complete
// (paper Section III.C), so on small instances we solve it *exactly* with
// branch-and-bound and report SSS's optimality gap; on the full 8x8
// instances we report the gap against the analytic lower bound
// (max of optimal-g-APL and per-application relaxed minima).
#include <iostream>

#include "bench_common.h"
#include "core/bounds.h"
#include "core/exact_solver.h"
#include "util/rng.h"

namespace {

using namespace nocmap;

ObmProblem small_instance(std::uint64_t seed, std::uint32_t rows,
                          std::uint32_t cols, std::size_t apps) {
  Rng rng(seed);
  const std::size_t n = static_cast<std::size_t>(rows) * cols;
  std::vector<Application> applications(apps);
  for (std::size_t a = 0; a < apps; ++a) {
    applications[a].name = "app" + std::to_string(a + 1);
    applications[a].threads.resize(n / apps);
    const double scale = 0.5 + 1.0 * static_cast<double>(a);
    for (auto& t : applications[a].threads) {
      t = {scale * rng.uniform(0.5, 4.0), scale * rng.uniform(0.05, 0.6)};
    }
  }
  const Mesh mesh(rows, cols, {0, static_cast<TileId>(n - 1)});
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    Workload(std::move(applications)));
}

}  // namespace

int main() {
  bench::print_header("ext_optimality_gap — SSS vs exact / lower bound",
                      "extension quantifying heuristic quality (Sec. III.C)");

  std::cout << "\n1. Exact optimality gap on small instances "
               "(branch-and-bound ground truth):\n";
  TextTable small({"instance", "SSS max-APL", "optimal", "gap", "nodes"});
  double worst_gap = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const ObmProblem p = small_instance(seed, 3, 4, 2);
    SortSelectSwapMapper sss;
    const double s = evaluate(p, sss.map(p)).max_apl;
    ExactSolverOptions opt;
    opt.max_nodes = 20'000'000;
    const ExactResult exact = solve_obm_exact(p, opt);
    const double gap = s / exact.max_apl - 1.0;
    worst_gap = std::max(worst_gap, gap);
    small.add_row({"3x4 mesh, 2 apps, seed " + std::to_string(seed),
                   fmt(s, 4), fmt(exact.max_apl, 4), fmt_percent(gap),
                   std::to_string(exact.nodes_explored) +
                       (exact.proven_optimal ? "" : " (budget)")});
  }
  small.print(std::cout);
  std::cout << "Worst SSS gap over these instances: "
            << fmt_percent(worst_gap) << "\n";

  std::cout << "\n2. Lower-bound gap on the full 8x8 configurations:\n";
  TextTable big({"cfg", "SSS max-APL", "lower bound", "gap (<= true gap)"});
  for (const auto& spec : parsec_table3_configs()) {
    const ObmProblem p = bench::standard_problem(spec);
    SortSelectSwapMapper sss;
    const double s = evaluate(p, sss.map(p)).max_apl;
    const double lb = max_apl_lower_bound(p);
    big.add_row({spec.name, fmt(s, 3), fmt(lb, 3),
                 fmt_percent(s / lb - 1.0)});
  }
  big.print(std::cout);
  std::cout << "\nThe bound relaxes tile contention, so the true optimality "
               "gap is at most the shown value.\n";
  return 0;
}
