// Microbenchmark of the assignment kernel's solve modes, emitting the
// committed perf baselines BENCH_assignment.json and BENCH_mappers.json.
//
// Four modes are timed per instance size n ∈ {16, 64, 144, 256} (square
// meshes of side 4/8/12/16, Table-3 C1 workloads):
//
//  * legacy  — materialize the n×n CostMatrix out of ThreadCostCache and
//              call the one-shot solve_assignment: the pre-workspace path.
//  * cold    — a fresh AssignmentWorkspace solving through the lazy
//              CostView (no matrix copy, but scratch allocated per solve).
//  * cached  — one reused workspace, cold potentials: the steady state of a
//              long-lived solver with zero heap traffic per call.
//  * warm    — one reused workspace re-solving the same instance with
//              carried column potentials: the SSS fine-tuning steady state.
//
// Each mode reports best-of-3 adaptive batches (ns/solve). The mapper table
// times end-to-end map() calls (best of 5) per paper mapper plus GA on the
// canonical 8x8 C1 problem. Optional argv[1] is the output directory
// (default ".").
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/batch_eval.h"
#include "core/cost_cache.h"
#include "core/genetic_mapper.h"
#include "core/sam.h"
#include "obs/run_report.h"
#include "util/rng.h"

namespace {

using namespace nocmap;

// Accumulated solve costs; printed so the optimizer cannot drop the solves.
double g_sink = 0.0;

/// Best-of-3 batches, each batch grown until it runs >= 20 ms.
template <typename F>
double ns_per_call(F&& f) {
  using clock = std::chrono::steady_clock;
  f();  // warm-up (first-use allocations, caches)
  double best = std::numeric_limits<double>::infinity();
  for (int batch = 0; batch < 3; ++batch) {
    std::size_t reps = 4;
    for (;;) {
      const auto t0 = clock::now();
      for (std::size_t i = 0; i < reps; ++i) f();
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                               t0)
              .count());
      if (ns >= 2e7 || reps >= (1u << 22)) {
        best = std::min(best, ns / static_cast<double>(reps));
        break;
      }
      reps *= 4;
    }
  }
  return best;
}

struct SizeResult {
  std::size_t n = 0;
  double legacy_ns = 0.0;
  double cold_ns = 0.0;
  double cached_ns = 0.0;
  double warm_ns = 0.0;
};

SizeResult bench_size(std::uint32_t side) {
  const Mesh mesh = Mesh::square(side);
  const std::size_t n = mesh.num_tiles();
  SynthesisOptions opt;
  opt.num_applications = 4;
  opt.threads_per_app = n / 4;
  const ObmProblem problem(
      TileLatencyModel(mesh, LatencyParams{}),
      synthesize_workload(parsec_config("C1"), bench::kWorkloadSeed, opt));
  const ThreadCostCache cache(problem.workload(), problem.model());

  std::vector<TileId> tiles(n);
  std::iota(tiles.begin(), tiles.end(), TileId{0});
  const CostView view = cache.sam_view(0, tiles);

  SizeResult r;
  r.n = n;
  r.legacy_ns = ns_per_call([&] {
    const CostMatrix m = cache.sam_matrix(0, tiles);
    g_sink += solve_assignment(m).total_cost;
  });
  r.cold_ns = ns_per_call([&] {
    AssignmentWorkspace ws;
    g_sink += ws.solve(view).total_cost;
  });
  {
    AssignmentWorkspace ws;
    r.cached_ns = ns_per_call([&] { g_sink += ws.solve(view).total_cost; });
  }
  {
    AssignmentWorkspace ws;
    ws.solve(view);  // prime the potentials
    r.warm_ns =
        ns_per_call([&] { g_sink += ws.solve_warm(view).total_cost; });
  }
  return r;
}

struct BatchSweepResult {
  std::size_t k = 0;
  double ns_per_candidate = 0.0;
};

/// Amortization curve of BatchEvaluator::score: ns per scored candidate as
/// the lane count K grows. K=1 is the degenerate scalar-equivalent case;
/// the curve flattening out shows where the cost-row traversal is fully
/// amortized across lanes (the mapper loops sit at K=32–128).
std::vector<BatchSweepResult> bench_batch_eval() {
  const ObmProblem problem = bench::standard_problem("C1");
  const std::size_t n = problem.num_threads();
  const ThreadCostCache cache(problem.workload(), problem.model());
  const BatchEvaluator evaluator(problem, cache);
  Rng rng(bench::kAlgorithmSeed);

  std::vector<BatchSweepResult> results;
  for (const std::size_t k : {std::size_t{1}, std::size_t{8}, std::size_t{32},
                              std::size_t{128}}) {
    CandidateBatch batch(n, k);
    std::vector<TileId> perm(n);
    for (std::size_t b = 0; b < k; ++b) {
      std::iota(perm.begin(), perm.end(), TileId{0});
      rng.shuffle(perm);
      batch.load(b, perm);
    }
    std::vector<double> scores(k);
    const double ns = ns_per_call([&] {
      evaluator.score(batch, k, std::span<double>(scores));
      g_sink += scores[0];
    });
    results.push_back({k, ns / static_cast<double>(k)});
  }
  return results;
}

struct MapperResult {
  std::string name;
  double ms_per_map = 0.0;
};

std::vector<MapperResult> bench_mappers() {
  using clock = std::chrono::steady_clock;
  const ObmProblem problem = bench::standard_problem("C1");

  std::vector<std::unique_ptr<Mapper>> mappers =
      bench::paper_mappers(ParallelConfig::serial_config());
  GeneticParams ga;
  ga.seed = bench::kAlgorithmSeed;
  mappers.push_back(std::make_unique<GeneticMapper>(ga));

  std::vector<MapperResult> results;
  for (const auto& mapper : mappers) {
    // Best-of-5: map() calls land around a millisecond, where scheduler
    // jitter fattens the upper tail enough to matter for the CI speedup
    // gate; two extra reps keep the minimum a stable estimator.
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = clock::now();
      const Mapping m = mapper->map(problem);
      const double ms =
          std::chrono::duration<double, std::milli>(clock::now() - t0)
              .count();
      g_sink += static_cast<double>(m.thread_to_tile.front());
      best = std::min(best, ms);
    }
    results.push_back({mapper->name(), best});
  }
  return results;
}

void write_assignment_json(const std::filesystem::path& path,
                           const std::vector<SizeResult>& sizes) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"micro_assignment\",\n"
     << "  \"unit\": \"ns_per_solve\",\n"
     << "  \"sizes\": [\n";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const SizeResult& r = sizes[i];
    os << "    {\"n\": " << r.n
       << ", \"legacy_solve_assignment_ns\": " << r.legacy_ns
       << ", \"workspace_cold_ns\": " << r.cold_ns
       << ", \"workspace_cached_ns\": " << r.cached_ns
       << ", \"workspace_warm_ns\": " << r.warm_ns
       << ", \"warm_speedup_vs_legacy\": "
       << (r.warm_ns > 0.0 ? r.legacy_ns / r.warm_ns : 0.0) << "}"
       << (i + 1 < sizes.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  obs::RunReport::global().note_artifact(path.string());
  std::cout << "[json: " << path.string() << "]\n";
}

void write_mappers_json(const std::filesystem::path& path,
                        const std::vector<MapperResult>& mappers) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"micro_assignment\",\n"
     << "  \"unit\": \"ms_per_map\",\n"
     << "  \"mappers\": [\n";
  for (std::size_t i = 0; i < mappers.size(); ++i) {
    os << "    {\"mapper\": \"" << mappers[i].name
       << "\", \"ms_per_map\": " << mappers[i].ms_per_map << "}"
       << (i + 1 < mappers.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  obs::RunReport::global().note_artifact(path.string());
  std::cout << "[json: " << path.string() << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : ".";
  bench::print_header(
      "micro_assignment — assignment-kernel solve-mode timings",
      "perf baseline layer (DESIGN.md §8)");

  std::vector<SizeResult> sizes;
  for (const std::uint32_t side : {4u, 8u, 12u, 16u}) {
    sizes.push_back(bench_size(side));
    const SizeResult& r = sizes.back();
    std::cout << "n=" << r.n << "  legacy=" << r.legacy_ns / 1e3
              << "us  cold=" << r.cold_ns / 1e3
              << "us  cached=" << r.cached_ns / 1e3
              << "us  warm=" << r.warm_ns / 1e3
              << "us  (warm speedup vs legacy: "
              << r.legacy_ns / r.warm_ns << "x)\n";
    const std::string prefix = "assignment.n" + std::to_string(r.n);
    obs::RunReport::global().set(prefix + ".warm_ns", r.warm_ns);
    obs::RunReport::global().set(prefix + ".warm_speedup_vs_legacy",
                                 r.warm_ns > 0.0 ? r.legacy_ns / r.warm_ns
                                                 : 0.0);
  }

  const std::vector<BatchSweepResult> sweep = bench_batch_eval();
  const double k1_ns = sweep.front().ns_per_candidate;
  for (const BatchSweepResult& s : sweep) {
    std::cout << "batch-eval K=" << s.k << ": " << s.ns_per_candidate
              << " ns/candidate ("
              << (s.ns_per_candidate > 0.0 ? k1_ns / s.ns_per_candidate : 0.0)
              << "x vs K=1)\n";
    const std::string prefix = "eval.batch.k" + std::to_string(s.k);
    obs::RunReport::global().set(prefix + ".ns_per_candidate",
                                 s.ns_per_candidate);
    obs::RunReport::global().set(prefix + ".speedup_vs_k1",
                                 s.ns_per_candidate > 0.0
                                     ? k1_ns / s.ns_per_candidate
                                     : 0.0);
  }

  const std::vector<MapperResult> mappers = bench_mappers();
  for (const MapperResult& m : mappers) {
    std::cout << m.name << ": " << m.ms_per_map << " ms/map\n";
  }

  write_assignment_json(out_dir / "BENCH_assignment.json", sizes);
  write_mappers_json(out_dir / "BENCH_mappers.json", mappers);
  std::cout << "(checksum " << g_sink << ")\n";
  return 0;
}
