// Extension: tail latency, not just means. The paper's QoS motivation
// (service agreements for paying users) is really about worst-case
// experience; this bench measures per-application p50/p95/p99 packet
// latency under Global and SSS on the cycle-level simulator.
#include <iostream>

#include "bench_common.h"
#include "netsim/sim.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_tail_latency — per-application latency tails",
                      "QoS extension of the paper's mean-latency evaluation");

  const ObmProblem problem = bench::standard_problem("C1");
  GlobalMapper global;
  SortSelectSwapMapper sss;

  SimConfig cfg;
  cfg.warmup_cycles = 3000;
  cfg.measure_cycles = 80000;

  TextTable t({"mapping", "application", "mean", "p50", "p95", "p99"});
  double worst_p95_global = 0.0, worst_p95_sss = 0.0;
  for (const auto& [name, mapper] :
       {std::pair<const char*, Mapper*>{"Global", &global},
        std::pair<const char*, Mapper*>{"SSS", &sss}}) {
    const SimResult r = run_simulation(problem, mapper->map(problem), cfg);
    for (std::size_t a = 0; a < problem.num_applications(); ++a) {
      const double p95 = r.app_percentile(a, 0.95);
      t.add_row({name, problem.workload().application(a).name,
                 fmt(r.apl[a]), fmt(r.app_percentile(a, 0.50), 1),
                 fmt(p95, 1), fmt(r.app_percentile(a, 0.99), 1)});
      if (std::string(name) == "Global") {
        worst_p95_global = std::max(worst_p95_global, p95);
      } else {
        worst_p95_sss = std::max(worst_p95_sss, p95);
      }
    }
  }
  t.print(std::cout);
  bench::save_table(t, "ext_tail_latency");

  std::cout << "\nWorst-application p95: Global " << fmt(worst_p95_global, 1)
            << " -> SSS " << fmt(worst_p95_sss, 1) << " ("
            << fmt_percent(worst_p95_sss / worst_p95_global - 1.0)
            << ").\nReading: balancing the means also compresses the tails "
               "— the worst application's\np95 improves by roughly the "
               "same factor as its mean, because the imbalance was\n"
               "positional (bad tiles), not stochastic.\n";
  return 0;
}
