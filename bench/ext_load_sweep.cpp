// Extension: network-load sweep — the canonical latency-vs-offered-load
// curve of the simulated fabric, locating where the paper's workloads sit
// relative to saturation, plus a routing-algorithm comparison (XY — the
// paper's choice — vs YX vs O1TURN) under rising load.
//
// All scenarios are independent, so the whole bench is one simulation batch
// (run_simulation_batch): tables are printed from the slot-ordered results
// afterwards, and NOCMAP_THREADS only changes the wall-clock.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_load_sweep — latency vs offered load; routing",
                      "substrate validation beyond the paper's load points");

  const ObmProblem problem = bench::standard_problem("C1");
  SortSelectSwapMapper sss;
  const Mapping mapping = sss.map(problem);

  const std::vector<double> sweep_scales = {0.5, 1.0, 2.0, 4.0,
                                            8.0, 16.0, 24.0};
  const std::vector<double> routing_scales = {1.0, 8.0, 16.0};
  const std::vector<RoutingAlgo> routing_algos = {
      RoutingAlgo::kXY, RoutingAlgo::kYX, RoutingAlgo::kO1Turn};
  const std::vector<double> burst_scales = {1.0, 3.0};

  std::vector<BatchScenario> batch;
  auto add = [&](const SimConfig& cfg) {
    batch.push_back({&problem, &mapping, cfg});
  };
  // Section 1: injection-scale sweep.
  for (double scale : sweep_scales) {
    SimConfig cfg;
    cfg.warmup_cycles = 2000;
    cfg.measure_cycles = 20000;
    cfg.traffic.injection_scale = scale;
    add(cfg);
  }
  // Section 2: routing algorithms under rising load.
  for (double scale : routing_scales) {
    for (RoutingAlgo algo : routing_algos) {
      SimConfig cfg;
      cfg.warmup_cycles = 2000;
      cfg.measure_cycles = 20000;
      cfg.traffic.injection_scale = scale;
      cfg.network.routing = algo;
      cfg.network.vcs_per_port = 4;  // even O1TURN partition
      add(cfg);
    }
  }
  // Section 3: steady vs bursty at the same mean rate.
  for (double scale : burst_scales) {
    SimConfig cfg;
    cfg.warmup_cycles = 2000;
    cfg.measure_cycles = 30000;
    cfg.traffic.injection_scale = scale;
    add(cfg);
    cfg.traffic.bursty = true;
    cfg.traffic.burst_duty = 0.25;
    add(cfg);
  }

  const std::vector<SimResult> results = bench::simulate_batch(batch);
  std::size_t slot = 0;

  std::cout << "\n1. Injection-scale sweep (XY routing, SSS mapping of C1; "
               "scale 1.0 = paper load):\n";
  TextTable sweep({"scale", "packets", "avg latency", "p95(app4)",
                   "td_q [cyc/hop]", "drained"});
  for (double scale : sweep_scales) {
    const SimResult& r = results[slot++];
    sweep.add_row({fmt(scale, 1), std::to_string(r.packets_measured),
                   fmt(r.g_apl), fmt(r.app_percentile(3, 0.95), 1),
                   fmt(r.activity.avg_queue_wait(), 3),
                   r.drain_incomplete ? "NO" : "yes"});
  }
  sweep.print(std::cout);
  std::cout << "Expected: flat latency and td_q << 1 at paper loads, then "
               "the classic knee as the\nfabric saturates (latency and "
               "queuing blow up; drain may hit its cap).\n";

  std::cout << "\n2. Routing algorithms at moderate and high load "
               "(avg latency in cycles):\n";
  TextTable routing({"scale", "XY", "YX", "O1TURN"});
  for (double scale : routing_scales) {
    std::vector<std::string> row{fmt(scale, 1)};
    for (std::size_t a = 0; a < routing_algos.size(); ++a) {
      row.push_back(fmt(results[slot++].g_apl));
    }
    routing.add_row(row);
  }
  routing.print(std::cout);
  std::cout << "\nXY and YX are statistically equivalent under this "
               "near-symmetric traffic; O1TURN's\npath diversity helps only "
               "as the load approaches saturation. The paper's XY choice\n"
               "is sound at its operating point.\n";

  std::cout << "\n3. Steady vs bursty injection (same mean rate; two-state "
               "Markov, duty 0.25):\n";
  TextTable burst({"scale", "steady g-APL", "steady p99(app4)",
                   "bursty g-APL", "bursty p99(app4)"});
  for (double scale : burst_scales) {
    const SimResult& steady = results[slot++];
    const SimResult& bursty = results[slot++];
    burst.add_row({fmt(scale, 1), fmt(steady.g_apl),
                   fmt(steady.app_percentile(3, 0.99), 1), fmt(bursty.g_apl),
                   fmt(bursty.app_percentile(3, 0.99), 1)});
  }
  burst.print(std::cout);
  std::cout << "\nBurstiness barely moves the mean but fattens the tail — "
               "the analytic model's steady\nassumption is safe for APL "
               "(the paper's metric) and optimistic for p99.\n";
  return 0;
}
