// Extension: network-load sweep — the canonical latency-vs-offered-load
// curve of the simulated fabric, locating where the paper's workloads sit
// relative to saturation, plus a routing-algorithm comparison (XY — the
// paper's choice — vs YX vs O1TURN) under rising load.
#include <iostream>

#include "bench_common.h"
#include "netsim/sim.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_load_sweep — latency vs offered load; routing",
                      "substrate validation beyond the paper's load points");

  const ObmProblem problem = bench::standard_problem("C1");
  SortSelectSwapMapper sss;
  const Mapping mapping = sss.map(problem);

  std::cout << "\n1. Injection-scale sweep (XY routing, SSS mapping of C1; "
               "scale 1.0 = paper load):\n";
  TextTable sweep({"scale", "packets", "avg latency", "p95(app4)",
                   "td_q [cyc/hop]", "drained"});
  for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 24.0}) {
    SimConfig cfg;
    cfg.warmup_cycles = 2000;
    cfg.measure_cycles = 20000;
    cfg.traffic.injection_scale = scale;
    const SimResult r = run_simulation(problem, mapping, cfg);
    sweep.add_row({fmt(scale, 1), std::to_string(r.packets_measured),
                   fmt(r.g_apl), fmt(r.app_percentile(3, 0.95), 1),
                   fmt(r.activity.avg_queue_wait(), 3),
                   r.drain_incomplete ? "NO" : "yes"});
  }
  sweep.print(std::cout);
  std::cout << "Expected: flat latency and td_q << 1 at paper loads, then "
               "the classic knee as the\nfabric saturates (latency and "
               "queuing blow up; drain may hit its cap).\n";

  std::cout << "\n2. Routing algorithms at moderate and high load "
               "(avg latency in cycles):\n";
  TextTable routing({"scale", "XY", "YX", "O1TURN"});
  for (double scale : {1.0, 8.0, 16.0}) {
    std::vector<std::string> row{fmt(scale, 1)};
    for (RoutingAlgo algo : {RoutingAlgo::kXY, RoutingAlgo::kYX,
                             RoutingAlgo::kO1Turn}) {
      SimConfig cfg;
      cfg.warmup_cycles = 2000;
      cfg.measure_cycles = 20000;
      cfg.traffic.injection_scale = scale;
      cfg.network.routing = algo;
      cfg.network.vcs_per_port = 4;  // even O1TURN partition
      const SimResult r = run_simulation(problem, mapping, cfg);
      row.push_back(fmt(r.g_apl));
    }
    routing.add_row(row);
  }
  routing.print(std::cout);
  std::cout << "\nXY and YX are statistically equivalent under this "
               "near-symmetric traffic; O1TURN's\npath diversity helps only "
               "as the load approaches saturation. The paper's XY choice\n"
               "is sound at its operating point.\n";

  std::cout << "\n3. Steady vs bursty injection (same mean rate; two-state "
               "Markov, duty 0.25):\n";
  TextTable burst({"scale", "steady g-APL", "steady p99(app4)",
                   "bursty g-APL", "bursty p99(app4)"});
  for (double scale : {1.0, 3.0}) {
    SimConfig cfg;
    cfg.warmup_cycles = 2000;
    cfg.measure_cycles = 30000;
    cfg.traffic.injection_scale = scale;
    const SimResult steady = run_simulation(problem, mapping, cfg);
    cfg.traffic.bursty = true;
    cfg.traffic.burst_duty = 0.25;
    const SimResult bursty = run_simulation(problem, mapping, cfg);
    burst.add_row({fmt(scale, 1), fmt(steady.g_apl),
                   fmt(steady.app_percentile(3, 0.99), 1), fmt(bursty.g_apl),
                   fmt(bursty.app_percentile(3, 0.99), 1)});
  }
  burst.print(std::cout);
  std::cout << "\nBurstiness barely moves the mean but fattens the tail — "
               "the analytic model's steady\nassumption is safe for APL "
               "(the paper's metric) and optimistic for p99.\n";
  return 0;
}
