// Microbenchmark of the online mapping service (DESIGN.md §13), emitting
// the committed perf baseline BENCH_service.json (gated by
// bench/compare_bench.py in CI's release leg, like the other micro benches).
//
// One scenario, sized like the paper's evaluation platform: a 100k-event
// churn trace (arrivals / departures / phase changes) replayed against an
// 8x8 chip with a migration budget of 8 threads per event and the default
// 1.25x fallback threshold. Two replays run back to back:
//
//  * timing replay  — nothing but the service on the hot path; produces the
//                     gated metrics (total run_ms, mean and p99 per-decision
//                     latency) best-of-2.
//  * quality replay — a fresh engine over the same trace, sampling the
//                     incremental objective against a from-scratch serial
//                     SSS solve every 500 accepted events; produces the
//                     ungated mean objective ratio (>= 1; how far the
//                     incremental path drifts from batch quality).
//
// Optional argv[1] is the output directory (default ".").
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "obs/run_report.h"
#include "service/replay.h"

namespace {

using namespace nocmap;

constexpr std::size_t kEvents = 100000;

service::MappingService make_engine() {
  service::ServiceConfig config;
  config.migration_budget = 8;
  config.degradation_threshold = 1.25;
  config.sss.parallel = ParallelConfig::serial_config();
  return service::MappingService(
      TileLatencyModel(Mesh::square(8), LatencyParams{}), config);
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : ".";
  bench::print_header("micro_service — online mapping service under churn",
                      "100k events, 8x8 chip, budget 8, threshold 1.25");

  service::TraceConfig trace;
  trace.seed = bench::kWorkloadSeed;
  trace.num_events = kEvents;
  trace.num_tiles = 64;
  const std::vector<service::Event> events = service::generate_trace(trace);

  // Timing replay, best of 2 (each replay is seconds-scale).
  service::ReplayOptions timing_options;
  timing_options.collect_latencies = true;
  service::ReplayStats best;
  best.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    service::MappingService engine = make_engine();
    service::ReplayStats stats =
        service::replay_trace(engine, events, timing_options);
    if (stats.wall_ms < best.wall_ms) best = std::move(stats);
  }
  const double mean_us =
      best.wall_ms * 1000.0 / static_cast<double>(best.events);
  const double p99_us = service::percentile_us(best.decision_us, 99.0);
  const double decisions_per_sec =
      1000.0 * static_cast<double>(best.events) / best.wall_ms;

  // Quality replay: incremental objective vs from-scratch SSS, sampled.
  service::ReplayOptions quality_options;
  quality_options.objective_sample_period = 500;
  service::MappingService quality_engine = make_engine();
  const service::ReplayStats quality =
      service::replay_trace(quality_engine, events, quality_options);

  std::cout << "events: " << best.events << " (" << best.accepted
            << " accepted, " << best.rejected << " rejected, "
            << best.fallbacks << " fallback re-solves)\n"
            << "run: " << best.wall_ms << " ms  ("
            << decisions_per_sec << " decisions/sec)\n"
            << "decision latency: mean " << mean_us << " us, p99 " << p99_us
            << " us\n"
            << "objective vs from-scratch SSS: mean ratio "
            << quality.mean_objective_ratio << " over "
            << quality.objective_samples << " samples\n"
            << "decision digest: " << std::hex << best.digest << std::dec
            << "\n";

  obs::RunReport::global().set("service.decisions_per_sec",
                               decisions_per_sec);
  obs::RunReport::global().set("service.mean_decision_us", mean_us);
  obs::RunReport::global().set("service.p99_decision_us", p99_us);
  obs::RunReport::global().set("service.mean_objective_ratio",
                               quality.mean_objective_ratio);
  obs::RunReport::global().set("service.fallbacks",
                               static_cast<double>(best.fallbacks));

  const std::filesystem::path json_path = out_dir / "BENCH_service.json";
  std::ofstream os(json_path);
  os << "{\n"
     << "  \"bench\": \"micro_service\",\n"
     << "  \"events\": " << kEvents << ",\n"
     << "  \"scenarios\": [\n"
     << "    {\"scenario\": \"mesh8_churn_100k\", \"run_ms\": "
     << best.wall_ms << ", \"mean_decision_us\": " << mean_us
     << ", \"p99_decision_us\": " << p99_us << "}\n"
     << "  ],\n"
     << "  \"info\": {\"decisions_per_sec\": " << decisions_per_sec
     << ", \"mean_objective_ratio\": " << quality.mean_objective_ratio
     << ", \"fallbacks\": " << best.fallbacks << "}\n"
     << "}\n";
  obs::RunReport::global().note_artifact(json_path.string());
  std::cout << "[json: " << json_path.string() << "]\n";
  return 0;
}
