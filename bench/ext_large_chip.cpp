// Extension: the paper's headline experiment re-run on a 256-core chip
// (16x16 mesh, 4 applications x 64 threads, C1..C8 rate statistics) — the
// "tens to hundreds of cores" future the paper's introduction motivates.
// Also the headline scenario for the parallel engine: per configuration,
// the SSS sweep is timed serial and parallel (deterministic mode, so both
// produce the same mapping) and the speedups are saved as JSON.
#include <chrono>
#include <functional>
#include <iostream>

#include "bench_common.h"

namespace {

double ms_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace nocmap;
  bench::print_header("ext_large_chip — Figure 9 on a 16x16 / 256-core CMP",
                      "scale extension of the paper's 8x8 evaluation");
  const ParallelConfig parallel = bench::bench_parallel_config();
  std::cout << "Parallel MC/SA/SSS: " << parallel.resolved_threads()
            << " worker(s), deterministic\n";

  TextTable t({"cfg", "Global max-APL", "MC max-APL", "SA max-APL",
               "SSS max-APL", "Global dev", "SSS dev", "SSS [ms]",
               "SSS par [ms]"});
  std::vector<double> sums(4, 0.0);
  double g_dev_sum = 0.0, s_dev_sum = 0.0;
  std::vector<bench::SpeedupRecord> speedups;

  for (const auto& spec : parsec_table3_configs()) {
    const Mesh mesh = Mesh::square(16);
    SynthesisOptions opt;
    opt.num_applications = 4;
    opt.threads_per_app = 64;
    const ObmProblem problem(
        TileLatencyModel(mesh, LatencyParams{}),
        synthesize_workload(spec, bench::kWorkloadSeed, opt));

    GlobalMapper global;
    MonteCarloMapper mc(2000, bench::kAlgorithmSeed,  // scaled-down trials
                        parallel);
    AnnealingParams sa_params{.iterations = 100000,
                              .seed = bench::kAlgorithmSeed};
    sa_params.parallel = parallel;
    AnnealingMapper sa(sa_params);
    SortSelectSwapMapper sss(
        SssOptions{.parallel = ParallelConfig::serial_config()});
    SortSelectSwapMapper sss_par(SssOptions{.parallel = parallel});

    Mapping ms, mp;
    const double sss_ms = ms_of([&] { ms = sss.map(problem); });
    const double sss_par_ms = ms_of([&] { mp = sss_par.map(problem); });
    if (mp.thread_to_tile != ms.thread_to_tile) {
      std::cout << "  *** DETERMINISM VIOLATION on " << spec.name
                << ": parallel SSS diverged from serial ***\n";
    }
    speedups.push_back(
        {spec.name, parallel.resolved_threads(), sss_ms, sss_par_ms});

    const LatencyReport rg = evaluate(problem, global.map(problem));
    const LatencyReport rm = evaluate(problem, mc.map(problem));
    const LatencyReport ra = evaluate(problem, sa.map(problem));
    const LatencyReport rs = evaluate(problem, ms);
    sums[0] += rg.max_apl;
    sums[1] += rm.max_apl;
    sums[2] += ra.max_apl;
    sums[3] += rs.max_apl;
    g_dev_sum += rg.dev_apl;
    s_dev_sum += rs.dev_apl;
    t.add_row({spec.name, fmt(rg.max_apl), fmt(rm.max_apl), fmt(ra.max_apl),
               fmt(rs.max_apl), fmt(rg.dev_apl, 3), fmt(rs.dev_apl, 3),
               fmt(sss_ms, 1), fmt(sss_par_ms, 1)});
  }
  t.print(std::cout);
  bench::save_table(t, "ext_large_chip");
  bench::save_speedup_json("ext_large_chip_speedup", speedups);

  std::cout << "\nAverages: SSS vs Global max-APL "
            << fmt_percent(sums[3] / sums[0] - 1.0) << " (8x8 was ~-12%); "
            << "dev-APL " << fmt_percent(s_dev_sum / g_dev_sum - 1.0)
            << ".\nMC vs Global: " << fmt_percent(sums[1] / sums[0] - 1.0)
            << " — random search degrades with dimension (256! states), "
               "while the\nconstructive heuristic keeps its full margin: "
               "the paper's approach *gains* value at scale.\n";
  return 0;
}
