// Figure 3 reproduction: per-tile packet-latency maps on the 8x8 mesh.
// (a) average L2-cache access latency TC(k) — lowest in the center;
// (b) memory-controller access latency TM(k) — lowest at the corners.
#include <functional>
#include <iomanip>
#include <iostream>

#include "bench_common.h"
#include "latency/model.h"

namespace {

void print_map(const nocmap::Mesh& mesh, const char* title,
               const std::function<double(nocmap::TileId)>& value) {
  std::cout << "\n" << title << "\n";
  for (std::uint32_t r = 0; r < mesh.rows(); ++r) {
    for (std::uint32_t c = 0; c < mesh.cols(); ++c) {
      std::cout << std::fixed << std::setprecision(2) << std::setw(6)
                << value(mesh.tile_at(r, c))
                << (c + 1 < mesh.cols() ? " " : "\n");
    }
  }
}

}  // namespace

int main() {
  using namespace nocmap;
  bench::print_header("fig03_latency_maps — per-tile latency maps",
                      "paper Figure 3 (packet latencies on an 8x8 mesh)");

  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, LatencyParams{});

  print_map(mesh, "(a) average cache hop count HC_k (paper anchors: "
                  "HC_1 = 7, HC_28 = 4)",
            [&](TileId t) { return model.hc(t); });
  print_map(mesh, "(a') average L2-cache packet latency TC(k) [cycles]",
            [&](TileId t) { return model.tc(t); });
  print_map(mesh, "(b) memory-controller hop count HM_k (eq. 4)",
            [&](TileId t) { return model.hm(t); });
  print_map(mesh, "(b') memory-controller packet latency TM(k) [cycles]",
            [&](TileId t) { return model.tm(t); });

  std::cout << "\nShape check: TC is minimal at the center and maximal at "
               "the corners;\nTM is the opposite — the tension the mapping "
               "algorithm must balance.\n";
  return 0;
}
