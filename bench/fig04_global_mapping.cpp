// Figure 4 reproduction: the Global mapping of configuration C1 as an
// application-ID grid. The paper's observation: Application 1 (lightest
// traffic) is pushed to the worst cache-latency tiles (corners/perimeter).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header("fig04_global_mapping — Global mapping of C1",
                      "paper Figure 4 (Global mapping results of C1)");

  const ObmProblem problem = bench::standard_problem("C1");
  GlobalMapper global;
  const Mapping mapping = global.map(problem);

  std::cout << "\nApplication-ID grid (apps sorted ascending by total "
               "communication rate; 1 = lightest):\n\n";
  bench::print_mapping_grid(problem, mapping);

  const LatencyReport r = evaluate(problem, mapping);
  std::cout << "\nPer-application APL under Global [cycles]:\n";
  TextTable t({"application", "total rate", "APL"});
  for (std::size_t a = 0; a < problem.num_applications(); ++a) {
    t.add_row({problem.workload().application(a).name,
               fmt(problem.workload().application(a).total_rate(), 1),
               fmt(r.apl[a])});
  }
  t.print(std::cout);
  std::cout << "\ng-APL = " << fmt(r.g_apl) << ", max-APL = " << fmt(r.max_apl)
            << ", dev-APL = " << fmt(r.dev_apl, 3) << "\n";

  // The paper's headline observation for this figure.
  const double worst = r.max_apl;
  std::cout << "\nLightest application's APL is "
            << fmt_percent(worst / r.g_apl - 1.0)
            << " above the overall average (paper: Application 1 at 25.15 "
               "cycles, +17.80% over 21.35).\n";

  // Count how many of the four corners went to the lightest application.
  const Mesh& mesh = problem.mesh();
  const auto inv = mapping.tile_to_thread();
  int corners_lightest = 0;
  for (TileId corner : {mesh.tile_at(0, 0), mesh.tile_at(0, 7),
                        mesh.tile_at(7, 0), mesh.tile_at(7, 7)}) {
    if (problem.workload().application_of(inv[corner]) == 0) {
      ++corners_lightest;
    }
  }
  std::cout << "Corners assigned to the lightest application: "
            << corners_lightest << "/4 (paper: 4/4).\n";
  return 0;
}
