// Microbenchmark of the observability layer's overhead claims
// (DESIGN.md §9): per-primitive costs (counter add, gauge set, scoped
// timer) against an uninstrumented arithmetic baseline, and an end-to-end
// instrumented SSS map.
//
// Built with the default -DNOCMAP_OBS=ON this reports what the
// instrumentation actually costs (a few nanoseconds per primitive; the
// mappers only touch primitives at stage granularity, so end-to-end cost is
// noise). Built with -DNOCMAP_OBS=OFF every handle is an inline no-op and
// the instrumented loop must time within 1% of the baseline — the
// "compiles to the uninstrumented binary" claim, measured rather than
// asserted. The report records obs_enabled so the two builds' outputs are
// distinguishable.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <limits>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace {

using namespace nocmap;

volatile std::uint64_t g_sink = 0;

/// Best-of-5 timings of `iters` calls of f, in ns per call.
template <typename F>
double ns_per_call(std::size_t iters, F&& f) {
  using clock = std::chrono::steady_clock;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) f(i);
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             t0)
            .count());
    best = std::min(best, ns / static_cast<double>(iters));
  }
  return best;
}

const obs::Counter c_bench("micro_obs.counter");
const obs::Timer t_bench("micro_obs.timer");
const obs::Gauge g_bench("micro_obs.gauge");

}  // namespace

int main() {
  bench::print_header("micro_obs — observability overhead",
                      "DESIGN.md §9 overhead methodology");
  obs::RunReport& report = obs::RunReport::global();
  report.set("obs_enabled", obs::compiled_in());

  constexpr std::size_t kIters = 2'000'000;

  // Baseline: the same loop shape with plain arithmetic into a sink the
  // optimizer cannot remove.
  const double baseline_ns =
      ns_per_call(kIters, [](std::size_t i) { g_sink = g_sink + i; });
  const double counter_ns = ns_per_call(kIters, [](std::size_t i) {
    g_sink = g_sink + i;
    c_bench.add();
  });
  const double gauge_ns = ns_per_call(kIters, [](std::size_t i) {
    g_sink = g_sink + i;
    g_bench.set_max(static_cast<double>(i));
  });
  const double scoped_ns = ns_per_call(kIters / 10, [](std::size_t i) {
    g_sink = g_sink + i;
    const obs::ScopedTimer scope(t_bench);
  });

  std::cout << "obs compiled in: " << (obs::compiled_in() ? "yes" : "no")
            << "\nbaseline loop:    " << baseline_ns << " ns/op"
            << "\ncounter.add:      " << counter_ns << " ns/op ("
            << counter_ns - baseline_ns << " ns over baseline)"
            << "\ngauge.set_max:    " << gauge_ns << " ns/op"
            << "\nScopedTimer:      " << scoped_ns << " ns/op\n";

  // End-to-end: one fully instrumented SSS map (stage timers + counters +
  // the assignment-kernel counters all fire on this path).
  using clock = std::chrono::steady_clock;
  const ObmProblem problem = bench::standard_problem("C1");
  SortSelectSwapMapper sss{SssOptions{}};
  double map_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    const Mapping m = sss.map(problem);
    g_sink = g_sink + m.thread_to_tile.front();
    map_ms = std::min(
        map_ms,
        std::chrono::duration<double, std::milli>(clock::now() - t0).count());
  }
  std::cout << "SSS map (instrumented): " << map_ms << " ms\n";

  report.set("primitive.baseline_ns", baseline_ns);
  report.set("primitive.counter_add_ns", counter_ns);
  report.set("primitive.gauge_set_ns", gauge_ns);
  report.set("primitive.scoped_timer_ns", scoped_ns);
  report.set("sss_map_ms", map_ms);

  if (!obs::compiled_in()) {
    // The no-op build must be indistinguishable from the baseline (<1%).
    const double pct =
        baseline_ns > 0.0
            ? 100.0 * (counter_ns - baseline_ns) / baseline_ns
            : 0.0;
    report.set("off_mode_counter_overhead_pct", pct);
    std::cout << "off-mode counter overhead: " << pct << "%\n";
  }
  std::cout << "(checksum " << g_sink << ")\n";
  return 0;
}
