#include "bench_common.h"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>

#include "obs/run_report.h"
#include "obs/trace.h"

namespace nocmap::bench {

namespace {

std::chrono::steady_clock::time_point g_run_start;

/// Ensures bench_results/ exists; empty path (and a console note) on failure.
std::filesystem::path results_dir(const char* what) {
  const std::filesystem::path dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cout << "(could not create " << dir.string() << "; skipping " << what
              << " export)\n";
    return {};
  }
  return dir;
}

/// atexit hook: stamps the wall time, attaches the metric snapshot and
/// writes bench_results/REPORT_<binary>.json plus any NOCMAP_TRACE file.
/// Registered by print_header, so every bench binary emits a RunReport
/// without per-binary wiring.
void flush_global_report() {
  obs::RunReport& report = obs::RunReport::global();
  if (report.binary().empty()) return;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - g_run_start)
          .count();
  report.set("wall_ms", wall_ms);
  report.attach_metrics();
  const std::filesystem::path dir = results_dir("report");
  if (dir.empty()) return;
  const std::filesystem::path path =
      dir / ("REPORT_" + report.binary() + ".json");
  if (report.save(path.string())) {
    std::cout << "[report: " << path.string() << "]\n";
  }
  if (obs::flush_trace_to_env_path()) {
    std::cout << "[trace: " << std::getenv("NOCMAP_TRACE") << "]\n";
  }
}

}  // namespace

ObmProblem standard_problem(const ConfigSpec& spec) {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(spec, kWorkloadSeed));
}

ObmProblem standard_problem(const std::string& config_name) {
  return standard_problem(parsec_config(config_name));
}

std::vector<std::unique_ptr<Mapper>> paper_mappers(ParallelConfig parallel) {
  std::vector<std::unique_ptr<Mapper>> mappers;
  mappers.push_back(std::make_unique<GlobalMapper>());
  mappers.push_back(std::make_unique<MonteCarloMapper>(kMcTrials,
                                                       kAlgorithmSeed,
                                                       parallel));
  AnnealingParams sa{.iterations = kSaIterations, .seed = kAlgorithmSeed};
  sa.parallel = parallel;
  mappers.push_back(std::make_unique<AnnealingMapper>(sa));
  mappers.push_back(std::make_unique<SortSelectSwapMapper>(
      SssOptions{.parallel = parallel}));
  return mappers;
}

ParallelConfig bench_parallel_config() {
  ParallelConfig config;  // deterministic, hardware threads
  if (const char* env = std::getenv("NOCMAP_THREADS")) {
    config.num_threads =
        static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  return config;
}

std::vector<SimResult> simulate_batch(
    const std::vector<BatchScenario>& scenarios) {
  return run_simulation_batch(scenarios, bench_parallel_config());
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==================================================\n"
            << title << '\n'
            << "Reproduces: " << paper_ref << '\n'
            << "Setup: 8x8 mesh, corner MCs, default latency params "
               "(td_r=3, td_w=1, td_q=0.3, td_s=1.8), workload seed "
            << kWorkloadSeed << '\n'
            << "==================================================\n";

  // Observability bootstrap: the binary name is the title prefix (every
  // bench titles itself "<binary> — <purpose>"). First call wins; the
  // report is flushed at exit so the binary needs no teardown code.
  obs::RunReport& report = obs::RunReport::global();
  if (!report.binary().empty()) return;
  const std::size_t dash = title.find(" — ");
  report.set_binary(dash == std::string::npos ? title : title.substr(0, dash));
  report.set("title", title);
  report.set("reproduces", paper_ref);
  report.set("workload_seed", kWorkloadSeed);
  report.set("threads",
             static_cast<std::uint64_t>(
                 bench_parallel_config().resolved_threads()));
  g_run_start = std::chrono::steady_clock::now();
  obs::init_tracing_from_env();
  std::atexit(flush_global_report);
}

void print_mapping_grid(const ObmProblem& problem, const Mapping& mapping,
                        std::ostream& os) {
  const Mesh& mesh = problem.mesh();
  const auto tile_to_thread = mapping.tile_to_thread();
  for (std::uint32_t r = 0; r < mesh.rows(); ++r) {
    for (std::uint32_t c = 0; c < mesh.cols(); ++c) {
      const std::size_t thread = tile_to_thread[mesh.tile_at(r, c)];
      const std::size_t app = problem.workload().application_of(thread);
      os << (app + 1) << (c + 1 < mesh.cols() ? " " : "\n");
    }
  }
}

void save_table(const TextTable& table, const std::string& name) {
  const std::filesystem::path dir = results_dir("CSV");
  if (dir.empty()) return;
  const std::filesystem::path path = dir / (name + ".csv");
  table.save_csv(path.string());
  obs::RunReport::global().note_artifact(path.string());
  std::cout << "[csv: " << path.string() << "]\n";
}

void save_speedup_json(const std::string& name,
                       const std::vector<SpeedupRecord>& records) {
  const std::filesystem::path dir = results_dir("JSON");
  if (dir.empty()) return;
  const std::filesystem::path path = dir / (name + ".json");
  std::ofstream out(path);
  out << "{\n  \"bench\": \"" << name << "\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SpeedupRecord& r = records[i];
    out << "    {\"scenario\": \"" << r.scenario
        << "\", \"threads\": " << r.threads
        << ", \"serial_ms\": " << r.serial_ms
        << ", \"parallel_ms\": " << r.parallel_ms
        << ", \"speedup\": " << r.speedup() << "}"
        << (i + 1 < records.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  obs::RunReport::global().note_artifact(path.string());
  std::cout << "[json: " << path.string() << "]\n";
}

}  // namespace nocmap::bench
