// Extension: memory-controller placement as a design knob. The paper fixes
// one MC per corner (its Figure 1 chip); this bench re-runs the headline
// comparison with edge-middle and center-diamond placements and reports
// how placement shifts both the balance problem (TM spread) and the
// achievable result — plus the link-contention consequences around the
// MCs.
#include <iostream>

#include "bench_common.h"
#include "core/contention.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_mc_placement — MC placement design study",
                      "design-space extension of the paper's Figure-1 chip");

  const Workload workload =
      synthesize_workload(parsec_config("C1"), bench::kWorkloadSeed);

  struct Row {
    const char* name;
    McPlacement placement;
  };
  const std::vector<Row> placements{
      {"corners (paper)", McPlacement::kCorners},
      {"edge middles", McPlacement::kEdgeMiddles},
      {"center diamond", McPlacement::kDiamond},
  };

  TextTable t({"placement", "TM spread", "Global max-APL", "SSS max-APL",
               "gap", "SSS dev-APL", "max link util (SSS)"});
  for (const Row& row : placements) {
    const Mesh mesh = Mesh::square_with_placement(8, row.placement);
    const TileLatencyModel chip(mesh, LatencyParams{});
    double tm_min = chip.tm(0), tm_max = chip.tm(0);
    for (TileId k = 1; k < mesh.num_tiles(); ++k) {
      tm_min = std::min(tm_min, chip.tm(k));
      tm_max = std::max(tm_max, chip.tm(k));
    }

    const ObmProblem problem(chip, workload);
    GlobalMapper global;
    SortSelectSwapMapper sss;
    const LatencyReport rg = evaluate(problem, global.map(problem));
    const Mapping ms = sss.map(problem);
    const LatencyReport rs = evaluate(problem, ms);
    const ContentionModel contention(problem, ms);

    t.add_row({row.name, fmt(tm_max - tm_min), fmt(rg.max_apl),
               fmt(rs.max_apl), fmt_percent(rs.max_apl / rg.max_apl - 1.0),
               fmt(rs.dev_apl, 3), fmt(contention.max_utilization(), 3)});
  }
  t.print(std::cout);
  bench::save_table(t, "ext_mc_placement");

  // Arbitrary MC sets: the generalized nearest-MC rule is not limited to
  // the four symmetric schemes above. Sweep hand-picked asymmetric sets of
  // 1..8 controllers (as a packaging or binning constraint might dictate)
  // through the same comparison.
  struct SetRow {
    const char* name;
    std::vector<TileId> mcs;
  };
  const std::vector<SetRow> sets{
      {"1 MC, center", {27}},
      {"2 MCs, west edge", {16, 40}},
      {"3 MCs, one corner dark", {0, 7, 56}},
      {"6 MCs, ring", {2, 5, 23, 40, 58, 61}},
      {"8 MCs, two columns", {8, 15, 24, 31, 32, 39, 48, 55}},
  };

  TextTable t2({"MC set", "TM spread", "Global max-APL", "SSS max-APL",
                "gap", "SSS dev-APL", "max link util (SSS)"});
  for (const SetRow& row : sets) {
    const Mesh mesh(8, 8, row.mcs);
    const TileLatencyModel chip(mesh, LatencyParams{});
    double tm_min = chip.tm(0), tm_max = chip.tm(0);
    for (TileId k = 1; k < mesh.num_tiles(); ++k) {
      tm_min = std::min(tm_min, chip.tm(k));
      tm_max = std::max(tm_max, chip.tm(k));
    }

    const ObmProblem problem(chip, workload);
    GlobalMapper global;
    SortSelectSwapMapper sss;
    const LatencyReport rg = evaluate(problem, global.map(problem));
    const Mapping ms = sss.map(problem);
    const LatencyReport rs = evaluate(problem, ms);
    const ContentionModel contention(problem, ms);

    t2.add_row({row.name, fmt(tm_max - tm_min), fmt(rg.max_apl),
                fmt(rs.max_apl), fmt_percent(rs.max_apl / rg.max_apl - 1.0),
                fmt(rs.dev_apl, 3), fmt(contention.max_utilization(), 3)});
  }
  std::cout << "\nArbitrary MC sets (generalized nearest-MC rule, 8x8):\n";
  t2.print(std::cout);
  bench::save_table(t2, "ext_mc_placement_sets");

  std::cout << "\nReading: the balance gap persists — and *widens* — for "
               "non-corner placements: with\ncorner MCs the cache-worst "
               "tiles are at least memory-best, partially compensating;\n"
               "edge or center MCs remove that compensation, so Global's "
               "imbalance grows and SSS\ncloses 17-20% instead of 13%. The "
               "paper's corner layout is the *easiest* case for\nthe "
               "baseline, making its reported gains conservative.\n"
               "Asymmetric sets push further: the fewer and more lopsided "
               "the controllers, the\nlarger the TM spread Global leaves "
               "unbalanced and the bigger SSS's win.\n";
  return 0;
}
