// Extension: the migration/latency trade-off in dynamic remapping
// (paper Section IV.B proposes re-solving OBM on application change; this
// quantifies what the re-solve costs in thread migrations and what a
// migration penalty buys back).
//
// Scenario: the chip runs C1's solution; the workload shifts to C3
// (application churn). remap_balanced keeps SSS's per-application tile
// sets and trades within-application optimality against migrations via the
// penalty λ.
#include <iostream>

#include "bench_common.h"
#include "core/remap.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_migration — migrations vs latency in remapping",
                      "extension of paper Section IV.B dynamic scenario");

  const ObmProblem before = bench::standard_problem("C1");
  const ObmProblem after = bench::standard_problem("C3");
  SortSelectSwapMapper sss;
  const Mapping old_mapping = sss.map(before);

  std::cout << "\nWorkload change C1 -> C3; old mapping = SSS solution of "
               "C1.\n\n";
  TextTable t({"penalty λ [cycles]", "moved threads / 64", "max-APL",
               "dev-APL", "g-APL"});
  for (double lambda : {0.0, 0.5, 1.0, 2.0, 5.0, 20.0, 1000.0}) {
    const RemapResult r = remap_balanced(after, old_mapping, lambda);
    t.add_row({fmt(lambda, 1), std::to_string(r.moved_threads),
               fmt(r.report.max_apl, 3), fmt(r.report.dev_apl, 3),
               fmt(r.report.g_apl, 3)});
  }
  t.print(std::cout);

  // Reference: an oblivious full re-solve.
  const LatencyReport fresh = evaluate(after, sss.map(after));
  std::cout << "\nFresh SSS re-solve (ignores migrations): max-APL "
            << fmt(fresh.max_apl, 3) << ".\n"
            << "Reading: a modest penalty removes a large fraction of the "
               "migrations at almost no\nlatency cost, because the balance "
               "lives in the per-application *tile sets* while many\n"
               "within-application assignments are near-ties.\n";
  return 0;
}
