// Extension: scaling of quality and runtime with chip size, backing the
// paper's O(N^3) complexity analysis (Section IV.B) and its claim that the
// algorithm is fast enough for dynamic remapping. Meshes from 4x4 to 16x16
// with four equal applications.
#include <chrono>
#include <cmath>
#include <functional>
#include <iostream>

#include "bench_common.h"

namespace {

double ms_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace nocmap;
  bench::print_header("ext_scaling — quality & runtime vs chip size",
                      "extension of paper Section IV.B complexity analysis");

  const ParallelConfig parallel = bench::bench_parallel_config();
  std::cout << "Parallel SSS: " << parallel.resolved_threads()
            << " worker(s), deterministic\n";

  TextTable t({"mesh", "threads", "Global max-APL", "SSS max-APL",
               "SSS vs Global", "Global [ms]", "SSS [ms]", "SSS par [ms]",
               "speedup"});
  std::vector<bench::SpeedupRecord> speedups;

  double prev_sss_ms = 0.0;
  std::uint32_t prev_side = 0;
  for (std::uint32_t side : {4u, 6u, 8u, 10u, 12u, 16u}) {
    const Mesh mesh = Mesh::square(side);
    SynthesisOptions opt;
    opt.num_applications = 4;
    opt.threads_per_app = mesh.num_tiles() / 4;
    const ObmProblem problem(
        TileLatencyModel(mesh, LatencyParams{}),
        synthesize_workload(parsec_config("C1"), bench::kWorkloadSeed, opt));

    GlobalMapper global;
    SortSelectSwapMapper sss(
        SssOptions{.parallel = ParallelConfig::serial_config()});
    SortSelectSwapMapper sss_par(SssOptions{.parallel = parallel});
    Mapping mg, ms, mp;
    const double global_ms = ms_of([&] { mg = global.map(problem); });
    const double sss_ms = ms_of([&] { ms = sss.map(problem); });
    const double sss_par_ms = ms_of([&] { mp = sss_par.map(problem); });
    const LatencyReport rg = evaluate(problem, mg);
    const LatencyReport rs = evaluate(problem, ms);

    // Deterministic-mode contract, checked at bench scale too: the
    // parallel sweep must reproduce the serial mapping bit-for-bit.
    if (mp.thread_to_tile != ms.thread_to_tile) {
      std::cout << "  *** DETERMINISM VIOLATION at " << side << "x" << side
                << ": parallel SSS diverged from serial ***\n";
    }
    speedups.push_back({std::to_string(side) + "x" + std::to_string(side),
                        parallel.resolved_threads(), sss_ms, sss_par_ms});

    t.add_row({std::to_string(side) + "x" + std::to_string(side),
               std::to_string(mesh.num_tiles()), fmt(rg.max_apl),
               fmt(rs.max_apl), fmt_percent(rs.max_apl / rg.max_apl - 1.0),
               fmt(global_ms, 2), fmt(sss_ms, 2), fmt(sss_par_ms, 2),
               fmt(speedups.back().speedup(), 2) + "x"});

    if (prev_side != 0 && prev_sss_ms > 0.0) {
      const double size_ratio =
          static_cast<double>(side) / static_cast<double>(prev_side);
      const double time_ratio = sss_ms / prev_sss_ms;
      std::cout << "  growth " << prev_side << "->" << side
                << ": runtime x" << fmt(time_ratio, 1) << " for N x"
                << fmt(size_ratio * size_ratio, 1)
                << " (O(N^3) predicts x"
                << fmt(std::pow(size_ratio, 6.0), 1) << ")\n";
    }
    prev_sss_ms = sss_ms;
    prev_side = side;
  }
  t.print(std::cout);
  bench::save_table(t, "ext_scaling");
  bench::save_speedup_json("ext_scaling_speedup", speedups);

  std::cout << "\nEven at 16x16 (256 threads) SSS completes in well under a "
               "second, supporting the\npaper's dynamic-remapping use case "
               "(Section IV.B).\n";
  return 0;
}
