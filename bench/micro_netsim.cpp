// Microbenchmark of the cycle-level network simulator's hot path, emitting
// the committed perf baseline BENCH_netsim.json (gated by
// bench/compare_bench.py in CI's release leg, like the assignment kernel).
//
// Scenarios exercise the structure-of-arrays router engine from different
// angles:
//
//  * mesh8_c1_sss      — paper-scale 8x8 fabric, C1 workload under the SSS
//                        mapping: the configuration every figure bench
//                        replays, dominated by moderately loaded routers.
//  * mesh4_congested8x — a saturated 4x4 fabric (8x injection): dense
//                        occupancy masks, deep queues, worst-case switch
//                        allocation.
//  * mesh8_o1turn_vc4  — O1TURN with 4 VCs: widest per-port VC scan and
//                        split VC ranges.
//  * batch8_mixed      — run_simulation_batch over 8 mixed-load scenarios:
//                        the batch API the figure benches shard across
//                        workers (timed at 1 worker so the number tracks
//                        engine throughput, not core count).
//  * mesh64_parallel_w{1,2,4,8} — one 64x64 mesh (4096 tiles) stepped with
//                        1/2/4/8 spatial-partition workers (DESIGN.md §16):
//                        the within-simulation scaling sweep. Speedup is
//                        derived (w1/wN) and emitted alongside hw_threads
//                        so the CI gate can require scaling only on
//                        machines that actually have the cores.
//
// Each scenario reports best-of-3 end-to-end wall times (ms per run).
// Optional argv[1] is the output directory (default ".").
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/run_report.h"
#include "workload/synthesis.h"

namespace {

using namespace nocmap;

// Accumulated APLs; printed so the optimizer cannot drop the runs.
double g_sink = 0.0;

/// Best-of-3 single invocations (runs are milliseconds-scale).
template <typename F>
double ms_per_run(F&& f) {
  using clock = std::chrono::steady_clock;
  f();  // warm-up
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    f();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    best = std::min(best, ms);
  }
  return best;
}

ObmProblem small_problem() {
  const Mesh mesh = Mesh::square(4);
  std::vector<Application> apps(2);
  apps[0].name = "light";
  apps[0].threads.assign(8, ThreadProfile{2.0, 0.3});
  apps[1].name = "heavy";
  apps[1].threads.assign(8, ThreadProfile{8.0, 1.0});
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    Workload(std::move(apps)));
}

struct ScenarioResult {
  std::string scenario;
  double run_ms = 0.0;
};

/// 64x64 mesh (4096 tiles), four apps filling the chip — big enough that a
/// cycle has real parallel work for every row-band domain.
ObmProblem mesh64_problem() {
  const Mesh mesh = Mesh::square(64);
  SynthesisOptions opt;
  opt.num_applications = 4;
  opt.threads_per_app = mesh.num_tiles() / 4;
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), 20140519, opt));
}

void write_netsim_json(const std::filesystem::path& path,
                       const std::vector<ScenarioResult>& results,
                       double speedup_w8) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"micro_netsim\",\n"
     << "  \"unit\": \"ms_per_run\",\n"
     << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "    {\"scenario\": \"" << results[i].scenario
       << "\", \"run_ms\": " << results[i].run_ms << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  // Derived ratio + machine facts: informational (compare_bench gates only
  // *_ms timings; the speedup floor is enforced via --min-ratio on machines
  // with the cores — see .github/workflows/ci.yml).
  os << "  ],\n"
     << "  \"parallel\": {\n"
     << "    \"hw_threads\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "    \"mesh64_speedup_w8\": " << speedup_w8 << "\n"
     << "  }\n}\n";
  obs::RunReport::global().note_artifact(path.string());
  std::cout << "[json: " << path.string() << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : ".";
  bench::print_header("micro_netsim — router-engine hot-path timings",
                      "perf baseline layer (DESIGN.md §8, §12)");

  std::vector<ScenarioResult> results;
  auto record = [&](const std::string& scenario, double ms) {
    results.push_back({scenario, ms});
    obs::RunReport::global().set("netsim." + scenario + ".run_ms", ms);
    std::cout << scenario << ": " << ms << " ms/run\n";
  };

  const ObmProblem paper = bench::standard_problem("C1");
  SortSelectSwapMapper sss;
  const Mapping paper_map = sss.map(paper);
  const ObmProblem small = small_problem();
  const Mapping small_map = small.identity_mapping();

  {
    SimConfig cfg;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 5000;
    record("mesh8_c1_sss", ms_per_run([&] {
             g_sink += run_simulation(paper, paper_map, cfg).g_apl;
           }));
  }
  {
    SimConfig cfg;
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 5000;
    cfg.traffic.injection_scale = 8.0;
    record("mesh4_congested8x", ms_per_run([&] {
             g_sink += run_simulation(small, small_map, cfg).g_apl;
           }));
  }
  {
    SimConfig cfg;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 5000;
    cfg.network.routing = RoutingAlgo::kO1Turn;
    cfg.network.vcs_per_port = 4;
    cfg.traffic.injection_scale = 2.0;
    record("mesh8_o1turn_vc4", ms_per_run([&] {
             g_sink += run_simulation(paper, paper_map, cfg).g_apl;
           }));
  }
  {
    std::vector<BatchScenario> batch;
    for (std::size_t i = 0; i < 8; ++i) {
      SimConfig cfg;
      cfg.warmup_cycles = 500;
      cfg.measure_cycles = 2000;
      cfg.traffic.injection_scale = 1.0 + static_cast<double>(i);
      batch.push_back({&small, &small_map, cfg});
    }
    record("batch8_mixed", ms_per_run([&] {
             const auto out =
                 run_simulation_batch(batch,
                                      ParallelConfig::serial_config());
             for (const SimResult& r : out) g_sink += r.g_apl;
           }));
  }

  // --- Within-simulation scaling: one 64x64 mesh, 1/2/4/8 partitions.
  double mesh64_w1 = 0.0;
  double mesh64_w8 = 0.0;
  {
    const ObmProblem big = mesh64_problem();
    const Mapping big_map = big.identity_mapping();
    SimConfig cfg;
    cfg.warmup_cycles = 100;
    cfg.measure_cycles = 500;
    for (const std::size_t workers : {1, 2, 4, 8}) {
      cfg.sim_workers = workers;
      const double ms = ms_per_run(
          [&] { g_sink += run_simulation(big, big_map, cfg).g_apl; });
      record("mesh64_parallel_w" + std::to_string(workers), ms);
      obs::RunReport::global().set(
          "netsim.parallel.mesh64.w" + std::to_string(workers) + ".run_ms",
          ms);
      if (workers == 1) mesh64_w1 = ms;
      if (workers == 8) mesh64_w8 = ms;
    }
  }
  const double speedup_w8 = mesh64_w8 > 0.0 ? mesh64_w1 / mesh64_w8 : 0.0;
  obs::RunReport::global().set("netsim.parallel.mesh64.speedup_w8",
                               speedup_w8);
  obs::RunReport::global().set(
      "netsim.parallel.hw_threads",
      static_cast<double>(std::thread::hardware_concurrency()));
  std::cout << "mesh64 speedup at 8 workers: " << speedup_w8 << " ("
            << std::thread::hardware_concurrency() << " hw threads)\n";

  write_netsim_json(out_dir / "BENCH_netsim.json", results, speedup_w8);
  std::cout << "(checksum " << g_sink << ")\n";
  return 0;
}
