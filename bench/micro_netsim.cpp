// Microbenchmark of the cycle-level network simulator's hot path, emitting
// the committed perf baseline BENCH_netsim.json (gated by
// bench/compare_bench.py in CI's release leg, like the assignment kernel).
//
// Scenarios exercise the structure-of-arrays router engine from different
// angles:
//
//  * mesh8_c1_sss      — paper-scale 8x8 fabric, C1 workload under the SSS
//                        mapping: the configuration every figure bench
//                        replays, dominated by moderately loaded routers.
//  * mesh4_congested8x — a saturated 4x4 fabric (8x injection): dense
//                        occupancy masks, deep queues, worst-case switch
//                        allocation.
//  * mesh8_o1turn_vc4  — O1TURN with 4 VCs: widest per-port VC scan and
//                        split VC ranges.
//  * batch8_mixed      — run_simulation_batch over 8 mixed-load scenarios:
//                        the batch API the figure benches shard across
//                        workers (timed at 1 worker so the number tracks
//                        engine throughput, not core count).
//
// Each scenario reports best-of-3 end-to-end wall times (ms per run).
// Optional argv[1] is the output directory (default ".").
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/run_report.h"

namespace {

using namespace nocmap;

// Accumulated APLs; printed so the optimizer cannot drop the runs.
double g_sink = 0.0;

/// Best-of-3 single invocations (runs are milliseconds-scale).
template <typename F>
double ms_per_run(F&& f) {
  using clock = std::chrono::steady_clock;
  f();  // warm-up
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    f();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    best = std::min(best, ms);
  }
  return best;
}

ObmProblem small_problem() {
  const Mesh mesh = Mesh::square(4);
  std::vector<Application> apps(2);
  apps[0].name = "light";
  apps[0].threads.assign(8, ThreadProfile{2.0, 0.3});
  apps[1].name = "heavy";
  apps[1].threads.assign(8, ThreadProfile{8.0, 1.0});
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    Workload(std::move(apps)));
}

struct ScenarioResult {
  std::string scenario;
  double run_ms = 0.0;
};

void write_netsim_json(const std::filesystem::path& path,
                       const std::vector<ScenarioResult>& results) {
  std::ofstream os(path);
  os << "{\n"
     << "  \"bench\": \"micro_netsim\",\n"
     << "  \"unit\": \"ms_per_run\",\n"
     << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "    {\"scenario\": \"" << results[i].scenario
       << "\", \"run_ms\": " << results[i].run_ms << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  obs::RunReport::global().note_artifact(path.string());
  std::cout << "[json: " << path.string() << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : ".";
  bench::print_header("micro_netsim — router-engine hot-path timings",
                      "perf baseline layer (DESIGN.md §8, §12)");

  std::vector<ScenarioResult> results;
  auto record = [&](const std::string& scenario, double ms) {
    results.push_back({scenario, ms});
    obs::RunReport::global().set("netsim." + scenario + ".run_ms", ms);
    std::cout << scenario << ": " << ms << " ms/run\n";
  };

  const ObmProblem paper = bench::standard_problem("C1");
  SortSelectSwapMapper sss;
  const Mapping paper_map = sss.map(paper);
  const ObmProblem small = small_problem();
  const Mapping small_map = small.identity_mapping();

  {
    SimConfig cfg;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 5000;
    record("mesh8_c1_sss", ms_per_run([&] {
             g_sink += run_simulation(paper, paper_map, cfg).g_apl;
           }));
  }
  {
    SimConfig cfg;
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 5000;
    cfg.traffic.injection_scale = 8.0;
    record("mesh4_congested8x", ms_per_run([&] {
             g_sink += run_simulation(small, small_map, cfg).g_apl;
           }));
  }
  {
    SimConfig cfg;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 5000;
    cfg.network.routing = RoutingAlgo::kO1Turn;
    cfg.network.vcs_per_port = 4;
    cfg.traffic.injection_scale = 2.0;
    record("mesh8_o1turn_vc4", ms_per_run([&] {
             g_sink += run_simulation(paper, paper_map, cfg).g_apl;
           }));
  }
  {
    std::vector<BatchScenario> batch;
    for (std::size_t i = 0; i < 8; ++i) {
      SimConfig cfg;
      cfg.warmup_cycles = 500;
      cfg.measure_cycles = 2000;
      cfg.traffic.injection_scale = 1.0 + static_cast<double>(i);
      batch.push_back({&small, &small_map, cfg});
    }
    record("batch8_mixed", ms_per_run([&] {
             const auto out =
                 run_simulation_batch(batch,
                                      ParallelConfig::serial_config());
             for (const SimResult& r : out) g_sink += r.g_apl;
           }));
  }

  write_netsim_json(out_dir / "BENCH_netsim.json", results);
  std::cout << "(checksum " << g_sink << ")\n";
  return 0;
}
