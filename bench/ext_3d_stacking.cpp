// Extension: does die stacking ease or worsen the balance problem? A
// 256-tile chip can be built flat (16x16 planar mesh) or stacked (4 layers
// of 8x8 with TSV links). Stacking shrinks the network diameter — average
// distances drop, so TC(k) and its spread both fall — but the compression
// depends on the vertical hop cost. This bench compares the paper's
// headline Global-vs-SSS experiment across the two organizations at a
// matched tile count, sweeping the TSV hop cost on the stacked side.
#include <iostream>

#include "bench_common.h"
#include "core/contention.h"
#include "obs/run_report.h"

namespace {

/// TC and TM spreads (max - min over tiles) of a latency model.
struct Spreads {
  double tc = 0.0;
  double tm = 0.0;
};

Spreads spreads_of(const nocmap::TileLatencyModel& chip) {
  using nocmap::TileId;
  double tc_min = chip.tc(0), tc_max = chip.tc(0);
  double tm_min = chip.tm(0), tm_max = chip.tm(0);
  for (TileId k = 1; k < chip.mesh().num_tiles(); ++k) {
    tc_min = std::min(tc_min, chip.tc(k));
    tc_max = std::max(tc_max, chip.tc(k));
    tm_min = std::min(tm_min, chip.tm(k));
    tm_max = std::max(tm_max, chip.tm(k));
  }
  return {tc_max - tc_min, tm_max - tm_min};
}

}  // namespace

int main() {
  using namespace nocmap;
  bench::print_header("ext_3d_stacking — 256 tiles, flat vs stacked",
                      "3D extension of the paper's planar-mesh evaluation");

  SynthesisOptions opt;
  opt.num_applications = 4;
  opt.threads_per_app = 64;
  const Workload workload =
      synthesize_workload(parsec_config("C1"), bench::kWorkloadSeed, opt);

  struct Chip {
    const char* name;
    const char* key;  ///< RunReport field stem
    Mesh mesh;
  };
  const std::vector<Chip> chips{
      {"16x16 planar", "flat",
       Mesh::square_with_placement(16, McPlacement::kCorners)},
      {"4x8x8 tsv=0.5", "stack_tsv05",
       Mesh::stacked_with_placement(4, 8, McPlacement::kCorners, 0.5)},
      {"4x8x8 tsv=1.0", "stack_tsv1",
       Mesh::stacked_with_placement(4, 8, McPlacement::kCorners, 1.0)},
      {"4x8x8 tsv=2.0", "stack_tsv2",
       Mesh::stacked_with_placement(4, 8, McPlacement::kCorners, 2.0)},
  };

  TextTable t({"chip", "TC spread", "TM spread", "Global max-APL",
               "SSS max-APL", "gap", "SSS dev-APL", "max link util (SSS)"});
  for (const Chip& chip : chips) {
    const TileLatencyModel model(chip.mesh, LatencyParams{});
    const Spreads s = spreads_of(model);

    const ObmProblem problem(model, workload);
    GlobalMapper global;
    SortSelectSwapMapper sss;
    const LatencyReport rg = evaluate(problem, global.map(problem));
    const Mapping ms = sss.map(problem);
    const LatencyReport rs = evaluate(problem, ms);
    const ContentionModel contention(problem, ms);

    t.add_row({chip.name, fmt(s.tc), fmt(s.tm), fmt(rg.max_apl),
               fmt(rs.max_apl), fmt_percent(rs.max_apl / rg.max_apl - 1.0),
               fmt(rs.dev_apl, 3), fmt(contention.max_utilization(), 3)});

    const std::string stem = std::string("ext3d.") + chip.key;
    obs::RunReport& report = obs::RunReport::global();
    report.set(stem + ".tc_spread", s.tc);
    report.set(stem + ".global_max_apl", rg.max_apl);
    report.set(stem + ".sss_max_apl", rs.max_apl);
    report.set(stem + ".gap", rs.max_apl / rg.max_apl - 1.0);
  }
  t.print(std::cout);
  bench::save_table(t, "ext_3d_stacking");

  std::cout << "\nReading: stacking compresses the network — at tsv=1 the "
               "4x8x8 stack's latency\nlevels and spreads sit well below "
               "the 16x16 plane's, so every mapper improves;\nbut the "
               "*relative* Global-vs-SSS gap survives, because the base-die "
               "MCs still\nbreak symmetry and TC still varies across the "
               "stack. Costlier TSVs (tsv=2) push\nthe stack back toward "
               "planar behaviour; cheap TSVs (tsv=0.5) flatten distances\n"
               "and shrink what balancing can win. Stacking is a latency "
               "lever, not a\nsubstitute for balanced mapping.\n";
  return 0;
}
