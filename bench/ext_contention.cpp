// Extension: first-principles queuing. The paper justifies a small constant
// td_q empirically; the ContentionModel derives per-link utilization from
// the mapping and rates, predicts td_q via M/D/1, and predicts the
// saturation injection scale. This bench validates both against the
// cycle-level simulator and asks a question the paper leaves open: does
// APL balancing (SSS) also balance *link* load, or does it create hotspots
// Global avoids?
#include <iostream>

#include "bench_common.h"
#include "core/contention.h"
#include "netsim/sim.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_contention — analytic queuing vs simulation",
                      "extension of paper Section II.C (td_q model)");

  const ObmProblem problem = bench::standard_problem("C1");
  SortSelectSwapMapper sss;
  GlobalMapper global;
  const Mapping ms = sss.map(problem);
  const Mapping mg = global.map(problem);

  std::cout << "\n1. Predicted vs measured per-hop queuing td_q (SSS "
               "mapping of C1):\n";
  const std::vector<double> scales = {0.5, 1.0, 2.0, 4.0};
  std::vector<BatchScenario> batch;
  for (double scale : scales) {
    SimConfig scfg;
    scfg.warmup_cycles = 2000;
    scfg.measure_cycles = 20000;
    scfg.traffic.injection_scale = scale;
    batch.push_back({&problem, &ms, scfg});
  }
  const std::vector<SimResult> sims = bench::simulate_batch(batch);

  TextTable tdq({"scale", "predicted td_q", "measured td_q",
                 "max link util"});
  for (std::size_t i = 0; i < scales.size(); ++i) {
    ContentionConfig ccfg;
    ccfg.injection_scale = scales[i];
    const ContentionModel model(problem, ms, ccfg);
    tdq.add_row({fmt(scales[i], 1), fmt(model.predicted_td_q(), 3),
                 fmt(sims[i].activity.avg_queue_wait(), 3),
                 fmt(model.max_utilization(), 3)});
  }
  tdq.print(std::cout);

  const ContentionModel at_one(problem, ms);
  std::cout << "\nPredicted saturation injection scale (hottest link at "
               "capacity): "
            << fmt(at_one.saturation_scale(), 2)
            << "\n(compare the knee in ext_load_sweep between scale 4 and "
               "8).\n";

  std::cout << "\n2. Link-load profile under the two mappings:\n";
  TextTable links({"mapping", "max link util", "mean link util",
                   "predicted td_q"});
  for (const auto& [name, mapping] :
       {std::pair<const char*, const Mapping&>{"Global", mg},
        std::pair<const char*, const Mapping&>{"SSS", ms}}) {
    const ContentionModel model(problem, mapping);
    links.add_row({name, fmt(model.max_utilization(), 4),
                   fmt(model.mean_utilization(), 4),
                   fmt(model.predicted_td_q(), 4)});
  }
  links.print(std::cout);
  std::cout << "\nReading: balancing per-application APLs does not "
               "materially change the fabric's\nlink-load profile — mean "
               "utilization is mapping-invariant up to path-length\n"
               "differences, and the hottest links (around the corner MCs) "
               "are workload-, not\nmapping-, determined at these loads.\n";
  return 0;
}
