// Shared scaffolding for the reproduction bench binaries: canonical problem
// construction (8x8 mesh, default latency parameters, fixed workload seeds)
// and small printing helpers, so every table/figure is generated from the
// same experimental setup.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/annealing_mapper.h"
#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/parallel.h"
#include "core/random_mapper.h"
#include "core/sss_mapper.h"
#include "netsim/sim.h"
#include "util/table.h"
#include "workload/synthesis.h"

namespace nocmap::bench {

/// Workload synthesis seed shared by all benches so every figure/table is
/// computed on the same eight configurations.
inline constexpr std::uint64_t kWorkloadSeed = 20140519;  // IPDPS'14 week

/// Algorithm seeds (MC / SA) for the headline tables.
inline constexpr std::uint64_t kAlgorithmSeed = 7;

/// Paper evaluation defaults: MC trial count and SA iteration budget chosen
/// so SA gets runtime comparable to the paper's setup (both are search
/// baselines given more time than SSS).
inline constexpr std::size_t kMcTrials = 10000;
inline constexpr std::size_t kSaIterations = 50000;

/// The canonical 8x8 problem for one Table-3 configuration.
ObmProblem standard_problem(const ConfigSpec& spec);
ObmProblem standard_problem(const std::string& config_name);

/// Freshly constructed mappers with the bench seeds, in paper order
/// {Global, MC, SA, SSS}. The execution policy is deterministic, so any
/// `parallel` value produces the same tables as the serial default — only
/// the wall-clock changes.
std::vector<std::unique_ptr<Mapper>> paper_mappers(
    ParallelConfig parallel = ParallelConfig::serial_config());

/// The execution policy for bench binaries: deterministic, with the worker
/// count taken from the NOCMAP_THREADS environment variable (unset or 0
/// means all hardware threads).
ParallelConfig bench_parallel_config();

/// Runs a scenario batch through run_simulation_batch under the bench
/// execution policy. Results are slot-ordered and bit-identical at any
/// NOCMAP_THREADS setting; every bench that needs more than one simulation
/// goes through this so independent scenarios shard across workers.
std::vector<SimResult> simulate_batch(
    const std::vector<BatchScenario>& scenarios);

/// One serial-vs-parallel wall-clock measurement of a bench scenario.
struct SpeedupRecord {
  std::string scenario;
  std::size_t threads = 0;  ///< resolved worker count of the parallel run
  double serial_ms = 0.0;
  double parallel_ms = 0.0;

  double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

/// Persists speedup records as bench_results/<name>.json (with the derived
/// speedup included per record) and announces the path. The JSON keeps a
/// durable machine-readable trace of how the parallel engine scales on the
/// machine the bench ran on.
void save_speedup_json(const std::string& name,
                       const std::vector<SpeedupRecord>& records);

/// Prints the standard bench header (binary purpose + setup line).
void print_header(const std::string& title, const std::string& paper_ref);

/// Prints an application-ID grid (1-based, paper Figure 4/8 style).
void print_mapping_grid(const ObmProblem& problem, const Mapping& mapping,
                        std::ostream& os = std::cout);

/// Persists a result table as bench_results/<name>.csv (directory created
/// on demand) and announces the path, so figures can be re-plotted without
/// scraping stdout.
void save_table(const TextTable& table, const std::string& name);

}  // namespace nocmap::bench
