// Figure 5 reproduction: why max-APL is the right objective.
// On the paper's 4x4 / 16-thread example (rates .1/.2/.3/.4 per app,
// td_r=3, td_w=1, td_s=1), the optimal mapping achieves APL = 10.3375 for
// every application, while a mapping that is *perfect* under the standard-
// deviation or min-to-max objectives (dev = 0, ratio = 1) leaves every
// application equally bad at 11.5375 cycles.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header("fig05_metric_pathology — objective-metric comparison",
                      "paper Figure 5 + Section III.A");

  const Mesh mesh = Mesh::square(4);
  const LatencyParams params{.td_r = 3.0, .td_w = 1.0, .td_q = 0.0,
                             .td_s = 1.0};
  std::vector<Application> apps(4);
  for (std::size_t a = 0; a < 4; ++a) {
    apps[a].name = "app" + std::to_string(a + 1);
    apps[a].threads = {{0.1, 0.0}, {0.2, 0.0}, {0.3, 0.0}, {0.4, 0.0}};
  }
  const ObmProblem problem(TileLatencyModel(mesh, params),
                           Workload(std::move(apps)));

  // (a) optimal mapping (Global is exact here and happens to balance too).
  GlobalMapper global;
  const LatencyReport optimal = evaluate(problem, global.map(problem));

  // (b) "equally bad" mapping: per application one corner/center/2 edges,
  // but with the hottest thread on the corner.
  const std::vector<TileId> corners{mesh.tile_at(0, 0), mesh.tile_at(0, 3),
                                    mesh.tile_at(3, 0), mesh.tile_at(3, 3)};
  const std::vector<TileId> centers{mesh.tile_at(1, 1), mesh.tile_at(1, 2),
                                    mesh.tile_at(2, 1), mesh.tile_at(2, 2)};
  const std::vector<TileId> edges{mesh.tile_at(0, 1), mesh.tile_at(0, 2),
                                  mesh.tile_at(1, 0), mesh.tile_at(1, 3),
                                  mesh.tile_at(2, 0), mesh.tile_at(2, 3),
                                  mesh.tile_at(3, 1), mesh.tile_at(3, 2)};
  Mapping bad;
  bad.thread_to_tile.resize(16);
  for (std::size_t a = 0; a < 4; ++a) {
    bad.thread_to_tile[a * 4 + 0] = centers[a];
    bad.thread_to_tile[a * 4 + 1] = edges[a * 2];
    bad.thread_to_tile[a * 4 + 2] = edges[a * 2 + 1];
    bad.thread_to_tile[a * 4 + 3] = corners[a];
  }
  const LatencyReport equally_bad = evaluate(problem, bad);

  // SSS on the same instance.
  SortSelectSwapMapper sss;
  const LatencyReport sss_report = evaluate(problem, sss.map(problem));

  TextTable t({"mapping", "APL app1..app4 [cycles]", "dev-APL", "min/max",
               "max-APL"});
  auto row = [&](const std::string& name, const LatencyReport& r) {
    std::string apls;
    for (std::size_t a = 0; a < 4; ++a) {
      apls += fmt(r.apl[a], 4) + (a < 3 ? " " : "");
    }
    t.add_row({name, apls, fmt(r.dev_apl, 4), fmt(r.min_to_max, 4),
               fmt(r.max_apl, 4)});
  };
  row("(a) optimal        ", optimal);
  row("(b) equally bad    ", equally_bad);
  row("SSS on this problem", sss_report);
  t.print(std::cout);

  std::cout << "\nPaper anchors: (a) = 10.3375 for all apps; (b) = 11.5375 "
               "for all apps.\nBoth (a) and (b) are *optimal* under dev-APL "
               "(0) and min-to-max (1) —\nonly max-APL distinguishes them, "
               "which is why it is the OBM objective.\n";
  return 0;
}
