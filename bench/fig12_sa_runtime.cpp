// Figure 12 reproduction: simulated-annealing solution quality as a
// function of allowed runtime, normalized to the runtime of SSS.
// Paper shape: SA's max-APL falls with runtime but with diminishing
// returns, and SSS still wins even when SA is given 100x its runtime.
#include <algorithm>
#include <chrono>
#include <numeric>
#include <iostream>

#include "bench_common.h"

namespace {

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace

int main() {
  using namespace nocmap;
  bench::print_header("fig12_sa_runtime — SA quality vs runtime",
                      "paper Figure 12");

  const auto configs = parsec_table3_configs();

  // 1. SSS runtime and quality per configuration.
  double sss_seconds = 0.0;
  std::vector<double> sss_max_apl(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const ObmProblem problem = bench::standard_problem(configs[c]);
    SortSelectSwapMapper sss;
    Mapping m;
    sss_seconds += seconds_of([&] { m = sss.map(problem); });
    sss_max_apl[c] = evaluate(problem, m).max_apl;
  }
  sss_seconds /= static_cast<double>(configs.size());

  // 2. Calibrate SA iteration throughput.
  const ObmProblem cal_problem = bench::standard_problem(configs[0]);
  constexpr std::size_t kCalIters = 100000;
  AnnealingMapper calibrator(
      AnnealingParams{.iterations = kCalIters, .seed = 1});
  const double cal_seconds =
      seconds_of([&] { (void)calibrator.map(cal_problem); });
  const double iters_per_second =
      static_cast<double>(kCalIters) / std::max(cal_seconds, 1e-6);

  // 3. Sweep runtime ratios.
  const std::vector<double> ratios{0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
                                   100.0, 300.0, 1000.0};
  TextTable t({"SA runtime / SSS runtime", "SA iterations",
               "SA max-APL (avg)", "normalized to SSS"});
  const double sss_avg =
      std::accumulate(sss_max_apl.begin(), sss_max_apl.end(), 0.0) /
      static_cast<double>(configs.size());

  for (double ratio : ratios) {
    const auto iterations = static_cast<std::size_t>(std::clamp(
        ratio * sss_seconds * iters_per_second, 50.0, 5.0e6));
    // Per-configuration chains are independent pure units; shard them
    // across the deterministic runner (same results at any worker count).
    std::vector<double> results(configs.size(), 0.0);
    ParallelTrialRunner runner(bench::bench_parallel_config());
    runner.for_each(configs.size(), [&](std::size_t c) {
      const ObmProblem problem = bench::standard_problem(configs[c]);
      AnnealingMapper sa(AnnealingParams{
          .iterations = iterations, .seed = bench::kAlgorithmSeed + c});
      results[c] = evaluate(problem, sa.map(problem)).max_apl;
    });
    const double sa_avg =
        std::accumulate(results.begin(), results.end(), 0.0) /
        static_cast<double>(configs.size());
    t.add_row({fmt(ratio, 1), std::to_string(iterations), fmt(sa_avg, 3),
               fmt(sa_avg / sss_avg, 4)});
  }
  t.print(std::cout);

  std::cout << "\nSSS reference: avg max-APL " << fmt(sss_avg, 3)
            << " in ~" << fmt(sss_seconds * 1e3, 2)
            << " ms per configuration.\n"
            << "Paper shape: diminishing returns; values above 1.0 mean SA "
               "is still behind SSS at that runtime budget.\n";
  return 0;
}
