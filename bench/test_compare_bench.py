"""Tests for the compare_bench.py perf gate (run with pytest or unittest).

Covers the metric flattening and every gate outcome — pass, timing
regression, removed-metric failure, added-metric tolerance — including the
mismatched-metric-set case that used to crash the script.
"""

import io
import unittest

import compare_bench


def run_compare(baseline, current, tolerance=0.20):
    out = io.StringIO()
    code = compare_bench.compare(baseline, current, tolerance, out=out)
    return code, out.getvalue()


class CollectMetricsTest(unittest.TestCase):
    def test_flattens_labeled_records(self):
        doc = {"results": [{"n": 16, "solve_ms": 1.5, "iterations": 3}]}
        self.assertEqual(compare_bench.collect_metrics(doc),
                         {"n=16.solve_ms": 1.5})

    def test_ignores_non_timing_leaves(self):
        doc = {"mapper": "global", "g_apl": 3.2, "map_ms": 2.0}
        self.assertEqual(compare_bench.collect_metrics(doc),
                         {"mapper=global.map_ms": 2.0})

    def test_nested_lists_get_index_paths(self):
        doc = [{"solve_ms": 1.0}, {"solve_ms": 2.0}]
        self.assertEqual(compare_bench.collect_metrics(doc),
                         {"[0].solve_ms": 1.0, "[1].solve_ms": 2.0})


class CompareTest(unittest.TestCase):
    def test_within_tolerance_passes(self):
        code, out = run_compare({"a.x_ms": 10.0}, {"a.x_ms": 11.0})
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_regression_fails(self):
        code, out = run_compare({"a.x_ms": 10.0}, {"a.x_ms": 13.0})
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)

    def test_faster_is_never_flagged(self):
        code, _ = run_compare({"a.x_ms": 10.0}, {"a.x_ms": 1.0})
        self.assertEqual(code, 0)

    def test_removed_metric_fails_gate(self):
        code, out = run_compare({"a.x_ms": 10.0, "b.y_ms": 5.0},
                                {"a.x_ms": 10.0})
        self.assertEqual(code, 1)
        self.assertIn("REMOVED", out)
        self.assertIn("b.y_ms", out)

    def test_added_metric_is_informational(self):
        code, out = run_compare({"a.x_ms": 10.0},
                                {"a.x_ms": 10.0, "new.z_ms": 7.0})
        self.assertEqual(code, 0)
        self.assertIn("new.z_ms", out)
        self.assertIn("not gated", out)

    def test_fully_disjoint_sets_do_not_crash(self):
        code, out = run_compare({"a.x_ms": 10.0}, {"b.y_ms": 5.0})
        self.assertEqual(code, 1)
        self.assertIn("a.x_ms", out)
        self.assertIn("b.y_ms", out)

    def test_empty_baseline_is_usage_error(self):
        code, _ = run_compare({}, {"a.x_ms": 1.0})
        self.assertEqual(code, 2)

    def test_zero_baseline_value_does_not_divide_by_zero(self):
        code, _ = run_compare({"a.x_ms": 0.0}, {"a.x_ms": 1.0})
        self.assertEqual(code, 1)

    def test_failure_lines_carry_baseline_and_candidate_values(self):
        # Sub-0.05 metrics used to print as "0.0" on failure lines; the
        # actual values must survive into the FAIL summary.
        code, out = run_compare({"a.x_ms": 0.012345}, {"a.x_ms": 0.024690})
        self.assertEqual(code, 1)
        self.assertIn("baseline 0.012345", out)
        self.assertIn("measured 0.02469", out)
        self.assertIn("2.00x", out)

    def test_removed_failure_line_carries_baseline_value(self):
        code, out = run_compare({"a.x_ms": 10.0, "b.y_ms": 0.00125},
                                {"a.x_ms": 10.0})
        self.assertEqual(code, 1)
        self.assertIn("b.y_ms (baseline 0.00125)", out)


class CheckRatiosTest(unittest.TestCase):
    """--min-ratio floors (the partitioned-netsim speedup gate)."""

    CURRENT = {"scenario=w1.run_ms": 12.0, "scenario=w8.run_ms": 3.0}

    def run_ratios(self, specs, current=None):
        out = io.StringIO()
        code = compare_bench.check_ratios(
            self.CURRENT if current is None else current, specs, out=out)
        return code, out.getvalue()

    def test_floor_met_passes(self):
        code, out = self.run_ratios(
            ["scenario=w1.run_ms:scenario=w8.run_ms:3.0"])
        self.assertEqual(code, 0)
        self.assertIn("ratio OK", out)

    def test_floor_missed_fails(self):
        code, out = self.run_ratios(
            ["scenario=w1.run_ms:scenario=w8.run_ms:5.0"])
        self.assertEqual(code, 1)
        self.assertIn("FAIL", out)
        self.assertIn("< required 5", out)

    def test_missing_metric_fails_not_crashes(self):
        code, out = self.run_ratios(["scenario=w1.run_ms:absent.run_ms:2.0"])
        self.assertEqual(code, 1)
        self.assertIn("missing", out)

    def test_malformed_spec_is_usage_error(self):
        code, _ = self.run_ratios(["no-colons-here"])
        self.assertEqual(code, 2)
        code, _ = self.run_ratios(["a:b:not-a-number"])
        self.assertEqual(code, 2)

    def test_zero_denominator_passes_as_infinite_speedup(self):
        code, _ = self.run_ratios(
            ["scenario=w1.run_ms:scenario=w8.run_ms:3.0"],
            current={"scenario=w1.run_ms": 1.0, "scenario=w8.run_ms": 0.0})
        self.assertEqual(code, 0)

    def test_no_specs_is_a_pass(self):
        code, _ = self.run_ratios([])
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
