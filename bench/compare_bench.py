#!/usr/bin/env python3
"""Perf-regression gate for the committed BENCH_*.json baselines.

Compares a freshly generated benchmark JSON against the committed baseline
and exits non-zero if any timing metric regressed by more than the allowed
tolerance (default 20%). Lower is better for every compared metric; derived
ratio fields (e.g. warm_speedup_vs_legacy) are reported but never gate,
since they are redundant with the timings they are computed from.

Mismatched metric sets are reported explicitly rather than crashing or
passing silently: metrics present in the baseline but missing from the
current run ("removed") fail the gate — a vanished metric usually means a
renamed field or a silently skipped benchmark case — while metrics only in
the current run ("added") are informational, so a new benchmark case can
land before its baseline is regenerated.

A --min-ratio option additionally enforces ratio floors *within the current
run* (independent of the baseline): NUM_KEY:DEN_KEY:FLOOR fails the gate
when current[NUM_KEY] / current[DEN_KEY] < FLOOR. This is how CI gates the
partitioned-netsim speedup (DESIGN.md §16): the w1/w8 wall-time ratio of
the mesh64 scaling sweep must clear the floor on runners that have the
cores — the caller guards the flag with an nproc check, since a speedup
floor is meaningless on a 1-core machine.

Usage:
    python3 bench/compare_bench.py \
        --baseline BENCH_assignment.json \
        --current  build/BENCH_assignment.json \
        [--tolerance 0.20] \
        [--min-ratio "scenario=a.run_ms:scenario=b.run_ms:3.0"]
"""

import argparse
import json
import sys

# A metric is a numeric JSON leaf whose key carries a time unit suffix.
_METRIC_SUFFIXES = ("_ns", "_us", "_ms", "ms_per_map", "ns_per_solve")


def _is_metric(key, value):
    return isinstance(value, (int, float)) and key.endswith(_METRIC_SUFFIXES)


def _label(node, fallback):
    """Human identifier for a record: its 'n'/'mapper'/'name' field."""
    for key in ("n", "mapper", "name", "scenario"):
        if isinstance(node, dict) and key in node:
            return f"{key}={node[key]}"
    return fallback


def collect_metrics(node, path="", out=None):
    """Flattens {path: value} for every timing leaf in the document."""
    if out is None:
        out = {}
    if isinstance(node, dict):
        prefix = _label(node, path)
        for key, value in node.items():
            if _is_metric(key, value):
                out[f"{prefix}.{key}"] = float(value)
            else:
                collect_metrics(value, f"{prefix}.{key}", out)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            collect_metrics(item, f"{path}[{i}]", out)
    return out


def compare(baseline, current, tolerance, out=sys.stdout):
    """Compares two flattened metric dicts; returns the process exit code.

    Gate failures: a common metric slower than baseline * (1 + tolerance),
    or a baseline metric absent from the current run. Metrics new in the
    current run are listed but never fail the gate.
    """
    if not baseline:
        print("error: no timing metrics found in the baseline", file=out)
        return 2

    removed = sorted(k for k in baseline if k not in current)
    added = sorted(k for k in current if k not in baseline)
    common = sorted(k for k in baseline if k in current)

    regressions = []
    width = max(len(k) for k in baseline)
    for key in common:
        old, new = baseline[key], current[key]
        ratio = new / old if old > 0 else float("inf")
        flag = ""
        if new > old * (1.0 + tolerance):
            regressions.append((key, old, new))
            flag = "  REGRESSED"
        print(f"{key:<{width}}  {old:>12.6g}  ->  {new:>12.6g}"
              f"  ({ratio:5.2f}x){flag}", file=out)
    for key in removed:
        print(f"{key:<{width}}  {baseline[key]:>12.6g}  ->  REMOVED",
              file=out)
    if added:
        print(f"\nnote: {len(added)} metric(s) only in the current run "
              "(no baseline yet, not gated):", file=out)
        for key in added:
            print(f"  {key}: {current[key]:.6g}", file=out)

    if regressions or removed:
        # Failure lines carry the actual baseline and candidate values in
        # full significant-digit precision — a fixed one-decimal format used
        # to render sub-0.05 metrics as "0.0, +30.0%", leaving nothing to
        # act on in a CI log.
        print(f"\nFAIL:", file=out)
        if regressions:
            print(f"  {len(regressions)} metric(s) regressed beyond "
                  f"{tolerance:.0%} of the committed baseline:", file=out)
            for key, old, new in regressions:
                ratio = new / old if old > 0 else float("inf")
                delta = 100.0 * (new - old) / old if old > 0 else float("inf")
                print(f"    {key}: baseline {old:.6g}, measured {new:.6g}, "
                      f"{ratio:.2f}x ({delta:+.1f}%)", file=out)
        if removed:
            print(f"  {len(removed)} baseline metric(s) missing from the "
                  "current run (renamed field or skipped case?):", file=out)
            for key in removed:
                print(f"    {key} (baseline {baseline[key]:.6g})", file=out)
        return 1
    print(f"\nOK: all {len(common)} common metrics within {tolerance:.0%} "
          "of the committed baseline.", file=out)
    return 0


def check_ratios(current, specs, out=sys.stdout):
    """Enforces NUM_KEY:DEN_KEY:FLOOR ratio floors on the current run.

    Each spec requires current[NUM_KEY] / current[DEN_KEY] >= FLOOR (e.g. a
    serial-over-parallel wall-time ratio — a speedup floor). Returns 0 when
    every floor holds, 1 on a failed or unevaluable floor, 2 on a malformed
    spec.
    """
    code = 0
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            print(f"error: malformed --min-ratio spec {spec!r} "
                  "(want NUM_KEY:DEN_KEY:FLOOR)", file=out)
            return 2
        num_key, den_key, floor_text = parts
        try:
            floor = float(floor_text)
        except ValueError:
            print(f"error: non-numeric floor in --min-ratio spec {spec!r}",
                  file=out)
            return 2
        missing = [k for k in (num_key, den_key) if k not in current]
        if missing:
            print(f"FAIL: --min-ratio {spec}: metric(s) missing from the "
                  f"current run: {', '.join(missing)}", file=out)
            code = max(code, 1)
            continue
        den = current[den_key]
        ratio = current[num_key] / den if den > 0 else float("inf")
        if ratio < floor:
            print(f"FAIL: --min-ratio {spec}: "
                  f"{current[num_key]:.6g} / {den:.6g} = {ratio:.3g} "
                  f"< required {floor:.3g}", file=out)
            code = max(code, 1)
        else:
            print(f"ratio OK: {num_key} / {den_key} = {ratio:.3g} "
                  f">= {floor:.3g}", file=out)
    return code


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly generated JSON to check")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative slowdown (default 0.20)")
    parser.add_argument("--min-ratio", action="append", default=[],
                        metavar="NUM_KEY:DEN_KEY:FLOOR",
                        help="require current[NUM]/current[DEN] >= FLOOR "
                             "(repeatable; e.g. a parallel speedup floor)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = collect_metrics(json.load(f))
    with open(args.current, encoding="utf-8") as f:
        current = collect_metrics(json.load(f))

    code = compare(baseline, current, args.tolerance)
    ratio_code = check_ratios(current, args.min_ratio)
    return max(code, ratio_code)


if __name__ == "__main__":
    sys.exit(main())
