#!/usr/bin/env python3
"""Perf-regression gate for the committed BENCH_*.json baselines.

Compares a freshly generated benchmark JSON against the committed baseline
and exits non-zero if any timing metric regressed by more than the allowed
tolerance (default 20%). Lower is better for every compared metric; derived
ratio fields (e.g. warm_speedup_vs_legacy) are reported but never gate,
since they are redundant with the timings they are computed from.

Usage:
    python3 bench/compare_bench.py \
        --baseline BENCH_assignment.json \
        --current  build/BENCH_assignment.json \
        [--tolerance 0.20]
"""

import argparse
import json
import sys

# A metric is a numeric JSON leaf whose key carries a time unit suffix.
_METRIC_SUFFIXES = ("_ns", "_us", "_ms", "ms_per_map", "ns_per_solve")


def _is_metric(key, value):
    return isinstance(value, (int, float)) and key.endswith(_METRIC_SUFFIXES)


def _label(node, fallback):
    """Human identifier for a record: its 'n'/'mapper'/'name' field."""
    for key in ("n", "mapper", "name", "scenario"):
        if isinstance(node, dict) and key in node:
            return f"{key}={node[key]}"
    return fallback


def collect_metrics(node, path="", out=None):
    """Flattens {path: value} for every timing leaf in the document."""
    if out is None:
        out = {}
    if isinstance(node, dict):
        prefix = _label(node, path)
        for key, value in node.items():
            if _is_metric(key, value):
                out[f"{prefix}.{key}"] = float(value)
            else:
                collect_metrics(value, f"{prefix}.{key}", out)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            collect_metrics(item, f"{path}[{i}]", out)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--current", required=True,
                        help="freshly generated JSON to check")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed relative slowdown (default 0.20)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = collect_metrics(json.load(f))
    with open(args.current, encoding="utf-8") as f:
        current = collect_metrics(json.load(f))

    if not baseline:
        print(f"error: no timing metrics found in {args.baseline}")
        return 2

    regressions = []
    width = max(len(k) for k in baseline)
    for key, old in sorted(baseline.items()):
        new = current.get(key)
        if new is None:
            regressions.append((key, old, None))
            print(f"{key:<{width}}  {old:>12.1f}  ->  MISSING")
            continue
        ratio = new / old if old > 0 else float("inf")
        flag = ""
        if new > old * (1.0 + args.tolerance):
            regressions.append((key, old, new))
            flag = "  REGRESSED"
        print(f"{key:<{width}}  {old:>12.1f}  ->  {new:>12.1f}"
              f"  ({ratio:5.2f}x){flag}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) regressed beyond "
              f"{args.tolerance:.0%} of the committed baseline:")
        for key, old, new in regressions:
            if new is None:
                print(f"  {key}: baseline {old:.1f}, measured MISSING")
            else:
                delta = 100.0 * (new - old) / old if old > 0 else float("inf")
                print(f"  {key}: baseline {old:.1f}, measured {new:.1f}, "
                      f"{delta:+.1f}%")
        return 1
    print(f"\nOK: all {len(baseline)} metrics within {args.tolerance:.0%} "
          "of the committed baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
