// Ablation of the sort-select-swap stages (DESIGN.md §4): how much of the
// final quality comes from the coarse-tuning selection, the sliding-window
// swaps, and the final SAM repair — plus sensitivity to window size and
// maximum step.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header("ablation_sss_stages — SSS stage contributions",
                      "design-choice ablation for paper Algorithm 2");

  struct Variant {
    std::string name;
    SssOptions options;
  };
  const std::vector<Variant> variants{
      {"select only", {.window_swaps = false, .final_sam = false}},
      {"select+finalSAM", {.window_swaps = false, .final_sam = true}},
      {"select+swaps", {.window_swaps = true, .final_sam = false}},
      {"full SSS", {}},
      {"full, window=2", {.window_size = 2}},
      {"full, window=3", {.window_size = 3}},
      {"full, max step=1", {.max_step = 1}},
      {"full, max step=4", {.max_step = 4}},
  };

  // Per-variant averages over C1..C8.
  TextTable t({"variant", "avg max-APL", "avg dev-APL", "avg g-APL"});
  for (const auto& variant : variants) {
    double max_sum = 0.0, dev_sum = 0.0, g_sum = 0.0;
    for (const auto& spec : parsec_table3_configs()) {
      const ObmProblem problem = bench::standard_problem(spec);
      SortSelectSwapMapper mapper(variant.options);
      const LatencyReport r = evaluate(problem, mapper.map(problem));
      max_sum += r.max_apl;
      dev_sum += r.dev_apl;
      g_sum += r.g_apl;
    }
    t.add_row({variant.name, fmt(max_sum / 8, 4), fmt(dev_sum / 8, 4),
               fmt(g_sum / 8, 4)});
  }
  t.print(std::cout);

  std::cout << "\nReading: the selection stage does the coarse balancing; "
               "window swaps trade a little\ng-APL for the final max-APL/"
               "dev-APL reduction; the final SAM repairs within-app\n"
               "assignments the swaps disturbed. Window size 4 with full "
               "step range (the paper's choice)\nshould dominate the "
               "reduced variants.\n";
  return 0;
}
