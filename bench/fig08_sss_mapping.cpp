// Figure 8 reproduction: (a) the SSS mapping grid of C1 and (b) the
// per-application APL comparison against Global.
//
// Paper shape: under SSS the lightest application no longer owns the four
// corners, and the four applications' APLs become nearly identical
// (paper: Application 1 drops from 25.15 to 22.40 cycles, -10.89%).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header("fig08_sss_mapping — SSS mapping of C1",
                      "paper Figure 8 (mapping result and APL comparison)");

  const ObmProblem problem = bench::standard_problem("C1");
  GlobalMapper global;
  SortSelectSwapMapper sss;
  const Mapping mg = global.map(problem);
  const Mapping ms = sss.map(problem);
  const LatencyReport rg = evaluate(problem, mg);
  const LatencyReport rs = evaluate(problem, ms);

  std::cout << "\n(a) SSS application-ID grid (1 = lightest application):\n\n";
  bench::print_mapping_grid(problem, ms);

  std::cout << "\n(b) per-application APL [cycles]:\n";
  TextTable t({"application", "Global", "SSS", "change"});
  for (std::size_t a = 0; a < problem.num_applications(); ++a) {
    t.add_row({problem.workload().application(a).name, fmt(rg.apl[a]),
               fmt(rs.apl[a]), fmt_percent(rs.apl[a] / rg.apl[a] - 1.0)});
  }
  t.print(std::cout);

  std::cout << "\nmax-APL: Global " << fmt(rg.max_apl) << " -> SSS "
            << fmt(rs.max_apl) << " ("
            << fmt_percent(rs.max_apl / rg.max_apl - 1.0)
            << "; paper: 25.15 -> 22.40, -10.89% for the worst app)\n"
            << "dev-APL: Global " << fmt(rg.dev_apl, 3) << " -> SSS "
            << fmt(rs.dev_apl, 3) << "\n";

  // Corner ownership comparison.
  const Mesh& mesh = problem.mesh();
  auto corners_of_lightest = [&](const Mapping& m) {
    const auto inv = m.tile_to_thread();
    int count = 0;
    for (TileId corner : {mesh.tile_at(0, 0), mesh.tile_at(0, 7),
                          mesh.tile_at(7, 0), mesh.tile_at(7, 7)}) {
      if (problem.workload().application_of(inv[corner]) == 0) ++count;
    }
    return count;
  };
  std::cout << "Corners held by the lightest application: Global "
            << corners_of_lightest(mg) << "/4, SSS " << corners_of_lightest(ms)
            << "/4.\n";
  return 0;
}
