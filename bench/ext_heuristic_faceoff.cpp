// Extension: the full heuristic face-off, adding the two search baselines
// the paper's Section IV dismisses as "too time-consuming to reach a
// satisfying solution" — genetic search (ref [14]) and cluster-based
// simulated annealing (ref [17]). For each algorithm we report both
// quality (max-APL / dev-APL) and wall-clock runtime, so the paper's
// runtime argument is measured rather than assumed.
#include <chrono>
#include <functional>
#include <iostream>

#include "bench_common.h"
#include "core/cluster_sa_mapper.h"
#include "core/genetic_mapper.h"

namespace {

double ms_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace nocmap;
  bench::print_header(
      "ext_heuristic_faceoff — all heuristics incl. genetic search",
      "extension of paper Figures 9/10 + Section IV runtime claims");

  std::vector<std::unique_ptr<Mapper>> mappers = bench::paper_mappers();
  mappers.push_back(std::make_unique<GeneticMapper>(GeneticParams{
      .population = 64, .generations = 300, .seed = bench::kAlgorithmSeed}));
  mappers.push_back(std::make_unique<ClusterSaMapper>(ClusterSaParams{
      .coarse_iterations = 3000, .fine_iterations = 30000,
      .seed = bench::kAlgorithmSeed}));

  const auto configs = parsec_table3_configs();
  std::vector<double> max_sum(mappers.size(), 0.0);
  std::vector<double> dev_sum(mappers.size(), 0.0);
  std::vector<double> gapl_sum(mappers.size(), 0.0);
  std::vector<double> time_sum(mappers.size(), 0.0);

  for (const auto& spec : configs) {
    const ObmProblem problem = bench::standard_problem(spec);
    for (std::size_t m = 0; m < mappers.size(); ++m) {
      Mapping mapping;
      time_sum[m] += ms_of([&] { mapping = mappers[m]->map(problem); });
      const LatencyReport r = evaluate(problem, mapping);
      max_sum[m] += r.max_apl;
      dev_sum[m] += r.dev_apl;
      gapl_sum[m] += r.g_apl;
    }
  }

  const double k = static_cast<double>(configs.size());
  TextTable t({"algorithm", "avg max-APL", "avg dev-APL", "avg g-APL",
               "avg runtime [ms]"});
  for (std::size_t m = 0; m < mappers.size(); ++m) {
    t.add_row({mappers[m]->name(), fmt(max_sum[m] / k, 3),
               fmt(dev_sum[m] / k, 4), fmt(gapl_sum[m] / k, 3),
               fmt(time_sum[m] / k, 2)});
  }
  t.print(std::cout);

  std::cout << "\nReading: GA and CSA need far more runtime than SSS to remain "
               "competitive, matching the\npaper's rationale for a "
               "constructive heuristic over neighborhood/population search.\n";
  return 0;
}
