// Extension: memory-traffic mode as a design knob. The paper assumes the
// proximity principle — every tile's off-chip requests go to its nearest
// MC (eq. 4). Real memory systems often *interleave* addresses round-robin
// across all controllers (balancing DRAM bandwidth at the cost of NoC
// distance), and coherence-style traffic may *multicast* one request to
// every controller along a dimension-order tree. This bench re-runs the
// headline comparison under all three modes on the paper's 8x8 chip and
// reports what each does to the balance problem and to link contention.
#include <iostream>

#include "bench_common.h"
#include "core/contention.h"
#include "obs/run_report.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_interleave — proximity vs interleaved vs multicast",
                      "memory-traffic extension of the paper's eq. 4 model");

  const Workload workload =
      synthesize_workload(parsec_config("C1"), bench::kWorkloadSeed);
  const Mesh mesh = Mesh::square(8);

  TextTable t({"memory mode", "TM min", "TM spread", "Global max-APL",
               "SSS max-APL", "gap", "max link util (SSS)"});
  for (const MemoryTrafficMode mode :
       {MemoryTrafficMode::kProximity, MemoryTrafficMode::kInterleaved,
        MemoryTrafficMode::kMulticast}) {
    const TileLatencyModel chip(mesh, LatencyParams{}, mode);
    double tm_min = chip.tm(0), tm_max = chip.tm(0);
    for (TileId k = 1; k < mesh.num_tiles(); ++k) {
      tm_min = std::min(tm_min, chip.tm(k));
      tm_max = std::max(tm_max, chip.tm(k));
    }

    const ObmProblem problem(chip, workload);
    GlobalMapper global;
    SortSelectSwapMapper sss;
    const LatencyReport rg = evaluate(problem, global.map(problem));
    const Mapping ms = sss.map(problem);
    const LatencyReport rs = evaluate(problem, ms);
    const ContentionModel contention(problem, ms);

    t.add_row({memory_traffic_mode_name(mode), fmt(tm_min),
               fmt(tm_max - tm_min), fmt(rg.max_apl), fmt(rs.max_apl),
               fmt_percent(rs.max_apl / rg.max_apl - 1.0),
               fmt(contention.max_utilization(), 3)});

    const std::string stem =
        std::string("traffic.") + memory_traffic_mode_name(mode);
    obs::RunReport& report = obs::RunReport::global();
    report.set(stem + ".tm_spread", tm_max - tm_min);
    report.set(stem + ".global_max_apl", rg.max_apl);
    report.set(stem + ".sss_max_apl", rs.max_apl);
    report.set(stem + ".gap", rs.max_apl / rg.max_apl - 1.0);
    report.set(stem + ".sss_max_link_util", contention.max_utilization());
  }
  t.print(std::cout);
  bench::save_table(t, "ext_interleave");

  std::cout << "\nReading: interleaving replaces each tile's nearest-MC "
               "distance with the *mean*\ndistance to all MCs — TM rises "
               "everywhere but its spread collapses to near\nzero, leaving "
               "the cache-side spread as the only memory-side imbalance. "
               "Multicast\nis the costliest mode: every request pays the "
               "full dimension-order tree over\nall MCs. The Global-vs-SSS "
               "ranking holds in every mode and the relative gap\neven "
               "widens as the memory term grows — balanced mapping is not "
               "an artifact of\nthe paper's proximity rule, though "
               "proximity is where MC *placement* matters.\n";
  return 0;
}
