// Extension: robustness of the headline result to workload randomness.
// The paper reports single numbers per configuration; our workloads are
// synthesized, so we owe the reader the sensitivity: re-run the Figure-9 /
// Table-4 / Figure-10 aggregates over several independent workload seeds
// and report mean ± stddev of the SSS-vs-Global improvements.
#include <iostream>

#include "bench_common.h"
#include "util/stats.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_seed_sensitivity — headline metrics vs seed",
                      "robustness check for Figures 9/10 and Table 4");

  const std::vector<std::uint64_t> seeds{20140519, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> max_gain, dev_gain, gapl_cost;

  for (std::uint64_t seed : seeds) {
    double g_max = 0.0, s_max = 0.0, g_dev = 0.0, s_dev = 0.0, g_g = 0.0,
           s_g = 0.0;
    for (const auto& spec : parsec_table3_configs()) {
      const Mesh mesh = Mesh::square(8);
      const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                         synthesize_workload(spec, seed));
      GlobalMapper global;
      SortSelectSwapMapper sss;
      const LatencyReport rg = evaluate(p, global.map(p));
      const LatencyReport rs = evaluate(p, sss.map(p));
      g_max += rg.max_apl;
      s_max += rs.max_apl;
      g_dev += rg.dev_apl;
      s_dev += rs.dev_apl;
      g_g += rg.g_apl;
      s_g += rs.g_apl;
    }
    max_gain.push_back(s_max / g_max - 1.0);
    dev_gain.push_back(s_dev / g_dev - 1.0);
    gapl_cost.push_back(s_g / g_g - 1.0);
  }

  TextTable t({"metric (SSS vs Global, avg over C1..C8)", "mean",
               "stddev over seeds", "paper"});
  t.add_row({"max-APL reduction", fmt_percent(mean(max_gain)),
             fmt(stddev_population(max_gain) * 100.0, 2) + "pp", "-10.42%"});
  t.add_row({"dev-APL reduction", fmt_percent(mean(dev_gain)),
             fmt(stddev_population(dev_gain) * 100.0, 2) + "pp", "-99.65%"});
  t.add_row({"g-APL overhead", fmt_percent(mean(gapl_cost)),
             fmt(stddev_population(gapl_cost) * 100.0, 2) + "pp",
             "<= +3.82%"});
  t.print(std::cout);
  bench::save_table(t, "ext_seed_sensitivity");

  std::cout << "\nReading: the reproduction's headline improvements are "
               "stable across independent\nworkload draws — they are "
               "properties of the algorithm, not of one lucky seed.\n";
  return 0;
}
