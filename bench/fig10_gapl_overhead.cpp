// Figure 10 reproduction: g-APL of the four algorithms normalized to
// Global (which is exact, so every other scheme is >= 1.0).
// Paper shape: all OBM heuristics stay within 6%; SSS loses least
// (<= 3.82%), then SA (4.82%), then MC (5.35%).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header("fig10_gapl_overhead — normalized g-APL",
                      "paper Figure 10");

  TextTable t({"cfg", "Global", "MC", "SA", "SSS"});
  std::vector<double> sums(4, 0.0);
  for (const auto& spec : parsec_table3_configs()) {
    const ObmProblem problem = bench::standard_problem(spec);
    auto mappers = bench::paper_mappers();
    std::vector<double> gapl(4, 0.0);
    for (std::size_t i = 0; i < mappers.size(); ++i) {
      gapl[i] = evaluate(problem, mappers[i]->map(problem)).g_apl;
    }
    std::vector<std::string> row{spec.name};
    for (std::size_t i = 0; i < 4; ++i) {
      const double norm = gapl[i] / gapl[0];
      sums[i] += norm;
      row.push_back(fmt(norm, 4));
    }
    t.add_row(row);
  }
  t.add_row({"Avg", fmt(sums[0] / 8, 4), fmt(sums[1] / 8, 4),
             fmt(sums[2] / 8, 4), fmt(sums[3] / 8, 4)});
  t.print(std::cout);
  bench::save_table(t, "fig10_gapl_overhead");

  std::cout << "\ng-APL overhead vs Global (paper: MC +5.35%, SA +4.82%, "
               "SSS <= +3.82%):\n"
            << "  MC:  " << fmt_percent(sums[1] / 8 - 1.0) << "\n"
            << "  SA:  " << fmt_percent(sums[2] / 8 - 1.0) << "\n"
            << "  SSS: " << fmt_percent(sums[3] / 8 - 1.0) << "\n";
  return 0;
}
