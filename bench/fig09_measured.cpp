// Figure 9 / Table 4, measured edition. The paper's APLs come from
// full-system simulation (Garnet), not from the analytic model its
// algorithms optimize. This bench replays all four algorithms' mappings on
// the cycle-level simulator and reports *measured* max-APL and dev-APL —
// the strongest form of the reproduction: the analytic optimization must
// survive contact with a real (simulated) network.
#include <iostream>

#include "bench_common.h"
#include "netsim/sim.h"
#include "util/thread_pool.h"

int main() {
  using namespace nocmap;
  bench::print_header(
      "fig09_measured — simulator-measured max-APL and dev-APL",
      "paper Figure 9 + Table 4, via cycle-level simulation");

  const auto configs = parsec_table3_configs();
  constexpr std::size_t kMethods = 4;

  SimConfig sim_cfg;
  sim_cfg.warmup_cycles = 2000;
  sim_cfg.measure_cycles = 40000;

  std::vector<double> max_apl(configs.size() * kMethods, 0.0);
  std::vector<double> dev_apl(configs.size() * kMethods, 0.0);
  parallel_for(0, configs.size() * kMethods, [&](std::size_t idx) {
    const std::size_t c = idx / kMethods;
    const std::size_t m = idx % kMethods;
    const ObmProblem problem = bench::standard_problem(configs[c]);
    auto mappers = bench::paper_mappers();
    const SimResult r =
        run_simulation(problem, mappers[m]->map(problem), sim_cfg);
    max_apl[idx] = r.max_apl;
    dev_apl[idx] = r.dev_apl;
  });

  TextTable tmax({"cfg", "Global", "MC", "SA", "SSS"});
  TextTable tdev({"cfg", "Global", "MC", "SA", "SSS"});
  std::vector<double> max_sum(kMethods, 0.0), dev_sum(kMethods, 0.0);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::vector<std::string> rmax{configs[c].name}, rdev{configs[c].name};
    for (std::size_t m = 0; m < kMethods; ++m) {
      max_sum[m] += max_apl[c * kMethods + m];
      dev_sum[m] += dev_apl[c * kMethods + m];
      rmax.push_back(fmt(max_apl[c * kMethods + m]));
      rdev.push_back(fmt(dev_apl[c * kMethods + m], 3));
    }
    tmax.add_row(rmax);
    tdev.add_row(rdev);
  }
  std::cout << "\nMeasured max-APL [cycles] (includes pipeline/ejection "
               "overheads the analytic model folds away):\n";
  tmax.print(std::cout);
  bench::save_table(tmax, "fig09_measured_max_apl");
  std::cout << "\nMeasured dev-APL:\n";
  tdev.print(std::cout);
  bench::save_table(tdev, "fig09_measured_dev_apl");

  std::cout << "\nMeasured reduction vs Global (analytic bench: MC ~-10%, "
               "SA/SSS ~-12%):\n"
            << "  MC:  " << fmt_percent(max_sum[1] / max_sum[0] - 1.0) << "\n"
            << "  SA:  " << fmt_percent(max_sum[2] / max_sum[0] - 1.0) << "\n"
            << "  SSS: " << fmt_percent(max_sum[3] / max_sum[0] - 1.0) << "\n"
            << "Measured dev-APL, SSS vs Global: "
            << fmt_percent(dev_sum[3] / dev_sum[0] - 1.0)
            << " (paper: -99.65%).\n";
  return 0;
}
