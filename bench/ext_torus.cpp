// Extension: does latency balancing still matter on a torus?
//
// A torus is vertex-transitive: every tile sees the same average distance
// to the address-hashed L2 banks, so TC(k) is *uniform* and the
// cache-latency imbalance that drives the paper's problem disappears. What
// remains is the memory-controller distance spread (MCs break symmetry).
// This bench quantifies how much of the Global-vs-SSS gap survives the
// topology change — a design-space answer the paper's mesh-only evaluation
// cannot give.
#include <iostream>

#include "bench_common.h"
#include "core/bounds.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_torus — balancing on mesh vs torus",
                      "topology extension of the paper's mesh evaluation");

  const Workload workload =
      synthesize_workload(parsec_config("C1"), bench::kWorkloadSeed);

  TextTable t({"topology", "TC spread [cycles]", "TM spread [cycles]",
               "Global max-APL", "SSS max-APL", "gap", "Global dev-APL",
               "SSS dev-APL"});
  for (const bool torus : {false, true}) {
    const Mesh mesh = torus ? Mesh::square_torus(8) : Mesh::square(8);
    const TileLatencyModel chip(mesh, LatencyParams{});
    double tc_min = chip.tc(0), tc_max = chip.tc(0);
    double tm_min = chip.tm(0), tm_max = chip.tm(0);
    for (TileId k = 1; k < mesh.num_tiles(); ++k) {
      tc_min = std::min(tc_min, chip.tc(k));
      tc_max = std::max(tc_max, chip.tc(k));
      tm_min = std::min(tm_min, chip.tm(k));
      tm_max = std::max(tm_max, chip.tm(k));
    }

    const ObmProblem problem(chip, workload);
    GlobalMapper global;
    SortSelectSwapMapper sss;
    const LatencyReport rg = evaluate(problem, global.map(problem));
    const LatencyReport rs = evaluate(problem, sss.map(problem));

    t.add_row({torus ? "8x8 torus" : "8x8 mesh",
               fmt(tc_max - tc_min), fmt(tm_max - tm_min), fmt(rg.max_apl),
               fmt(rs.max_apl), fmt_percent(rs.max_apl / rg.max_apl - 1.0),
               fmt(rg.dev_apl, 3), fmt(rs.dev_apl, 3)});
  }
  t.print(std::cout);

  std::cout << "\nReading: wraparound links collapse the cache-latency "
               "spread to zero, so on a torus\nthe imbalance (and the gap "
               "SSS can close) comes only from memory-controller\n"
               "distance. Balanced mapping is a *mesh* problem first — "
               "which is why the paper's\nCMP setting (mesh, corner MCs) "
               "is exactly where it matters.\n";
  return 0;
}
