// Table 4 reproduction: dev-APL (population standard deviation of the
// applications' APLs) of the four algorithms on C1..C8.
// Paper shape: Global largest by far; MC and SA moderate; SSS smaller
// still (paper: -99.65% vs Global, -95.45% vs MC, -83.15% vs SA).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header("table4_dev_apl — dev-APL of the four algorithms",
                      "paper Table 4");

  TextTable t({"cfg", "Global", "MC", "SA", "SSS"});
  std::vector<double> sums(4, 0.0);
  for (const auto& spec : parsec_table3_configs()) {
    const ObmProblem problem = bench::standard_problem(spec);
    auto mappers = bench::paper_mappers();
    std::vector<std::string> row{spec.name};
    for (std::size_t i = 0; i < mappers.size(); ++i) {
      const double dev = evaluate(problem, mappers[i]->map(problem)).dev_apl;
      sums[i] += dev;
      row.push_back(fmt(dev, 3));
    }
    t.add_row(row);
  }
  t.add_row({"Avg", fmt(sums[0] / 8, 3), fmt(sums[1] / 8, 3),
             fmt(sums[2] / 8, 3), fmt(sums[3] / 8, 3)});
  t.print(std::cout);
  bench::save_table(t, "table4_dev_apl");

  std::cout << "\nSSS dev-APL reduction (paper: -99.65% vs Global, -95.45% "
               "vs MC, -83.15% vs SA):\n"
            << "  vs Global: " << fmt_percent(sums[3] / sums[0] - 1.0) << "\n"
            << "  vs MC:     " << fmt_percent(sums[3] / sums[1] - 1.0) << "\n"
            << "  vs SA:     " << fmt_percent(sums[3] / sums[2] - 1.0) << "\n";
  return 0;
}
