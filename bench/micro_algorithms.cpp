// google-benchmark microbenchmarks of the algorithmic building blocks:
// Hungarian assignment scaling, the four mappers, and the incremental
// evaluator — backing the paper's O(N^3) complexity claim with measured
// scaling (Section IV.B).
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "assign/hungarian.h"
#include "core/annealing_mapper.h"
#include "core/evaluator.h"
#include "core/metrics.h"
#include "core/global_mapper.h"
#include "core/monte_carlo_mapper.h"
#include "core/sss_mapper.h"
#include "util/rng.h"
#include "workload/synthesis.h"

namespace {

using namespace nocmap;

CostMatrix random_cost(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CostMatrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) m.at(r, c) = rng.uniform(0.0, 100.0);
  }
  return m;
}

ObmProblem problem_for_mesh(std::uint32_t side) {
  const Mesh mesh = Mesh::square(side);
  SynthesisOptions opt;
  opt.num_applications = 4;
  opt.threads_per_app = mesh.num_tiles() / 4;
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), 1, opt));
}

void BM_Hungarian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CostMatrix cost = random_cost(n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_assignment(cost));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Hungarian)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_GlobalMapper(benchmark::State& state) {
  const ObmProblem problem =
      problem_for_mesh(static_cast<std::uint32_t>(state.range(0)));
  GlobalMapper mapper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(problem));
  }
  state.SetComplexityN(
      static_cast<std::int64_t>(problem.num_tiles()));
}
BENCHMARK(BM_GlobalMapper)->DenseRange(4, 16, 4)->Complexity();

void BM_SssMapper(benchmark::State& state) {
  const ObmProblem problem =
      problem_for_mesh(static_cast<std::uint32_t>(state.range(0)));
  SortSelectSwapMapper mapper;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(problem));
  }
  state.SetComplexityN(
      static_cast<std::int64_t>(problem.num_tiles()));
}
BENCHMARK(BM_SssMapper)->DenseRange(4, 16, 4)->Complexity();

void BM_MonteCarloPerTrial(benchmark::State& state) {
  const ObmProblem problem = problem_for_mesh(8);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    MonteCarloMapper mapper(64, ++seed, ParallelConfig::serial_config());
    benchmark::DoNotOptimize(mapper.map(problem));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_MonteCarloPerTrial);

void BM_AnnealingPerIteration(benchmark::State& state) {
  const ObmProblem problem = problem_for_mesh(8);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    AnnealingMapper mapper(
        AnnealingParams{.iterations = 4096, .seed = ++seed});
    benchmark::DoNotOptimize(mapper.map(problem));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_AnnealingPerIteration);

void BM_EvaluatorSwap(benchmark::State& state) {
  const ObmProblem problem = problem_for_mesh(8);
  MappingEvaluator eval(problem, problem.identity_mapping());
  Rng rng(7);
  const auto n = static_cast<std::uint32_t>(problem.num_threads());
  for (auto _ : state) {
    eval.swap_threads(rng.uniform_u32(n), rng.uniform_u32(n));
    benchmark::DoNotOptimize(eval.max_apl());
  }
}
BENCHMARK(BM_EvaluatorSwap);

void BM_FullEvaluate(benchmark::State& state) {
  const ObmProblem problem = problem_for_mesh(8);
  const Mapping m = problem.identity_mapping();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate(problem, m));
  }
}
BENCHMARK(BM_FullEvaluate);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): print_header bootstraps the
// RunReport (wall time + metrics JSON under bench_results/), so this binary
// shows up in the observability layer like every other bench.
int main(int argc, char** argv) {
  nocmap::bench::print_header(
      "micro_algorithms — building-block microbenchmarks",
      "complexity claims of paper Section IV.B");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
