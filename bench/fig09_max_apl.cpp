// Figure 9 reproduction: max-APL of Global / MC / SA / SSS on C1..C8.
// Paper shape: SSS reduces max-APL by ~10.42% vs Global on average; MC and
// SA land in between (-8.74% and -9.44%).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header("fig09_max_apl — max-APL of the four algorithms",
                      "paper Figure 9");

  TextTable t({"cfg", "Global", "MC", "SA", "SSS"});
  std::vector<double> sums(4, 0.0);
  for (const auto& spec : parsec_table3_configs()) {
    const ObmProblem problem = bench::standard_problem(spec);
    auto mappers = bench::paper_mappers();
    std::vector<std::string> row{spec.name};
    for (std::size_t i = 0; i < mappers.size(); ++i) {
      const double max_apl =
          evaluate(problem, mappers[i]->map(problem)).max_apl;
      sums[i] += max_apl;
      row.push_back(fmt(max_apl));
    }
    t.add_row(row);
  }
  t.add_row({"Avg", fmt(sums[0] / 8), fmt(sums[1] / 8), fmt(sums[2] / 8),
             fmt(sums[3] / 8)});
  t.print(std::cout);
  bench::save_table(t, "fig09_max_apl");

  std::cout << "\nReduction vs Global (paper: MC -8.74%, SA -9.44%, SSS "
               "-10.42%):\n"
            << "  MC:  " << fmt_percent(sums[1] / sums[0] - 1.0) << "\n"
            << "  SA:  " << fmt_percent(sums[2] / sums[0] - 1.0) << "\n"
            << "  SSS: " << fmt_percent(sums[3] / sums[0] - 1.0) << "\n";
  return 0;
}
