// Extension: differentiated service through weighted OBM.
// The paper's Section-I motivation is QoS for paying users; the natural
// generalization is min max_i w_i·APL_i, where w_i > 1 buys application i
// a proportionally lower latency. This bench sweeps the priority weight of
// the lightest C1 application and shows the latency it buys — and what the
// other applications pay.
#include <iostream>

#include "bench_common.h"
#include "core/bounds.h"

int main() {
  using namespace nocmap;
  bench::print_header("ext_qos_weights — weighted OBM (differentiated QoS)",
                      "extension of the paper's Section-I QoS motivation");

  const Workload workload =
      synthesize_workload(parsec_config("C1"), bench::kWorkloadSeed);
  const TileLatencyModel chip(Mesh::square(8), LatencyParams{});

  TextTable t({"weight of app1", "algorithm", "APL app1", "APL app2",
               "APL app3", "APL app4", "g-APL", "weighted objective"});
  for (double w : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    const ObmProblem problem(chip, workload, {w, 1.0, 1.0, 1.0});
    SortSelectSwapMapper sss;
    AnnealingMapper sa(AnnealingParams{.iterations = 50000,
                                       .seed = bench::kAlgorithmSeed});
    for (Mapper* mapper : {static_cast<Mapper*>(&sss),
                           static_cast<Mapper*>(&sa)}) {
      const LatencyReport r = evaluate(problem, mapper->map(problem));
      t.add_row({fmt(w, 1), mapper->name(), fmt(r.apl[0]), fmt(r.apl[1]),
                 fmt(r.apl[2]), fmt(r.apl[3]), fmt(r.g_apl),
                 fmt(r.objective)});
    }
  }
  t.print(std::cout);

  const ObmProblem plain(chip, workload);
  std::cout << "\nReading: raising app1's weight buys it lower latency "
               "until it hits its physical floor —\nthe uncontested relaxed "
               "minimum "
            << fmt(relaxed_min_apl(plain, 0))
            << " cycles (see core/bounds.h) — after which the weighted\n"
               "objective is app1-bound and further weight changes nothing. "
               "The other applications pay\n~1 cycle and g-APL rises "
               "mildly — the price of the guarantee.\n";
  return 0;
}
