// Figure 11 reproduction: dynamic NoC power of the four mapping algorithms,
// measured by replaying each mapping on the cycle-level simulator and
// feeding the activity counters into the DSENT-lite power model.
// Paper shape: SSS has negligible dynamic-power overhead vs Global
// (< 2.7%) and is slightly better than MC and SA.
//
// Two batch phases, both deterministic at any worker count: the 4x8
// mappings fan out across the parallel runner, then the 32 replays go
// through run_simulation_batch.
#include <iostream>

#include "bench_common.h"
#include "power/dsent_lite.h"

int main() {
  using namespace nocmap;
  bench::print_header("fig11_power — dynamic NoC power",
                      "paper Figure 11 (DSENT 45nm/1V power comparison)");

  const auto configs = parsec_table3_configs();
  constexpr std::size_t kMethods = 4;
  const char* method_names[kMethods] = {"Global", "MC", "SA", "SSS"};

  SimConfig sim_cfg;
  sim_cfg.warmup_cycles = 2000;
  sim_cfg.measure_cycles = 40000;

  std::vector<ObmProblem> problems;
  problems.reserve(configs.size());
  for (const ConfigSpec& spec : configs) {
    problems.push_back(bench::standard_problem(spec));
  }

  // Phase 1: (config, method) mappings are independent pure units.
  std::vector<Mapping> mappings(configs.size() * kMethods);
  ParallelTrialRunner runner(bench::bench_parallel_config());
  runner.for_each(mappings.size(), [&](std::size_t idx) {
    const std::size_t c = idx / kMethods;
    const std::size_t m = idx % kMethods;
    auto mappers = bench::paper_mappers();
    mappings[idx] = mappers[m]->map(problems[c]);
  });

  // Phase 2: replay every mapping on the cycle-level fabric in one batch.
  std::vector<BatchScenario> batch;
  batch.reserve(mappings.size());
  for (std::size_t idx = 0; idx < mappings.size(); ++idx) {
    batch.push_back({&problems[idx / kMethods], &mappings[idx], sim_cfg});
  }
  const std::vector<SimResult> results = bench::simulate_batch(batch);

  const DsentLitePowerModel power;
  std::vector<double> dynamic_mw(results.size(), 0.0);
  for (std::size_t idx = 0; idx < results.size(); ++idx) {
    const ObmProblem& problem = problems[idx / kMethods];
    dynamic_mw[idx] = power
                          .report(results[idx].activity,
                                  results[idx].measured_cycles,
                                  problem.mesh().num_tiles(),
                                  mesh_link_count(problem.mesh()))
                          .dynamic_mw;
  }

  TextTable t({"cfg", "Global [mW]", "MC [mW]", "SA [mW]", "SSS [mW]",
               "SSS vs Global"});
  std::vector<double> sums(kMethods, 0.0);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::vector<std::string> row{configs[c].name};
    for (std::size_t m = 0; m < kMethods; ++m) {
      sums[m] += dynamic_mw[c * kMethods + m];
      row.push_back(fmt(dynamic_mw[c * kMethods + m], 3));
    }
    row.push_back(fmt_percent(
        dynamic_mw[c * kMethods + 3] / dynamic_mw[c * kMethods + 0] - 1.0));
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nAverage dynamic power overhead vs Global (paper: SSS "
               "< +2.7%, slightly better than MC and SA):\n";
  for (std::size_t m = 1; m < kMethods; ++m) {
    std::cout << "  " << method_names[m] << ": "
              << fmt_percent(sums[m] / sums[0] - 1.0) << "\n";
  }
  std::cout << "\nStatic power is identical across schemes ("
            << fmt(power
                       .report(ActivityCounters{}, 1, 64,
                               mesh_link_count(Mesh::square(8)))
                       .static_mw,
                   1)
            << " mW for the 8x8 fabric) and therefore not compared.\n";
  return 0;
}
