// Figure 11 reproduction: dynamic NoC power of the four mapping algorithms,
// measured by replaying each mapping on the cycle-level simulator and
// feeding the activity counters into the DSENT-lite power model.
// Paper shape: SSS has negligible dynamic-power overhead vs Global
// (< 2.7%) and is slightly better than MC and SA.
#include <iostream>

#include "bench_common.h"
#include "netsim/sim.h"
#include "power/dsent_lite.h"
#include "util/thread_pool.h"

int main() {
  using namespace nocmap;
  bench::print_header("fig11_power — dynamic NoC power",
                      "paper Figure 11 (DSENT 45nm/1V power comparison)");

  const auto configs = parsec_table3_configs();
  constexpr std::size_t kMethods = 4;
  const char* method_names[kMethods] = {"Global", "MC", "SA", "SSS"};

  SimConfig sim_cfg;
  sim_cfg.warmup_cycles = 2000;
  sim_cfg.measure_cycles = 40000;

  // (config, method) runs are independent; shard across the pool.
  std::vector<double> dynamic_mw(configs.size() * kMethods, 0.0);
  const DsentLitePowerModel power;
  parallel_for(0, configs.size() * kMethods, [&](std::size_t idx) {
    const std::size_t c = idx / kMethods;
    const std::size_t m = idx % kMethods;
    const ObmProblem problem = bench::standard_problem(configs[c]);
    auto mappers = bench::paper_mappers();
    const Mapping mapping = mappers[m]->map(problem);
    const SimResult r = run_simulation(problem, mapping, sim_cfg);
    dynamic_mw[idx] = power
                          .report(r.activity, r.measured_cycles,
                                  problem.mesh().num_tiles(),
                                  mesh_link_count(problem.mesh()))
                          .dynamic_mw;
  });

  TextTable t({"cfg", "Global [mW]", "MC [mW]", "SA [mW]", "SSS [mW]",
               "SSS vs Global"});
  std::vector<double> sums(kMethods, 0.0);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    std::vector<std::string> row{configs[c].name};
    for (std::size_t m = 0; m < kMethods; ++m) {
      sums[m] += dynamic_mw[c * kMethods + m];
      row.push_back(fmt(dynamic_mw[c * kMethods + m], 3));
    }
    row.push_back(fmt_percent(
        dynamic_mw[c * kMethods + 3] / dynamic_mw[c * kMethods + 0] - 1.0));
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nAverage dynamic power overhead vs Global (paper: SSS "
               "< +2.7%, slightly better than MC and SA):\n";
  for (std::size_t m = 1; m < kMethods; ++m) {
    std::cout << "  " << method_names[m] << ": "
              << fmt_percent(sums[m] / sums[0] - 1.0) << "\n";
  }
  std::cout << "\nStatic power is identical across schemes ("
            << fmt(power
                       .report(ActivityCounters{}, 1, 64,
                               mesh_link_count(Mesh::square(8)))
                       .static_mw,
                   1)
            << " mW for the 8x8 fabric) and therefore not compared.\n";
  return 0;
}
