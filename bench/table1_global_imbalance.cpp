// Table 1 reproduction: imbalance exacerbation by global optimization.
// For C1..C4, compare the average of >= 10^4 random mappings against the
// exact Global (g-APL-minimizing) mapping on g-APL, max-APL and dev-APL.
//
// Paper shape: Global improves g-APL by ~5% over random, but *increases*
// max-APL by ~10% and multiplies dev-APL by 3-4x.
#include <iostream>

#include "bench_common.h"
#include "util/rng.h"
#include "util/thread_pool.h"

int main() {
  using namespace nocmap;
  bench::print_header(
      "table1_global_imbalance — random average vs Global",
      "paper Table 1 (imbalance exacerbation by global optimization)");

  constexpr std::size_t kRandomTrials = 10000;
  TextTable table({"cfg", "g-APL rand", "g-APL Global", "max-APL rand",
                   "max-APL Global", "dev-APL rand", "dev-APL Global"});

  double sum_g_rand = 0, sum_g_glob = 0, sum_max_rand = 0, sum_max_glob = 0,
         sum_dev_rand = 0, sum_dev_glob = 0;
  const std::vector<std::string> configs{"C1", "C2", "C3", "C4"};

  for (const auto& name : configs) {
    const ObmProblem problem = bench::standard_problem(name);
    const std::size_t n = problem.num_threads();

    // Random-average columns: mean metrics over many uniform mappings,
    // sharded deterministically across the thread pool.
    constexpr std::size_t kShard = 250;
    const std::size_t shards = kRandomTrials / kShard;
    std::vector<double> g(shards, 0.0), mx(shards, 0.0), dv(shards, 0.0);
    const Rng base(splitmix64(bench::kAlgorithmSeed));
    parallel_for(0, shards, [&](std::size_t s) {
      Rng rng = base.fork(s);
      for (std::size_t t = 0; t < kShard; ++t) {
        Mapping m;
        for (std::size_t v : random_permutation(n, rng)) {
          m.thread_to_tile.push_back(static_cast<TileId>(v));
        }
        const LatencyReport r = evaluate(problem, m);
        g[s] += r.g_apl;
        mx[s] += r.max_apl;
        dv[s] += r.dev_apl;
      }
    });
    double g_rand = 0, max_rand = 0, dev_rand = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      g_rand += g[s];
      max_rand += mx[s];
      dev_rand += dv[s];
    }
    g_rand /= kRandomTrials;
    max_rand /= kRandomTrials;
    dev_rand /= kRandomTrials;

    GlobalMapper global;
    const LatencyReport rg = evaluate(problem, global.map(problem));

    table.add_row({name, fmt(g_rand), fmt(rg.g_apl), fmt(max_rand),
                   fmt(rg.max_apl), fmt(dev_rand, 3), fmt(rg.dev_apl, 3)});
    sum_g_rand += g_rand;
    sum_g_glob += rg.g_apl;
    sum_max_rand += max_rand;
    sum_max_glob += rg.max_apl;
    sum_dev_rand += dev_rand;
    sum_dev_glob += rg.dev_apl;
  }

  const double k = static_cast<double>(configs.size());
  table.add_row({"Avg", fmt(sum_g_rand / k), fmt(sum_g_glob / k),
                 fmt(sum_max_rand / k), fmt(sum_max_glob / k),
                 fmt(sum_dev_rand / k, 3), fmt(sum_dev_glob / k, 3)});
  table.print(std::cout);
  bench::save_table(table, "table1_global_imbalance");

  std::cout << "\nShape vs paper (their averages: g-APL 22.61->21.53, "
               "max-APL 22.73->24.97, dev-APL 0.54->1.84):\n"
            << "  g-APL change:   " << fmt_percent(sum_g_glob / sum_g_rand - 1.0)
            << "  (paper: -4.78%)\n"
            << "  max-APL change: "
            << fmt_percent(sum_max_glob / sum_max_rand - 1.0)
            << "  (paper: +9.85%)\n"
            << "  dev-APL ratio:  " << fmt(sum_dev_glob / sum_dev_rand, 2)
            << "x  (paper: ~3.4x)\n";
  return 0;
}
