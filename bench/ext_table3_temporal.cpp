// Extension: reconciling Table 3's standard deviations.
//
// DESIGN.md §5.1 argues the paper's Table-3 std-devs cannot be per-thread
// (several exceed mean·sqrt(N−1), the maximum for 64 non-negative values
// with that mean) and must be *temporal* — variability of per-interval
// request counts. This bench demonstrates the claim constructively: a
// two-state Markov (bursty) source with the right duty cycle reproduces
// C1's published mean 7.008 / std 88.3 per kilocycle, while no per-thread
// assignment possibly can.
//
// For an on/off source with mean rate m and duty d, the per-window rate is
// m/d with probability d and 0 otherwise (long dwells), so the temporal
// std approaches m·sqrt((1-d)/d): matching std/mean = 12.6 needs
// d ≈ 1/(1+12.6²) ≈ 0.0063.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "util/rng.h"
#include "util/stats.h"

int main() {
  using namespace nocmap;
  bench::print_header(
      "ext_table3_temporal — Table-3 std-devs are temporal",
      "constructive check of the DESIGN.md §5.1 workload interpretation");

  const double mean_rate = 7.008;  // C1 cache requests per kilocycle
  const double target_std = 88.3;
  const double target_cv = target_std / mean_rate;
  const double predicted_duty = 1.0 / (1.0 + target_cv * target_cv);

  std::cout << "\nC1 target: mean " << fmt(mean_rate, 3) << ", std "
            << fmt(target_std, 1) << " per kilocycle (cv "
            << fmt(target_cv, 2) << ")\n"
            << "On/off-source theory: duty d = 1/(1+cv^2) = "
            << fmt(predicted_duty, 4) << "\n\n";

  std::cout << "Simulated per-kilocycle request counts of one thread over "
               "200k kilocycles:\n";
  TextTable t({"duty", "dwell [kc]", "measured mean", "measured std",
               "measured cv"});
  Rng rng(1234);
  for (const double duty : {0.5, 0.1, 0.02, predicted_duty}) {
    // Mean on+off period; stretched for tiny duties so the ON dwell stays
    // at least ~2 windows (otherwise the discrete chain clips the duty).
    const double dwell_kc = std::max(50.0, 2.0 / duty);
    const double t_on = duty * dwell_kc;
    const double t_off = (1.0 - duty) * dwell_kc;
    bool on = rng.bernoulli(duty);
    std::vector<double> counts;
    counts.reserve(200000);
    for (int window = 0; window < 200000; ++window) {
      if (on ? rng.bernoulli(std::min(1.0, 1.0 / t_on))
             : rng.bernoulli(std::min(1.0, 1.0 / t_off))) {
        on = !on;
      }
      if (!on) {
        counts.push_back(0.0);
        continue;
      }
      // Poisson-ish count at rate mean/duty per kilocycle (normal approx
      // is fine at these magnitudes; clamp at zero).
      const double lambda = mean_rate / duty;
      counts.push_back(
          std::max(0.0, rng.normal(lambda, std::sqrt(lambda))));
    }
    t.add_row({fmt(duty, 4), fmt(dwell_kc, 0), fmt(mean(counts), 3),
               fmt(stddev_population(counts), 1),
               fmt(stddev_population(counts) / mean(counts), 2)});
  }
  t.print(std::cout);
  bench::save_table(t, "ext_table3_temporal");

  std::cout << "\nReading: a steady source (duty 0.5) cannot exceed cv ~1; "
               "the published cv 12.6 needs\nduty ~0.006 — i.e. threads "
               "that are idle ~99% of intervals and burst hard, exactly\n"
               "what phase-structured PARSEC threads look like. This "
               "justifies synthesizing moderate\n*per-thread* spread while "
               "treating Table 3's std as temporal (DESIGN.md §5.1).\n";
  return 0;
}
