// Extension: Section III.A at scale. The paper argues on a 4x4 toy (Fig. 5)
// that standard deviation and min-to-max are broken objectives because a
// perfectly "balanced" mapping can be uniformly slow. Here we *optimize*
// each candidate objective with the same annealer on the real C1..C8
// instances and show the pathology empirically: the rejected objectives
// deliver balance while giving away overall latency.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace nocmap;
  bench::print_header(
      "ext_objective_pathology — optimizing the rejected metrics",
      "extension of paper Section III.A / Figure 5");

  const auto configs = parsec_table3_configs();
  const std::vector<AnnealObjective> objectives{
      AnnealObjective::kMaxApl, AnnealObjective::kDevApl,
      AnnealObjective::kMinToMax};

  std::vector<double> max_sum(objectives.size(), 0.0);
  std::vector<double> dev_sum(objectives.size(), 0.0);
  std::vector<double> gapl_sum(objectives.size(), 0.0);

  for (const auto& spec : configs) {
    const ObmProblem problem = bench::standard_problem(spec);
    for (std::size_t o = 0; o < objectives.size(); ++o) {
      AnnealingMapper sa(AnnealingParams{.iterations = 50000,
                                         .seed = bench::kAlgorithmSeed,
                                         .objective = objectives[o]});
      const LatencyReport r = evaluate(problem, sa.map(problem));
      max_sum[o] += r.max_apl;
      dev_sum[o] += r.dev_apl;
      gapl_sum[o] += r.g_apl;
    }
  }

  const double k = static_cast<double>(configs.size());
  TextTable t({"objective", "avg max-APL", "avg dev-APL", "avg g-APL"});
  for (std::size_t o = 0; o < objectives.size(); ++o) {
    t.add_row({anneal_objective_name(objectives[o]), fmt(max_sum[o] / k, 3),
               fmt(dev_sum[o] / k, 4), fmt(gapl_sum[o] / k, 3)});
  }
  t.print(std::cout);

  std::cout << "\ng-APL penalty of the rejected objectives vs max-APL:\n"
            << "  dev-APL objective:    "
            << fmt_percent(gapl_sum[1] / gapl_sum[0] - 1.0) << "\n"
            << "  min-to-max objective: "
            << fmt_percent(gapl_sum[2] / gapl_sum[0] - 1.0) << "\n"
            << "\nThe rejected objectives reach tiny dev-APL but pay for it "
               "in overall latency,\nconfirming max-APL as the objective "
               "that balances *and* stays fast.\n";
  return 0;
}
