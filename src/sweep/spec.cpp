#include "sweep/spec.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "workload/synthesis.h"

namespace nocmap::sweep {

namespace {

/// Expansion size cap: expand_spec materializes the scenario list, so a
/// runaway spec (seed count 10^9, say) must fail fast instead of OOMing.
constexpr std::uint64_t kMaxCombinations = 10'000'000;

const obs::JsonValue& require_array(const obs::JsonValue& v,
                                    const std::string& what) {
  NOCMAP_REQUIRE(v.is_array(), "spec axis '" + what + "' must be an array");
  NOCMAP_REQUIRE(v.size() > 0, "spec axis '" + what + "' is empty");
  return v;
}

std::vector<std::uint32_t> read_u32_axis(const obs::JsonValue& v,
                                         const std::string& what,
                                         std::uint32_t lo, std::uint32_t hi) {
  std::vector<std::uint32_t> out;
  for (const obs::JsonValue& item : require_array(v, what).items()) {
    const std::uint64_t value = item.as_uint();
    NOCMAP_REQUIRE(value >= lo && value <= hi,
                   "spec axis '" + what + "' value out of range");
    out.push_back(static_cast<std::uint32_t>(value));
  }
  return out;
}

std::vector<double> read_double_axis(const obs::JsonValue& v,
                                     const std::string& what, double lo,
                                     double hi) {
  std::vector<double> out;
  for (const obs::JsonValue& item : require_array(v, what).items()) {
    const double value = item.as_double();
    NOCMAP_REQUIRE(value > lo && value <= hi,
                   "spec axis '" + what + "' value out of range");
    out.push_back(value);
  }
  return out;
}

std::vector<bool> read_bool_axis(const obs::JsonValue& v,
                                 const std::string& what) {
  std::vector<bool> out;
  for (const obs::JsonValue& item : require_array(v, what).items()) {
    out.push_back(item.as_bool());
  }
  return out;
}

void parse_axes(const obs::JsonValue& axes, CampaignSpec& spec) {
  for (const auto& [key, value] : axes.members()) {
    if (key == "mesh_side") {
      spec.mesh_side = read_u32_axis(value, key, 2, 64);
    } else if (key == "mesh_layers") {
      spec.mesh_layers = read_u32_axis(value, key, 1, 8);
    } else if (key == "tsv_hop_cost") {
      spec.tsv_hop_cost = read_double_axis(value, key, 0.0, 16.0);
    } else if (key == "mc_count") {
      const std::uint64_t count = value.as_uint();
      NOCMAP_REQUIRE(count >= 1 && count <= 64 * 64,
                     "mc_count out of range");
      spec.mc_count = static_cast<std::uint32_t>(count);
    } else if (key == "traffic_mode") {
      spec.traffic_mode.clear();
      for (const obs::JsonValue& item : require_array(value, key).items()) {
        MemoryTrafficMode mode;
        NOCMAP_REQUIRE(
            memory_traffic_mode_from_name(item.as_string(), mode),
            "unknown traffic_mode '" + item.as_string() + "'");
        spec.traffic_mode.push_back(mode);
      }
    } else if (key == "topology") {
      spec.torus.clear();
      for (const obs::JsonValue& item : require_array(value, key).items()) {
        const std::string& name = item.as_string();
        if (name == "mesh") {
          spec.torus.push_back(false);
        } else if (name == "torus") {
          spec.torus.push_back(true);
        } else {
          NOCMAP_REQUIRE(false, "unknown topology '" + name + "'");
        }
      }
    } else if (key == "mc_placement") {
      spec.mc_placement.clear();
      for (const obs::JsonValue& item : require_array(value, key).items()) {
        McPlacement placement;
        NOCMAP_REQUIRE(
            mc_placement_from_name(item.as_string(), placement),
            "unknown mc_placement '" + item.as_string() + "'");
        spec.mc_placement.push_back(placement);
      }
    } else if (key == "config") {
      spec.config.clear();
      for (const obs::JsonValue& item : require_array(value, key).items()) {
        parsec_config(item.as_string());  // throws on unknown name
        spec.config.push_back(item.as_string());
      }
    } else if (key == "num_applications") {
      spec.num_applications = read_u32_axis(value, key, 1, 64 * 64);
    } else if (key == "threads_per_app") {
      // 0 is the "fill" sentinel, so the lower bound is 0 here.
      spec.threads_per_app = read_u32_axis(value, key, 0, 64 * 64);
    } else if (key == "injection_scale") {
      spec.injection_scale = read_double_axis(value, key, 0.0, 2.0);
    } else if (key == "bursty") {
      spec.bursty = read_bool_axis(value, key);
    } else if (key == "seed") {
      NOCMAP_REQUIRE(value.is_object(), "spec axis 'seed' must be an object");
      for (const auto& [skey, svalue] : value.members()) {
        if (skey == "base") {
          spec.seed.base = svalue.as_uint();
        } else if (skey == "count") {
          const std::uint64_t count = svalue.as_uint();
          NOCMAP_REQUIRE(count >= 1 && count <= kMaxCombinations,
                         "seed count out of range");
          spec.seed.count = static_cast<std::uint32_t>(count);
        } else {
          NOCMAP_REQUIRE(false, "unknown seed axis key '" + skey + "'");
        }
      }
    } else {
      NOCMAP_REQUIRE(false, "unknown spec axis '" + key + "'");
    }
  }
}

void parse_mapper_options(const obs::JsonValue& node,
                          SweepMapperOptions& options) {
  NOCMAP_REQUIRE(node.is_object(), "'mapper_options' must be an object");
  for (const auto& [key, value] : node.members()) {
    if (key == "algorithm_seed") {
      options.algorithm_seed = value.as_uint();
    } else if (key == "mc_trials") {
      options.mc_trials = value.as_uint();
      NOCMAP_REQUIRE(options.mc_trials >= 1, "mc_trials must be >= 1");
    } else if (key == "sa_iterations") {
      options.sa_iterations = value.as_uint();
      NOCMAP_REQUIRE(options.sa_iterations >= 1, "sa_iterations must be >= 1");
    } else {
      NOCMAP_REQUIRE(false, "unknown mapper_options key '" + key + "'");
    }
  }
}

void parse_netsim(const obs::JsonValue& node, SweepNetsimOptions& options) {
  NOCMAP_REQUIRE(node.is_object(), "'netsim' must be an object");
  for (const auto& [key, value] : node.members()) {
    if (key == "enabled") {
      options.enabled = value.as_bool();
    } else if (key == "warmup_cycles") {
      options.warmup_cycles = value.as_uint();
    } else if (key == "measure_cycles") {
      options.measure_cycles = value.as_uint();
      NOCMAP_REQUIRE(options.measure_cycles >= 1,
                     "measure_cycles must be >= 1");
    } else if (key == "max_drain_cycles") {
      options.max_drain_cycles = value.as_uint();
    } else {
      NOCMAP_REQUIRE(false, "unknown netsim key '" + key + "'");
    }
  }
}

}  // namespace

void validate_mapper_name(const std::string& name) {
  NOCMAP_REQUIRE(name == "Global" || name == "MC" || name == "SA" ||
                     name == "SSS" || name == "Random",
                 "unknown mapper '" + name +
                     "' (expected Global, MC, SA, SSS or Random)");
}

CampaignSpec parse_spec(const obs::JsonValue& doc) {
  NOCMAP_REQUIRE(doc.is_object(), "spec document must be a JSON object");
  CampaignSpec spec;
  bool saw_schema = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "schema") {
      NOCMAP_REQUIRE(value.as_string() == kSweepSpecSchema,
                     "unsupported spec schema '" + value.as_string() + "'");
      saw_schema = true;
    } else if (key == "name") {
      spec.name = value.as_string();
      NOCMAP_REQUIRE(!spec.name.empty(), "spec name is empty");
    } else if (key == "axes") {
      NOCMAP_REQUIRE(value.is_object(), "'axes' must be an object");
      parse_axes(value, spec);
    } else if (key == "mappers") {
      spec.mappers.clear();
      for (const obs::JsonValue& item : require_array(value, key).items()) {
        validate_mapper_name(item.as_string());
        NOCMAP_REQUIRE(std::find(spec.mappers.begin(), spec.mappers.end(),
                                 item.as_string()) == spec.mappers.end(),
                       "duplicate mapper '" + item.as_string() + "'");
        spec.mappers.push_back(item.as_string());
      }
    } else if (key == "mapper_options") {
      parse_mapper_options(value, spec.mapper_options);
    } else if (key == "netsim") {
      parse_netsim(value, spec.netsim);
    } else if (key == "expansion") {
      NOCMAP_REQUIRE(value.is_object(), "'expansion' must be an object");
      for (const auto& [ekey, evalue] : value.members()) {
        if (ekey == "skip_invalid") {
          spec.skip_invalid = evalue.as_bool();
        } else {
          NOCMAP_REQUIRE(false, "unknown expansion key '" + ekey + "'");
        }
      }
    } else {
      NOCMAP_REQUIRE(false, "unknown spec key '" + key + "'");
    }
  }
  NOCMAP_REQUIRE(saw_schema, "spec is missing the 'schema' field");
  NOCMAP_REQUIRE(!spec.name.empty(), "spec is missing the 'name' field");
  return spec;
}

CampaignSpec parse_spec(const std::string& json_text) {
  return parse_spec(obs::JsonValue::parse(json_text));
}

CampaignSpec load_spec(const std::string& path) {
  std::ifstream is(path);
  NOCMAP_REQUIRE(is.good(), "cannot open spec file " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  try {
    return parse_spec(buffer.str());
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

obs::JsonValue spec_to_json(const CampaignSpec& spec) {
  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = kSweepSpecSchema;
  doc["name"] = spec.name;

  obs::JsonValue axes = obs::JsonValue::object();
  obs::JsonValue mesh = obs::JsonValue::array();
  for (const std::uint32_t side : spec.mesh_side) {
    mesh.push_back(std::uint64_t{side});
  }
  axes["mesh_side"] = std::move(mesh);
  obs::JsonValue layers = obs::JsonValue::array();
  for (const std::uint32_t l : spec.mesh_layers) {
    layers.push_back(std::uint64_t{l});
  }
  axes["mesh_layers"] = std::move(layers);
  obs::JsonValue tsv = obs::JsonValue::array();
  for (const double t : spec.tsv_hop_cost) tsv.push_back(t);
  axes["tsv_hop_cost"] = std::move(tsv);
  obs::JsonValue topology = obs::JsonValue::array();
  for (const bool torus : spec.torus) {
    topology.push_back(torus ? "torus" : "mesh");
  }
  axes["topology"] = std::move(topology);
  obs::JsonValue placements = obs::JsonValue::array();
  for (const McPlacement p : spec.mc_placement) {
    placements.push_back(mc_placement_name(p));
  }
  axes["mc_placement"] = std::move(placements);
  axes["mc_count"] = std::uint64_t{spec.mc_count};
  obs::JsonValue modes = obs::JsonValue::array();
  for (const MemoryTrafficMode m : spec.traffic_mode) {
    modes.push_back(memory_traffic_mode_name(m));
  }
  axes["traffic_mode"] = std::move(modes);
  obs::JsonValue configs = obs::JsonValue::array();
  for (const std::string& c : spec.config) configs.push_back(c);
  axes["config"] = std::move(configs);
  obs::JsonValue apps = obs::JsonValue::array();
  for (const std::uint32_t a : spec.num_applications) {
    apps.push_back(std::uint64_t{a});
  }
  axes["num_applications"] = std::move(apps);
  obs::JsonValue tpa = obs::JsonValue::array();
  for (const std::uint32_t t : spec.threads_per_app) {
    tpa.push_back(std::uint64_t{t});
  }
  axes["threads_per_app"] = std::move(tpa);
  obs::JsonValue injection = obs::JsonValue::array();
  for (const double s : spec.injection_scale) injection.push_back(s);
  axes["injection_scale"] = std::move(injection);
  obs::JsonValue bursty = obs::JsonValue::array();
  for (const bool b : spec.bursty) bursty.push_back(b);
  axes["bursty"] = std::move(bursty);
  obs::JsonValue seed = obs::JsonValue::object();
  seed["base"] = std::uint64_t{spec.seed.base};
  seed["count"] = std::uint64_t{spec.seed.count};
  axes["seed"] = std::move(seed);
  doc["axes"] = std::move(axes);

  obs::JsonValue mappers = obs::JsonValue::array();
  for (const std::string& m : spec.mappers) mappers.push_back(m);
  doc["mappers"] = std::move(mappers);

  obs::JsonValue mapper_options = obs::JsonValue::object();
  mapper_options["algorithm_seed"] =
      std::uint64_t{spec.mapper_options.algorithm_seed};
  mapper_options["mc_trials"] = std::uint64_t{spec.mapper_options.mc_trials};
  mapper_options["sa_iterations"] =
      std::uint64_t{spec.mapper_options.sa_iterations};
  doc["mapper_options"] = std::move(mapper_options);

  obs::JsonValue netsim = obs::JsonValue::object();
  netsim["enabled"] = spec.netsim.enabled;
  netsim["warmup_cycles"] = std::uint64_t{spec.netsim.warmup_cycles};
  netsim["measure_cycles"] = std::uint64_t{spec.netsim.measure_cycles};
  netsim["max_drain_cycles"] = std::uint64_t{spec.netsim.max_drain_cycles};
  doc["netsim"] = std::move(netsim);

  obs::JsonValue expansion = obs::JsonValue::object();
  expansion["skip_invalid"] = spec.skip_invalid;
  doc["expansion"] = std::move(expansion);
  return doc;
}

std::string spec_digest(const CampaignSpec& spec) {
  const std::string canonical = spec_to_json(spec).dump(0);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a/64
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

Expansion expand_spec(const CampaignSpec& spec) {
  NOCMAP_REQUIRE(!spec.mappers.empty(), "spec has no mappers");
  const std::uint64_t sizes[] = {
      spec.mesh_side.size(),      spec.mesh_layers.size(),
      spec.tsv_hop_cost.size(),   spec.torus.size(),
      spec.mc_placement.size(),   spec.traffic_mode.size(),
      spec.config.size(),
      spec.num_applications.size(), spec.threads_per_app.size(),
      spec.injection_scale.size(), spec.bursty.size(),
      spec.seed.count,            spec.mappers.size()};
  std::uint64_t combinations = 1;
  for (const std::uint64_t n : sizes) {
    NOCMAP_REQUIRE(n >= 1, "empty spec axis");
    NOCMAP_REQUIRE(combinations <= kMaxCombinations / n,
                   "spec expands to more than 10M scenarios");
    combinations *= n;
  }

  Expansion out;
  out.combinations = combinations;
  out.scenarios.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(combinations, 1 << 20)));

  std::uint64_t index = 0;
  for (const std::uint32_t mesh_side : spec.mesh_side) {
   for (const std::uint32_t mesh_layers : spec.mesh_layers) {
    for (const double tsv : spec.tsv_hop_cost) {
     for (const bool torus : spec.torus) {
      for (const McPlacement placement : spec.mc_placement) {
       for (const MemoryTrafficMode mode : spec.traffic_mode) {
        for (const std::string& config : spec.config) {
          for (const std::uint32_t apps : spec.num_applications) {
            for (const std::uint32_t tpa_raw : spec.threads_per_app) {
              for (const double injection : spec.injection_scale) {
                for (const bool bursty : spec.bursty) {
                  for (std::uint32_t s = 0; s < spec.seed.count; ++s) {
                    for (const std::string& mapper : spec.mappers) {
                      const std::uint64_t my_index = index++;
                      const std::uint32_t tiles =
                          mesh_side * mesh_side * mesh_layers;
                      const std::uint32_t tpa =
                          tpa_raw == 0 ? tiles / apps : tpa_raw;
                      const bool random_mc =
                          placement == McPlacement::kRandom;
                      // Torus wraparound is 2D-only and pins corner MCs;
                      // a random MC set must fit the chip.
                      const bool valid =
                          apps <= tiles && tpa >= 1 &&
                          static_cast<std::uint64_t>(apps) * tpa <= tiles &&
                          (!torus || placement == McPlacement::kCorners) &&
                          (!torus || mesh_layers == 1) &&
                          (!random_mc || spec.mc_count <= tiles);
                      if (!valid) {
                        NOCMAP_REQUIRE(
                            spec.skip_invalid,
                            "invalid grid point (odometer index " +
                                std::to_string(my_index) +
                                ") and skip_invalid is false");
                        ++out.skipped;
                        continue;
                      }
                      SweepScenario scenario;
                      scenario.id = out.scenarios.size();
                      scenario.index = my_index;
                      scenario.spec.seed = spec.seed.base + s;
                      scenario.spec.mesh_side = mesh_side;
                      scenario.spec.mesh_layers = mesh_layers;
                      scenario.spec.tsv_hop_cost = tsv;
                      scenario.spec.mc_placement = placement;
                      scenario.spec.mc_count =
                          random_mc ? spec.mc_count : 0;
                      scenario.spec.torus = torus;
                      scenario.spec.traffic_mode = mode;
                      scenario.spec.config = config;
                      scenario.spec.num_applications = apps;
                      scenario.spec.threads_per_app = tpa;
                      scenario.spec.injection_scale = injection;
                      scenario.spec.bursty = bursty;
                      check::validate_scenario(scenario.spec);
                      scenario.mapper = mapper;
                      out.scenarios.push_back(std::move(scenario));
                    }
                  }
                }
              }
            }
          }
        }
       }
      }
     }
    }
   }
  }
  return out;
}

}  // namespace nocmap::sweep
