// Declarative campaign specs for massive parameter sweeps (DESIGN.md §15,
// docs/sweep-spec.md is the operator-facing reference).
//
// A CampaignSpec is a small grid description: one value list per scenario
// axis (mesh side, topology, MC placement, workload config, application
// shape, injection scale, seeds) plus the mapper set and the shared mapper /
// netsim budgets. expand_spec() unrolls the cross-product into a
// deterministic, densely-numbered scenario list — the same spec always
// expands to the same list on every platform — which is what makes campaign
// logs resumable: scenario id k in the log *is* scenario k of the
// expansion, forever.
//
// Per-scenario state reuses check::ScenarioSpec (the fuzzer's scenario
// description): a sweep scenario is exactly a fuzz scenario with the axis
// values substituted for the seed-derived draws, so build_problem() and the
// repro tooling work unchanged on sweep scenarios.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.h"
#include "obs/json.h"

namespace nocmap::sweep {

inline constexpr const char* kSweepSpecSchema = "nocmap.sweep_spec/1";

/// Search budgets shared by every scenario of a campaign (the per-scenario
/// problem varies; the algorithm configuration is a campaign constant so
/// results are comparable across the grid).
struct SweepMapperOptions {
  std::uint64_t algorithm_seed = 7;
  std::uint64_t mc_trials = 2000;
  std::uint64_t sa_iterations = 20000;

  friend bool operator==(const SweepMapperOptions&,
                         const SweepMapperOptions&) = default;
};

/// Cycle-accurate stage settings. Disabled by default: analytic metrics are
/// cheap and every scenario gets them; simulation multiplies campaign cost
/// by orders of magnitude and is opt-in per spec. Scenarios the simulator
/// does not support (check::simulator_supported — torus wraparound) always
/// skip the netsim stage.
struct SweepNetsimOptions {
  bool enabled = false;
  std::uint64_t warmup_cycles = 1000;
  std::uint64_t measure_cycles = 20000;
  std::uint64_t max_drain_cycles = 100000;

  friend bool operator==(const SweepNetsimOptions&,
                         const SweepNetsimOptions&) = default;
};

/// The seed axis: `count` consecutive workload seeds starting at `base`.
struct SeedAxis {
  std::uint64_t base = 1;
  std::uint32_t count = 1;

  friend bool operator==(const SeedAxis&, const SeedAxis&) = default;
};

/// One parsed campaign spec. Field order below is the canonical expansion
/// order (outermost axis first; the mapper axis is innermost, so the
/// records of one base scenario are consecutive in the log).
struct CampaignSpec {
  std::string name;
  std::vector<std::uint32_t> mesh_side = {8};
  /// Stacked dies per chip; 1 is the classic planar mesh.
  std::vector<std::uint32_t> mesh_layers = {1};
  /// Vertical-hop cost in planar-hop units (only meaningful with layers>1).
  std::vector<double> tsv_hop_cost = {1.0};
  std::vector<bool> torus = {false};  ///< "topology" axis: mesh / torus
  std::vector<McPlacement> mc_placement = {McPlacement::kCorners};
  /// MC-set size used by grid points whose placement is "random" (a scalar,
  /// not an axis; the per-scenario MC set is then drawn from the scenario
  /// seed). Points where it exceeds the tile count are invalid combos.
  std::uint32_t mc_count = 4;
  /// Memory-traffic mode axis (proximity / interleaved / multicast).
  std::vector<MemoryTrafficMode> traffic_mode = {
      MemoryTrafficMode::kProximity};
  std::vector<std::string> config = {"C1"};
  std::vector<std::uint32_t> num_applications = {4};
  /// 0 means "fill": tiles / num_applications threads per application.
  std::vector<std::uint32_t> threads_per_app = {0};
  std::vector<double> injection_scale = {0.5};
  std::vector<bool> bursty = {false};
  SeedAxis seed;
  std::vector<std::string> mappers = {"SSS"};
  SweepMapperOptions mapper_options;
  SweepNetsimOptions netsim;
  /// Skip structurally invalid grid points (torus with non-corner MCs or
  /// with stacked layers, more threads than tiles, a random MC set larger
  /// than the chip) instead of failing the whole expansion.
  bool skip_invalid = true;
};

/// One expanded scenario: a dense id, the odometer index it came from (for
/// provenance when invalid combinations were skipped), the fuzzer-format
/// scenario and the mapper to run on it.
struct SweepScenario {
  std::uint64_t id = 0;
  std::uint64_t index = 0;
  check::ScenarioSpec spec;
  std::string mapper;
};

/// expand_spec output: the scenario list plus grid accounting.
struct Expansion {
  std::vector<SweepScenario> scenarios;
  std::uint64_t combinations = 0;  ///< full odometer size
  std::uint64_t skipped = 0;       ///< invalid combinations dropped
};

/// Parses a spec document. Unknown keys anywhere are errors (typo safety:
/// a misspelled axis must not silently collapse to its default), as are
/// empty axes, out-of-range values and unknown mapper / config / placement
/// names. The document's "schema" field must be nocmap.sweep_spec/1.
CampaignSpec parse_spec(const obs::JsonValue& doc);
CampaignSpec parse_spec(const std::string& json_text);
CampaignSpec load_spec(const std::string& path);

/// The canonical JSON form of a spec: every axis explicit (defaults
/// filled in), fixed member order. Two specs with equal canonical forms
/// expand identically.
obs::JsonValue spec_to_json(const CampaignSpec& spec);

/// FNV-1a/64 of the canonical form, as "0x..." hex. Stored in the campaign
/// log header so a resume against a different spec is refused instead of
/// silently mixing scenario numberings.
std::string spec_digest(const CampaignSpec& spec);

/// Unrolls the cross-product in canonical axis order. Deterministic:
/// depends only on the spec. Throws when skip_invalid is false and the
/// grid contains an invalid combination.
Expansion expand_spec(const CampaignSpec& spec);

/// Human-readable mapper-name check ("Global", "MC", "SA", "SSS",
/// "Random"); throws on unknown names. Shared with the runner's factory.
void validate_mapper_name(const std::string& name);

}  // namespace nocmap::sweep
