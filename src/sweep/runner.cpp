#include "sweep/runner.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/annealing_mapper.h"
#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/random_mapper.h"
#include "core/sss_mapper.h"
#include "netsim/sim.h"
#include "obs/metrics.h"
#include "power/dsent_lite.h"
#include "util/error.h"

namespace nocmap::sweep {

namespace {

/// Fresh mapper for one scenario. Mappers run their canonical *serial*
/// protocol: sweep parallelism shards scenarios across workers, so each
/// scenario's result is the single-thread result by construction and the
/// campaign log cannot depend on the worker count.
std::unique_ptr<Mapper> make_mapper(const std::string& name,
                                    const SweepMapperOptions& options) {
  const ParallelConfig serial = ParallelConfig::serial_config();
  if (name == "Global") return std::make_unique<GlobalMapper>();
  if (name == "MC") {
    return std::make_unique<MonteCarloMapper>(options.mc_trials,
                                              options.algorithm_seed, serial);
  }
  if (name == "SA") {
    AnnealingParams params;
    params.iterations = options.sa_iterations;
    params.seed = options.algorithm_seed;
    params.parallel = serial;
    return std::make_unique<AnnealingMapper>(params);
  }
  if (name == "SSS") {
    SssOptions sss;
    sss.parallel = serial;
    return std::make_unique<SortSelectSwapMapper>(sss);
  }
  if (name == "Random") {
    return std::make_unique<RandomMapper>(options.algorithm_seed);
  }
  NOCMAP_REQUIRE(false, "unknown mapper '" + name + "'");
  return nullptr;
}

SimConfig sim_config_for(const CampaignSpec& spec,
                         const check::ScenarioSpec& scenario) {
  SimConfig config;
  config.warmup_cycles = spec.netsim.warmup_cycles;
  config.measure_cycles = spec.netsim.measure_cycles;
  config.max_drain_cycles = spec.netsim.max_drain_cycles;
  config.traffic.seed = scenario.seed;
  config.traffic.injection_scale = scenario.injection_scale;
  config.traffic.bursty = scenario.bursty;
  return config;
}

/// One scenario's in-flight state between the map+evaluate stage and the
/// batched simulation stage.
struct ScenarioRun {
  std::unique_ptr<ObmProblem> problem;
  Mapping mapping;
  LatencyReport report;
  double map_us = 0.0;
};

obs::JsonValue scenario_record(const SweepScenario& scenario,
                               const ScenarioRun& run, const SimResult* sim) {
  obs::JsonValue rec = obs::JsonValue::object();
  rec["id"] = std::uint64_t{scenario.id};
  rec["index"] = std::uint64_t{scenario.index};
  rec["seed"] = std::uint64_t{scenario.spec.seed};
  rec["mesh_side"] = std::uint64_t{scenario.spec.mesh_side};
  rec["mesh_layers"] = std::uint64_t{scenario.spec.mesh_layers};
  rec["tsv_hop_cost"] = scenario.spec.tsv_hop_cost;
  rec["topology"] = scenario.spec.torus ? "torus" : "mesh";
  rec["mc_placement"] = mc_placement_name(scenario.spec.mc_placement);
  rec["mc_count"] = std::uint64_t{scenario.spec.mc_count};
  rec["traffic_mode"] =
      memory_traffic_mode_name(scenario.spec.traffic_mode);
  rec["config"] = scenario.spec.config;
  rec["num_applications"] = std::uint64_t{scenario.spec.num_applications};
  rec["threads_per_app"] = std::uint64_t{scenario.spec.threads_per_app};
  rec["injection_scale"] = scenario.spec.injection_scale;
  rec["bursty"] = scenario.spec.bursty;
  rec["mapper"] = scenario.mapper;
  rec["max_apl"] = run.report.max_apl;
  rec["g_apl"] = run.report.g_apl;
  rec["dev_apl"] = run.report.dev_apl;
  rec["objective"] = run.report.objective;
  if (sim != nullptr) {
    obs::JsonValue s = obs::JsonValue::object();
    s["max_apl"] = sim->max_apl;
    s["g_apl"] = sim->g_apl;
    s["dev_apl"] = sim->dev_apl;
    s["packets"] = std::uint64_t{sim->packets_measured};
    s["link_utilization"] = sim->load.link_utilization;
    s["max_crossbar_per_cycle"] = sim->load.max_crossbar_per_cycle;
    s["drain_incomplete"] = sim->drain_incomplete;
    const Mesh& mesh = run.problem->mesh();
    const DsentLitePowerModel power_model;
    const PowerReport power =
        power_model.report(sim->activity, sim->measured_cycles,
                           mesh.num_tiles(), mesh_link_count(mesh));
    s["dynamic_mw"] = power.dynamic_mw;
    s["total_mw"] = power.total_mw;
    rec["sim"] = std::move(s);
  } else {
    rec["sim"] = obs::JsonValue();  // null: analytic-only scenario
  }
  // Wall clock of the map+evaluate stage — the one record field that is
  // *not* reproducible run to run; the aggregator ignores it.
  rec["map_us"] = run.map_us;
  return rec;
}

}  // namespace

CampaignLog read_campaign_log(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  NOCMAP_REQUIRE(is.good(), "cannot open campaign log " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  CampaignLog log;
  bool have_header = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn tail: not a complete line
    const std::string line = text.substr(pos, nl - pos);
    if (!have_header) {
      // A malformed header means the file is not a campaign log at all;
      // let the parse error propagate rather than "resuming" over it.
      obs::JsonValue header = obs::JsonValue::parse(line);
      const obs::JsonValue* schema = header.find("schema");
      NOCMAP_REQUIRE(schema != nullptr && schema->is_string() &&
                         schema->as_string() == kSweepLogSchema,
                     path + " is not a nocmap.sweep_log/1 file");
      log.header = std::move(header);
      have_header = true;
    } else {
      try {
        obs::JsonValue record = obs::JsonValue::parse(line);
        const obs::JsonValue* id = record.find("id");
        if (id == nullptr || id->as_uint() != log.records.size()) break;
        log.records.push_back(std::move(record));
      } catch (const Error&) {
        break;  // corrupt line: everything before it still counts
      }
    }
    log.good_bytes = nl + 1;
    pos = nl + 1;
  }
  NOCMAP_REQUIRE(have_header, "campaign log has no header line: " + path);
  return log;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  static const obs::Counter c_scenarios("sweep.scenarios");
  static const obs::Counter c_resumed("sweep.scenarios_resumed");
  static const obs::Counter c_chunks("sweep.chunks");
  static const obs::Timer t_chunk("sweep.chunk");
  static const obs::Timer t_map_eval("sweep.map_eval");

  NOCMAP_REQUIRE(options.chunk_size >= 1, "chunk_size must be >= 1");
  const Expansion expansion = expand_spec(spec);
  const std::uint64_t total = expansion.scenarios.size();
  const std::string digest = spec_digest(spec);

  std::filesystem::create_directories(options.out_dir);
  const std::filesystem::path log_path =
      std::filesystem::path(options.out_dir) / "campaign.jsonl";

  CampaignResult result;
  result.total = total;
  result.log_path = log_path.string();

  std::error_code ec;
  const bool existing = std::filesystem::exists(log_path, ec) &&
                        std::filesystem::file_size(log_path, ec) > 0;
  if (existing) {
    CampaignLog log = read_campaign_log(log_path.string());
    const obs::JsonValue* log_digest = log.header.find("spec_digest");
    NOCMAP_REQUIRE(log_digest != nullptr && log_digest->is_string() &&
                       log_digest->as_string() == digest,
                   "campaign log " + log_path.string() +
                       " was produced by a different spec (digest mismatch); "
                       "refusing to resume");
    const obs::JsonValue* log_total = log.header.find("scenarios");
    NOCMAP_REQUIRE(log_total != nullptr && log_total->as_uint() == total,
                   "campaign log scenario count does not match the spec");
    NOCMAP_REQUIRE(log.records.size() <= total,
                   "campaign log has more records than the expansion");
    result.resumed = log.records.size();
    c_resumed.add(result.resumed);
    // Drop any torn tail so the append below starts on a line boundary.
    if (std::filesystem::file_size(log_path) > log.good_bytes) {
      std::filesystem::resize_file(log_path, log.good_bytes);
    }
  } else {
    std::ofstream out(log_path, std::ios::binary | std::ios::trunc);
    NOCMAP_REQUIRE(out.good(), "cannot create " + log_path.string());
    obs::JsonValue header = obs::JsonValue::object();
    header["schema"] = kSweepLogSchema;
    header["name"] = spec.name;
    header["spec_digest"] = digest;
    header["scenarios"] = std::uint64_t{total};
    header["combinations"] = std::uint64_t{expansion.combinations};
    header["skipped"] = std::uint64_t{expansion.skipped};
    out << header.dump(0) << '\n' << std::flush;
  }

  std::ofstream out(log_path, std::ios::binary | std::ios::app);
  NOCMAP_REQUIRE(out.good(), "cannot append to " + log_path.string());

  ParallelTrialRunner runner(options.parallel);
  std::uint64_t next = result.resumed;
  while (next < total) {
    if (options.max_scenarios != 0 &&
        result.completed >= options.max_scenarios) {
      break;
    }
    std::uint64_t chunk = std::min<std::uint64_t>(options.chunk_size,
                                                  total - next);
    if (options.max_scenarios != 0) {
      chunk = std::min<std::uint64_t>(
          chunk, options.max_scenarios - result.completed);
    }
    const obs::ScopedTimer chunk_timer(t_chunk);

    // Stage 1: map + analytic evaluation, one pure unit per scenario
    // sharded across workers (the mappers themselves run serial — see
    // make_mapper).
    std::vector<ScenarioRun> runs(static_cast<std::size_t>(chunk));
    {
      const obs::ScopedTimer map_timer(t_map_eval);
      runner.for_each(static_cast<std::size_t>(chunk), [&](std::size_t i) {
        const SweepScenario& scenario = expansion.scenarios[next + i];
        const auto start = std::chrono::steady_clock::now();
        ScenarioRun& run = runs[i];
        run.problem =
            std::make_unique<ObmProblem>(check::build_problem(scenario.spec));
        std::unique_ptr<Mapper> mapper =
            make_mapper(scenario.mapper, spec.mapper_options);
        run.mapping = mapper->map(*run.problem);
        run.report = evaluate(*run.problem, run.mapping);
        run.map_us = std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      });
    }

    // Stage 2: cycle-accurate simulation for the eligible scenarios of the
    // chunk, sharded through the existing batch API. Simulator-unsupported
    // topologies (torus wraparound) stay analytic-only — classified here
    // instead of tripping the simulator's NOCMAP_REQUIRE.
    std::vector<std::size_t> sim_slot(static_cast<std::size_t>(chunk),
                                      ParallelTrialRunner::npos);
    std::vector<BatchScenario> batch;
    if (spec.netsim.enabled) {
      for (std::size_t i = 0; i < chunk; ++i) {
        const SweepScenario& scenario = expansion.scenarios[next + i];
        if (!check::simulator_supported(scenario.spec)) continue;
        sim_slot[i] = batch.size();
        SimConfig sim_config = sim_config_for(spec, scenario.spec);
        // Within-simulation partitioning: an execution knob, invisible in
        // the records (bit-identical at every width).
        sim_config.sim_workers = options.sim_workers;
        batch.push_back(BatchScenario{runs[i].problem.get(), &runs[i].mapping,
                                      sim_config});
      }
    }
    const std::vector<SimResult> sims =
        batch.empty() ? std::vector<SimResult>{}
                      : run_simulation_batch(batch, options.parallel);

    // Stage 3: serial append in id order, flushed per line so a kill
    // loses at most the line being written.
    for (std::size_t i = 0; i < chunk; ++i) {
      const SweepScenario& scenario = expansion.scenarios[next + i];
      const SimResult* sim = sim_slot[i] == ParallelTrialRunner::npos
                                 ? nullptr
                                 : &sims[sim_slot[i]];
      out << scenario_record(scenario, runs[i], sim).dump(0) << '\n'
          << std::flush;
      NOCMAP_REQUIRE(out.good(),
                     "write to " + log_path.string() + " failed");
    }
    c_scenarios.add(chunk);
    c_chunks.add();
    next += chunk;
    result.completed += chunk;
    if (options.verbose) {
      std::cout << "[sweep] " << next << "/" << total << " scenarios ("
                << spec.name << ")\n";
    }
  }

  result.finished = next == total;
  return result;
}

}  // namespace nocmap::sweep
