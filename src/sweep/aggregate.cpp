#include "sweep/aggregate.h"

#include <iterator>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"

namespace nocmap::sweep {

namespace {

const obs::JsonValue& field(const obs::JsonValue& record, const char* key) {
  const obs::JsonValue* v = record.find(key);
  NOCMAP_REQUIRE(v != nullptr,
                 std::string("campaign record is missing '") + key + "'");
  return *v;
}

/// Key-as-string for fields that postdate older campaign logs: a missing
/// key folds into its classic default so pre-extension logs aggregate
/// unchanged.
std::string field_or(const obs::JsonValue& record, const char* key,
                     const char* fallback) {
  const obs::JsonValue* v = record.find(key);
  return v != nullptr ? v->dump(0) : std::string(fallback);
}

/// Insertion-ordered accumulator map: first-appearance order is record
/// order, which is id order, which is spec order — so every section of the
/// frontier document lists its keys deterministically.
template <typename Acc>
class OrderedAccumulators {
 public:
  Acc& at(const std::string& key) {
    for (auto& [k, acc] : entries_) {
      if (k == key) return acc;
    }
    entries_.emplace_back(key, Acc{});
    return entries_.back().second;
  }
  const std::vector<std::pair<std::string, Acc>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, Acc>> entries_;
};

struct MapperAcc {
  std::uint64_t scenarios = 0;
  std::uint64_t wins = 0;
  double sum_max_apl = 0.0;
  double worst_max_apl = 0.0;
  double sum_g_apl = 0.0;
  double sum_dev_apl = 0.0;
  std::uint64_t simulated = 0;
  double sum_sim_max_apl = 0.0;
  double sum_dynamic_mw = 0.0;
};

struct AxisAcc {
  std::uint64_t scenarios = 0;
  double sum_max_apl = 0.0;
  double sum_g_apl = 0.0;
};

/// One (mesh_side, injection_scale) cell of a frontier table.
struct CellAcc {
  std::uint64_t mesh_side = 0;
  double injection_scale = 0.0;
  std::uint64_t scenarios = 0;
  double best = std::numeric_limits<double>::infinity();
  std::string best_mapper;
  double sum = 0.0;
};

/// Group accumulator for win counting: records of one base scenario
/// (everything but the mapper axis) are consecutive in id order because
/// the mapper axis is innermost, but grouping by key keeps this correct
/// even for hand-edited logs.
struct GroupAcc {
  double best = std::numeric_limits<double>::infinity();
  std::string best_mapper;
};

std::string axis_value_string(const obs::JsonValue& v) {
  return v.dump(0);
}

obs::JsonValue cell_table(const OrderedAccumulators<CellAcc>& cells,
                          bool with_mean) {
  obs::JsonValue table = obs::JsonValue::array();
  for (const auto& [key, cell] : cells.entries()) {
    (void)key;
    if (cell.scenarios == 0) continue;
    obs::JsonValue row = obs::JsonValue::object();
    row["mesh_side"] = std::uint64_t{cell.mesh_side};
    row["injection_scale"] = cell.injection_scale;
    row["scenarios"] = std::uint64_t{cell.scenarios};
    row["best"] = cell.best;
    row["best_mapper"] = cell.best_mapper;
    if (with_mean) {
      row["mean"] = cell.sum / static_cast<double>(cell.scenarios);
    }
    table.push_back(std::move(row));
  }
  return table;
}

}  // namespace

obs::JsonValue aggregate_log(const CampaignLog& log) {
  OrderedAccumulators<MapperAcc> mappers;
  OrderedAccumulators<GroupAcc> groups;
  OrderedAccumulators<CellAcc> max_apl_cells;
  OrderedAccumulators<CellAcc> g_apl_cells;
  OrderedAccumulators<CellAcc> power_cells;
  // Axis name → (value → marginal). Axis list is fixed so the document
  // shape is stable even for degenerate specs. Axes with a non-null
  // fallback postdate older logs and default instead of erroring.
  struct AxisDef {
    const char* name;
    const char* fallback;
  };
  constexpr AxisDef axis_names[] = {
      {"mesh_side", nullptr},          {"mesh_layers", "1"},
      {"topology", nullptr},           {"mc_placement", nullptr},
      {"traffic_mode", "\"proximity\""}, {"config", nullptr},
      {"num_applications", nullptr},   {"injection_scale", nullptr}};
  constexpr std::size_t kNumAxes = std::size(axis_names);
  OrderedAccumulators<AxisAcc> axes[kNumAxes];

  std::uint64_t simulated = 0;
  std::uint64_t drain_incomplete = 0;

  for (const obs::JsonValue& record : log.records) {
    const std::string mapper = field(record, "mapper").as_string();
    const double max_apl = field(record, "max_apl").as_double();
    const double g_apl = field(record, "g_apl").as_double();
    const double dev_apl = field(record, "dev_apl").as_double();
    const std::uint64_t mesh_side = field(record, "mesh_side").as_uint();
    const double injection = field(record, "injection_scale").as_double();

    MapperAcc& m = mappers.at(mapper);
    ++m.scenarios;
    m.sum_max_apl += max_apl;
    m.worst_max_apl = std::max(m.worst_max_apl, max_apl);
    m.sum_g_apl += g_apl;
    m.sum_dev_apl += dev_apl;

    // Base-scenario key: every record field that identifies the grid point
    // except the mapper. Ties go to the first record in id order.
    const std::string group_key =
        field(record, "seed").dump(0) + "|" + std::to_string(mesh_side) +
        "|" + field(record, "topology").as_string() + "|" +
        field(record, "mc_placement").as_string() + "|" +
        field(record, "config").as_string() + "|" +
        field(record, "num_applications").dump(0) + "|" +
        field(record, "threads_per_app").dump(0) + "|" +
        field(record, "injection_scale").dump(0) + "|" +
        field(record, "bursty").dump(0) + "|" +
        field_or(record, "mesh_layers", "1") + "|" +
        field_or(record, "tsv_hop_cost", "1") + "|" +
        field_or(record, "mc_count", "0") + "|" +
        field_or(record, "traffic_mode", "\"proximity\"");
    GroupAcc& group = groups.at(group_key);
    if (max_apl < group.best) {
      group.best = max_apl;
      group.best_mapper = mapper;
    }

    const std::string cell_key =
        std::to_string(mesh_side) + "|" + field(record, "injection_scale")
                                              .dump(0);
    auto fold_cell = [&](OrderedAccumulators<CellAcc>& cells, double value) {
      CellAcc& cell = cells.at(cell_key);
      cell.mesh_side = mesh_side;
      cell.injection_scale = injection;
      ++cell.scenarios;
      cell.sum += value;
      if (value < cell.best) {
        cell.best = value;
        cell.best_mapper = mapper;
      }
    };
    fold_cell(max_apl_cells, max_apl);
    fold_cell(g_apl_cells, g_apl);

    const obs::JsonValue& sim = field(record, "sim");
    if (!sim.is_null()) {
      ++simulated;
      ++m.simulated;
      m.sum_sim_max_apl += field(sim, "max_apl").as_double();
      const double dynamic_mw = field(sim, "dynamic_mw").as_double();
      m.sum_dynamic_mw += dynamic_mw;
      if (field(sim, "drain_incomplete").as_bool()) ++drain_incomplete;
      fold_cell(power_cells, dynamic_mw);
    }

    for (std::size_t a = 0; a < kNumAxes; ++a) {
      const obs::JsonValue* v = record.find(axis_names[a].name);
      NOCMAP_REQUIRE(v != nullptr || axis_names[a].fallback != nullptr,
                     std::string("campaign record is missing '") +
                         axis_names[a].name + "'");
      AxisAcc& acc = axes[a].at(v != nullptr
                                    ? axis_value_string(*v)
                                    : std::string(axis_names[a].fallback));
      ++acc.scenarios;
      acc.sum_max_apl += max_apl;
      acc.sum_g_apl += g_apl;
    }
  }

  // Wins: fold the group winners back into the mapper marginals.
  for (const auto& [key, group] : groups.entries()) {
    (void)key;
    ++mappers.at(group.best_mapper).wins;
  }

  obs::JsonValue doc = obs::JsonValue::object();
  doc["schema"] = kSweepFrontierSchema;
  const obs::JsonValue* name = log.header.find("name");
  doc["name"] = name != nullptr && name->is_string() ? *name : obs::JsonValue();
  const obs::JsonValue* digest = log.header.find("spec_digest");
  doc["spec_digest"] =
      digest != nullptr && digest->is_string() ? *digest : obs::JsonValue();
  doc["scenarios"] = std::uint64_t{log.records.size()};
  const obs::JsonValue* expected = log.header.find("scenarios");
  doc["complete"] = expected != nullptr &&
                    expected->as_uint() == log.records.size();
  doc["simulated"] = std::uint64_t{simulated};
  doc["drain_incomplete"] = std::uint64_t{drain_incomplete};

  obs::JsonValue mapper_section = obs::JsonValue::object();
  for (const auto& [mapper_name, m] : mappers.entries()) {
    obs::JsonValue row = obs::JsonValue::object();
    const double n = static_cast<double>(m.scenarios);
    row["scenarios"] = std::uint64_t{m.scenarios};
    row["wins"] = std::uint64_t{m.wins};
    row["mean_max_apl"] = m.sum_max_apl / n;
    row["worst_max_apl"] = m.worst_max_apl;
    row["mean_g_apl"] = m.sum_g_apl / n;
    row["mean_dev_apl"] = m.sum_dev_apl / n;
    row["simulated"] = std::uint64_t{m.simulated};
    if (m.simulated > 0) {
      const double k = static_cast<double>(m.simulated);
      row["mean_sim_max_apl"] = m.sum_sim_max_apl / k;
      row["mean_dynamic_mw"] = m.sum_dynamic_mw / k;
    }
    mapper_section[mapper_name] = std::move(row);
  }
  doc["mappers"] = std::move(mapper_section);

  obs::JsonValue frontier = obs::JsonValue::object();
  frontier["max_apl"] = cell_table(max_apl_cells, /*with_mean=*/true);
  frontier["g_apl"] = cell_table(g_apl_cells, /*with_mean=*/true);
  frontier["power_mw"] = cell_table(power_cells, /*with_mean=*/true);
  doc["frontier"] = std::move(frontier);

  obs::JsonValue axes_section = obs::JsonValue::object();
  for (std::size_t a = 0; a < kNumAxes; ++a) {
    obs::JsonValue axis = obs::JsonValue::array();
    for (const auto& [value, acc] : axes[a].entries()) {
      obs::JsonValue row = obs::JsonValue::object();
      row["value"] = value;
      row["scenarios"] = std::uint64_t{acc.scenarios};
      const double n = static_cast<double>(acc.scenarios);
      row["mean_max_apl"] = acc.sum_max_apl / n;
      row["mean_g_apl"] = acc.sum_g_apl / n;
      axis.push_back(std::move(row));
    }
    axes_section[axis_names[a].name] = std::move(axis);
  }
  doc["axes"] = std::move(axes_section);
  return doc;
}

obs::JsonValue aggregate_file(const std::string& log_path) {
  return aggregate_log(read_campaign_log(log_path));
}

}  // namespace nocmap::sweep
