// Campaign-log aggregation: folds a (possibly partial) campaign.jsonl into
// the frontier document (`nocmap.sweep_frontier/1`) — per-mapper quality
// marginals, per-axis marginals, and the max-APL / g-APL / power frontiers
// over the (mesh_side × injection_scale) load grid. docs/campaigns.md
// explains how to read the output; docs/metrics-schema.md lists the
// sweep.* RunReport fields derived from it.
//
// Determinism contract: the aggregate depends only on the reproducible
// record fields (the per-scenario `map_us` wall clock is ignored), and all
// folds run in scenario-id order, so a campaign's final frontier document
// is byte-identical at any worker count and across any interrupt/resume
// history.
#pragma once

#include <string>

#include "obs/json.h"
#include "sweep/runner.h"

namespace nocmap::sweep {

inline constexpr const char* kSweepFrontierSchema = "nocmap.sweep_frontier/1";

/// Builds the frontier document from a parsed log. Throws when a record is
/// missing a required field (a log written by a different tool version).
obs::JsonValue aggregate_log(const CampaignLog& log);

/// read_campaign_log + aggregate_log.
obs::JsonValue aggregate_file(const std::string& log_path);

}  // namespace nocmap::sweep
