// Resumable campaign execution (DESIGN.md §15, docs/campaigns.md).
//
// run_campaign drives an expanded spec through the repo's two existing
// fan-out engines — ParallelTrialRunner for the map+evaluate stage and
// run_simulation_batch for the cycle-accurate stage — in fixed-size chunks,
// appending one compact JSON line per completed scenario to
// <out_dir>/campaign.jsonl. Scenarios complete strictly in id order, so the
// log is always a prefix of the full campaign: resuming is "count the
// complete lines, truncate any torn tail, continue from there". Every
// per-scenario record is deterministic for the spec (mappers run their
// canonical serial protocol inside each scenario; parallelism comes from
// sharding scenarios across workers), so the final log — and therefore the
// aggregate built from it — is identical at any worker count and across
// any interrupt/resume history. The only non-reproducible record field is
// `map_us` (per-scenario wall clock), which the aggregator ignores.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "obs/json.h"
#include "sweep/spec.h"

namespace nocmap::sweep {

inline constexpr const char* kSweepLogSchema = "nocmap.sweep_log/1";

/// Execution knobs for one run_campaign call.
struct CampaignOptions {
  /// Directory for campaign.jsonl (created on demand).
  std::string out_dir = "campaign";
  /// Worker policy for both fan-out stages.
  ParallelConfig parallel;
  /// Spatial-partition workers *inside* each simulated scenario
  /// (SimConfig::sim_workers, DESIGN.md §16). Pure execution knob: results
  /// are bit-identical at every value, so it is not part of the spec
  /// digest and may differ between a run and its resume. Use it when the
  /// campaign has few, large scenarios — across-scenario sharding
  /// (`parallel`) is the better lever when scenarios outnumber cores.
  std::size_t sim_workers = 1;
  /// Scenarios per chunk: the commit granularity. A chunk fully completes
  /// (and its records are flushed line-by-line) before the next starts.
  std::size_t chunk_size = 64;
  /// Stop after completing this many *new* scenarios (0 = run to the end).
  /// The interruption story in one knob: a capped run plus a later
  /// uncapped run equals one uninterrupted run, byte for byte (minus
  /// map_us values).
  std::size_t max_scenarios = 0;
  /// Progress lines on stdout every chunk.
  bool verbose = false;
};

/// What one run_campaign call did.
struct CampaignResult {
  std::uint64_t total = 0;      ///< scenarios in the expansion
  std::uint64_t resumed = 0;    ///< found already complete in the log
  std::uint64_t completed = 0;  ///< newly completed by this call
  bool finished = false;        ///< log now covers the whole campaign
  std::string log_path;
};

/// A parsed campaign log: the header plus every complete record, in id
/// order. `good_bytes` is the file offset just past the last complete
/// line — anything beyond it (a torn write from a kill) is garbage the
/// runner truncates away on resume.
struct CampaignLog {
  obs::JsonValue header;
  std::vector<obs::JsonValue> records;
  std::uintmax_t good_bytes = 0;
};

/// Reads a campaign log, tolerating a truncated or corrupt tail: parsing
/// stops at the first incomplete/malformed line or id-sequence break, and
/// everything before it is returned. Throws only when the file cannot be
/// opened or its header is missing/foreign.
CampaignLog read_campaign_log(const std::string& path);

/// Runs (or resumes) the campaign described by `spec`. When the log file
/// already exists, its header must carry this spec's digest — a resume
/// against a different spec throws instead of mixing scenario numberings.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options);

}  // namespace nocmap::sweep
