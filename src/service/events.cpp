#include "service/events.h"

#include <utility>

#include "util/error.h"
#include "util/rng.h"
#include "workload/synthesis.h"

namespace nocmap::service {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kDeparture: return "departure";
    case EventKind::kPhaseChange: return "phase_change";
  }
  return "?";
}

namespace {

/// One application's rate vectors from the Table-3 synthesis layer. The
/// seed is forked per event so every arrival/phase draws an independent,
/// reproducible rate profile.
Application synthesize_app(const std::string& config_name,
                           std::uint64_t seed, std::uint32_t threads,
                           std::uint64_t app_id) {
  SynthesisOptions opt;
  opt.num_applications = 1;
  opt.threads_per_app = threads;
  const Workload one =
      synthesize_workload(parsec_config(config_name), seed, opt);
  Application app = one.application(0);
  app.name = "app" + std::to_string(app_id);
  return app;
}

const char* kConfigCycle[] = {"C1", "C2", "C3", "C4",
                              "C5", "C6", "C7", "C8"};

}  // namespace

std::vector<Event> generate_trace(const TraceConfig& config) {
  NOCMAP_REQUIRE(config.num_tiles > 0, "trace needs a positive tile count");
  NOCMAP_REQUIRE(config.min_threads_per_app >= 1 &&
                     config.min_threads_per_app <= config.max_threads_per_app,
                 "trace thread-count range is empty");
  NOCMAP_REQUIRE(config.min_threads_per_app <= config.num_tiles,
                 "smallest application exceeds the chip");
  NOCMAP_REQUIRE(config.phase_change_fraction >= 0.0 &&
                     config.phase_change_fraction <= 1.0,
                 "phase-change fraction must be a probability");

  Rng rng(config.seed, 0x73657276ULL);  // "serv"
  std::vector<Event> events;
  events.reserve(config.num_events);

  // The generator's mirror of the service's resident set: ids + sizes.
  struct Live {
    std::uint64_t id;
    std::uint32_t threads;
  };
  std::vector<Live> live;
  std::uint32_t occupied = 0;
  std::uint64_t next_id = 1;

  const auto config_for = [&](std::uint64_t id) -> std::string {
    if (!config.config.empty()) return config.config;
    return kConfigCycle[id % 8];
  };

  while (events.size() < config.num_events) {
    const double r = rng.uniform();
    const double occupancy =
        static_cast<double>(occupied) / static_cast<double>(config.num_tiles);
    if (!live.empty() && r < config.phase_change_fraction) {
      // Phase change of a random live application: same thread count, a
      // fresh rate draw (possibly a different Table-3 configuration).
      const Live& target =
          live[rng.uniform_u32(static_cast<std::uint32_t>(live.size()))];
      Event ev;
      ev.kind = EventKind::kPhaseChange;
      ev.app_id = target.id;
      ev.app = synthesize_app(config_for(target.id + events.size()),
                              rng.fork(events.size()).uniform_u32(1u << 30),
                              target.threads, target.id);
      events.push_back(std::move(ev));
      continue;
    }
    // Split the remainder between arrivals and departures; favour arrivals
    // on an empty chip and departures on a full one so occupancy churns
    // through the whole range instead of saturating.
    const double p_departure = live.empty() ? 0.0 : 0.15 + 0.55 * occupancy;
    if (rng.uniform() < p_departure) {
      const std::size_t idx =
          rng.uniform_u32(static_cast<std::uint32_t>(live.size()));
      Event ev;
      ev.kind = EventKind::kDeparture;
      ev.app_id = live[idx].id;
      events.push_back(std::move(ev));
      occupied -= live[idx].threads;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      continue;
    }
    const std::uint32_t threads =
        config.min_threads_per_app +
        rng.uniform_u32(config.max_threads_per_app -
                        config.min_threads_per_app + 1);
    const std::uint64_t id = next_id++;
    Event ev;
    ev.kind = EventKind::kArrival;
    ev.app_id = id;
    ev.app = synthesize_app(config_for(id),
                            rng.fork(~events.size()).uniform_u32(1u << 30),
                            threads, id);
    events.push_back(std::move(ev));
    // Mirror the service's admission rule so the live set stays in sync:
    // an over-capacity arrival is emitted (to exercise rejection) but does
    // not join the live set.
    if (threads <= config.num_tiles - occupied) {
      live.push_back({id, threads});
      occupied += threads;
    }
  }
  return events;
}

}  // namespace nocmap::service
