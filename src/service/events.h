// Event vocabulary of the online mapping service (DESIGN.md §13).
//
// A long-lived CMP is driven by a stream of workload events: applications
// arrive (and must be admitted and placed), depart (freeing their tiles,
// usually a non-contiguous region), and change phase (same threads, new
// rate statistics — PARSEC phases differ mostly in their cache/memory
// request rates). Every event carries an external application id so a
// trace is self-describing and replayable.
//
// generate_trace() synthesizes a deterministic event stream from one seed:
// it simulates the chip's admission bookkeeping (an arrival fits iff its
// thread count is at most the free-tile count, exactly the MappingService
// admission rule) so departures and phase changes always reference live
// applications, while arrivals deliberately include over-capacity requests
// to exercise the rejection path. Per-application rate vectors come from
// the Table-3 synthesis layer, so traces share the paper's workload
// statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace nocmap::service {

enum class EventKind : std::uint8_t { kArrival, kDeparture, kPhaseChange };

/// One service event. `app` is the full application for arrivals and the
/// replacement thread profiles (same thread count) for phase changes;
/// departures carry only the id.
struct Event {
  EventKind kind = EventKind::kArrival;
  /// External application id, unique per arrival within a trace.
  std::uint64_t app_id = 0;
  Application app;
};

const char* event_kind_name(EventKind kind);

/// Knobs for the deterministic trace generator.
struct TraceConfig {
  std::uint64_t seed = 1;
  std::size_t num_events = 1000;
  /// Tile capacity the generator's admission model assumes (must match the
  /// chip the trace will be replayed against for departures to line up).
  std::uint32_t num_tiles = 64;
  std::uint32_t min_threads_per_app = 2;
  std::uint32_t max_threads_per_app = 16;
  /// Fraction of events (given live applications exist) that are phase
  /// changes; the rest split between arrivals and departures, biased
  /// towards arrivals while the chip is mostly empty.
  double phase_change_fraction = 0.25;
  /// Table-3 configuration for rate synthesis; empty cycles C1..C8.
  std::string config;
};

/// Synthesizes `config.num_events` events deterministically from the seed.
/// Throws nocmap::Error on invalid knobs (zero sizes, min > max, more
/// min-threads than tiles).
std::vector<Event> generate_trace(const TraceConfig& config);

}  // namespace nocmap::service
