// Deterministic trace replay over a MappingService: the shared driver
// behind the nocmap_service_replay tool, bench/micro_service, the service
// determinism tests, and the service_replay fuzz oracle.
//
// Besides running the event stream, the replayer folds every decision into
// a 64-bit digest (splitmix64 chaining over all decision fields plus the
// final placement), which is how "bit-identical at 1/2/8 workers" is
// asserted without storing full decision streams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netsim/sim.h"
#include "service/events.h"
#include "service/mapping_service.h"

namespace nocmap::service {

struct ReplayOptions {
  /// Record per-decision wall times (decision_us below).
  bool collect_latencies = false;
  /// Every N accepted events (0 = never), solve the snapshot problem from
  /// scratch with serial SSS and record objective / fresh-objective; the
  /// mean of those ratios is the incremental-quality headline metric.
  std::size_t objective_sample_period = 0;
};

struct ReplayStats {
  std::size_t events = 0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t fallbacks = 0;
  std::size_t degraded = 0;
  std::uint64_t moved_threads = 0;
  /// splitmix64-chained digest of every decision plus the final placement.
  std::uint64_t digest = 0;
  double wall_ms = 0.0;
  /// Per-decision latencies in microseconds (collect_latencies only).
  std::vector<double> decision_us;
  /// Mean of sampled objective / from-scratch-SSS-objective ratios (1.0
  /// when never sampled); >= 1 means the incremental path is that factor
  /// away from a fresh solve.
  double mean_objective_ratio = 1.0;
  std::size_t objective_samples = 0;
  /// The decision stream itself (always recorded; traces are event-scale,
  /// not flit-scale, so this stays small relative to the work done).
  std::vector<Decision> decisions;
};

/// Feeds `events` through `service` in order and aggregates the outcome.
ReplayStats replay_trace(MappingService& service,
                         std::span<const Event> events,
                         const ReplayOptions& options = {});

/// p-th percentile (0..100) of `values` by nearest-rank; 0 when empty.
double percentile_us(std::vector<double> values, double p);

/// Cycle-accurate validation of the service's *current* placement: runs the
/// snapshot problem + mapping through run_simulation. The analytic model
/// drives every online decision; this is the measured ground truth for the
/// state those decisions left the chip in. Set config.sim_workers > 1 to
/// spend cores inside the one simulation (DESIGN.md §16) — a service
/// snapshot is a single large scenario, exactly the shape batch-level
/// parallelism cannot help with. Results are bit-identical at any worker
/// count.
SimResult simulate_snapshot(const MappingService& service,
                            const SimConfig& config);

}  // namespace nocmap::service
