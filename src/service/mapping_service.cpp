#include "service/mapping_service.h"

#include <algorithm>
#include <utility>

#include "core/metrics.h"
#include "core/remap.h"
#include "obs/metrics.h"

namespace nocmap::service {

namespace {

const obs::Counter c_events("service.events");
const obs::Counter c_arrivals("service.arrivals");
const obs::Counter c_rejections("service.rejections");
const obs::Counter c_departures("service.departures");
const obs::Counter c_phase_changes("service.phase_changes");
const obs::Counter c_fallbacks("service.fallbacks");
const obs::Counter c_migrations("service.migrations");
const obs::Timer t_decision("service.decision");
const obs::Gauge g_occupied("service.occupied_tiles");

}  // namespace

MappingService::MappingService(TileLatencyModel chip, ServiceConfig config)
    : chip_(std::move(chip)), config_(config) {
  NOCMAP_REQUIRE(config_.degradation_threshold > 1.0,
                 "degradation threshold must exceed 1");
  occupied_.assign(num_tiles(), 0);
  tiles_by_tc_ = SortSelectSwapMapper::sorted_tiles(chip_);
}

double MappingService::objective() const {
  double worst = 0.0;
  for (const Resident& r : residents_) {
    if (r.volume > 0.0) worst = std::max(worst, r.apl());
  }
  return worst;
}

double MappingService::lower_bound() const {
  double worst = 0.0;
  for (const Resident& r : residents_) {
    worst = std::max(worst, r.relaxed_bound);
  }
  return worst;
}

std::vector<std::uint64_t> MappingService::occupancy() const {
  std::vector<std::uint64_t> tiles(num_tiles(), kFreeTile);
  for (const Resident& r : residents_) {
    for (const TileId k : r.tiles) tiles[k] = r.id;
  }
  return tiles;
}

ObmProblem MappingService::snapshot_problem() const {
  NOCMAP_REQUIRE(!residents_.empty(),
                 "snapshot of an empty chip has no OBM instance");
  std::vector<Application> apps;
  apps.reserve(residents_.size());
  for (const Resident& r : residents_) apps.push_back(r.app);
  Workload workload{std::move(apps)};
  if (workload.num_threads() < num_tiles()) {
    workload = workload.padded_to(num_tiles());
  }
  return ObmProblem(chip_, std::move(workload));
}

Mapping MappingService::snapshot_mapping() const {
  Mapping mapping;
  mapping.thread_to_tile.reserve(num_tiles());
  for (const Resident& r : residents_) {
    mapping.thread_to_tile.insert(mapping.thread_to_tile.end(),
                                  r.tiles.begin(), r.tiles.end());
  }
  // Pad threads sit on the free tiles in ascending order.
  for (TileId k = 0; k < occupied_.size(); ++k) {
    if (!occupied_[k]) mapping.thread_to_tile.push_back(k);
  }
  return mapping;
}

Resident* MappingService::find_resident(std::uint64_t app_id) {
  for (Resident& r : residents_) {
    if (r.id == app_id) return &r;
  }
  return nullptr;
}

void MappingService::refresh_apl(Resident& r) const {
  r.weighted = 0.0;
  r.volume = 0.0;
  for (std::size_t t = 0; t < r.app.num_threads(); ++t) {
    const ThreadProfile& prof = r.app.threads[t];
    const TileId k = r.tiles[t];
    r.weighted += prof.cache_rate * chip_.tc(k) + prof.memory_rate * chip_.tm(k);
    r.volume += prof.total_rate();
  }
}

void MappingService::refresh_relaxed_bound(Resident& r) {
  // The application alone picking its favourite tiles chip-wide: a
  // rectangular n×N assignment (core/bounds.h rationale), solved over the
  // eq.-13 costs. Rates are fixed, so minimizing Σ cost minimizes APL.
  const std::size_t n = r.app.num_threads();
  const std::size_t tiles = num_tiles();
  if (r.volume <= 0.0 || n == 0) {
    r.relaxed_bound = 0.0;
    return;
  }
  cost_buf_.resize(n * tiles);
  for (std::size_t t = 0; t < n; ++t) {
    const ThreadProfile& prof = r.app.threads[t];
    for (TileId k = 0; k < tiles; ++k) {
      cost_buf_[t * tiles + k] =
          prof.cache_rate * chip_.tc(k) + prof.memory_rate * chip_.tm(k);
    }
  }
  const CostView view(cost_buf_.data(), n, tiles, tiles);
  const Assignment& best =
      config_.warm_start ? bound_ws_.solve_warm(view) : bound_ws_.solve(view);
  r.relaxed_bound = best.total_cost / r.volume;
}

std::vector<TileId> MappingService::penalized_assign(
    const Application& app, const std::vector<TileId>& tiles,
    const std::vector<TileId>& old_tiles, double penalty_cycles) {
  const std::size_t n = tiles.size();
  cost_buf_.resize(n * n);
  for (std::size_t t = 0; t < n; ++t) {
    const ThreadProfile& prof = app.threads[t];
    for (std::size_t k = 0; k < n; ++k) {
      double c = prof.cache_rate * chip_.tc(tiles[k]) +
                 prof.memory_rate * chip_.tm(tiles[k]);
      if (!old_tiles.empty() && old_tiles[t] != tiles[k]) {
        c += penalty_cycles * prof.total_rate();
      }
      cost_buf_[t * n + k] = c;
    }
  }
  const CostView view(cost_buf_.data(), n, n, n);
  const Assignment& assignment =
      config_.warm_start ? ws_.solve_warm(view) : ws_.solve(view);
  std::vector<TileId> result(n);
  for (std::size_t t = 0; t < n; ++t) {
    result[t] = tiles[assignment.row_to_col[t]];
  }
  return result;
}

std::vector<TileId> MappingService::budgeted_assign(
    const Application& app, const std::vector<TileId>& tiles,
    const std::vector<TileId>& old_tiles, std::size_t budget,
    std::size_t* moved_out) {
  const auto count_moves = [&](const std::vector<TileId>& chosen) {
    if (old_tiles.empty()) return std::size_t{0};
    std::size_t moved = 0;
    for (std::size_t t = 0; t < chosen.size(); ++t) {
      if (app.threads[t].total_rate() > 0.0 && chosen[t] != old_tiles[t]) {
        ++moved;
      }
    }
    return moved;
  };

  std::vector<TileId> best = penalized_assign(app, tiles, old_tiles, 0.0);
  std::size_t moved = count_moves(best);
  if (old_tiles.empty() || moved <= budget) {
    *moved_out = moved;
    return best;
  }
  if (budget == 0) {
    // `old_tiles` occupies the same tile set (the caller's contract), so
    // the identity choice is always feasible.
    *moved_out = 0;
    return old_tiles;
  }
  // Smallest migration penalty whose sticky assignment fits the budget
  // (same λ search as core/remap.cpp's remap_budgeted, at app scale).
  double lo = 0.0;
  double hi = 1.0;
  for (;;) {
    std::vector<TileId> sticky = penalized_assign(app, tiles, old_tiles, hi);
    const std::size_t sticky_moved = count_moves(sticky);
    if (sticky_moved <= budget) {
      best = std::move(sticky);
      moved = sticky_moved;
      break;
    }
    lo = hi;
    hi *= 16.0;
    if (hi > 1e30) {  // defensive; identity is feasible, so unreachable
      *moved_out = 0;
      return old_tiles;
    }
  }
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    std::vector<TileId> sticky = penalized_assign(app, tiles, old_tiles, mid);
    const std::size_t sticky_moved = count_moves(sticky);
    if (sticky_moved <= budget) {
      hi = mid;
      best = std::move(sticky);
      moved = sticky_moved;
    } else {
      lo = mid;
    }
  }
  *moved_out = moved;
  return best;
}

Decision MappingService::handle_arrival(const Event& event, Decision d) {
  c_arrivals.add();
  const std::size_t n = event.app.num_threads();
  const std::size_t free_tiles = num_tiles() - occupied_count_;
  if (n == 0 || n > free_tiles || find_resident(event.app_id) != nullptr) {
    c_rejections.add();
    d.accepted = false;
    return d;
  }

  // Free tiles in TC-ascending order, then the SSS "select" spread: one
  // tile from the middle of each of n equal sections, so the newcomer gets
  // an even mix of good and bad cache-latency tiles instead of hogging
  // (or being dumped on) one end of the free list.
  std::vector<TileId> free_by_tc;
  free_by_tc.reserve(free_tiles);
  for (const TileId k : tiles_by_tc_) {
    if (!occupied_[k]) free_by_tc.push_back(k);
  }
  std::vector<TileId> selected(n);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t lo = t * free_tiles / n;
    const std::size_t hi = (t + 1) * free_tiles / n;
    selected[t] = free_by_tc[lo + (hi - lo) / 2];
  }

  Resident r;
  r.id = event.app_id;
  r.app = event.app;
  std::size_t moved = 0;
  r.tiles = budgeted_assign(r.app, selected, {}, 0, &moved);
  refresh_apl(r);
  refresh_relaxed_bound(r);
  for (const TileId k : r.tiles) occupied_[k] = 1;
  occupied_count_ += n;
  residents_.push_back(std::move(r));
  degraded_mode_ = false;  // the resident set changed; fallback may help now
  d.placed_threads = n;
  return d;
}

Decision MappingService::handle_departure(const Event& event, Decision d) {
  c_departures.add();
  const auto it =
      std::find_if(residents_.begin(), residents_.end(),
                   [&](const Resident& r) { return r.id == event.app_id; });
  if (it == residents_.end()) {
    c_rejections.add();
    d.accepted = false;
    return d;
  }
  for (const TileId k : it->tiles) occupied_[k] = 0;
  occupied_count_ -= it->tiles.size();
  residents_.erase(it);
  degraded_mode_ = false;
  return d;
}

Decision MappingService::handle_phase_change(const Event& event, Decision d) {
  c_phase_changes.add();
  Resident* r = find_resident(event.app_id);
  if (r == nullptr || event.app.num_threads() != r->app.num_threads()) {
    c_rejections.add();
    d.accepted = false;
    return d;
  }
  // Same tile set, new rates: re-assign within the region under the
  // migration budget. Columns are the sorted tile set so the cost matrix
  // is canonical; stickiness is against the current per-thread tiles.
  std::vector<TileId> region = r->tiles;
  std::sort(region.begin(), region.end());
  Application updated = r->app;
  updated.threads = event.app.threads;
  std::size_t moved = 0;
  std::vector<TileId> new_tiles = budgeted_assign(
      updated, region, r->tiles, config_.migration_budget, &moved);
  r->app = std::move(updated);
  r->tiles = std::move(new_tiles);
  refresh_apl(*r);
  refresh_relaxed_bound(*r);
  d.moved_threads = moved;
  return d;
}

std::size_t MappingService::run_fallback(std::size_t budget) {
  const ObmProblem problem = snapshot_problem();
  const Mapping old = snapshot_mapping();
  const BudgetedRemapResult r =
      remap_budgeted(problem, old, budget, config_.sss);

  // Apply the remap: snapshot thread order is resident order, so walk it.
  std::size_t j = 0;
  std::fill(occupied_.begin(), occupied_.end(), 0);
  for (Resident& resident : residents_) {
    for (std::size_t t = 0; t < resident.tiles.size(); ++t) {
      resident.tiles[t] = r.remap.mapping.thread_to_tile[j++];
      occupied_[resident.tiles[t]] = 1;
    }
    refresh_apl(resident);  // volume and relaxed bound are placement-free
  }
  return r.remap.moved_threads;
}

void MappingService::maybe_fallback(Decision& d) {
  if (residents_.empty()) return;
  const double threshold = config_.degradation_threshold;
  if (objective() <= threshold * lower_bound()) return;

  // While budget-bound, don't re-run the (expensive) full solve for every
  // event: wait for the resident set to change or the objective to drift
  // further past the last fallback's result.
  const bool attempt =
      !degraded_mode_ || objective() > 1.05 * last_fallback_objective_;
  const std::size_t budget_left =
      config_.migration_budget >= d.moved_threads
          ? config_.migration_budget - d.moved_threads
          : 0;
  if (attempt && budget_left > 0) {
    c_fallbacks.add();
    d.used_fallback = true;
    d.moved_threads += run_fallback(budget_left);
    last_fallback_objective_ = objective();
    degraded_mode_ = objective() > threshold * lower_bound();
  }
  d.quality_degraded = objective() > threshold * lower_bound();
}

Decision MappingService::handle(const Event& event) {
  const obs::ScopedTimer scope(t_decision);
  c_events.add();

  Decision d;
  d.kind = event.kind;
  d.app_id = event.app_id;
  switch (event.kind) {
    case EventKind::kArrival:
      d = handle_arrival(event, std::move(d));
      break;
    case EventKind::kDeparture:
      d = handle_departure(event, std::move(d));
      break;
    case EventKind::kPhaseChange:
      d = handle_phase_change(event, std::move(d));
      break;
  }
  if (d.accepted) maybe_fallback(d);

  d.objective = objective();
  d.lower_bound = lower_bound();
  d.residents = static_cast<std::uint32_t>(residents_.size());
  d.occupied_tiles = static_cast<std::uint32_t>(occupied_count_);
  c_migrations.add(d.moved_threads);
  g_occupied.set_max(static_cast<double>(occupied_count_));
  return d;
}

}  // namespace nocmap::service
