#include "service/replay.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "core/metrics.h"
#include "util/rng.h"

namespace nocmap::service {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ v);
}

std::uint64_t digest_decision(std::uint64_t h, const Decision& d) {
  h = mix(h, static_cast<std::uint64_t>(d.kind));
  h = mix(h, d.app_id);
  h = mix(h, d.accepted ? 1 : 0);
  h = mix(h, d.placed_threads);
  h = mix(h, d.moved_threads);
  h = mix(h, (d.used_fallback ? 2ULL : 0ULL) |
                 (d.quality_degraded ? 1ULL : 0ULL));
  h = mix(h, std::bit_cast<std::uint64_t>(d.objective));
  h = mix(h, std::bit_cast<std::uint64_t>(d.lower_bound));
  h = mix(h, (static_cast<std::uint64_t>(d.residents) << 32) |
                 d.occupied_tiles);
  return h;
}

}  // namespace

ReplayStats replay_trace(MappingService& service,
                         std::span<const Event> events,
                         const ReplayOptions& options) {
  using clock = std::chrono::steady_clock;
  ReplayStats stats;
  stats.decisions.reserve(events.size());
  if (options.collect_latencies) stats.decision_us.reserve(events.size());

  double ratio_sum = 0.0;
  std::size_t since_sample = 0;
  const auto run_start = clock::now();
  for (const Event& event : events) {
    const auto t0 = clock::now();
    const Decision d = service.handle(event);
    if (options.collect_latencies) {
      stats.decision_us.push_back(
          std::chrono::duration<double, std::micro>(clock::now() - t0)
              .count());
    }

    ++stats.events;
    if (d.accepted) {
      ++stats.accepted;
    } else {
      ++stats.rejected;
    }
    if (d.used_fallback) ++stats.fallbacks;
    if (d.quality_degraded) ++stats.degraded;
    stats.moved_threads += d.moved_threads;
    stats.digest = digest_decision(stats.digest, d);
    stats.decisions.push_back(d);

    if (options.objective_sample_period > 0 && d.accepted &&
        d.residents > 0 &&
        ++since_sample >= options.objective_sample_period) {
      since_sample = 0;
      const ObmProblem fresh_problem = service.snapshot_problem();
      SortSelectSwapMapper sss(
          SssOptions{.parallel = ParallelConfig::serial_config()});
      const double fresh =
          evaluate(fresh_problem, sss.map(fresh_problem)).max_apl;
      if (fresh > 0.0) {
        ratio_sum += service.objective() / fresh;
        ++stats.objective_samples;
      }
    }
  }
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(clock::now() - run_start)
          .count();
  if (stats.objective_samples > 0) {
    stats.mean_objective_ratio =
        ratio_sum / static_cast<double>(stats.objective_samples);
  }

  // Fold the final placement in, so two replays only share a digest when
  // they also end in the same chip state.
  for (const Resident& r : service.residents()) {
    stats.digest = mix(stats.digest, r.id);
    for (const TileId k : r.tiles) stats.digest = mix(stats.digest, k);
  }
  return stats;
}

double percentile_us(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(idx),
                   values.end());
  return values[idx];
}

SimResult simulate_snapshot(const MappingService& service,
                            const SimConfig& config) {
  const ObmProblem problem = service.snapshot_problem();
  const Mapping mapping = service.snapshot_mapping();
  return run_simulation(problem, mapping, config);
}

}  // namespace nocmap::service
