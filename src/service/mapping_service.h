// Online mapping service: incremental remap decisions under churn
// (DESIGN.md §13; the run-time mapping setting of Benhaoua et al. in
// PAPERS.md, productionized for the paper's OBM problem).
//
// The batch mappers solve one fixed instance; MappingService is the
// long-lived engine a datacenter scheduler would actually run against a
// CMP: it consumes a stream of arrival / departure / phase-change events
// against persistent chip state and produces one remap decision per event.
//
// Decision policy, in order:
//
//  * Admission control — an arrival is accepted iff its thread count fits
//    the free tiles; nothing resident is ever displaced to admit.
//  * Incremental by default — an accepted arrival is placed on *free* tiles
//    only (an SSS-style even spread over the TC-sorted free list, threads
//    assigned by the Hungarian kernel); a departure just frees its region;
//    a phase change re-assigns threads within the application's own tile
//    set. Resident applications are untouched, so the common case moves
//    zero resident threads.
//  * Migration budget — every decision moves at most
//    `ServiceConfig::migration_budget` resident threads (a hard cap;
//    zero-rate threads move free, matching core/remap.*).
//  * Bounded fallback — incremental decisions slowly drift from what a
//    from-scratch solve would achieve (fragmented free regions, stale
//    placements). After each event the service compares its objective
//    (max-APL over residents) against a per-application relaxed lower
//    bound (core/bounds.h, maintained incrementally: each application's
//    bound is independent of the others); when the ratio exceeds
//    `degradation_threshold` it re-solves from scratch via
//    remap_budgeted(), still honoring the event's remaining migration
//    budget. When even the fallback cannot close the gap (budget-bound),
//    the decision is flagged `quality_degraded` and fallbacks are
//    suppressed until the resident set changes again.
//
// One AssignmentWorkspace is carried across *all* events
// (`ServiceConfig::warm_start`), so the kernel's column potentials persist
// between decisions — the cross-event warm start ROADMAP item 1 asks for.
//
// Determinism: decisions are a pure function of (chip, config, event
// sequence). The only parallel component is the fallback's SSS solve,
// which is bit-identical at any worker count, so replaying a trace at 1,
// 2, or 8 workers produces byte-identical decision streams
// (tests/test_service.cpp pins this).
#pragma once

#include <cstdint>
#include <vector>

#include "assign/hungarian.h"
#include "core/problem.h"
#include "core/sss_mapper.h"
#include "service/events.h"

namespace nocmap::service {

struct ServiceConfig {
  /// Hard cap on resident threads moved per event (SIZE_MAX = unbounded).
  std::size_t migration_budget = static_cast<std::size_t>(-1);
  /// Fallback trigger: re-solve from scratch when objective exceeds
  /// threshold × lower bound. Must be > 1.
  double degradation_threshold = 1.25;
  /// Carry the assignment workspace's column potentials across events.
  bool warm_start = true;
  /// Options of the fallback's from-scratch SSS solve (its ParallelConfig
  /// is the replay "worker count"; any value gives identical decisions).
  SssOptions sss;
};

/// The outcome of one event. Value-comparable so determinism tests can
/// assert whole decision streams are identical.
struct Decision {
  EventKind kind = EventKind::kArrival;
  std::uint64_t app_id = 0;
  /// False for a rejected arrival (no capacity / empty app) or a
  /// departure / phase change naming an unknown application or the wrong
  /// thread count; the chip state is then unchanged.
  bool accepted = true;
  /// Newly placed threads (arrivals only; placements are not migrations).
  std::size_t placed_threads = 0;
  /// Resident threads whose tile changed — always <= migration_budget.
  std::size_t moved_threads = 0;
  bool used_fallback = false;
  /// Objective still above threshold × lower bound after this event (the
  /// budget blocked a full rebalance).
  bool quality_degraded = false;
  /// max-APL over resident applications after the event (0 when empty).
  double objective = 0.0;
  /// max over residents of the relaxed per-application APL lower bound.
  double lower_bound = 0.0;
  std::uint32_t residents = 0;
  std::uint32_t occupied_tiles = 0;

  friend bool operator==(const Decision&, const Decision&) = default;
};

/// One admitted application and its current placement.
struct Resident {
  std::uint64_t id = 0;
  Application app;
  /// tiles[t] is the tile of the application's t-th thread.
  std::vector<TileId> tiles;
  /// Cached APL pieces: Σ c·TC + m·TM over threads, and Σ (c+m).
  double weighted = 0.0;
  double volume = 0.0;
  /// Relaxed APL lower bound (the application alone picking its favourite
  /// tiles chip-wide); independent of other residents, so incrementally
  /// maintainable.
  double relaxed_bound = 0.0;

  double apl() const { return volume > 0.0 ? weighted / volume : 0.0; }
};

class MappingService {
 public:
  explicit MappingService(TileLatencyModel chip, ServiceConfig config = {});

  /// Processes one event and returns the decision. Never throws on
  /// semantically invalid events (unknown id, over-capacity arrival);
  /// those come back `accepted == false` with the state unchanged.
  Decision handle(const Event& event);

  const TileLatencyModel& chip() const { return chip_; }
  const ServiceConfig& config() const { return config_; }
  std::size_t num_tiles() const { return chip_.mesh().num_tiles(); }

  /// Resident applications in arrival order.
  const std::vector<Resident>& residents() const { return residents_; }
  std::size_t occupied_tiles() const { return occupied_count_; }

  /// Current max-APL over residents / max relaxed bound (0 when empty).
  double objective() const;
  double lower_bound() const;

  /// Occupancy marker for a free tile in occupancy().
  static constexpr std::uint64_t kFreeTile = ~0ULL;
  /// tile -> owning app_id (kFreeTile where idle); recomputed on call so
  /// oracles can diff it against their own bookkeeping.
  std::vector<std::uint64_t> occupancy() const;

  /// The resident set as a padded OBM instance (threads in arrival order,
  /// idle pad up to the tile count) and the current placement aligned to
  /// it (pad threads on the free tiles in ascending order). Requires at
  /// least one resident. These are what the fallback re-solves and what
  /// oracles/tests evaluate from scratch.
  ObmProblem snapshot_problem() const;
  Mapping snapshot_mapping() const;

 private:
  Decision handle_arrival(const Event& event, Decision d);
  Decision handle_departure(const Event& event, Decision d);
  Decision handle_phase_change(const Event& event, Decision d);

  /// Assigns `app`'s threads onto `tiles` minimizing latency cost, with at
  /// most `budget` moves away from `old_tiles` (ignored when empty).
  /// Returns the per-thread tile choice; `moved_out` counts positive-rate
  /// threads whose tile changed vs old_tiles.
  std::vector<TileId> budgeted_assign(const Application& app,
                                      const std::vector<TileId>& tiles,
                                      const std::vector<TileId>& old_tiles,
                                      std::size_t budget,
                                      std::size_t* moved_out);

  /// Latency-cost assignment of app threads onto `tiles` with migration
  /// penalty λ against old_tiles; the inner solve of budgeted_assign.
  std::vector<TileId> penalized_assign(const Application& app,
                                       const std::vector<TileId>& tiles,
                                       const std::vector<TileId>& old_tiles,
                                       double penalty_cycles);

  Resident* find_resident(std::uint64_t app_id);
  void refresh_apl(Resident& r) const;
  void refresh_relaxed_bound(Resident& r);
  /// Runs the budgeted from-scratch re-solve; returns threads moved.
  std::size_t run_fallback(std::size_t budget);
  /// Degradation check + (possibly) fallback, shared by all event paths.
  void maybe_fallback(Decision& d);

  TileLatencyModel chip_;
  ServiceConfig config_;
  std::vector<Resident> residents_;
  std::vector<char> occupied_;  // per tile
  std::size_t occupied_count_ = 0;
  /// All tiles sorted by TC ascending (SSS stage-1 order), fixed per chip.
  std::vector<TileId> tiles_by_tc_;
  /// The cross-event workspace for placement / phase-change solves.
  AssignmentWorkspace ws_;
  /// Separate workspace for the relaxed-bound solves: their column set is
  /// always "all N tiles", so keeping them apart preserves warm potentials
  /// for both solve families instead of invalidating each other.
  AssignmentWorkspace bound_ws_;
  std::vector<double> cost_buf_;
  /// Fallback suppression while budget-bound (see header comment).
  bool degraded_mode_ = false;
  double last_fallback_objective_ = 0.0;
};

}  // namespace nocmap::service
