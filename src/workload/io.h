// Workload persistence: CSV load/save so real deployments can feed measured
// per-thread request rates into the mapper without touching C++.
//
// Format (header required):
//   application,thread,cache_rate,memory_rate
//   web,0,6.25,0.81
//   web,1,5.90,0.77
//   db,0,12.4,2.05
//
// Applications keep their first-seen order; the `thread` column is a
// per-application index used only for validation (it must count 0,1,2,...
// within each application).
#pragma once

#include <iosfwd>
#include <string>

#include "workload/workload.h"

namespace nocmap {

/// Writes the workload as CSV. Throws nocmap::Error on I/O failure.
void save_workload_csv(const Workload& workload, const std::string& path);
void write_workload_csv(const Workload& workload, std::ostream& out);

/// Parses a workload from CSV. Throws nocmap::Error on malformed input
/// (bad header, non-numeric rates, negative rates, thread-index gaps).
Workload load_workload_csv(const std::string& path);
Workload read_workload_csv(std::istream& in);

}  // namespace nocmap
