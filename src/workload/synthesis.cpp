#include "workload/synthesis.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace nocmap {

std::array<ConfigSpec, 8> parsec_table3_configs() {
  // Paper Table 3: average values and standard deviations of the cache and
  // memory communication rates of the eight configurations.
  return {{
      {"C1", {7.008, 88.3}, {0.899, 9.84}},
      {"C2", {1.8855, 17.52}, {0.381, 2.21}},
      {"C3", {10.881, 112.34}, {1.51, 18.42}},
      {"C4", {11.063, 107.27}, {1.548, 17.56}},
      {"C5", {9.04, 129.27}, {1.371, 19.91}},
      {"C6", {9.222, 125.81}, {1.409, 19.21}},
      {"C7", {1.992, 14.69}, {0.399, 2.01}},
      {"C8", {8.881, 131.87}, {1.334, 20.45}},
  }};
}

ConfigSpec parsec_config(const std::string& name) {
  for (const auto& spec : parsec_table3_configs()) {
    if (spec.name == name) return spec;
  }
  throw Error("unknown PARSEC configuration: " + name);
}

namespace {

/// Deterministic lognormal quantile sample of size n whose population
/// coefficient of variation equals `cv` (mu = 0; caller rescales the mean).
std::vector<double> lognormal_quantiles(std::size_t n, double cv) {
  // For a lognormal, cv^2 = exp(sigma^2) - 1.
  const double sigma = std::sqrt(std::log(1.0 + cv * cv));
  std::vector<double> xs(n);
  for (std::size_t q = 0; q < n; ++q) {
    const double p =
        (static_cast<double>(q) + 0.5) / static_cast<double>(n);
    xs[q] = std::exp(sigma * inverse_normal_cdf(p));
  }
  return xs;
}

/// Rescales xs so its mean equals target_mean exactly.
void rescale_mean(std::vector<double>& xs, double target_mean) {
  const double m = mean(xs);
  if (m <= 0.0) return;
  const double k = target_mean / m;
  for (double& x : xs) x *= k;
}

}  // namespace

Workload synthesize_workload(const ConfigSpec& spec, std::uint64_t seed,
                             const SynthesisOptions& options) {
  NOCMAP_REQUIRE(options.num_applications >= 1, "need >= 1 application");
  NOCMAP_REQUIRE(options.threads_per_app >= 1, "need >= 1 thread per app");
  NOCMAP_REQUIRE(!options.app_load_multipliers.empty(),
                 "need at least one load multiplier");
  NOCMAP_REQUIRE(spec.cache.mean > 0.0 && spec.memory.mean > 0.0,
                 "config means must be positive");
  NOCMAP_REQUIRE(options.within_app_cv_scale >= 0.0,
                 "cv scale must be non-negative");

  const std::size_t num_apps = options.num_applications;
  const std::size_t per_app = options.threads_per_app;
  const std::size_t n = num_apps * per_app;
  Rng rng(splitmix64(seed) ^ 0x6f4c6d9e2a81d3b5ULL);

  // Within-application spread: Table-3 cv scaled down to a per-thread cv
  // (the published value is temporal; see header), preserving the
  // configurations' variance ordering.
  const double table_cv = spec.cache.stddev / spec.cache.mean;
  const double within_cv =
      std::clamp(options.within_app_cv_scale * table_cv,
                 options.min_within_app_cv, options.max_within_app_cv);

  // 1. Per application: deterministic quantile sample, shuffled so thread
  //    index does not encode rate, scaled by the application multiplier
  //    with a small random load jitter.
  std::vector<std::vector<double>> app_rates(num_apps);
  for (std::size_t a = 0; a < num_apps; ++a) {
    app_rates[a] = lognormal_quantiles(per_app, within_cv);
    rng.shuffle(app_rates[a]);
    const double mult =
        options.app_load_multipliers[a % options.app_load_multipliers.size()];
    const double jitter = rng.lognormal(0.0, 0.05);
    for (double& r : app_rates[a]) r *= mult * jitter;
  }

  // 2. Exact cache-rate mean across the whole configuration.
  std::vector<double> all_cache;
  all_cache.reserve(n);
  for (const auto& rates : app_rates) {
    all_cache.insert(all_cache.end(), rates.begin(), rates.end());
  }
  rescale_mean(all_cache, spec.cache.mean);

  // 3. Jittered per-thread cache:memory ratios, exact memory-rate mean.
  const double base_ratio = spec.cache.mean / spec.memory.mean;
  std::vector<double> all_memory(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double ratio =
        base_ratio * rng.lognormal(0.0, options.ratio_jitter_sigma);
    all_memory[j] = all_cache[j] / ratio;
  }
  rescale_mean(all_memory, spec.memory.mean);

  // 4. Assemble applications and sort ascending by total rate so that
  //    "Application 1" is the lightest, matching the paper's figures.
  std::vector<Application> apps(num_apps);
  for (std::size_t a = 0, j = 0; a < num_apps; ++a) {
    apps[a].threads.resize(per_app);
    for (std::size_t t = 0; t < per_app; ++t, ++j) {
      apps[a].threads[t] = {all_cache[j], all_memory[j]};
    }
  }
  std::stable_sort(apps.begin(), apps.end(),
                   [](const Application& x, const Application& y) {
                     return x.total_rate() < y.total_rate();
                   });
  for (std::size_t a = 0; a < num_apps; ++a) {
    apps[a].name = spec.name + ".app" + std::to_string(a + 1);
  }
  return Workload(std::move(apps));
}

WorkloadMoments measure_moments(const Workload& workload) {
  std::vector<double> cache;
  std::vector<double> memory;
  cache.reserve(workload.num_threads());
  memory.reserve(workload.num_threads());
  for (const auto& t : workload.threads()) {
    cache.push_back(t.cache_rate);
    memory.push_back(t.memory_rate);
  }
  return {{mean(cache), stddev_population(cache)},
          {mean(memory), stddev_population(memory)}};
}

}  // namespace nocmap
