// Synthetic PARSEC-like workload generation (substitution for the paper's
// Simics-gathered PARSEC 2.0 traces; see DESIGN.md §5.1).
//
// The mapping algorithms consume only the per-thread rate vectors (c_j, m_j).
// The paper publishes (Table 3) the mean and standard deviation of the cache
// and memory request rates for each of its eight configurations C1–C8, and
// notes the cache rate averages 6.78× the memory rate. We regenerate rate
// vectors as follows:
//
//  * Means are matched exactly. The published std-devs cannot be matched
//    over threads: several exceed mean·sqrt(N−1), the mathematical maximum
//    for any N non-negative numbers with that mean, so they are necessarily
//    temporal (per-sample) variability, not per-thread spread. Critically,
//    an extreme per-thread tail would also *erase* the paper's own
//    Section-II.D phenomenon: APLs are rate-weighted, so if one mega-hot
//    thread dominated each application, Global would balance APLs almost
//    for free. The paper's Figures 4/8 (whole applications pinned to the
//    corner region) require moderate within-application heterogeneity and
//    strong across-application load differences.
//  * Per-thread cache rates inside each application are deterministic
//    lognormal quantiles with a moderate coefficient of variation, scaled
//    per configuration from the Table-3 cv so the configurations' variance
//    *ordering* is preserved.
//  * Per-application load multipliers make the applications' total rates
//    distinct ("Application 1 … lightest traffic"), then a global rescale
//    pins the exact Table-3 mean.
//  * Memory rates follow m_j = c_j / ratio_j with jittered per-thread
//    ratios, rescaled so the configuration's memory-rate mean is exact.
//
// Everything is deterministic given (spec, seed).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "workload/workload.h"

namespace nocmap {

/// First two moments of a rate distribution.
struct RateMoments {
  double mean = 0.0;
  double stddev = 0.0;
};

/// One paper configuration: target moments for cache and memory rates.
struct ConfigSpec {
  std::string name;
  RateMoments cache;
  RateMoments memory;
};

/// The eight configurations of paper Table 3 (C1..C8).
std::array<ConfigSpec, 8> parsec_table3_configs();

/// Looks up a Table-3 configuration by name ("C1".."C8"). Throws on unknown.
ConfigSpec parsec_config(const std::string& name);

/// Knobs for synthesize_workload.
struct SynthesisOptions {
  std::size_t num_applications = 4;
  std::size_t threads_per_app = 16;
  /// Relative total-load multipliers per application (cycled if fewer than
  /// num_applications entries). Distinct values reproduce the paper's
  /// light-vs-heavy application mix; the defaults were calibrated so the
  /// Table-1 shape matches (Global ≈ +7..10% max-APL and ~3.5-4x dev-APL
  /// over the random average).
  std::vector<double> app_load_multipliers = {0.25, 0.7, 1.3, 1.75};
  /// Lognormal sigma of the per-thread cache:memory ratio jitter.
  double ratio_jitter_sigma = 0.35;
  /// Within-application coefficient of variation of thread cache rates is
  /// derived from the config's Table-3 cv scaled by this factor...
  double within_app_cv_scale = 0.03;
  /// ...and clamped to this range (see the header comment).
  double min_within_app_cv = 0.2;
  double max_within_app_cv = 0.7;
};

/// Generates a Workload matching `spec` as described above. The result has
/// exactly spec.cache.mean / spec.memory.mean as its realized mean rates.
Workload synthesize_workload(const ConfigSpec& spec, std::uint64_t seed,
                             const SynthesisOptions& options = {});

/// Realized moments of a workload (for the Table-3 reproduction bench).
struct WorkloadMoments {
  RateMoments cache;
  RateMoments memory;
};
WorkloadMoments measure_moments(const Workload& workload);

}  // namespace nocmap
