#include "workload/io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace nocmap {

void write_workload_csv(const Workload& workload, std::ostream& out) {
  out << "application,thread,cache_rate,memory_rate\n";
  for (std::size_t a = 0; a < workload.num_applications(); ++a) {
    const Application& app = workload.application(a);
    for (std::size_t t = 0; t < app.threads.size(); ++t) {
      out << app.name << ',' << t << ',' << app.threads[t].cache_rate << ','
          << app.threads[t].memory_rate << '\n';
    }
  }
}

void save_workload_csv(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  NOCMAP_REQUIRE(out.good(), "cannot open workload CSV for writing: " + path);
  write_workload_csv(workload, out);
  NOCMAP_REQUIRE(out.good(), "write failure on workload CSV: " + path);
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

double parse_rate(const std::string& cell, std::size_t line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(cell, &used);
    NOCMAP_REQUIRE(used == cell.size(),
                   "trailing junk in rate on CSV line " +
                       std::to_string(line_no));
    NOCMAP_REQUIRE(v >= 0.0, "negative rate on CSV line " +
                                 std::to_string(line_no));
    return v;
  } catch (const std::invalid_argument&) {
    throw Error("non-numeric rate on CSV line " + std::to_string(line_no));
  } catch (const std::out_of_range&) {
    throw Error("rate out of range on CSV line " + std::to_string(line_no));
  }
}

}  // namespace

Workload read_workload_csv(std::istream& in) {
  std::string line;
  NOCMAP_REQUIRE(static_cast<bool>(std::getline(in, line)),
                 "empty workload CSV");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  NOCMAP_REQUIRE(line == "application,thread,cache_rate,memory_rate",
                 "unexpected workload CSV header: " + line);

  std::vector<Application> apps;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    NOCMAP_REQUIRE(cells.size() == 4, "expected 4 columns on CSV line " +
                                          std::to_string(line_no));
    const std::string& name = cells[0];
    NOCMAP_REQUIRE(!name.empty(), "empty application name on CSV line " +
                                      std::to_string(line_no));

    if (apps.empty() || apps.back().name != name) {
      // New application block; re-opening an earlier name is a format error
      // (thread rows must be contiguous per application).
      for (const Application& existing : apps) {
        NOCMAP_REQUIRE(existing.name != name,
                       "application '" + name +
                           "' split across non-contiguous CSV blocks");
      }
      apps.push_back(Application{name, {}});
    }
    Application& app = apps.back();

    const std::size_t expected_index = app.threads.size();
    NOCMAP_REQUIRE(cells[1] == std::to_string(expected_index),
                   "thread index mismatch on CSV line " +
                       std::to_string(line_no) + " (expected " +
                       std::to_string(expected_index) + ")");
    app.threads.push_back(
        {parse_rate(cells[2], line_no), parse_rate(cells[3], line_no)});
  }
  NOCMAP_REQUIRE(!apps.empty(), "workload CSV has no data rows");
  return Workload(std::move(apps));
}

Workload load_workload_csv(const std::string& path) {
  std::ifstream in(path);
  NOCMAP_REQUIRE(in.good(), "cannot open workload CSV: " + path);
  return read_workload_csv(in);
}

}  // namespace nocmap
