// Multi-application workload representation (paper Section III.B).
//
// Each thread j of an application carries two request rates: c_j, the shared
// L2-cache request rate (data on-chip), and m_j, the memory-controller
// request rate (data off-chip). Rates are in requests per kilocycle; only
// ratios matter to the mapping algorithms. Applications own contiguous
// thread index ranges [N_{i-1}, N_i) exactly as in the problem statement.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace nocmap {

/// Per-thread communication rates (c_j, m_j).
struct ThreadProfile {
  double cache_rate = 0.0;   ///< shared-L2 request rate c_j
  double memory_rate = 0.0;  ///< memory-controller request rate m_j

  double total_rate() const { return cache_rate + memory_rate; }
};

/// One application: a named group of threads.
struct Application {
  std::string name;
  std::vector<ThreadProfile> threads;

  std::size_t num_threads() const { return threads.size(); }
  /// Sum of all request rates over the application's threads.
  double total_rate() const;
  double total_cache_rate() const;
  double total_memory_rate() const;
};

/// A set of applications to be co-mapped onto one chip. Thread indices are
/// global: application i owns [boundary(i-1), boundary(i)).
class Workload {
 public:
  explicit Workload(std::vector<Application> apps);

  std::size_t num_applications() const { return apps_.size(); }
  std::size_t num_threads() const { return flat_.size(); }

  const Application& application(std::size_t i) const;
  std::span<const Application> applications() const { return apps_; }

  /// Global thread view: profile of the j-th thread (j in [0, num_threads)).
  const ThreadProfile& thread(std::size_t j) const;
  std::span<const ThreadProfile> threads() const { return flat_; }

  /// Which application owns global thread j.
  std::size_t application_of(std::size_t j) const;

  /// First global thread index of application i (N_{i-1} in the paper).
  std::size_t first_thread(std::size_t i) const;
  /// One-past-last global thread index of application i (N_i).
  std::size_t last_thread(std::size_t i) const;

  /// Returns a copy padded with `count` zero-rate pseudo-threads appended as
  /// a synthetic "idle" application (paper footnote 1: when fewer threads
  /// than tiles, pad and solve the same problem).
  Workload padded_to(std::size_t total_threads) const;

  /// Applications sorted by ascending total communication rate keep their
  /// data but are renamed/arranged so "Application 1 is the lightest", as in
  /// the paper's result figures.
  Workload sorted_by_total_rate() const;

 private:
  std::vector<Application> apps_;
  std::vector<ThreadProfile> flat_;
  std::vector<std::size_t> boundaries_;  // size A+1, boundaries_[0] == 0
  std::vector<std::size_t> owner_;       // per global thread
};

}  // namespace nocmap
