#include "workload/workload.h"

#include <algorithm>

namespace nocmap {

double Application::total_rate() const {
  return total_cache_rate() + total_memory_rate();
}

double Application::total_cache_rate() const {
  double s = 0.0;
  for (const auto& t : threads) s += t.cache_rate;
  return s;
}

double Application::total_memory_rate() const {
  double s = 0.0;
  for (const auto& t : threads) s += t.memory_rate;
  return s;
}

Workload::Workload(std::vector<Application> apps) : apps_(std::move(apps)) {
  NOCMAP_REQUIRE(!apps_.empty(), "workload needs at least one application");
  boundaries_.push_back(0);
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    NOCMAP_REQUIRE(!apps_[i].threads.empty(),
                   "application must have at least one thread");
    for (const auto& t : apps_[i].threads) {
      NOCMAP_REQUIRE(t.cache_rate >= 0.0 && t.memory_rate >= 0.0,
                     "request rates must be non-negative");
      flat_.push_back(t);
      owner_.push_back(i);
    }
    boundaries_.push_back(flat_.size());
  }
}

const Application& Workload::application(std::size_t i) const {
  NOCMAP_REQUIRE(i < apps_.size(), "application index out of range");
  return apps_[i];
}

const ThreadProfile& Workload::thread(std::size_t j) const {
  NOCMAP_REQUIRE(j < flat_.size(), "thread index out of range");
  return flat_[j];
}

std::size_t Workload::application_of(std::size_t j) const {
  NOCMAP_REQUIRE(j < owner_.size(), "thread index out of range");
  return owner_[j];
}

std::size_t Workload::first_thread(std::size_t i) const {
  NOCMAP_REQUIRE(i < apps_.size(), "application index out of range");
  return boundaries_[i];
}

std::size_t Workload::last_thread(std::size_t i) const {
  NOCMAP_REQUIRE(i < apps_.size(), "application index out of range");
  return boundaries_[i + 1];
}

Workload Workload::padded_to(std::size_t total_threads) const {
  NOCMAP_REQUIRE(total_threads >= num_threads(),
                 "cannot pad to fewer threads than present");
  if (total_threads == num_threads()) return *this;
  auto apps = apps_;
  Application idle;
  idle.name = "idle";
  idle.threads.assign(total_threads - num_threads(), ThreadProfile{});
  apps.push_back(std::move(idle));
  return Workload(std::move(apps));
}

Workload Workload::sorted_by_total_rate() const {
  auto apps = apps_;
  std::stable_sort(apps.begin(), apps.end(),
                   [](const Application& a, const Application& b) {
                     return a.total_rate() < b.total_rate();
                   });
  return Workload(std::move(apps));
}

}  // namespace nocmap
