#include "assign/hungarian.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/metrics.h"

namespace nocmap {

namespace {

// Kernel statistics (DESIGN.md §9, docs/metrics-schema.md). Counted locally
// per solve and published with one add each, so the instrumentation stays
// off the inner scan loop.
const obs::Counter c_cold_solves("assign.cold_solves");
const obs::Counter c_warm_solves("assign.warm_solves");
const obs::Counter c_warm_hits("assign.warm_hits");
const obs::Counter c_rows_inserted("assign.rows_inserted");
const obs::Counter c_path_steps("assign.path_steps");

}  // namespace

CostMatrix::CostMatrix(std::size_t rows, std::size_t cols, double init)
    : rows_(rows), cols_(cols), data_(rows * cols, init) {
  NOCMAP_REQUIRE(rows > 0 && cols > 0, "cost matrix must be non-empty");
}

double& CostMatrix::at(std::size_t r, std::size_t c) {
  NOCMAP_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double CostMatrix::at(std::size_t r, std::size_t c) const {
  NOCMAP_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

namespace {

/// Identity column map — lets the kernel template collapse the gather away
/// on dense views.
struct IdentityCol {
  std::size_t operator()(std::size_t j) const { return j; }
};

/// Gathering column map for strided views over a shared cost table.
struct GatherCol {
  const std::uint32_t* index;
  std::size_t operator()(std::size_t j) const { return index[j]; }
};

}  // namespace

// The classic shortest-augmenting-path kernel with dual potentials,
// generalized to rows <= cols. Rows are inserted one at a time; each
// insertion runs a Dijkstra-like scan over reduced costs and shifts the
// potentials so the invariant (matched edges tight, inserted rows dual-
// feasible) is restored. The invariant is vacuous before the first
// insertion, so *any* initial potentials — all-zero (cold) or carried over
// from a previous solve (warm) — yield an exact optimum; warmth only
// shortens the augmenting paths.
template <typename ColMap>
std::uint64_t AssignmentWorkspace::run_kernel(const double* data,
                                              std::size_t stride, ColMap col,
                                              std::size_t nr, std::size_t nc) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::uint64_t path_steps = 0;
  for (std::size_t i = 1; i <= nr; ++i) {
    p_[0] = i;
    std::size_t j0 = 0;
    std::fill(minv_.begin(), minv_.begin() + static_cast<std::ptrdiff_t>(nc) + 1,
              kInf);
    std::fill(used_.begin(), used_.begin() + static_cast<std::ptrdiff_t>(nc) + 1,
              char{0});
    do {
      ++path_steps;
      used_[j0] = 1;
      const std::size_t i0 = p_[j0];
      const double* row = data + (i0 - 1) * stride;
      const double u0 = u_[i0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= nc; ++j) {
        if (used_[j]) continue;
        const double cur = row[col(j - 1)] - u0 - v_[j];
        if (cur < minv_[j]) {
          minv_[j] = cur;
          way_[j] = j0;
        }
        if (minv_[j] < delta) {
          delta = minv_[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= nc; ++j) {
        if (used_[j]) {
          u_[p_[j]] += delta;
          v_[j] -= delta;
        } else {
          minv_[j] -= delta;
        }
      }
      j0 = j1;
    } while (p_[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way_[j0];
      p_[j0] = p_[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  return path_steps;
}

void AssignmentWorkspace::solve_impl(const CostView& view, bool warm) {
  const std::size_t nr = view.rows();
  const std::size_t nc = view.cols();
  NOCMAP_REQUIRE(nr <= nc,
                 "assignment needs at least as many columns as rows");

  // Carried potentials are only sound on *square* instances: LP
  // complementary slackness demands v = 0 on every unmatched column, and a
  // rectangular solve cannot know up front which columns stay free, so a
  // nonzero carried v would bias the column choice toward stale favourites
  // and can return a non-optimal matching (found by the service_replay
  // fuzz oracle as a lower "bound" above a feasible objective).
  const bool warm_hit = warm && warm_cols_ == nc && nr == nc;
  (warm ? c_warm_solves : c_cold_solves).add();
  if (warm_hit) c_warm_hits.add();
  c_rows_inserted.add(nr);

  if (u_.size() < nr + 1) u_.resize(nr + 1);
  if (v_.size() < nc + 1) {
    v_.resize(nc + 1);
    minv_.resize(nc + 1);
    p_.resize(nc + 1);
    way_.resize(nc + 1);
    used_.resize(nc + 1);
  }

  // Row potentials are always re-derived (the first delta of each row's
  // insertion absorbs any initial value); column potentials persist across
  // warm solves of the same square size.
  std::fill(u_.begin(), u_.begin() + static_cast<std::ptrdiff_t>(nr) + 1, 0.0);
  if (!warm_hit) {
    std::fill(v_.begin(), v_.begin() + static_cast<std::ptrdiff_t>(nc) + 1,
              0.0);
  }
  std::fill(p_.begin(), p_.begin() + static_cast<std::ptrdiff_t>(nc) + 1,
            std::size_t{0});

  std::uint64_t path_steps = 0;
  if (view.col_index() != nullptr) {
    path_steps = run_kernel(view.data(), view.stride(),
                            GatherCol{view.col_index()}, nr, nc);
  } else {
    path_steps = run_kernel(view.data(), view.stride(), IdentityCol{}, nr, nc);
  }
  c_path_steps.add(path_steps);
  warm_cols_ = nc;

  result_.row_to_col.assign(nr, 0);
  // Optimal cost straight from the potentials: every matched edge is tight
  // (cost = u + v by construction), so the matching's cost is the sum of
  // its endpoints' potentials — no second pass over the cost data.
  double total = 0.0;
  for (std::size_t j = 1; j <= nc; ++j) {
    if (p_[j] == 0) continue;  // column left free (rectangular instance)
    result_.row_to_col[p_[j] - 1] = j - 1;
    total += u_[p_[j]] + v_[j];
  }
  result_.total_cost = total;

#ifndef NDEBUG
  // Debug cross-check: the potentials sum must agree with an explicit
  // re-walk of the chosen entries (up to accumulated rounding).
  double walk = 0.0;
  for (std::size_t r = 0; r < nr; ++r) {
    walk += view.at(r, result_.row_to_col[r]);
  }
  NOCMAP_ASSERT(std::abs(walk - total) <=
                1e-9 * std::max(1.0, std::abs(walk)));
#endif
}

const Assignment& AssignmentWorkspace::solve(const CostView& view) {
  solve_impl(view, /*warm=*/false);
  return result_;
}

const Assignment& AssignmentWorkspace::solve_warm(const CostView& view) {
  solve_impl(view, /*warm=*/true);
  if (cross_check_) {
    if (!shadow_) shadow_ = std::make_unique<AssignmentWorkspace>();
    const Assignment& cold = shadow_->solve(view);
    NOCMAP_REQUIRE(cold.row_to_col == result_.row_to_col,
                   "warm-started solve diverged from the cold solve");
  }
  return result_;
}

Assignment solve_assignment(const CostMatrix& cost) {
  NOCMAP_REQUIRE(cost.rows() == cost.cols(),
                 "Hungarian solver requires a square matrix");
  AssignmentWorkspace ws;
  return ws.solve(CostView::of(cost));
}

Assignment solve_assignment_brute_force(const CostMatrix& cost) {
  NOCMAP_REQUIRE(cost.rows() == cost.cols(),
                 "brute-force solver requires a square matrix");
  const std::size_t n = cost.rows();
  NOCMAP_REQUIRE(n <= 10, "brute-force solver limited to n <= 10");

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Assignment best;
  best.total_cost = std::numeric_limits<double>::infinity();
  do {
    const double c = assignment_cost(cost, perm);
    if (c < best.total_cost) {
      best.total_cost = c;
      best.row_to_col = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

double assignment_cost(const CostMatrix& cost,
                       const std::vector<std::size_t>& row_to_col) {
  NOCMAP_REQUIRE(row_to_col.size() == cost.rows(),
                 "assignment size must match matrix rows");
  double total = 0.0;
  for (std::size_t r = 0; r < row_to_col.size(); ++r) {
    NOCMAP_ASSERT(row_to_col[r] < cost.cols());
    total += cost.at(r, row_to_col[r]);
  }
  return total;
}

}  // namespace nocmap
