#include "assign/hungarian.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace nocmap {

CostMatrix::CostMatrix(std::size_t rows, std::size_t cols, double init)
    : rows_(rows), cols_(cols), data_(rows * cols, init) {
  NOCMAP_REQUIRE(rows > 0 && cols > 0, "cost matrix must be non-empty");
}

double& CostMatrix::at(std::size_t r, std::size_t c) {
  NOCMAP_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double CostMatrix::at(std::size_t r, std::size_t c) const {
  NOCMAP_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Assignment solve_assignment(const CostMatrix& cost) {
  NOCMAP_REQUIRE(cost.rows() == cost.cols(),
                 "Hungarian solver requires a square matrix");
  const std::size_t n = cost.rows();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // 1-based arrays per the classic potentials formulation; index 0 is a
  // sentinel column.
  std::vector<double> u(n + 1, 0.0);   // row potentials
  std::vector<double> v(n + 1, 0.0);   // column potentials
  std::vector<std::size_t> p(n + 1, 0);  // p[col] = row matched to col
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost.at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  Assignment result;
  result.row_to_col.assign(n, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    result.row_to_col[p[j] - 1] = j - 1;
  }
  result.total_cost = assignment_cost(cost, result.row_to_col);
  return result;
}

Assignment solve_assignment_brute_force(const CostMatrix& cost) {
  NOCMAP_REQUIRE(cost.rows() == cost.cols(),
                 "brute-force solver requires a square matrix");
  const std::size_t n = cost.rows();
  NOCMAP_REQUIRE(n <= 10, "brute-force solver limited to n <= 10");

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Assignment best;
  best.total_cost = std::numeric_limits<double>::infinity();
  do {
    const double c = assignment_cost(cost, perm);
    if (c < best.total_cost) {
      best.total_cost = c;
      best.row_to_col = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

double assignment_cost(const CostMatrix& cost,
                       const std::vector<std::size_t>& row_to_col) {
  NOCMAP_REQUIRE(row_to_col.size() == cost.rows(),
                 "assignment size must match matrix rows");
  double total = 0.0;
  for (std::size_t r = 0; r < row_to_col.size(); ++r) {
    NOCMAP_REQUIRE(row_to_col[r] < cost.cols(), "column index out of range");
    total += cost.at(r, row_to_col[r]);
  }
  return total;
}

}  // namespace nocmap
