// Linear-assignment solver (the Hungarian method of paper reference [15]).
//
// The single-application mapping problem (SAM, Section IV.A) and the exact
// Global baseline both reduce to minimum-cost matching on a dense cost
// matrix: cost[j][k] = c_j·TC(k) + m_j·TM(k) (eq. 13). We implement the
// O(n³) shortest-augmenting-path formulation with dual potentials
// (Jonker–Volgenant style), which is exact and fast enough for thousands of
// tiles.
//
// Two call surfaces exist:
//
//  * `solve_assignment(CostMatrix)` — the classic one-shot API, kept for
//    convenience and tests.
//  * `AssignmentWorkspace::solve{,_warm}(CostView)` — the hot-path kernel.
//    The workspace owns every scratch array (potentials, minv, used, path,
//    result), so after the first solve of a given size there is zero heap
//    traffic per call; `CostView` reads costs straight out of any row-major
//    table (e.g. the memoized ThreadCostCache) through an optional column
//    gather, so no per-call matrix is ever materialized. `solve_warm`
//    additionally carries the column potentials from the previous solve:
//    on the repeated near-identical instances produced by the SSS passes
//    and the bound evaluations, augmenting paths then terminate almost
//    immediately and the solve drops from O(n³) toward O(n²).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/error.h"

namespace nocmap {

/// Dense row-major cost matrix for the assignment problem.
class CostMatrix {
 public:
  CostMatrix(std::size_t rows, std::size_t cols, double init = 0.0);

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const double* data() const { return data_.data(); }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Non-owning view of a rows×cols cost block inside a row-major table with
/// arbitrary row stride, optionally gathering columns through an index
/// array: at(r, c) = data[r·stride + (col_index ? col_index[c] : c)].
///
/// This is what lets SAM solve directly over ThreadCostCache rows (stride =
/// num_tiles, col_index = the application's tile list) without copying an
/// n×n matrix per call. The viewed data and index array must outlive the
/// view; the index type is the library's TileId (std::uint32_t).
class CostView {
 public:
  CostView(const double* data, std::size_t rows, std::size_t cols,
           std::size_t stride, const std::uint32_t* col_index = nullptr)
      : data_(data), rows_(rows), cols_(cols), stride_(stride),
        col_index_(col_index) {
    NOCMAP_REQUIRE(rows > 0 && cols > 0, "cost view must be non-empty");
    NOCMAP_REQUIRE(col_index != nullptr || cols <= stride,
                   "dense cost view wider than its stride");
  }

  /// Dense view of a whole CostMatrix.
  static CostView of(const CostMatrix& m) {
    return CostView(m.data(), m.rows(), m.cols(), m.cols());
  }

  double at(std::size_t r, std::size_t c) const {
    NOCMAP_ASSERT(r < rows_ && c < cols_);
    return data_[r * stride_ + (col_index_ ? col_index_[c] : c)];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t stride() const { return stride_; }
  const double* data() const { return data_; }
  const std::uint32_t* col_index() const { return col_index_; }

 private:
  const double* data_;
  std::size_t rows_;
  std::size_t cols_;
  std::size_t stride_;
  const std::uint32_t* col_index_;
};

/// Result of an assignment: row r is assigned column `row_to_col[r]`.
struct Assignment {
  std::vector<std::size_t> row_to_col;
  double total_cost = 0.0;
};

/// Reusable scratch + warm-start state for the assignment kernel.
///
/// All arrays grow to the largest instance seen and are reused afterwards —
/// steady-state solves perform no heap allocation. Rectangular instances
/// with rows < cols are supported (the unmatched columns are simply left
/// free), which is how the relaxed per-application bounds avoid padding
/// with dummy rows.
///
/// Warm starts: `solve_warm` keeps the column potentials v from the
/// previous solve whenever the instance is square and the column count
/// matches (row potentials are always re-derived — on square instances the
/// kernel is correct for *any* initial potentials, so warmth is purely a
/// speed heuristic and never affects optimality). Rectangular solves always
/// run cold: optimality there requires zero potential on whichever columns
/// end up unmatched, which carried potentials cannot guarantee.
/// Because the returned assignment may differ between warm and cold starts
/// only when the instance has multiple optima, callers that need
/// schedule-independent results must key workspaces by logical solve site
/// (e.g. one workspace per application), never per worker thread.
class AssignmentWorkspace {
 public:
  AssignmentWorkspace() = default;

  /// Cold solve: potentials reset to zero first. Bit-identical to the
  /// classic `solve_assignment` on the same values.
  const Assignment& solve(const CostView& view);

  /// Warm solve: reuses the previous solve's column potentials when the
  /// instance is square and the column count matches (falls back to a cold
  /// solve otherwise — in particular every rectangular solve runs cold).
  const Assignment& solve_warm(const CostView& view);

  /// Result of the most recent solve (valid until the next one).
  const Assignment& last() const { return result_; }

  /// Drops the warm-start state; the next solve_warm runs cold.
  void invalidate() { warm_cols_ = 0; }

  /// When enabled, every warm solve is re-run cold in a shadow workspace
  /// and the two assignments are REQUIREd to be identical — the validation
  /// path proving warm starts change nothing. Intended for tests and
  /// debugging (it obviously forfeits the warm speedup); on instances with
  /// tied optima the cross-check may legitimately fail, so enable it on
  /// unique-optimum inputs.
  void set_cross_check(bool on) { cross_check_ = on; }

 private:
  void solve_impl(const CostView& view, bool warm);
  /// Returns the number of shortest-path scan steps (inner Dijkstra
  /// iterations across all row insertions) — the quantity warm starts
  /// shrink, exported through the observability counters.
  template <typename ColMap>
  std::uint64_t run_kernel(const double* data, std::size_t stride, ColMap col,
                           std::size_t nr, std::size_t nc);

  std::vector<double> u_;     // row potentials, 1-based
  std::vector<double> v_;     // column potentials, 1-based
  std::vector<double> minv_;  // per-column path minima
  std::vector<std::size_t> p_;    // p_[col] = row matched to col
  std::vector<std::size_t> way_;  // alternating-path predecessor
  std::vector<char> used_;
  Assignment result_;
  std::size_t warm_cols_ = 0;  // column count the stored v_ is valid for
  bool cross_check_ = false;
  std::unique_ptr<AssignmentWorkspace> shadow_;  // cross-check scratch
};

/// Exact minimum-cost assignment on a square matrix, O(n³). Throws on a
/// non-square or empty matrix. One-shot convenience wrapper over
/// AssignmentWorkspace; hot paths should hold a workspace instead.
Assignment solve_assignment(const CostMatrix& cost);

/// Exhaustive O(n!) reference solver; usable for n ≤ 10. Exists so property
/// tests can verify the Hungarian implementation against ground truth.
Assignment solve_assignment_brute_force(const CostMatrix& cost);

/// Total cost of an explicit assignment under `cost` (validation helper).
/// The size precondition throws; per-element column indices are checked
/// with NOCMAP_ASSERT only (debug builds), since this runs in hot loops.
double assignment_cost(const CostMatrix& cost,
                       const std::vector<std::size_t>& row_to_col);

}  // namespace nocmap
