// Linear-assignment solver (the Hungarian method of paper reference [15]).
//
// The single-application mapping problem (SAM, Section IV.A) and the exact
// Global baseline both reduce to minimum-cost perfect matching on a dense
// n×n cost matrix: cost[j][k] = c_j·TC(k) + m_j·TM(k) (eq. 13). We implement
// the O(n³) shortest-augmenting-path formulation with dual potentials
// (Jonker–Volgenant style), which is exact and fast enough for thousands of
// tiles.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.h"

namespace nocmap {

/// Dense row-major cost matrix for the assignment problem.
class CostMatrix {
 public:
  CostMatrix(std::size_t rows, std::size_t cols, double init = 0.0);

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Result of an assignment: row r is assigned column `row_to_col[r]`.
struct Assignment {
  std::vector<std::size_t> row_to_col;
  double total_cost = 0.0;
};

/// Exact minimum-cost assignment on a square matrix, O(n³). Throws on a
/// non-square or empty matrix.
Assignment solve_assignment(const CostMatrix& cost);

/// Exhaustive O(n!) reference solver; usable for n ≤ 10. Exists so property
/// tests can verify the Hungarian implementation against ground truth.
Assignment solve_assignment_brute_force(const CostMatrix& cost);

/// Total cost of an explicit assignment under `cost` (validation helper).
double assignment_cost(const CostMatrix& cost,
                       const std::vector<std::size_t>& row_to_col);

}  // namespace nocmap
