// Persistent worker team for per-cycle parallel phases.
//
// ThreadPool (thread_pool.h) dispatches chunky, coarse-grained tasks
// through a mutex-protected queue — fine when a task runs for milliseconds,
// hopeless when the unit of work is one simulator cycle (tens of
// microseconds) repeated hundreds of thousands of times. CycleWorkerTeam is
// the complementary engine: a fixed set of threads that all execute the
// same function once per "cycle" and meet at a barrier, with the dispatch
// cost of two atomic transitions instead of a queue round-trip.
//
// Protocol per run() call (one parallel phase):
//
//   1. The caller publishes the phase function and bumps the epoch counter
//      (release). Worker w = 0 is the caller itself, so a team of size N
//      spawns only N-1 threads.
//   2. Each worker observes the new epoch (acquire), runs fn(w), and
//      increments the arrival counter (release).
//   3. The caller runs fn(0), then waits for all arrivals (acquire) before
//      returning — at which point every write made by every worker during
//      the phase happens-before the caller's next read.
//
// Waiting is spin-then-sleep: a bounded spin keeps the latency of back-to-
// back cycles in the tens-of-nanoseconds range on idle cores, and the
// std::atomic wait/notify fallback keeps oversubscribed machines (CI
// runners, 1-core containers) from burning scheduler quanta.
//
// Exceptions thrown by fn are captured (first one wins), the barrier still
// completes — the other workers may be touching shared state, so run()
// never returns early — and the exception is rethrown on the caller.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nocmap {

class CycleWorkerTeam {
 public:
  /// A team of `size` workers (>= 1). Worker 0 is the calling thread;
  /// size - 1 threads are spawned and parked until run() or destruction.
  explicit CycleWorkerTeam(std::size_t size);
  ~CycleWorkerTeam();

  CycleWorkerTeam(const CycleWorkerTeam&) = delete;
  CycleWorkerTeam& operator=(const CycleWorkerTeam&) = delete;

  std::size_t size() const { return size_; }

  /// Runs f(w) for every w in [0, size()) — f(0) on the calling thread —
  /// and returns once all workers have finished. Rethrows the first
  /// exception any worker (caller included) threw during the phase.
  /// Not re-entrant: run() must not be called from inside f.
  template <typename F>
  void run(F&& f) {
    using Fn = std::remove_reference_t<F>;
    run_impl(
        [](void* ctx, std::size_t w) { (*static_cast<Fn*>(ctx))(w); },
        const_cast<Fn*>(std::addressof(f)));
  }

 private:
  void run_impl(void (*fn)(void*, std::size_t), void* ctx);
  void worker_loop(std::size_t index);
  void record_error();

  std::size_t size_ = 1;
  std::vector<std::thread> threads_;

  // Phase handshake (see protocol above). `epoch_` counts started phases
  // (kStopEpoch parks the team for destruction); `arrived_` counts workers
  // finished with the current phase, caller excluded.
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> arrived_{0};
  void (*fn_)(void*, std::size_t) = nullptr;
  void* ctx_ = nullptr;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;

  static constexpr std::uint64_t kStopEpoch = ~std::uint64_t{0};
};

}  // namespace nocmap
