// Fixed-width ASCII table rendering for bench output.
//
// Every bench binary prints paper-style tables; this keeps the formatting in
// one place so all reproductions read identically.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "util/csv.h"

namespace nocmap {

/// A simple column-aligned text table. Cells are strings; helpers format
/// doubles with a chosen precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column separators and a header rule.
  void print(std::ostream& os) const;

  /// Writes header + rows through a CsvWriter (machine-readable twin of
  /// print(), for external plotting).
  void write_csv(CsvWriter& writer) const;

  /// Convenience: writes the table to `path` as CSV.
  void save_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 2 decimals).
std::string fmt(double v, int precision = 2);

/// Formats as a percentage with sign, e.g. "+3.82%".
std::string fmt_percent(double fraction, int precision = 2);

}  // namespace nocmap
