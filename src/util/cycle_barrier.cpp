#include "util/cycle_barrier.h"

#include <utility>

#include "util/error.h"

namespace nocmap {

namespace {

/// Bounded spin before falling back to a futex-style sleep. Large enough
/// that a worker whose peers are mid-cycle (tens of microseconds of router
/// work) usually never sleeps; small enough that an oversubscribed core
/// yields within a scheduler quantum.
constexpr int kSpinIterations = 4096;

}  // namespace

CycleWorkerTeam::CycleWorkerTeam(std::size_t size) : size_(size) {
  NOCMAP_REQUIRE(size >= 1, "worker team needs at least one worker");
  threads_.reserve(size - 1);
  for (std::size_t w = 1; w < size; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

CycleWorkerTeam::~CycleWorkerTeam() {
  epoch_.store(kStopEpoch, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void CycleWorkerTeam::record_error() {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void CycleWorkerTeam::worker_loop(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    // Wait for the next phase: spin briefly, then sleep on the epoch word.
    std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
    for (int spin = 0; epoch == seen && spin < kSpinIterations; ++spin) {
      if ((spin & 63) == 63) std::this_thread::yield();
      epoch = epoch_.load(std::memory_order_acquire);
    }
    while (epoch == seen) {
      epoch_.wait(seen, std::memory_order_acquire);
      epoch = epoch_.load(std::memory_order_acquire);
    }
    if (epoch == kStopEpoch) return;
    seen = epoch;

    try {
      fn_(ctx_, index);
    } catch (...) {
      record_error();
    }
    arrived_.fetch_add(1, std::memory_order_release);
    arrived_.notify_one();
  }
}

void CycleWorkerTeam::run_impl(void (*fn)(void*, std::size_t), void* ctx) {
  if (size_ == 1) {
    fn(ctx, 0);  // no handshake needed — and no stored error possible
    return;
  }

  fn_ = fn;
  ctx_ = ctx;
  arrived_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();

  try {
    fn(ctx, 0);
  } catch (...) {
    record_error();
  }

  // Barrier: every spawned worker must arrive before the caller proceeds —
  // even after an exception, since workers may still be writing shared
  // state.
  const std::size_t expect = size_ - 1;
  std::size_t arrived = arrived_.load(std::memory_order_acquire);
  for (int spin = 0; arrived < expect && spin < kSpinIterations; ++spin) {
    if ((spin & 63) == 63) std::this_thread::yield();
    arrived = arrived_.load(std::memory_order_acquire);
  }
  while (arrived < expect) {
    arrived_.wait(arrived, std::memory_order_acquire);
    arrived = arrived_.load(std::memory_order_acquire);
  }

  if (first_error_) {
    std::exception_ptr err;
    {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      err = std::exchange(first_error_, nullptr);
    }
    std::rethrow_exception(err);
  }
}

}  // namespace nocmap
