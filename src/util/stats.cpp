#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace nocmap {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

namespace {

double sum_sq_dev(std::span<const double> xs, double m) {
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s;
}

}  // namespace

double stddev_population(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::sqrt(sum_sq_dev(xs, mean(xs)) / static_cast<double>(xs.size()));
}

double stddev_sample(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return std::sqrt(sum_sq_dev(xs, mean(xs)) /
                   static_cast<double>(xs.size() - 1));
}

double min_value(std::span<const double> xs) {
  NOCMAP_REQUIRE(!xs.empty(), "min_value of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  NOCMAP_REQUIRE(!xs.empty(), "max_value of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double min_to_max_ratio(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  const double mx = max_value(xs);
  if (mx == 0.0) return 0.0;
  return min_value(xs) / mx;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-variance combination.
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::stddev_population() const {
  return std::sqrt(variance_population());
}

double RunningStats::stddev_sample() const {
  return std::sqrt(variance_sample());
}

double inverse_normal_cdf(double p) {
  NOCMAP_REQUIRE(p > 0.0 && p < 1.0, "inverse_normal_cdf needs p in (0,1)");
  // Acklam's rational approximation with central / tail regions.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > p_high) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  NOCMAP_REQUIRE(hi > lo, "Histogram requires hi > lo");
  NOCMAP_REQUIRE(bins > 0, "Histogram requires at least one bin");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  NOCMAP_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::percentile(double p) const {
  NOCMAP_REQUIRE(p >= 0.0 && p <= 1.0, "percentile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = p * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto c = static_cast<double>(counts_[b]);
    if (cum + c >= target) {
      const double frac = c > 0.0 ? (target - cum) / c : 0.0;
      return bin_lo(b) + frac * (bin_hi(b) - bin_lo(b));
    }
    cum += c;
  }
  return hi_;
}

}  // namespace nocmap
