// Deterministic pseudo-random number generation for nocmap.
//
// Every stochastic component in the library (workload synthesis, Monte-Carlo
// mapping, simulated annealing, the network simulator's traffic generators)
// takes an explicit Rng so that experiments are reproducible from a single
// seed. The generator is PCG32 (O'Neill, 2014): small state, excellent
// statistical quality, and cheap enough for flit-level simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"

namespace nocmap {

/// Stateless 64-bit mixer used for seeding; also handy for hashing ids into
/// independent stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// PCG32 generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator; distinct (seed, stream) pairs give independent
  /// sequences, so parallel workers can derive per-worker streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffU; }

  /// Next raw 32-bit output.
  result_type operator()();

  /// Uniform integer in [0, bound), bias-free (Lemire rejection).
  std::uint32_t uniform_u32(std::uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (caches the second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u32(static_cast<std::uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A fresh generator with an independent stream derived from this one's
  /// seed material and `salt`; use for per-worker/per-node streams.
  Rng fork(std::uint64_t salt) const;

  /// `count` independent generators, one per trial: fork_streams(n)[i] is
  /// exactly fork(i). Materializing the whole family up front lets parallel
  /// trial runners hand stream i to trial i regardless of which worker
  /// executes it, so results are identical at any thread count.
  std::vector<Rng> fork_streams(std::size_t count) const;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  std::uint64_t seed_;    // retained for fork()
  std::uint64_t stream_;  // retained for fork()
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Identity permutation 0..n-1.
std::vector<std::size_t> identity_permutation(std::size_t n);

/// Uniformly random permutation of 0..n-1.
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace nocmap
