// Deterministic pseudo-random number generation for nocmap.
//
// Every stochastic component in the library (workload synthesis, Monte-Carlo
// mapping, simulated annealing, the network simulator's traffic generators)
// takes an explicit Rng so that experiments are reproducible from a single
// seed. The generator is PCG32 (O'Neill, 2014): small state, excellent
// statistical quality, and cheap enough for flit-level simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace nocmap {

/// Stateless 64-bit mixer used for seeding; also handy for hashing ids into
/// independent stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// PCG32 generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint32_t;

  /// Seeds the generator; distinct (seed, stream) pairs give independent
  /// sequences, so parallel workers can derive per-worker streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffU; }

  /// Next raw 32-bit output. Defined inline: the mapper search loops draw
  /// tens of millions of values per map() call, and an out-of-line call per
  /// draw roughly doubles the cost of a Fisher–Yates shuffle.
  result_type operator()() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform integer in [0, bound), bias-free (Lemire rejection). Inline for
  /// the same reason as operator(): it is the per-step cost of every shuffle
  /// and every neighborhood draw.
  std::uint32_t uniform_u32(std::uint32_t bound) {
    NOCMAP_REQUIRE(bound > 0, "uniform_u32 bound must be positive");
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t m = static_cast<std::uint64_t>((*this)()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>((*this)()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [0, 1) from a single 32-bit draw. 2^-32 resolution
  /// instead of uniform()'s 2^-53 — the right trade for hot acceptance
  /// tests (SA Metropolis, GA operator rates) where the compared
  /// probability is itself far coarser than 2^-32.
  double uniform32() { return static_cast<double>((*this)()) * 0x1.0p-32; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (caches the second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// In-place Fisher–Yates shuffle. The span overload shuffles storage that
  /// is not its own vector (rows of a flat genome pool); both make the same
  /// draws for the same size.
  template <typename T>
  void shuffle(std::span<T> v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u32(static_cast<std::uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }
  template <typename T>
  void shuffle(std::vector<T>& v) {
    shuffle(std::span<T>(v));
  }

  /// A fresh generator with an independent stream derived from this one's
  /// seed material and `salt`; use for per-worker/per-node streams.
  Rng fork(std::uint64_t salt) const;

  /// `count` independent generators, one per trial: fork_streams(n)[i] is
  /// exactly fork(i). Materializing the whole family up front lets parallel
  /// trial runners hand stream i to trial i regardless of which worker
  /// executes it, so results are identical at any thread count.
  std::vector<Rng> fork_streams(std::size_t count) const;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  std::uint64_t seed_;    // retained for fork()
  std::uint64_t stream_;  // retained for fork()
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Identity permutation 0..n-1.
std::vector<std::size_t> identity_permutation(std::size_t n);

/// Uniformly random permutation of 0..n-1.
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace nocmap
