#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace nocmap {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((splitmix64(stream) << 1u) | 1u), seed_(seed),
      stream_(stream) {
  // Standard PCG32 seeding sequence.
  (*this)();
  state_ += splitmix64(seed);
  (*this)();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NOCMAP_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Span fits in 32 bits for all nocmap uses (tile/thread counts).
  NOCMAP_REQUIRE(span <= 0x100000000ULL, "uniform_int span too large");
  if (span == 0x100000000ULL) return lo + static_cast<std::int64_t>((*this)());
  return lo + static_cast<std::int64_t>(
                  uniform_u32(static_cast<std::uint32_t>(span)));
}

double Rng::uniform() {
  // 53-bit mantissa from two draws for full double resolution.
  const std::uint64_t hi = (*this)();
  const std::uint64_t lo = (*this)();
  const std::uint64_t bits = (hi << 21) ^ (lo >> 11);
  return static_cast<double>(bits & ((1ULL << 53) - 1)) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  NOCMAP_REQUIRE(lo <= hi, "uniform requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  NOCMAP_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) {
  NOCMAP_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0,1]");
  return uniform() < p;
}

double Rng::exponential(double rate) {
  NOCMAP_REQUIRE(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

Rng Rng::fork(std::uint64_t salt) const {
  return Rng(splitmix64(seed_ ^ splitmix64(salt)),
             splitmix64(stream_ + salt * 0x9e3779b97f4a7c15ULL));
}

std::vector<Rng> Rng::fork_streams(std::size_t count) const {
  std::vector<Rng> streams;
  streams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) streams.push_back(fork(i));
  return streams;
}

std::vector<std::size_t> identity_permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  return p;
}

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  auto p = identity_permutation(n);
  rng.shuffle(p);
  return p;
}

}  // namespace nocmap
