#include "util/csv.h"

#include "util/error.h"

namespace nocmap {

std::string csv_escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  NOCMAP_REQUIRE(out_.good(), "cannot open CSV file: " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << csv_escape(cells[i]);
    if (i + 1 < cells.size()) out_ << ',';
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace nocmap
