#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.h"

namespace nocmap {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  NOCMAP_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  NOCMAP_REQUIRE(cells.size() == header_.size(),
                 "row arity must match header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 < row.size() ? " | " : " |\n");
    }
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::write_csv(CsvWriter& writer) const {
  writer.write_row(header_);
  for (const auto& row : rows_) writer.write_row(row);
}

void TextTable::save_csv(const std::string& path) const {
  CsvWriter writer(path);
  write_csv(writer);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(precision)
     << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace nocmap
