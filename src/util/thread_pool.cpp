#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace nocmap {

namespace {
/// Pool whose worker is executing on this thread, if any.
thread_local const ThreadPool* t_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    NOCMAP_REQUIRE(!stop_, "submit on stopped pool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_task_error_) {
    std::exception_ptr error = std::exchange(first_task_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool ThreadPool::on_worker_thread() const { return t_current_pool == this; }

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      // A throwing submit() task must not kill the worker (std::terminate)
      // or corrupt the in-flight count; stash the first error for
      // wait_idle(). parallel_for bodies never reach this path — they are
      // wrapped in their own capture below.
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_task_error_) first_task_error_ = error;
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  if (on_worker_thread()) {
    // Nested call from inside this pool: run inline to avoid blocking a
    // worker on tasks only this pool could execute (deadlock).
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  // Per-call completion state. Everything lives on this stack frame, so the
  // final notification must happen while done_mutex is held: the waiter can
  // only destroy the frame after it reacquires the mutex, which orders the
  // destruction after the last worker's notify. (Notifying after unlock
  // would race worker-side cv access against frame destruction.)
  struct CallState {
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::exception_ptr first_error;
  } state;
  std::size_t launched = 0;

  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    ++launched;
    submit([&state, &body, lo, hi] {
      std::exception_ptr error;
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard lock(state.done_mutex);
      if (error && !state.first_error) state.first_error = error;
      ++state.done;
      state.done_cv.notify_one();
    });
  }

  std::unique_lock lock(state.done_mutex);
  state.done_cv.wait(lock, [&] { return state.done == launched; });
  // All chunks have drained: the pool is reusable and the error (if any) is
  // rethrown exactly once, to this caller only.
  if (state.first_error) std::rethrow_exception(state.first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  static ThreadPool pool;  // shared process-wide pool
  pool.parallel_for(begin, end, body);
}

}  // namespace nocmap
