// Deterministic fast math for hot search loops.
//
// The annealer's acceptance test evaluates exp(-delta/temp) on nearly every
// non-improving iteration; at ~50 k iterations per map the libm call is a
// measurable slice of the whole chain. fast_exp_neg replaces it with a pure
// arithmetic pipeline (range reduction to 2^-k · e^s with |s| < ln 2 and a
// degree-10 Taylor polynomial in Estrin form): no libm, no tables, no
// data-dependent branches past the range check, and the same result for the
// same input on every run — the property the deterministic-mapping tests
// rely on. Maximum relative error is below 1e-8 (truncation ~9e-10 plus a
// few ulp of rounding), far finer than the 2^-53 resolution of the uniform
// variate it is compared against, so acceptance decisions are statistically
// indistinguishable from the libm ones.
#pragma once

#include <bit>
#include <cstdint>

#include "util/error.h"

namespace nocmap {

/// exp(-x) for x >= 0 (finite). Returns 0.0 once the true value drops below
/// ~2^-1020 — callers compare against probabilities no finer than 2^-53, so
/// the early zero never changes a decision.
inline double fast_exp_neg(double x) {
  NOCMAP_ASSERT(x >= 0.0);
  constexpr double kLog2e = 1.4426950408889634074;
  const double y = x * kLog2e;  // exp(-x) = 2^-y
  if (y >= 1020.0) return 0.0;
  const auto k = static_cast<std::int64_t>(y);  // floor: y >= 0
  constexpr double kLn2 = 0.69314718055994530942;
  const double s = -(y - static_cast<double>(k)) * kLn2;  // in (-ln2, 0]
  // e^s via the degree-10 Taylor series, Estrin scheme (log-depth chain
  // instead of Horner's serial multiply-add dependency).
  constexpr double c2 = 1.0 / 2.0;
  constexpr double c3 = 1.0 / 6.0;
  constexpr double c4 = 1.0 / 24.0;
  constexpr double c5 = 1.0 / 120.0;
  constexpr double c6 = 1.0 / 720.0;
  constexpr double c7 = 1.0 / 5040.0;
  constexpr double c8 = 1.0 / 40320.0;
  constexpr double c9 = 1.0 / 362880.0;
  constexpr double c10 = 1.0 / 3628800.0;
  const double s2 = s * s;
  const double s4 = s2 * s2;
  const double s8 = s4 * s4;
  const double q03 = (1.0 + s) + (c2 + c3 * s) * s2;
  const double q47 = (c4 + c5 * s) + (c6 + c7 * s) * s2;
  const double q810 = (c8 + c9 * s) + c10 * s2;
  const double r = (q03 + q47 * s4) + q810 * s8;
  // Exact scaling by 2^-k: k in [0, 1019] so the exponent stays normal.
  const double scale =
      std::bit_cast<double>(static_cast<std::uint64_t>(1023 - k) << 52);
  return r * scale;
}

}  // namespace nocmap
