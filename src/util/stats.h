// Descriptive statistics used throughout nocmap.
//
// The paper's evaluation reports means, population standard deviations
// (dev-APL), minima/maxima and ratios; this header centralizes those so every
// module computes them identically.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nocmap {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Population standard deviation (divide by N). The paper's dev-APL is a
/// population statistic over the A applications.
double stddev_population(std::span<const double> xs);

/// Sample standard deviation (divide by N-1); 0 when fewer than 2 values.
double stddev_sample(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// min/max ratio in [0,1]; the "min-to-max" fairness metric discussed (and
/// rejected as an objective) in the paper's Section III.A. Returns 1 for an
/// empty span, 0 when max == 0.
double min_to_max_ratio(std::span<const double> xs);

/// Streaming mean/variance accumulator (Welford). Used for per-packet
/// latency statistics in the network simulator where storing every sample
/// would be wasteful.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance_population() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  double variance_sample() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev_population() const;
  double stddev_sample() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9). Used for deterministic quantile sampling in
/// workload synthesis. Requires p in (0, 1).
double inverse_normal_cdf(double p);

/// Fixed-bin histogram over [lo, hi); samples outside are clamped into the
/// first/last bin. Used for packet-latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Value below which the given fraction (0..1) of samples fall, linearly
  /// interpolated within the containing bin.
  double percentile(double p) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace nocmap
