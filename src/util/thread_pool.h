// A small fixed-size thread pool with a blocking parallel_for.
//
// Used to parallelize embarrassingly parallel sweeps: Monte-Carlo mapping
// trials, per-configuration bench runs, and batched network simulations.
// Deterministic results are preserved by giving each index range its own
// forked RNG stream at the call site.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nocmap {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; fire-and-forget (use parallel_for for joining).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs body(i) for i in [begin, end), chunked across the pool, and blocks
  /// until all iterations complete. Exceptions from the body are rethrown
  /// (first one wins).
  ///
  /// Re-entrancy: when called from one of this pool's own worker threads
  /// (nested parallelism), the range runs inline on the calling thread —
  /// blocking a worker on subtasks the same pool must execute would
  /// deadlock once all workers are blocked.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Convenience: one-shot parallel_for on a transient pool sized to hardware.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace nocmap
