// A small fixed-size thread pool with a blocking parallel_for.
//
// Used to parallelize embarrassingly parallel sweeps: Monte-Carlo mapping
// trials, SSS window-evaluation rounds, per-configuration bench runs, and
// batched network simulations. Deterministic results are preserved by giving
// each index its own result slot (and, where randomness is involved, its own
// forked RNG stream) at the call site — chunking across workers never feeds
// one iteration's output into another.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nocmap {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; fire-and-forget (use parallel_for for joining). If the
  /// task throws, the pool stays alive and the first captured exception is
  /// rethrown by the next wait_idle() call.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception thrown by a submitted task since the previous wait_idle()
  /// (the error slot is cleared by the rethrow).
  void wait_idle();

  /// Runs body(i) for i in [begin, end), chunked across the pool, and blocks
  /// until all iterations complete. Exceptions from the body are rethrown
  /// exactly once (the first one wins; later ones are dropped), after every
  /// chunk has drained — so the pool is immediately reusable and no stale
  /// error leaks into a later call. This holds for every range/size
  /// combination, including a single-worker pool and ranges smaller than
  /// the worker count.
  ///
  /// Re-entrancy: when called from one of this pool's own worker threads
  /// (nested parallelism), the range runs inline on the calling thread —
  /// blocking a worker on subtasks the same pool must execute would
  /// deadlock once all workers are blocked. Concurrent parallel_for and
  /// submit calls from different external threads are safe.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_task_error_;  // from raw submit() tasks
};

/// Convenience: one-shot parallel_for on a shared process-wide pool sized to
/// hardware.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

}  // namespace nocmap
