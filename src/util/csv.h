// Minimal CSV emission so bench binaries can dump machine-readable results
// next to the human-readable tables (for plotting the figures externally).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace nocmap {

/// Writes rows of stringified cells as RFC-4180-ish CSV (quotes cells that
/// contain commas, quotes or newlines).
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws nocmap::Error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// Flushes and closes; also done by the destructor.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

 private:
  std::ofstream out_;
};

/// Escapes a single CSV cell per RFC 4180.
std::string csv_escape(const std::string& cell);

}  // namespace nocmap
