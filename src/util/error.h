// Error-handling primitives shared by every nocmap module.
//
// Library code validates its preconditions with NOCMAP_REQUIRE, which throws
// nocmap::Error (a std::runtime_error) carrying the failed expression and
// location. Internal invariants that indicate a bug rather than bad input use
// NOCMAP_ASSERT, which is compiled out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nocmap {

/// Exception type thrown on violated preconditions anywhere in nocmap.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "nocmap requirement failed: (" << expr << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace nocmap

/// Validate a caller-supplied precondition; throws nocmap::Error on failure.
#define NOCMAP_REQUIRE(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::nocmap::detail::raise_require(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)

/// Internal invariant check; active only in debug builds.
#ifdef NDEBUG
#define NOCMAP_ASSERT(expr) ((void)0)
#else
#define NOCMAP_ASSERT(expr) NOCMAP_REQUIRE(expr, "internal invariant")
#endif
