// 2-D mesh topology for tile-based CMPs (paper Section II.B–C).
//
// Tiles are identified by 0-based TileId internally; the paper's 1-based
// numbering k = (i-1)*n + j (eq. 1, row i from top, column j from left) is
// exposed via paper_number()/from_paper_number() so bench output matches the
// paper's grids exactly.
//
// Routing is dimension-order (XY), so the hop count between two tiles is the
// Manhattan distance. Memory-controller placement is a property of the mesh;
// the paper places one MC in each of the four corners and forwards memory
// requests to the nearest MC (the "proximity principle", which on a square
// mesh with corner MCs is exactly the quadrant rule of eq. 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace nocmap {

using TileId = std::uint32_t;

/// Row/column coordinate, 0-based, row 0 at the top.
struct TileCoord {
  std::uint32_t row = 0;
  std::uint32_t col = 0;

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

/// Built-in memory-controller placement schemes.
enum class McPlacement {
  kCorners,      ///< one MC per corner (the paper's layout)
  kEdgeMiddles,  ///< one MC at the middle of each edge
  kDiamond,      ///< four MCs around the mesh center
};

/// Link arrangement: a plain mesh, or a torus with wraparound links in
/// both dimensions. The torus is an analytic extension (hop counts use the
/// shorter way around); the cycle-level simulator models meshes only.
enum class Wraparound : std::uint8_t { kNone, kTorus };

/// A rows × cols mesh (or torus) with dimension-order routing and a set of
/// MC tiles.
class Mesh {
 public:
  /// Square n×n mesh with the paper's corner MCs.
  static Mesh square(std::uint32_t n);

  /// Square n×n torus with the same corner MCs (extension; see ext_torus).
  static Mesh square_torus(std::uint32_t n);

  /// General constructor. `mc_tiles` may be empty (memory latency then
  /// treated as 0 hops is invalid — TM computation requires ≥1 MC).
  Mesh(std::uint32_t rows, std::uint32_t cols, std::vector<TileId> mc_tiles,
       Wraparound wraparound = Wraparound::kNone);

  /// Square mesh with a named placement scheme.
  static Mesh square_with_placement(std::uint32_t n, McPlacement placement);

  bool is_torus() const { return wraparound_ == Wraparound::kTorus; }

  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::size_t num_tiles() const {
    return static_cast<std::size_t>(rows_) * cols_;
  }

  TileCoord coord_of(TileId t) const;
  TileId tile_at(TileCoord c) const;
  TileId tile_at(std::uint32_t row, std::uint32_t col) const;

  /// Paper's 1-based tile number (eq. 1).
  std::uint32_t paper_number(TileId t) const { return t + 1; }
  TileId from_paper_number(std::uint32_t k) const;

  /// Hop count between two tiles under XY routing (Manhattan distance).
  std::uint32_t hops(TileId a, TileId b) const;

  /// Average hop count from `t` to all tiles including itself — the paper's
  /// HC_k (eq. 3): the expected distance of a cache packet whose bank is
  /// uniformly address-hashed over all N tiles.
  double avg_hops_to_all(TileId t) const;

  /// Hop count from `t` to its nearest memory controller — the paper's HM_k.
  /// For a square mesh with corner MCs this equals eq. 4.
  std::uint32_t hops_to_nearest_mc(TileId t) const;

  /// The nearest MC tile itself (ties broken toward the lowest TileId);
  /// needed by the network simulator to pick a concrete destination.
  TileId nearest_mc(TileId t) const;

  std::span<const TileId> mc_tiles() const { return mc_tiles_; }
  bool is_mc(TileId t) const;

 private:
  std::uint32_t rows_;
  std::uint32_t cols_;
  Wraparound wraparound_ = Wraparound::kNone;
  std::vector<TileId> mc_tiles_;
  std::vector<std::uint8_t> is_mc_;         // indexed by TileId
  std::vector<TileId> nearest_mc_;          // precomputed per tile
  std::vector<std::uint32_t> mc_distance_;  // precomputed per tile
};

}  // namespace nocmap
