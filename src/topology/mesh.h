// Mesh topology for tile-based CMPs (paper Section II.B–C), generalized to
// 3D stacked meshes and arbitrary MC sets.
//
// Tiles are identified by 0-based TileId internally; the paper's 1-based
// numbering k = (i-1)*n + j (eq. 1, row i from top, column j from left) is
// exposed via paper_number()/from_paper_number() so bench output matches the
// paper's grids exactly. A stacked mesh extends the layout layer-major:
// id = layer*(rows*cols) + row*cols + col, so layer 0 of a 3D mesh uses the
// same ids as the equivalent 2D mesh.
//
// Routing is dimension-order (XY on a planar mesh, XYZ on a stack), so the
// hop count between two tiles is the Manhattan distance across all
// dimensions. Vertical (through-silicon-via) hops may be cheaper or dearer
// than planar hops; `tsv_hop_cost` expresses a TSV traversal in units of
// planar hops and feeds the weighted distances used by the latency model.
//
// Memory-controller placement is a property of the mesh; the paper places
// one MC in each of the four corners of a 2D mesh and forwards memory
// requests to the nearest MC (the "proximity principle", which on a square
// mesh with corner MCs is exactly the quadrant rule of eq. 4). With an
// arbitrary MC set the same rule becomes a nearest-MC Voronoi partition over
// weighted distance, ties broken toward the lowest MC tile id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.h"

namespace nocmap {

using TileId = std::uint32_t;

/// Row/column(/layer) coordinate, 0-based, row 0 at the top, layer 0 at the
/// bottom of the stack. `layer` is last so 2D aggregate initializers
/// `{row, col}` keep meaning layer 0.
struct TileCoord {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  std::uint32_t layer = 0;

  friend bool operator==(const TileCoord&, const TileCoord&) = default;
};

/// Built-in memory-controller placement schemes. On a stacked mesh the
/// scheme places its MCs on layer 0 (the base die next to the package).
enum class McPlacement {
  kCorners,      ///< one MC per corner (the paper's layout)
  kEdgeMiddles,  ///< one MC at the middle of each edge
  kDiamond,      ///< four MCs around the mesh center
  kRandom,       ///< seed-drawn arbitrary MC set (scenario/sweep layer only;
                 ///< square_with_placement rejects it — it needs a seed)
};

/// Scheme name used by scenario repro files and sweep specs.
const char* mc_placement_name(McPlacement placement);

/// Parses a scheme name; returns false (and leaves `out` untouched) for an
/// unknown name.
bool mc_placement_from_name(const std::string& name, McPlacement& out);

/// Link arrangement: a plain mesh, or a torus with wraparound links in
/// both planar dimensions. The torus is an analytic extension (hop counts
/// use the shorter way around) and stays 2D-only; the cycle-level simulator
/// models meshes (planar or stacked) only.
enum class Wraparound : std::uint8_t { kNone, kTorus };

/// A layers × rows × cols mesh (or 2D torus) with dimension-order routing
/// and a set of MC tiles.
class Mesh {
 public:
  /// Square n×n mesh with the paper's corner MCs.
  static Mesh square(std::uint32_t n);

  /// Square n×n torus with the same corner MCs (extension; see ext_torus).
  static Mesh square_torus(std::uint32_t n);

  /// General 2D constructor. `mc_tiles` must be non-empty and free of
  /// duplicates (TM computation requires ≥1 MC; duplicates would silently
  /// double-count in every loop over mc_tiles()).
  Mesh(std::uint32_t rows, std::uint32_t cols, std::vector<TileId> mc_tiles,
       Wraparound wraparound = Wraparound::kNone);

  /// General stacked constructor: `layers` dies of rows × cols tiles each.
  /// `tsv_hop_cost` weighs one vertical hop in units of planar hops (must
  /// be positive). Stacking excludes wraparound.
  Mesh(std::uint32_t layers, std::uint32_t rows, std::uint32_t cols,
       std::vector<TileId> mc_tiles, double tsv_hop_cost = 1.0);

  /// Square mesh with a named placement scheme (kRandom is rejected).
  static Mesh square_with_placement(std::uint32_t n, McPlacement placement);

  /// Stacked layers × n × n mesh with a named placement scheme applied to
  /// layer 0 (kRandom is rejected).
  static Mesh stacked_with_placement(std::uint32_t layers, std::uint32_t n,
                                     McPlacement placement,
                                     double tsv_hop_cost = 1.0);

  bool is_torus() const { return wraparound_ == Wraparound::kTorus; }
  bool is_3d() const { return layers_ > 1; }

  std::uint32_t layers() const { return layers_; }
  std::uint32_t rows() const { return rows_; }
  std::uint32_t cols() const { return cols_; }
  std::size_t tiles_per_layer() const {
    return static_cast<std::size_t>(rows_) * cols_;
  }
  std::size_t num_tiles() const { return tiles_per_layer() * layers_; }

  /// Cost of one vertical hop in units of planar hops (1.0 on a 2D mesh).
  double tsv_hop_cost() const { return tsv_hop_cost_; }

  TileCoord coord_of(TileId t) const;
  TileId tile_at(TileCoord c) const;
  TileId tile_at(std::uint32_t row, std::uint32_t col) const;
  TileId tile_at(std::uint32_t layer, std::uint32_t row,
                 std::uint32_t col) const;

  /// Paper's 1-based tile number (eq. 1).
  std::uint32_t paper_number(TileId t) const { return t + 1; }
  TileId from_paper_number(std::uint32_t k) const;

  /// Hop count between two tiles under dimension-order routing (Manhattan
  /// distance across row, column, and layer).
  std::uint32_t hops(TileId a, TileId b) const;

  /// Distance with vertical hops weighted by tsv_hop_cost():
  /// planar_hops + tsv_hop_cost * layer_hops. Equals hops() on a 2D mesh.
  double weighted_hops(TileId a, TileId b) const;

  /// Average hop count from `t` to all tiles including itself — the paper's
  /// HC_k (eq. 3): the expected distance of a cache packet whose bank is
  /// uniformly address-hashed over all N tiles.
  double avg_hops_to_all(TileId t) const;

  /// Average weighted_hops() from `t` to all tiles including itself; the
  /// 3D generalization of HC_k. Equals avg_hops_to_all() on a 2D mesh.
  double avg_weighted_hops_to_all(TileId t) const;

  /// Hop count from `t` to its nearest memory controller — the paper's HM_k.
  /// For a square mesh with corner MCs this equals eq. 4. "Nearest" is by
  /// weighted distance (ties toward the lowest MC id); this returns the
  /// plain hop count to that chosen MC.
  std::uint32_t hops_to_nearest_mc(TileId t) const;

  /// Weighted distance from `t` to its nearest MC (the generalized HM_k).
  double weighted_hops_to_nearest_mc(TileId t) const;

  /// The nearest MC tile itself (weighted distance, ties broken toward the
  /// lowest TileId); needed by the network simulator to pick a concrete
  /// destination.
  TileId nearest_mc(TileId t) const;

  std::span<const TileId> mc_tiles() const { return mc_tiles_; }
  bool is_mc(TileId t) const;

 private:
  void init();

  std::uint32_t layers_ = 1;
  std::uint32_t rows_;
  std::uint32_t cols_;
  Wraparound wraparound_ = Wraparound::kNone;
  double tsv_hop_cost_ = 1.0;
  std::vector<TileId> mc_tiles_;
  std::vector<std::uint8_t> is_mc_;         // indexed by TileId
  std::vector<TileId> nearest_mc_;          // precomputed per tile
  std::vector<std::uint32_t> mc_distance_;  // plain hops to nearest_mc_[t]
  std::vector<double> mc_weighted_;         // weighted hops to nearest_mc_[t]
};

}  // namespace nocmap
