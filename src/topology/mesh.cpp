#include "topology/mesh.h"

#include <algorithm>
#include <limits>

namespace nocmap {

namespace {

std::uint32_t abs_diff(std::uint32_t a, std::uint32_t b) {
  return a > b ? a - b : b - a;
}

}  // namespace

const char* mc_placement_name(McPlacement placement) {
  switch (placement) {
    case McPlacement::kCorners: return "corners";
    case McPlacement::kEdgeMiddles: return "edge_middles";
    case McPlacement::kDiamond: return "diamond";
    case McPlacement::kRandom: return "random";
  }
  return "corners";
}

bool mc_placement_from_name(const std::string& name, McPlacement& out) {
  if (name == "corners") out = McPlacement::kCorners;
  else if (name == "edge_middles") out = McPlacement::kEdgeMiddles;
  else if (name == "diamond") out = McPlacement::kDiamond;
  else if (name == "random") out = McPlacement::kRandom;
  else return false;
  return true;
}

Mesh Mesh::square(std::uint32_t n) {
  return square_with_placement(n, McPlacement::kCorners);
}

Mesh Mesh::square_torus(std::uint32_t n) {
  NOCMAP_REQUIRE(n >= 2, "mesh side must be at least 2");
  auto at = [n](std::uint32_t r, std::uint32_t c) { return r * n + c; };
  return Mesh(n, n,
              {at(0, 0), at(0, n - 1), at(n - 1, 0), at(n - 1, n - 1)},
              Wraparound::kTorus);
}

Mesh Mesh::square_with_placement(std::uint32_t n, McPlacement placement) {
  NOCMAP_REQUIRE(n >= 2, "mesh side must be at least 2");
  std::vector<TileId> mcs;
  auto at = [n](std::uint32_t r, std::uint32_t c) { return r * n + c; };
  switch (placement) {
    case McPlacement::kCorners:
      mcs = {at(0, 0), at(0, n - 1), at(n - 1, 0), at(n - 1, n - 1)};
      break;
    case McPlacement::kEdgeMiddles: {
      const std::uint32_t m = n / 2;
      mcs = {at(0, m), at(m, 0), at(m, n - 1), at(n - 1, m)};
      break;
    }
    case McPlacement::kDiamond: {
      const std::uint32_t lo = (n - 1) / 2;
      const std::uint32_t hi = n / 2;
      mcs = {at(lo, lo), at(lo, hi), at(hi, lo), at(hi, hi)};
      std::sort(mcs.begin(), mcs.end());
      mcs.erase(std::unique(mcs.begin(), mcs.end()), mcs.end());
      break;
    }
    case McPlacement::kRandom:
      NOCMAP_REQUIRE(false,
                     "kRandom needs a seed-drawn MC set; build the Mesh from "
                     "explicit mc_tiles instead");
  }
  return Mesh(n, n, std::move(mcs));
}

Mesh Mesh::stacked_with_placement(std::uint32_t layers, std::uint32_t n,
                                  McPlacement placement, double tsv_hop_cost) {
  Mesh base = square_with_placement(n, placement);
  return Mesh(layers, n, n,
              {base.mc_tiles().begin(), base.mc_tiles().end()},
              tsv_hop_cost);
}

Mesh::Mesh(std::uint32_t rows, std::uint32_t cols, std::vector<TileId> mc_tiles,
           Wraparound wraparound)
    : rows_(rows), cols_(cols), wraparound_(wraparound),
      mc_tiles_(std::move(mc_tiles)) {
  init();
}

Mesh::Mesh(std::uint32_t layers, std::uint32_t rows, std::uint32_t cols,
           std::vector<TileId> mc_tiles, double tsv_hop_cost)
    : layers_(layers), rows_(rows), cols_(cols), tsv_hop_cost_(tsv_hop_cost),
      mc_tiles_(std::move(mc_tiles)) {
  init();
}

void Mesh::init() {
  NOCMAP_REQUIRE(layers_ >= 1 && rows_ >= 1 && cols_ >= 1,
                 "mesh must be non-empty");
  NOCMAP_REQUIRE(!(is_torus() && is_3d()), "torus wraparound is 2D-only");
  NOCMAP_REQUIRE(tsv_hop_cost_ > 0.0, "TSV hop cost must be positive");
  NOCMAP_REQUIRE(!mc_tiles_.empty(), "mesh needs at least one MC tile");
  const std::size_t n = num_tiles();
  is_mc_.assign(n, 0);
  for (TileId t : mc_tiles_) {
    NOCMAP_REQUIRE(t < n, "MC tile id out of range");
    NOCMAP_REQUIRE(!is_mc_[t], "duplicate MC tile id");
    is_mc_[t] = 1;
  }

  nearest_mc_.assign(n, 0);
  mc_distance_.assign(n, 0);
  mc_weighted_.assign(n, 0.0);
  for (TileId t = 0; t < n; ++t) {
    double best = std::numeric_limits<double>::max();
    TileId best_mc = mc_tiles_.front();
    for (TileId mc : mc_tiles_) {
      const double d = weighted_hops(t, mc);
      if (d < best || (d == best && mc < best_mc)) {
        best = d;
        best_mc = mc;
      }
    }
    nearest_mc_[t] = best_mc;
    mc_distance_[t] = hops(t, best_mc);
    mc_weighted_[t] = best;
  }
}

TileCoord Mesh::coord_of(TileId t) const {
  NOCMAP_REQUIRE(t < num_tiles(), "tile id out of range");
  const auto per_layer = static_cast<std::uint32_t>(tiles_per_layer());
  const std::uint32_t rem = t % per_layer;
  return {rem / cols_, rem % cols_, t / per_layer};
}

TileId Mesh::tile_at(TileCoord c) const {
  return tile_at(c.layer, c.row, c.col);
}

TileId Mesh::tile_at(std::uint32_t row, std::uint32_t col) const {
  return tile_at(0, row, col);
}

TileId Mesh::tile_at(std::uint32_t layer, std::uint32_t row,
                     std::uint32_t col) const {
  NOCMAP_REQUIRE(layer < layers_ && row < rows_ && col < cols_,
                 "tile coordinate out of range");
  return layer * static_cast<std::uint32_t>(tiles_per_layer()) +
         row * cols_ + col;
}

TileId Mesh::from_paper_number(std::uint32_t k) const {
  NOCMAP_REQUIRE(k >= 1 && k <= num_tiles(), "paper tile number out of range");
  return k - 1;
}

std::uint32_t Mesh::hops(TileId a, TileId b) const {
  const TileCoord ca = coord_of(a);
  const TileCoord cb = coord_of(b);
  std::uint32_t dr = abs_diff(ca.row, cb.row);
  std::uint32_t dc = abs_diff(ca.col, cb.col);
  if (wraparound_ == Wraparound::kTorus) {
    dr = std::min(dr, rows_ - dr);
    dc = std::min(dc, cols_ - dc);
  }
  return dr + dc + abs_diff(ca.layer, cb.layer);
}

double Mesh::weighted_hops(TileId a, TileId b) const {
  const TileCoord ca = coord_of(a);
  const TileCoord cb = coord_of(b);
  std::uint32_t dr = abs_diff(ca.row, cb.row);
  std::uint32_t dc = abs_diff(ca.col, cb.col);
  if (wraparound_ == Wraparound::kTorus) {
    dr = std::min(dr, rows_ - dr);
    dc = std::min(dc, cols_ - dc);
  }
  return static_cast<double>(dr + dc) +
         tsv_hop_cost_ * abs_diff(ca.layer, cb.layer);
}

double Mesh::avg_hops_to_all(TileId t) const {
  const TileCoord c = coord_of(t);
  // Row, column, and layer contributions are separable under dimension
  // order.
  auto dim_dist = [this](std::uint32_t a, std::uint32_t b,
                         std::uint32_t extent) {
    std::uint32_t d = abs_diff(a, b);
    if (wraparound_ == Wraparound::kTorus) d = std::min(d, extent - d);
    return d;
  };
  std::uint64_t row_sum = 0;
  for (std::uint32_t r = 0; r < rows_; ++r) {
    row_sum += dim_dist(c.row, r, rows_);
  }
  std::uint64_t col_sum = 0;
  for (std::uint32_t cc = 0; cc < cols_; ++cc) {
    col_sum += dim_dist(c.col, cc, cols_);
  }
  std::uint64_t layer_sum = 0;
  for (std::uint32_t l = 0; l < layers_; ++l) {
    layer_sum += abs_diff(c.layer, l);
  }
  const double total =
      static_cast<double>(row_sum) * cols_ * layers_ +
      static_cast<double>(col_sum) * rows_ * layers_ +
      static_cast<double>(layer_sum) * tiles_per_layer();
  return total / static_cast<double>(num_tiles());
}

double Mesh::avg_weighted_hops_to_all(TileId t) const {
  if (layers_ == 1) return avg_hops_to_all(t);
  const TileCoord c = coord_of(t);
  std::uint64_t layer_sum = 0;
  for (std::uint32_t l = 0; l < layers_; ++l) {
    layer_sum += abs_diff(c.layer, l);
  }
  // Reuse the unweighted separable sums, then swap the layer term's unit
  // cost for the TSV cost.
  const double unweighted_total =
      avg_hops_to_all(t) * static_cast<double>(num_tiles());
  const double layer_total =
      static_cast<double>(layer_sum) * tiles_per_layer();
  return (unweighted_total + (tsv_hop_cost_ - 1.0) * layer_total) /
         static_cast<double>(num_tiles());
}

std::uint32_t Mesh::hops_to_nearest_mc(TileId t) const {
  NOCMAP_REQUIRE(t < num_tiles(), "tile id out of range");
  return mc_distance_[t];
}

double Mesh::weighted_hops_to_nearest_mc(TileId t) const {
  NOCMAP_REQUIRE(t < num_tiles(), "tile id out of range");
  return mc_weighted_[t];
}

TileId Mesh::nearest_mc(TileId t) const {
  NOCMAP_REQUIRE(t < num_tiles(), "tile id out of range");
  return nearest_mc_[t];
}

bool Mesh::is_mc(TileId t) const {
  NOCMAP_REQUIRE(t < num_tiles(), "tile id out of range");
  return is_mc_[t] != 0;
}

}  // namespace nocmap
