#include "obs/metrics.h"

#if NOCMAP_OBS_ENABLED

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "obs/trace.h"
#include "util/error.h"

namespace nocmap::obs {

namespace {

/// Hard cap on distinct metrics. Sinks are fixed-capacity arrays so slot
/// addresses never move — a snapshot can read a live sink while its owner
/// thread keeps writing, with no resize race. 512 is ~20× the current
/// registration count; registration past the cap throws.
constexpr std::size_t kMaxMetrics = 512;

/// One thread's private metric storage. All members are relaxed atomics:
/// the owner thread is the only writer, snapshots are the only other
/// readers, and integer sums need no ordering to merge deterministically.
struct ThreadSink {
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> count{};
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> total_ns{};
  std::array<std::atomic<double>, kMaxMetrics> gauge{};
};

struct Registry {
  std::mutex mu;
  // id-indexed metric identities.
  std::vector<std::pair<std::string, MetricKind>> metrics;
  std::unordered_map<std::string, std::uint32_t> by_name;
  // Live sinks (owned by their threads) + totals folded from exited threads.
  std::vector<ThreadSink*> live;
  std::array<std::uint64_t, kMaxMetrics> retired_count{};
  std::array<std::uint64_t, kMaxMetrics> retired_ns{};
  std::array<double, kMaxMetrics> retired_gauge{};
  std::array<std::uint64_t, kMaxMetrics> retired_gauge_sets{};
};

/// Leaked singleton: outlives every thread-local sink destructor, so
/// retirement at any point of process teardown stays safe.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::uint32_t register_metric(const char* name, MetricKind kind) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (const auto it = r.by_name.find(name); it != r.by_name.end()) {
    NOCMAP_REQUIRE(r.metrics[it->second].second == kind,
                   std::string("metric re-registered with a different kind: ") +
                       name);
    return it->second;
  }
  NOCMAP_REQUIRE(r.metrics.size() < kMaxMetrics,
                 "observability metric capacity exhausted");
  const auto id = static_cast<std::uint32_t>(r.metrics.size());
  r.metrics.emplace_back(name, kind);
  r.by_name.emplace(name, id);
  return id;
}

/// Registers the calling thread's sink on first touch and folds it into the
/// retired totals when the thread exits.
struct SinkHandle {
  ThreadSink* sink;

  SinkHandle() : sink(new ThreadSink()) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.live.push_back(sink);
  }

  ~SinkHandle() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
      const std::uint64_t c = sink->count[i].load(std::memory_order_relaxed);
      if (c == 0) continue;
      if (i < r.metrics.size() && r.metrics[i].second == MetricKind::kGauge) {
        r.retired_gauge_sets[i] += c;
        r.retired_gauge[i] = std::max(
            r.retired_gauge[i], sink->gauge[i].load(std::memory_order_relaxed));
      } else {
        r.retired_count[i] += c;
        r.retired_ns[i] +=
            sink->total_ns[i].load(std::memory_order_relaxed);
      }
    }
    r.live.erase(std::find(r.live.begin(), r.live.end(), sink));
    delete sink;
  }
};

ThreadSink& tls_sink() {
  thread_local SinkHandle handle;
  return *handle.sink;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Counter::Counter(const char* name)
    : id_(register_metric(name, MetricKind::kCounter)) {}

void Counter::add(std::uint64_t delta) const noexcept {
  tls_sink().count[id_].fetch_add(delta, std::memory_order_relaxed);
}

Timer::Timer(const char* name)
    : id_(register_metric(name, MetricKind::kTimer)), name_(name) {}

void Timer::record_ns(std::uint64_t ns, std::uint64_t spans) const noexcept {
  ThreadSink& sink = tls_sink();
  sink.count[id_].fetch_add(spans, std::memory_order_relaxed);
  sink.total_ns[id_].fetch_add(ns, std::memory_order_relaxed);
}

Gauge::Gauge(const char* name)
    : id_(register_metric(name, MetricKind::kGauge)) {}

void Gauge::set_max(double v) const noexcept {
  ThreadSink& sink = tls_sink();
  sink.count[id_].fetch_add(1, std::memory_order_relaxed);
  // Owner thread is the only writer, so a load+store maximum is race-free.
  if (v > sink.gauge[id_].load(std::memory_order_relaxed)) {
    sink.gauge[id_].store(v, std::memory_order_relaxed);
  }
}

ScopedTimer::ScopedTimer(const Timer& timer) noexcept
    : timer_(&timer), start_ns_(steady_now_ns()) {}

ScopedTimer::~ScopedTimer() {
  const std::uint64_t dur = steady_now_ns() - start_ns_;
  timer_->record_ns(dur);
  if (tracing_enabled()) trace_emit(timer_->name(), start_ns_, dur);
}

std::vector<MetricRow> snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<MetricRow> rows;
  rows.reserve(r.metrics.size());
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    MetricRow row;
    row.name = r.metrics[i].first;
    row.kind = r.metrics[i].second;
    if (row.kind == MetricKind::kGauge) {
      row.count = r.retired_gauge_sets[i];
      double best = r.retired_gauge_sets[i] > 0 ? r.retired_gauge[i] : 0.0;
      for (const ThreadSink* sink : r.live) {
        if (sink->count[i].load(std::memory_order_relaxed) > 0) {
          best = std::max(best,
                          sink->gauge[i].load(std::memory_order_relaxed));
        }
        row.count += sink->count[i].load(std::memory_order_relaxed);
      }
      row.value = best;
    } else {
      row.count = r.retired_count[i];
      row.total_ns = r.retired_ns[i];
      for (const ThreadSink* sink : r.live) {
        row.count += sink->count[i].load(std::memory_order_relaxed);
        row.total_ns += sink->total_ns[i].load(std::memory_order_relaxed);
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return rows;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired_count.fill(0);
  r.retired_ns.fill(0);
  r.retired_gauge.fill(0.0);
  r.retired_gauge_sets.fill(0);
  for (ThreadSink* sink : r.live) {
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
      sink->count[i].store(0, std::memory_order_relaxed);
      sink->total_ns[i].store(0, std::memory_order_relaxed);
      sink->gauge[i].store(0.0, std::memory_order_relaxed);
    }
  }
}

}  // namespace nocmap::obs

#endif  // NOCMAP_OBS_ENABLED
