// Near-zero-overhead metric registries: Counter / Timer / Gauge handles
// writing into per-thread sinks, merged deterministically on snapshot.
//
// Design constraints (DESIGN.md §9):
//
//  * No contention on hot paths. Every thread that touches a metric owns a
//    private sink (a fixed-capacity slot array); increments are one relaxed
//    atomic add into the caller's own cache lines. The only lock is taken at
//    sink birth/death and at snapshot time.
//  * Deterministic merging. Counter and timer-count totals are integer sums,
//    which are associative and commutative — the merged snapshot value is
//    identical no matter how many worker threads carried the increments or
//    in which order sinks are folded. Gauges merge by maximum, which is
//    likewise order-free. (Timer *durations* are wall-clock measurements and
//    naturally vary run to run; their span counts do not.)
//  * Bit-identity preserved. Instrumentation only ever writes to sinks; it
//    never feeds back into algorithm state, so the parallel engine's
//    "parallel == serial" contract is untouched with observability enabled.
//  * Compile-time off switch. Building with -DNOCMAP_OBS=OFF (which defines
//    NOCMAP_OBS_ENABLED=0) replaces every handle with an empty inline no-op;
//    instrumented code compiles to exactly the uninstrumented binary
//    (bench/micro_obs measures the <1% overhead claim).
//
// Metric handles are cheap value types holding a registry slot id; the
// intended pattern is one block-scope static per instrumentation site:
//
//   static const obs::Counter c_solves("assign.warm_solves");
//   c_solves.add();
//
//   static const obs::Timer t_sort("sss.sort");
//   { obs::ScopedTimer scope(t_sort);  ...  }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef NOCMAP_OBS_ENABLED
#define NOCMAP_OBS_ENABLED 1
#endif

namespace nocmap::obs {

enum class MetricKind : std::uint8_t { kCounter, kTimer, kGauge };

/// One merged metric in a snapshot.
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  /// Counter: sum of increments. Timer: completed spans. Gauge: set calls.
  std::uint64_t count = 0;
  /// Timers only: summed span durations (wall clock, nanoseconds).
  std::uint64_t total_ns = 0;
  /// Gauges only: maximum value set by any thread (0 when never set).
  double value = 0.0;
};

/// True when the observability layer is compiled in.
constexpr bool compiled_in() { return NOCMAP_OBS_ENABLED != 0; }

#if NOCMAP_OBS_ENABLED

class Counter {
 public:
  explicit Counter(const char* name);
  void add(std::uint64_t delta = 1) const noexcept;

 private:
  std::uint32_t id_;
};

class Timer {
 public:
  explicit Timer(const char* name);
  /// Records `spans` completed spans totalling `ns` nanoseconds.
  void record_ns(std::uint64_t ns, std::uint64_t spans = 1) const noexcept;
  const char* name() const { return name_; }

 private:
  std::uint32_t id_;
  const char* name_;
};

class Gauge {
 public:
  explicit Gauge(const char* name);
  /// Raises the gauge to `v` if larger than this thread's current value;
  /// the snapshot merge takes the maximum across threads.
  void set_max(double v) const noexcept;

 private:
  std::uint32_t id_;
};

/// RAII span: records its lifetime into a Timer and, when tracing is
/// enabled (obs/trace.h), also emits a chrome://tracing event.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Timer& timer) noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const Timer* timer_;
  std::uint64_t start_ns_;
};

/// Deterministic merged view of every registered metric, sorted by name.
/// Totals fold the sinks of live threads plus those of already-exited
/// threads; integer sums make the result independent of thread count and
/// fold order.
std::vector<MetricRow> snapshot();

/// Zeroes every sink (live and retired). Callers must be quiescent (no
/// concurrent metric writes); intended for tests and per-run report scoping.
void reset();

#else  // NOCMAP_OBS_ENABLED == 0: every handle is an inline no-op.

class Counter {
 public:
  explicit Counter(const char*) {}
  void add(std::uint64_t = 1) const noexcept {}
};

class Timer {
 public:
  explicit Timer(const char* name) : name_(name) {}
  void record_ns(std::uint64_t, std::uint64_t = 1) const noexcept {}
  const char* name() const { return name_; }

 private:
  const char* name_;
};

class Gauge {
 public:
  explicit Gauge(const char*) {}
  void set_max(double) const noexcept {}
};

class ScopedTimer {
 public:
  explicit ScopedTimer(const Timer&) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

inline std::vector<MetricRow> snapshot() { return {}; }
inline void reset() {}

#endif  // NOCMAP_OBS_ENABLED

}  // namespace nocmap::obs
