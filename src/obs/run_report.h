// Structured per-run reports: one JSON document per binary execution,
// capturing what the run cost and what the instrumentation saw.
//
// Schema (docs/metrics-schema.md is the field reference):
//
//   {
//     "schema":  "nocmap.run_report/1",
//     "binary":  "<emitting binary>",
//     ... caller-set fields (title, setup, wall_ms, threads, ...) ...,
//     "artifacts": ["bench_results/foo.csv", ...],
//     "counters": { "<name>": <count>, ... },
//     "timers":   { "<name>": {"count": n, "total_ms": x}, ... },
//     "gauges":   { "<name>": <max value>, ... }
//   }
//
// The counters/timers/gauges sections are filled from the metric registry
// snapshot by attach_metrics(); with -DNOCMAP_OBS=OFF they are emitted as
// empty objects (the report itself, and any field the binary sets
// explicitly, always works). Timer totals are emitted in milliseconds with
// the `_ms` key suffix so bench/compare_bench.py can gate on report fields
// exactly like it gates on BENCH_*.json baselines.
//
// Bench binaries share one process-wide report (RunReport::global()),
// initialized by bench_common's print_header and written to
// bench_results/REPORT_<binary>.json at exit.
#pragma once

#include <string>

#include "obs/json.h"

namespace nocmap::obs {

inline constexpr const char* kRunReportSchema = "nocmap.run_report/1";

class RunReport {
 public:
  /// Creates a report with the schema marker and the given binary name
  /// (changeable later via set_binary).
  explicit RunReport(const std::string& binary = "");

  void set_binary(const std::string& binary);
  const std::string& binary() const { return binary_; }

  /// The full document (schema/binary fields included).
  JsonValue& root() { return root_; }
  const JsonValue& root() const { return root_; }

  /// Sets a (possibly dotted, e.g. "setup.mesh") field.
  void set(const std::string& dotted_path, JsonValue value);

  /// Records a produced artifact path in the "artifacts" array.
  void note_artifact(const std::string& path);

  /// Writes the current metric-registry snapshot into the counters /
  /// timers / gauges sections (replacing any previous snapshot).
  void attach_metrics();

  std::string to_json() const { return root_.dump(2) + "\n"; }

  /// Serializes to `path`; false when the file cannot be created.
  bool save(const std::string& path) const;

  /// The process-wide report used by the bench layer.
  static RunReport& global();

 private:
  std::string binary_;
  JsonValue root_;
};

}  // namespace nocmap::obs
