#include "obs/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace nocmap::obs {

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  NOCMAP_REQUIRE(type_ == Type::kObject, "json [] on a non-object value");
  for (auto& [name, value] : members_) {
    if (name == key) return value;
  }
  members_.emplace_back(key, JsonValue{});
  return members_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  NOCMAP_REQUIRE(type_ == Type::kArray, "json push_back on a non-array value");
  items_.push_back(std::move(v));
}

JsonValue& JsonValue::at_path(const std::string& dotted_path) {
  JsonValue* node = this;
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = dotted_path.find('.', start);
    if (dot == std::string::npos) {
      return (*node)[dotted_path.substr(start)];
    }
    node = &(*node)[dotted_path.substr(start, dot - start)];
    start = dot + 1;
  }
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

std::string JsonValue::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

void append_double(std::string& out, double v) {
  // Non-finite values are not representable in JSON; emit null (the reader
  // treats it as "not measured").
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  // %.17g round-trips every double; trim to the shortest form that still
  // reads naturally by preferring %g's default when it round-trips.
  std::snprintf(buf, sizeof buf, "%g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";

  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%" PRId64, int_);
      out += buf;
      break;
    }
    case Type::kUint: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%" PRIu64, uint_);
      out += buf;
      break;
    }
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        out += '"';
        out += escape(members_[i].first);
        out += '"';
        out += colon;
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace nocmap::obs
