#include "obs/json.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/error.h"

namespace nocmap::obs {

JsonValue& JsonValue::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  NOCMAP_REQUIRE(type_ == Type::kObject, "json [] on a non-object value");
  for (auto& [name, value] : members_) {
    if (name == key) return value;
  }
  members_.emplace_back(key, JsonValue{});
  return members_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  NOCMAP_REQUIRE(type_ == Type::kArray, "json push_back on a non-array value");
  items_.push_back(std::move(v));
}

JsonValue& JsonValue::at_path(const std::string& dotted_path) {
  JsonValue* node = this;
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = dotted_path.find('.', start);
    if (dot == std::string::npos) {
      return (*node)[dotted_path.substr(start)];
    }
    node = &(*node)[dotted_path.substr(start, dot - start)];
    start = dot + 1;
  }
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

std::string JsonValue::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

void append_double(std::string& out, double v) {
  // Non-finite values are not representable in JSON; emit null (the reader
  // treats it as "not measured").
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  // %.17g round-trips every double; trim to the shortest form that still
  // reads naturally by preferring %g's default when it round-trips.
  std::snprintf(buf, sizeof buf, "%g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";

  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%" PRId64, int_);
      out += buf;
      break;
    }
    case Type::kUint: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%" PRIu64, uint_);
      out += buf;
      break;
    }
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString:
      out += '"';
      out += escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        out += '"';
        out += escape(members_[i].first);
        out += '"';
        out += colon;
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool JsonValue::as_bool() const {
  NOCMAP_REQUIRE(type_ == Type::kBool, "json value is not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kUint) {
    NOCMAP_REQUIRE(uint_ <= static_cast<std::uint64_t>(
                                std::numeric_limits<std::int64_t>::max()),
                   "json integer out of int64 range");
    return static_cast<std::int64_t>(uint_);
  }
  NOCMAP_REQUIRE(false, "json value is not an integer");
  return 0;
}

std::uint64_t JsonValue::as_uint() const {
  if (type_ == Type::kUint) return uint_;
  if (type_ == Type::kInt) {
    NOCMAP_REQUIRE(int_ >= 0, "json integer is negative");
    return static_cast<std::uint64_t>(int_);
  }
  NOCMAP_REQUIRE(false, "json value is not an integer");
  return 0;
}

double JsonValue::as_double() const {
  switch (type_) {
    case Type::kDouble: return double_;
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUint: return static_cast<double>(uint_);
    default: break;
  }
  NOCMAP_REQUIRE(false, "json value is not a number");
  return 0.0;
}

const std::string& JsonValue::as_string() const {
  NOCMAP_REQUIRE(type_ == Type::kString, "json value is not a string");
  return string_;
}

namespace {

/// Recursive-descent JSON reader over a string view of the input. Errors
/// carry the byte offset so a broken multi-megabyte campaign log still
/// points at the damage.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    require(pos_ == text_.size(), "trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }
  void require(bool ok, const char* what) const {
    if (!ok) fail(what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    require(pos_ < text_.size() && text_[pos_] == c,
            "unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value(int depth) {
    require(depth < kMaxDepth, "nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        require(consume_literal("true"), "bad literal");
        return JsonValue(true);
      case 'f':
        require(consume_literal("false"), "bad literal");
        return JsonValue(false);
      case 'n':
        require(consume_literal("null"), "bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      require(peek() == '"', "expected object key");
      const std::string key = parse_string();
      require(obj.find(key) == nullptr, "duplicate object key");
      skip_ws();
      expect(':');
      obj[key] = parse_value(depth + 1);
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      require(c == ',', "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      require(c == ',', "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      require(pos_ < text_.size(), "unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch == '\\') {
        require(pos_ < text_.size(), "unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': append_codepoint(out); break;
          default: fail("unknown escape");
        }
      } else {
        require(static_cast<unsigned char>(ch) >= 0x20,
                "raw control character in string");
        out += ch;
      }
    }
  }

  std::uint32_t parse_hex4() {
    require(pos_ + 4 <= text_.size(), "truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  void append_codepoint(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
      require(pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                  text_[pos_ + 1] == 'u',
              "unpaired surrogate");
      pos_ += 2;
      const std::uint32_t lo = parse_hex4();
      require(lo >= 0xDC00 && lo <= 0xDFFF, "unpaired surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else {
      require(!(cp >= 0xDC00 && cp <= 0xDFFF), "unpaired surrogate");
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "expected number");
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. malformed).
    require(text_[int_start] != '0' || pos_ - int_start == 1,
            "leading zeros are not allowed");
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
              "digit required after decimal point");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
              "digit required in exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          return JsonValue(static_cast<std::int64_t>(v));
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end != nullptr && *end == '\0') {
          if (v <= static_cast<unsigned long long>(
                       std::numeric_limits<std::int64_t>::max())) {
            return JsonValue(static_cast<std::int64_t>(v));
          }
          return JsonValue(static_cast<std::uint64_t>(v));
        }
      }
      // Integral but out of 64-bit range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    require(end != nullptr && *end == '\0', "malformed number");
    require(std::isfinite(d), "number out of double range");
    return JsonValue(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace nocmap::obs
