// Scoped-event tracing with a chrome://tracing-compatible JSON exporter.
//
// Tracing is off by default and costs one relaxed atomic load per
// ScopedTimer when off. When enabled, completed spans are appended to
// per-thread buffers (each guarded by its own uncontended mutex, so workers
// never serialize against each other) and exported on demand as the Trace
// Event Format consumed by chrome://tracing, Perfetto and speedscope:
//
//   { "traceEvents": [ {"name": "sss.swap", "cat": "nocmap", "ph": "X",
//                       "ts": 12.3, "dur": 45.6, "pid": 1, "tid": 2}, ... ] }
//
// Timestamps are microseconds relative to the enable_tracing() call; export
// merges every thread's buffer and sorts events by (ts, tid, name), so the
// serialized order is deterministic for a fixed event set.
//
// Bench binaries activate tracing with the NOCMAP_TRACE=<path> environment
// variable (init_tracing_from_env() at startup, flush_trace_to_env_path()
// at exit — wired in bench_common's print_header/report flush).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace nocmap::obs {

/// True when spans should be recorded (one relaxed atomic load).
bool tracing_enabled() noexcept;

/// Starts collecting; records the timestamp origin on first enable.
void enable_tracing();

/// Stops collecting (already-recorded events are kept until clear_trace).
void disable_tracing() noexcept;

/// Appends one complete ("X") event. `start_ns` is a steady-clock reading
/// (std::chrono::steady_clock time_since_epoch); events recorded before the
/// enable origin are clamped to ts = 0. No-op while tracing is disabled.
/// Public so tests and manual phase markers can emit events directly;
/// ScopedTimer emits through this.
void trace_emit(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns);

/// Number of buffered events (live + retired threads).
std::size_t trace_event_count();

/// Writes the merged, deterministically ordered chrome://tracing document.
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace to a file; false (with no side effects beyond an
/// attempted open) when the file cannot be created.
bool save_chrome_trace(const std::string& path);

/// Drops every buffered event (tracing enable state is unchanged).
void clear_trace();

/// Reads NOCMAP_TRACE; when set and non-empty, enables tracing and
/// remembers the path for flush_trace_to_env_path().
void init_tracing_from_env();

/// Saves to the path captured by init_tracing_from_env(). Returns false
/// when no path was configured.
bool flush_trace_to_env_path();

}  // namespace nocmap::obs
