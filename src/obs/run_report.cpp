#include "obs/run_report.h"

#include <fstream>
#include <utility>

#include "obs/metrics.h"

namespace nocmap::obs {

RunReport::RunReport(const std::string& binary) {
  root_["schema"] = kRunReportSchema;
  set_binary(binary);
}

void RunReport::set_binary(const std::string& binary) {
  binary_ = binary;
  root_["binary"] = binary;
}

void RunReport::set(const std::string& dotted_path, JsonValue value) {
  root_.at_path(dotted_path) = std::move(value);
}

void RunReport::note_artifact(const std::string& path) {
  root_["artifacts"].push_back(JsonValue(path));
}

void RunReport::attach_metrics() {
  JsonValue counters = JsonValue::object();
  JsonValue timers = JsonValue::object();
  JsonValue gauges = JsonValue::object();
  for (const MetricRow& row : snapshot()) {
    switch (row.kind) {
      case MetricKind::kCounter:
        counters[row.name] = JsonValue(row.count);
        break;
      case MetricKind::kTimer: {
        JsonValue entry = JsonValue::object();
        entry["count"] = JsonValue(row.count);
        entry["total_ms"] =
            JsonValue(static_cast<double>(row.total_ns) / 1e6);
        timers[row.name] = std::move(entry);
        break;
      }
      case MetricKind::kGauge:
        gauges[row.name] = JsonValue(row.value);
        break;
    }
  }
  root_["counters"] = std::move(counters);
  root_["timers"] = std::move(timers);
  root_["gauges"] = std::move(gauges);
}

bool RunReport::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

RunReport& RunReport::global() {
  static RunReport* report = new RunReport();
  return *report;
}

}  // namespace nocmap::obs
