// Minimal ordered JSON document model for the observability layer.
//
// Every machine-readable artifact the repo emits (RunReports, chrome://tracing
// traces) serializes through this one writer, so escaping and number
// formatting are testable in a single place. The model is deliberately tiny:
// a tagged value (null / bool / integer / double / string / array / object)
// whose objects preserve insertion order — reports read the way the code
// built them, and serialization is deterministic for a fixed document.
//
// Integers are kept distinct from doubles so counters print as exact
// integers ("42", never "42.0"), which the bench-gate tooling and schema
// docs rely on.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nocmap::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  JsonValue() = default;  // null
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(std::int64_t v) : type_(Type::kInt), int_(v) {}
  JsonValue(std::uint64_t v) : type_(Type::kUint), uint_(v) {}
  JsonValue(int v) : type_(Type::kInt), int_(v) {}
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }

  /// Typed accessors; each throws nocmap::Error when the value is not of
  /// (or not convertible to) the requested type. as_double accepts any
  /// number; as_int accepts integer-typed values and range-checks kUint;
  /// as_uint additionally accepts non-negative kInt.
  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Parses one complete JSON document (RFC 8259 subset: no comments, no
  /// trailing commas; \uXXXX escapes including surrogate pairs are decoded
  /// to UTF-8). Numbers lex as kInt when they are integral and fit in
  /// int64 (kUint when only uint64 fits), kDouble otherwise. Throws
  /// nocmap::Error with the byte offset on malformed input — this is the
  /// reader for campaign specs and sweep logs (tools/nocmap_sweep), so
  /// errors must name where the document broke.
  static JsonValue parse(const std::string& text);

  /// Object access: returns the member named `key`, inserting a null member
  /// (and converting a null value into an object) on first use. Insertion
  /// order is preserved in the dump.
  JsonValue& operator[](const std::string& key);

  /// Member lookup without insertion; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  /// Array append (converts a null value into an array on first use).
  void push_back(JsonValue v);

  /// Nested access through a dotted path ("a.b.c"), creating intermediate
  /// objects as needed. Used by RunReport::set.
  JsonValue& at_path(const std::string& dotted_path);

  std::size_t size() const;

  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Serializes the document. `indent` > 0 pretty-prints with that many
  /// spaces per level; 0 emits the compact single-line form.
  std::string dump(int indent = 2) const;

  /// JSON string escaping per RFC 8259: quote, backslash, the two-character
  /// escapes for \b \f \n \r \t, and \u00XX for the remaining control
  /// characters. Everything else (including UTF-8 bytes) passes through.
  static std::string escape(const std::string& s);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

}  // namespace nocmap::obs
