#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/json.h"

namespace nocmap::obs {

namespace {

struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;  // steady-clock reading
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;

  bool operator<(const TraceEvent& o) const {
    if (start_ns != o.start_ns) return start_ns < o.start_ns;
    if (tid != o.tid) return tid < o.tid;
    return name < o.name;
  }
};

/// Per-thread buffer. The mutex is uncontended in steady state (only the
/// owner appends); export and clear lock each buffer briefly.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> origin_ns{0};  // ts reference, set on enable
  std::mutex mu;                            // guards the buffer lists
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;  // events of exited threads
  std::uint32_t next_tid = 1;
  std::string env_path;  // from NOCMAP_TRACE
};

/// Leaked singleton — safe to touch from thread-local destructors at exit.
TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

struct BufferHandle {
  ThreadBuffer* buf;

  BufferHandle() : buf(new ThreadBuffer()) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    buf->tid = s.next_tid++;
    s.live.push_back(buf);
  }

  ~BufferHandle() {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      s.retired.insert(s.retired.end(), buf->events.begin(),
                       buf->events.end());
    }
    s.live.erase(std::find(s.live.begin(), s.live.end(), buf));
    delete buf;
  }
};

ThreadBuffer& tls_buffer() {
  thread_local BufferHandle handle;
  return *handle.buf;
}

std::uint64_t steady_now_ns();

}  // namespace

bool tracing_enabled() noexcept {
  return state().enabled.load(std::memory_order_relaxed);
}

void enable_tracing() {
  TraceState& s = state();
  std::uint64_t expected = 0;
  s.origin_ns.compare_exchange_strong(expected, steady_now_ns(),
                                      std::memory_order_relaxed);
  s.enabled.store(true, std::memory_order_relaxed);
}

void disable_tracing() noexcept {
  state().enabled.store(false, std::memory_order_relaxed);
}

void trace_emit(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns) {
  if (!tracing_enabled()) return;
  ThreadBuffer& buf = tls_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(TraceEvent{name, start_ns, dur_ns, buf.tid});
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = s.retired.size();
  for (ThreadBuffer* buf : s.live) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void write_chrome_trace(std::ostream& os) {
  TraceState& s = state();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    events = s.retired;
    for (ThreadBuffer* buf : s.live) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(events.begin(), events.end());

  const std::uint64_t origin = s.origin_ns.load(std::memory_order_relaxed);
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const std::uint64_t rel =
        e.start_ns > origin ? e.start_ns - origin : 0;
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"name\": \"" << JsonValue::escape(e.name)
       << "\", \"cat\": \"nocmap\", \"ph\": \"X\""
       << ", \"ts\": " << static_cast<double>(rel) / 1e3
       << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << e.tid << "}";
  }
  os << (events.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

bool save_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return true;
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.retired.clear();
  for (ThreadBuffer* buf : s.live) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
}

void init_tracing_from_env() {
  const char* env = std::getenv("NOCMAP_TRACE");
  if (env == nullptr || *env == '\0') return;
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.env_path = env;
  }
  enable_tracing();
}

bool flush_trace_to_env_path() {
  TraceState& s = state();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    path = s.env_path;
  }
  if (path.empty()) return false;
  return save_chrome_trace(path);
}

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

}  // namespace nocmap::obs
