// Common interface for the four mapping algorithms compared in the paper's
// evaluation (Section V.A): Global, Monte-Carlo, Simulated-Annealing and the
// proposed sort-select-swap, plus a uniform-random strawman used for the
// Table-1 "random average" column.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/problem.h"

namespace nocmap {

class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Human-readable algorithm name for tables ("Global", "MC", "SA", "SSS").
  virtual std::string name() const = 0;

  /// Produces a complete thread-to-tile mapping for the problem. Must
  /// return a valid permutation.
  virtual Mapping map(const ObmProblem& problem) = 0;
};

}  // namespace nocmap
