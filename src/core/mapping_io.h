// Mapping persistence: CSV save/load so a computed thread-to-tile mapping
// can be handed to an external scheduler (or re-evaluated later) without
// recomputation.
//
// Format (header required), 0-based indices:
//   thread,tile
//   0,12
//   1,3
#pragma once

#include <iosfwd>
#include <string>

#include "core/problem.h"

namespace nocmap {

void save_mapping_csv(const Mapping& mapping, const std::string& path);
void write_mapping_csv(const Mapping& mapping, std::ostream& out);

/// Parses a mapping. Throws nocmap::Error on malformed input (bad header,
/// thread-index gaps, duplicate/out-of-range tiles — the result is always
/// a valid permutation).
Mapping load_mapping_csv(const std::string& path);
Mapping read_mapping_csv(std::istream& in);

}  // namespace nocmap
