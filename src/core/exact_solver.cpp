#include "core/exact_solver.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/bounds.h"
#include "core/cost_cache.h"
#include "core/metrics.h"
#include "core/sss_mapper.h"

namespace nocmap {

namespace {

struct SearchState {
  const ObmProblem* problem;
  const ThreadCostCache* cache;
  ExactSolverOptions options;

  std::vector<std::size_t> thread_order;  // descending total rate
  std::vector<double> app_denominator;
  std::vector<double> app_weight;
  std::vector<std::size_t> app_of;

  // Per thread: the tiles 0..n-1 sorted by that thread's cost, ascending.
  // Costs never change during the search, so the per-node sort the solver
  // used to do is hoisted here — one O(n² log n) pass instead of an
  // allocation and an O(n log n) sort at every node.
  std::vector<std::vector<TileId>> tile_order;

  // Per (depth, app): minimal possible remaining numerator if every not-
  // yet-assigned thread of the app took its global cheapest tile.
  std::vector<std::vector<double>> optimistic_tail;

  // Problem-wide lower bound (volume + per-app relaxations, warm-started
  // assignment solves): once the incumbent reaches it, every subtree prunes
  // at its first node and the search ends immediately.
  double global_lb = 0.0;

  std::vector<double> app_numerator;
  std::vector<TileId> assigned_tile;  // by order position
  std::vector<char> tile_used;

  double best_obj = std::numeric_limits<double>::infinity();
  std::vector<TileId> best_assignment;  // by order position
  std::uint64_t nodes = 0;
  bool budget_hit = false;

  double cost(std::size_t thread, TileId tile) const {
    return cache->cost(thread, tile);
  }

  double objective() const {
    double worst = 0.0;
    for (std::size_t a = 0; a < app_numerator.size(); ++a) {
      if (app_denominator[a] > 0.0) {
        worst = std::max(
            worst, app_weight[a] * app_numerator[a] / app_denominator[a]);
      }
    }
    return worst;
  }

  /// Optimistic lower bound for the subtree at `depth` (threads
  /// thread_order[depth..] unassigned).
  double lower_bound(std::size_t depth) const {
    double worst = global_lb;
    for (std::size_t a = 0; a < app_numerator.size(); ++a) {
      if (app_denominator[a] > 0.0) {
        worst = std::max(worst,
                         app_weight[a] *
                             (app_numerator[a] + optimistic_tail[depth][a]) /
                             app_denominator[a]);
      }
    }
    return worst;
  }

  void dfs(std::size_t depth) {
    if (budget_hit) return;
    if (++nodes > options.max_nodes) {
      budget_hit = true;
      return;
    }
    if (depth == thread_order.size()) {
      const double obj = objective();
      if (obj < best_obj) {
        best_obj = obj;
        best_assignment = assigned_tile;
      }
      return;
    }
    if (lower_bound(depth) >= best_obj) return;  // prune

    const std::size_t j = thread_order[depth];
    const std::size_t app = app_of[j];

    // Cheapest-first for this thread so good incumbents come early.
    for (TileId tile : tile_order[j]) {
      if (tile_used[tile]) continue;
      tile_used[tile] = 1;
      assigned_tile[depth] = tile;
      app_numerator[app] += cost(j, tile);
      dfs(depth + 1);
      app_numerator[app] -= cost(j, tile);
      tile_used[tile] = 0;
      if (budget_hit) return;
    }
  }
};

}  // namespace

ExactResult solve_obm_exact(const ObmProblem& problem,
                            const ExactSolverOptions& options) {
  const std::size_t n = problem.num_threads();
  NOCMAP_REQUIRE(n <= options.max_threads,
                 "instance too large for the exact solver");

  const Workload& wl = problem.workload();
  const ThreadCostCache cache(wl, problem.model());

  SearchState st;
  st.problem = &problem;
  st.cache = &cache;
  st.options = options;

  st.app_of.resize(n);
  st.app_denominator.assign(wl.num_applications(), 0.0);
  st.app_weight.resize(wl.num_applications());
  for (std::size_t a = 0; a < wl.num_applications(); ++a) {
    st.app_weight[a] = problem.app_weight(a);
  }
  for (std::size_t j = 0; j < n; ++j) {
    st.app_of[j] = wl.application_of(j);
    st.app_denominator[st.app_of[j]] += cache.rate(j);
  }

  // Branch on hot threads first: their placement moves the bound most.
  st.thread_order.resize(n);
  std::iota(st.thread_order.begin(), st.thread_order.end(), std::size_t{0});
  std::sort(st.thread_order.begin(), st.thread_order.end(),
            [&](std::size_t x, std::size_t y) {
              return cache.rate(x) > cache.rate(y);
            });

  // Per-thread cheapest-first tile orders, computed once.
  st.tile_order.assign(n, std::vector<TileId>(n));
  for (std::size_t j = 0; j < n; ++j) {
    std::iota(st.tile_order[j].begin(), st.tile_order[j].end(), TileId{0});
    const double* row = cache.row(j);
    std::sort(st.tile_order[j].begin(), st.tile_order[j].end(),
              [row](TileId x, TileId y) { return row[x] < row[y]; });
  }

  // optimistic_tail[d][a]: sum over order positions >= d of the cheapest
  // tile cost of that thread (relaxation: ignores tile exclusivity).
  st.optimistic_tail.assign(n + 1,
                            std::vector<double>(wl.num_applications(), 0.0));
  for (std::size_t d = n; d-- > 0;) {
    st.optimistic_tail[d] = st.optimistic_tail[d + 1];
    const std::size_t j = st.thread_order[d];
    st.optimistic_tail[d][st.app_of[j]] += cache.row(j)[st.tile_order[j][0]];
  }

  // Problem-wide bound from the warm-started assignment relaxations.
  {
    AssignmentWorkspace ws;
    st.global_lb = max_apl_lower_bound(problem, cache, ws);
  }

  // Incumbent: the SSS heuristic solution.
  SortSelectSwapMapper sss;
  const Mapping warm = sss.map(problem);
  st.best_obj = evaluate(problem, warm).objective;
  st.best_assignment.resize(n);
  for (std::size_t d = 0; d < n; ++d) {
    st.best_assignment[d] = warm.tile_of(st.thread_order[d]);
  }

  st.app_numerator.assign(wl.num_applications(), 0.0);
  st.assigned_tile.assign(n, 0);
  st.tile_used.assign(n, 0);
  st.dfs(0);

  ExactResult result;
  result.mapping.thread_to_tile.resize(n);
  for (std::size_t d = 0; d < n; ++d) {
    result.mapping.thread_to_tile[st.thread_order[d]] =
        st.best_assignment[d];
  }
  result.max_apl = st.best_obj;
  result.nodes_explored = st.nodes;
  result.proven_optimal = !st.budget_hit;
  return result;
}

}  // namespace nocmap
