// Incremental mapping evaluator.
//
// The sliding-window swap stage of sort-select-swap evaluates 24
// permutations per window over O(N²) windows, and simulated annealing
// evaluates one two-thread swap per iteration; recomputing eq. 5 from
// scratch each time would cost O(N) per evaluation. This evaluator keeps
// per-application weighted-latency numerators (denominators are mapping-
// independent) so a move costs O(N/A) — only the affected applications —
// and a max-APL query is O(A).
//
// The evaluator owns a live mapping that always remains a valid permutation:
// mutations are expressed as swaps of two threads' tiles or as group
// re-assignments of a thread set onto the tile set it already occupies.
//
// State purity invariant: after any mutation, each affected application's
// numerator is recomputed from scratch in canonical (thread-ascending)
// order, never updated by adding a delta. The numerators are therefore a
// pure function of the current mapping — bit-identical no matter which
// sequence of swaps produced it. This is what makes the parallel SSS sweep
// exact: an apply/revert pair restores the evaluator bit-perfectly (a
// delta-based update would leave (n + d) - d != n rounding residue that
// accumulates with evaluation history), so a snapshot copy that evaluates
// and reverts candidate permutations sees exactly the state the serial
// sweep would see. See DESIGN.md, "Parallelism & determinism".
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/cost_cache.h"
#include "core/problem.h"

namespace nocmap {

/// One proposed two-thread swap, the annealer's move type.
struct SwapProposal {
  std::uint32_t j1 = 0;
  std::uint32_t j2 = 0;
};

class MappingEvaluator {
 public:
  /// Takes the problem (kept by reference; must outlive the evaluator) and
  /// an initial valid mapping.
  MappingEvaluator(const ObmProblem& problem, Mapping initial);

  /// Cache-backed variant: thread_cost reads the shared memoized matrix
  /// instead of recomputing eq. 13 from the model on every query. The cache
  /// (which must outlive the evaluator and match the problem's workload and
  /// model) stores exactly the values the uncached path computes, so results
  /// are identical; it is read-only here, so any number of evaluators —
  /// including per-worker snapshot copies in the parallel SSS sweep — can
  /// share one cache concurrently.
  MappingEvaluator(const ObmProblem& problem, Mapping initial,
                   const ThreadCostCache& cache);

  const Mapping& mapping() const { return mapping_; }
  /// Thread currently running on `tile`.
  std::size_t thread_on(TileId tile) const { return tile_to_thread_[tile]; }

  double apl(std::size_t app) const;
  /// Max over applications with non-zero traffic; O(A).
  double max_apl() const;
  /// The OBM objective max_i w_i·APL_i; equals max_apl() when the problem
  /// is unweighted. Algorithms minimize this.
  double objective() const;
  double g_apl() const;

  /// Swaps the tiles of threads j1 and j2 (j1 == j2 is a no-op).
  void swap_threads(std::size_t j1, std::size_t j2);

  /// Re-assigns `threads[idx]` to `tiles[idx]` for all idx. The tile set
  /// must equal the set of tiles currently occupied by `threads` (i.e. this
  /// is a permutation within the group), which keeps the mapping valid.
  void apply_group(std::span<const std::size_t> threads,
                   std::span<const TileId> tiles);

  /// Cost contribution of thread j when placed on `tile`
  /// (c_j·TC + m_j·TM, eq. 13).
  double thread_cost(std::size_t j, TileId tile) const;

  /// Scores `count` candidate re-assignments of one thread group without
  /// mutating the evaluator. All candidates share the thread set: candidate
  /// b re-assigns threads[x] to tiles[x·count + b] (transposed, one
  /// contiguous row of candidate tiles per group position, like
  /// CandidateBatch). out[b] is bit-identical to the objective() this
  /// evaluator would report after apply_group(threads, candidate b): each
  /// affected application's numerator is re-summed in the canonical
  /// thread-ascending order with the candidate's tiles substituted — never
  /// by delta arithmetic — and folded with the untouched applications'
  /// stored numerators. Being const, any number of workers may score
  /// windows through one shared evaluator concurrently; the SSS sweep uses
  /// this instead of mutating per-worker snapshot copies.
  void score_group_candidates(std::span<const std::size_t> threads,
                              const TileId* tiles, std::size_t count,
                              std::span<double> out) const;

  /// Deterministic objective estimates for a block of proposed swaps
  /// against the current state: out[i] is the OBM objective after applying
  /// proposal i alone. Computed by delta substitution on the cached
  /// per-application numerators (4 cost lookups per proposal), so values
  /// may differ from the canonical objective() in the last ulps — callers
  /// (the annealer's batched proposal loop) treat them as the acceptance
  /// score and recompute canonically on accept. Non-const because it
  /// refreshes an internal weighted-APL scratch; the evaluator must not be
  /// shared across workers while prescoring (each SA chain owns its own).
  void score_swap_candidates(std::span<const SwapProposal> proposals,
                             std::span<double> out);

  /// Recomputes everything from scratch; used by tests to check that the
  /// incremental state never drifts.
  double recomputed_max_apl() const;

 private:
  MappingEvaluator(const ObmProblem& problem, Mapping initial,
                   const ThreadCostCache* cache);
  /// Updates position state only; callers must recompute_app afterwards.
  void place_thread(std::size_t j, TileId tile);
  /// Rebuilds one application's numerator from the live mapping in
  /// canonical thread order (the purity invariant above).
  void recompute_app(std::size_t app);

  const ObmProblem* problem_;
  const ThreadCostCache* cache_ = nullptr;  // optional, not owned
  Mapping mapping_;
  std::vector<std::size_t> tile_to_thread_;
  std::vector<std::uint32_t> app_of_;  // thread -> application, memoized
  std::vector<double> numerator_;    // per app: Σ c_j TC(π(j)) + m_j TM(π(j))
  std::vector<double> denominator_;  // per app: Σ c_j + m_j (constant)
  std::vector<std::size_t> group_apps_;  // apply_group scratch
  std::vector<double> swap_wapl_;        // score_swap_candidates scratch
  double total_denominator_ = 0.0;
};

}  // namespace nocmap
