#include "core/parallel.h"

#include <thread>

namespace nocmap {

std::size_t ParallelConfig::resolved_threads() const {
  if (num_threads != 0) return num_threads;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ParallelTrialRunner::ParallelTrialRunner(const ParallelConfig& config)
    : threads_(config.resolved_threads()) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

ParallelTrialRunner::~ParallelTrialRunner() = default;

void ParallelTrialRunner::for_each(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (pool_ == nullptr || count < 2) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool_->parallel_for(0, count, body);
}

std::size_t ParallelTrialRunner::argmin(std::span<const double> scores) {
  if (scores.empty()) return npos;
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] < scores[best]) best = i;
  }
  return best;
}

}  // namespace nocmap
