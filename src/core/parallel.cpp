#include "core/parallel.h"

#include <algorithm>
#include <thread>

#include "util/error.h"

namespace nocmap {

std::size_t ParallelConfig::resolved_threads() const {
  if (num_threads != 0) return num_threads;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ParallelTrialRunner::ParallelTrialRunner(const ParallelConfig& config)
    : threads_(config.resolved_threads()) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

ParallelTrialRunner::~ParallelTrialRunner() = default;

void ParallelTrialRunner::for_each(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (pool_ == nullptr || count < 2) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool_->parallel_for(0, count, body);
}

void ParallelTrialRunner::for_each_batch(
    std::size_t count, std::size_t batch_size,
    const std::function<void(std::size_t, std::size_t)>& body) {
  NOCMAP_REQUIRE(batch_size > 0, "batch size must be positive");
  if (count == 0) return;
  const std::size_t batches = (count + batch_size - 1) / batch_size;
  for_each(batches, [&](std::size_t i) {
    const std::size_t lo = i * batch_size;
    const std::size_t hi = std::min(lo + batch_size, count);
    body(lo, hi);
  });
}

std::size_t ParallelTrialRunner::argmin(std::span<const double> scores) {
  if (scores.empty()) return npos;
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] < scores[best]) best = i;
  }
  return best;
}

}  // namespace nocmap
