// Batched candidate-mapping evaluation (ROADMAP item 2).
//
// Every search mapper scores permutations through the same reduction: per
// application, sum the eq.-13 costs of its threads' tiles in thread order,
// divide by the (mapping-independent) traffic volume, and take the weighted
// max over applications. Scored one candidate at a time that reduction is
// latency-bound: each += waits ~4 cycles on the previous one, and the cost
// row pointer chases the candidate's tiles.
//
// BatchEvaluator restructures the pass around *transposed* candidate
// storage (CandidateBatch): a batch of K candidate mappings is stored
// tile-major, tiles[j·K + b] = candidate b's tile for thread j, so the
// scorer makes ONE contiguous pass over the padded cost rows (thread-outer,
// candidate-inner) with K independent accumulators. The inner loop is a
// contiguous gather-and-add with no cross-iteration dependence, which the
// compiler auto-vectorizes and the core overlaps — ~6× per candidate versus
// the scalar loop at K ≥ 8.
//
// Bit-identity contract: for every candidate b, score() performs the
// floating-point operations of the scalar reduction in the identical order
// (per application, costs added thread-ascending; objective combined as
// (w·Σcost)/Σrate; max over applications). The result is therefore
// bit-identical to MappingEvaluator::objective() on the same permutation —
// the `batch_eval` fuzz oracle and tests/test_evaluator_batch.cpp hold the
// two implementations to exact equality. Volumes are pre-summed at
// construction in the same thread-ascending order (not from the cache's
// prefix sums, which round differently).
//
// score_pruned() adds the Monte-Carlo search refinement: given a cutoff
// (the best objective seen so far), a sub-block of candidates whose partial
// weighted-max already reaches the cutoff after some application can never
// win, so the remaining applications are skipped. Pruning is exact: a lane
// returns either its bit-identical full score (when that score < cutoff) or
// a partial max that is provably >= cutoff.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/cost_cache.h"
#include "core/problem.h"

namespace nocmap {

/// Transposed (tile-major) storage for a batch of candidate mappings:
/// lane b of K holds one thread→tile permutation, stored so that all lanes'
/// tiles for one thread are contiguous. Mappers that generate candidates
/// in place (the Monte-Carlo shuffle) write through at(); callers with
/// candidate-major data use load()/extract().
class CandidateBatch {
 public:
  CandidateBatch(std::size_t num_threads, std::size_t capacity)
      : num_threads_(num_threads), capacity_(capacity),
        tiles_(num_threads * capacity) {}

  std::size_t num_threads() const { return num_threads_; }
  std::size_t capacity() const { return capacity_; }

  TileId& at(std::size_t thread, std::size_t lane) {
    NOCMAP_ASSERT(thread < num_threads_ && lane < capacity_);
    return tiles_[thread * capacity_ + lane];
  }
  TileId at(std::size_t thread, std::size_t lane) const {
    NOCMAP_ASSERT(thread < num_threads_ && lane < capacity_);
    return tiles_[thread * capacity_ + lane];
  }

  /// All lanes' tiles for one thread (capacity() entries, contiguous).
  const TileId* lane_row(std::size_t thread) const {
    NOCMAP_ASSERT(thread < num_threads_);
    return &tiles_[thread * capacity_];
  }
  TileId* lane_row(std::size_t thread) {
    NOCMAP_ASSERT(thread < num_threads_);
    return &tiles_[thread * capacity_];
  }

  /// Scatters a candidate-major permutation into lane b.
  void load(std::size_t lane, std::span<const TileId> perm);
  /// Gathers lane b back out as a candidate-major permutation.
  void extract(std::size_t lane, std::span<TileId> perm) const;

 private:
  std::size_t num_threads_;
  std::size_t capacity_;
  std::vector<TileId> tiles_;  // [thread][lane]
};

class BatchEvaluator {
 public:
  /// Lanes scored per internal pass; score()/score_rows() accept any count
  /// and loop over sub-blocks of this width on the stack.
  static constexpr std::size_t kMaxLanes = 128;
  /// Sub-block width used by score_pruned: narrower blocks prune earlier
  /// (a block skips an application only once every live lane is over the
  /// cutoff), and 8 doubles still fill a vector register file.
  static constexpr std::size_t kPruneLanes = 8;

  /// Problem and cache are kept by reference and must outlive the
  /// evaluator. The evaluator is immutable after construction, so any
  /// number of workers may score through it concurrently.
  BatchEvaluator(const ObmProblem& problem, const ThreadCostCache& cache);

  /// Scores lanes [0, count) of the batch; out[b] is bit-identical to the
  /// scalar OBM objective (MappingEvaluator::objective()) of lane b.
  void score(const CandidateBatch& batch, std::size_t count,
             std::span<double> out) const;

  /// Like score(), but skips the tail of any kPruneLanes sub-block whose
  /// lanes have all reached `cutoff`. Post-condition per lane:
  /// out[b] < cutoff implies out[b] is the exact (bit-identical) score;
  /// out[b] >= cutoff implies the true score is also >= cutoff.
  void score_pruned(const CandidateBatch& batch, std::size_t count,
                    double cutoff, std::span<double> out) const;

  /// Scores `count` candidate-major permutations stored in consecutive
  /// rows: candidate b's tile for thread j is rows[b·stride + j]. Same
  /// bit-identity contract as score(); used where candidates already live
  /// candidate-major (the GA's genome pool) so no transpose is paid.
  void score_rows(const TileId* rows, std::size_t stride, std::size_t count,
                  std::span<double> out) const;

  std::size_t num_threads() const { return num_threads_; }

 private:
  struct AppSlice {
    std::uint32_t first = 0;  // global thread range [first, last)
    std::uint32_t last = 0;
    double weight = 1.0;
    double volume = 0.0;  // Σ rate, summed thread-ascending
  };

  template <bool Pruned, typename TileAt>
  void score_block(std::size_t lanes, double cutoff, double* out,
                   const TileAt& tile_at) const;

  const ThreadCostCache* cache_;
  std::vector<AppSlice> apps_;  // only applications with volume > 0
  std::size_t num_threads_;
};

}  // namespace nocmap
