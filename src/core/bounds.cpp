#include "core/bounds.h"

#include <algorithm>
#include <limits>

#include "assign/hungarian.h"

namespace nocmap {

double optimal_gapl(const ObmProblem& problem, const ThreadCostCache& cache,
                    AssignmentWorkspace& ws) {
  const std::size_t n = problem.num_threads();
  const double volume = cache.rate_sum(0, n);
  if (volume <= 0.0) return 0.0;
  // All threads against tiles 0..n-1 — a dense prefix of the cache rows.
  const CostView view(cache.row(0), n, n, cache.row_stride());
  return ws.solve(view).total_cost / volume;
}

double optimal_gapl(const ObmProblem& problem) {
  const ThreadCostCache cache(problem.workload(), problem.model());
  AssignmentWorkspace ws;
  return optimal_gapl(problem, cache, ws);
}

double relaxed_min_apl(const ObmProblem& problem, std::size_t app,
                       const ThreadCostCache& cache, AssignmentWorkspace& ws,
                       bool warm) {
  const Workload& wl = problem.workload();
  const std::size_t lo = wl.first_thread(app);
  const std::size_t dn = wl.last_thread(app) - lo;

  const double volume = cache.rate_sum(lo, dn);
  if (volume <= 0.0) return 0.0;
  // Rectangular dn×N relaxation: the application's threads pick freely from
  // the whole chip; unpicked tiles simply stay unmatched (equivalent to the
  // classic zero-cost dummy-row padding, at a fraction of the work).
  const CostView view(cache.row(lo), dn, problem.num_tiles(),
                      cache.row_stride());
  const Assignment& a = warm ? ws.solve_warm(view) : ws.solve(view);
  return a.total_cost / volume;
}

double relaxed_min_apl(const ObmProblem& problem, std::size_t app) {
  const ThreadCostCache cache(problem.workload(), problem.model());
  AssignmentWorkspace ws;
  return relaxed_min_apl(problem, app, cache, ws);
}

double max_apl_lower_bound(const ObmProblem& problem,
                           const ThreadCostCache& cache,
                           AssignmentWorkspace& ws) {
  // Volume bound: max_i w_i·APL_i >= w_min · max_i APL_i >= w_min · g-APL,
  // and the minimal achievable g-APL is one assignment solve away.
  double min_weight = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < problem.num_applications(); ++a) {
    min_weight = std::min(min_weight, problem.app_weight(a));
  }
  double bound = min_weight * optimal_gapl(problem, cache, ws);
  // Per-application bound: application i can never beat its uncontested
  // relaxed minimum, scaled by its own weight. These rectangular solves run
  // cold inside the kernel regardless of the warm flag — carried column
  // potentials are unsound when columns may stay unmatched — so `warm` now
  // only spares re-priming the workspace metadata.
  for (std::size_t a = 0; a < problem.num_applications(); ++a) {
    bound = std::max(bound,
                     problem.app_weight(a) *
                         relaxed_min_apl(problem, a, cache, ws,
                                         /*warm=*/a > 0));
  }
  return bound;
}

double max_apl_lower_bound(const ObmProblem& problem) {
  const ThreadCostCache cache(problem.workload(), problem.model());
  AssignmentWorkspace ws;
  return max_apl_lower_bound(problem, cache, ws);
}

}  // namespace nocmap
