#include "core/bounds.h"

#include <algorithm>
#include <limits>

#include "assign/hungarian.h"

namespace nocmap {

double optimal_gapl(const ObmProblem& problem) {
  const std::size_t n = problem.num_threads();
  const Workload& wl = problem.workload();
  const TileLatencyModel& model = problem.model();

  CostMatrix cost(n, n);
  double volume = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const ThreadProfile& t = wl.thread(j);
    volume += t.total_rate();
    for (std::size_t k = 0; k < n; ++k) {
      cost.at(j, k) = t.cache_rate * model.tc(static_cast<TileId>(k)) +
                      t.memory_rate * model.tm(static_cast<TileId>(k));
    }
  }
  if (volume <= 0.0) return 0.0;
  return solve_assignment(cost).total_cost / volume;
}

double relaxed_min_apl(const ObmProblem& problem, std::size_t app) {
  const Workload& wl = problem.workload();
  const TileLatencyModel& model = problem.model();
  const std::size_t n = problem.num_tiles();
  const std::size_t lo = wl.first_thread(app);
  const std::size_t dn = wl.last_thread(app) - lo;

  // Square matrix with (n - dn) zero-cost dummy threads: real threads pick
  // their best tiles, dummies absorb the rest.
  CostMatrix cost(n, n, 0.0);
  double volume = 0.0;
  for (std::size_t j = 0; j < dn; ++j) {
    const ThreadProfile& t = wl.thread(lo + j);
    volume += t.total_rate();
    for (std::size_t k = 0; k < n; ++k) {
      cost.at(j, k) = t.cache_rate * model.tc(static_cast<TileId>(k)) +
                      t.memory_rate * model.tm(static_cast<TileId>(k));
    }
  }
  if (volume <= 0.0) return 0.0;
  return solve_assignment(cost).total_cost / volume;
}

double max_apl_lower_bound(const ObmProblem& problem) {
  // Volume bound: max_i w_i·APL_i >= w_min · max_i APL_i >= w_min · g-APL,
  // and the minimal achievable g-APL is one Hungarian solve away.
  double min_weight = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < problem.num_applications(); ++a) {
    min_weight = std::min(min_weight, problem.app_weight(a));
  }
  double bound = min_weight * optimal_gapl(problem);
  // Per-application bound: application i can never beat its uncontested
  // relaxed minimum, scaled by its own weight.
  for (std::size_t a = 0; a < problem.num_applications(); ++a) {
    bound = std::max(bound,
                     problem.app_weight(a) * relaxed_min_apl(problem, a));
  }
  return bound;
}

}  // namespace nocmap
