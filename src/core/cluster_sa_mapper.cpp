#include "core/cluster_sa_mapper.h"

#include <cmath>
#include <vector>

#include "core/evaluator.h"
#include "util/rng.h"

namespace nocmap {

namespace {

/// Tile → cluster index for a mesh tiled by `side`-sized square clusters
/// (ragged edges join the last row/column of clusters).
std::vector<std::size_t> build_clusters(const Mesh& mesh, std::uint32_t side,
                                        std::size_t& num_clusters) {
  const std::uint32_t rows = (mesh.rows() + side - 1) / side;
  const std::uint32_t cols = (mesh.cols() + side - 1) / side;
  num_clusters = static_cast<std::size_t>(rows) * cols;
  std::vector<std::size_t> cluster_of(mesh.num_tiles());
  for (TileId t = 0; t < mesh.num_tiles(); ++t) {
    const TileCoord c = mesh.coord_of(t);
    cluster_of[t] = static_cast<std::size_t>(
        std::min(c.row / side, rows - 1) * cols +
        std::min(c.col / side, cols - 1));
  }
  return cluster_of;
}

}  // namespace

Mapping ClusterSaMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(params_.cluster_side >= 1, "cluster side must be >= 1");
  const std::size_t n = problem.num_threads();
  Rng rng(params_.seed);

  Mapping initial;
  initial.thread_to_tile.resize(n);
  {
    const auto perm = random_permutation(n, rng);
    for (std::size_t j = 0; j < n; ++j) {
      initial.thread_to_tile[j] = static_cast<TileId>(perm[j]);
    }
  }
  MappingEvaluator eval(problem, std::move(initial));

  Mapping best = eval.mapping();
  double best_obj = eval.objective();

  const double scale = std::max(eval.max_apl(), 1.0);
  const double t0 = std::max(params_.initial_temp_fraction * scale, 1e-9);
  const double t_end = std::max(t0 * params_.final_temp_fraction, 1e-12);

  // ---- Phase 1: cluster-granularity annealing. Swapping two equal-size
  // clusters means swapping the tiles of their resident threads pairwise.
  std::size_t num_clusters = 0;
  const std::vector<std::size_t> cluster_of =
      build_clusters(problem.mesh(), params_.cluster_side, num_clusters);
  std::vector<std::vector<TileId>> cluster_tiles(num_clusters);
  for (TileId t = 0; t < problem.num_tiles(); ++t) {
    cluster_tiles[cluster_of[t]].push_back(t);
  }

  auto swap_clusters = [&](std::size_t a, std::size_t b) {
    // Only equal-population clusters swap cleanly (ragged edges skip).
    if (cluster_tiles[a].size() != cluster_tiles[b].size()) return false;
    for (std::size_t i = 0; i < cluster_tiles[a].size(); ++i) {
      eval.swap_threads(eval.thread_on(cluster_tiles[a][i]),
                        eval.thread_on(cluster_tiles[b][i]));
    }
    return true;
  };

  if (params_.coarse_iterations > 0 && num_clusters >= 2) {
    double current = eval.objective();
    double temp = t0;
    const double alpha = std::pow(
        t_end / t0, 1.0 / static_cast<double>(params_.coarse_iterations));
    for (std::size_t it = 0; it < params_.coarse_iterations;
         ++it, temp *= alpha) {
      const auto a = static_cast<std::size_t>(rng.uniform_u32(
          static_cast<std::uint32_t>(num_clusters)));
      const auto b = static_cast<std::size_t>(rng.uniform_u32(
          static_cast<std::uint32_t>(num_clusters)));
      if (a == b) continue;
      if (!swap_clusters(a, b)) continue;
      const double candidate = eval.objective();
      const double delta = candidate - current;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
        current = candidate;
        if (current < best_obj) {
          best_obj = current;
          best = eval.mapping();
        }
      } else {
        swap_clusters(a, b);  // revert (same pairwise swaps undo it)
      }
    }
  }

  // ---- Phase 2: thread-level refinement.
  if (params_.fine_iterations > 0) {
    double current = eval.objective();
    double temp = t0 * 0.2;  // refinement starts cooler
    const double alpha = std::pow(
        t_end / temp, 1.0 / static_cast<double>(params_.fine_iterations));
    for (std::size_t it = 0; it < params_.fine_iterations;
         ++it, temp *= alpha) {
      const auto j1 = static_cast<std::size_t>(
          rng.uniform_u32(static_cast<std::uint32_t>(n)));
      const auto j2 = static_cast<std::size_t>(
          rng.uniform_u32(static_cast<std::uint32_t>(n)));
      if (j1 == j2) continue;
      eval.swap_threads(j1, j2);
      const double candidate = eval.objective();
      const double delta = candidate - current;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
        current = candidate;
        if (current < best_obj) {
          best_obj = current;
          best = eval.mapping();
        }
      } else {
        eval.swap_threads(j1, j2);
      }
    }
  }

  return best;
}

}  // namespace nocmap
