// Uniform-random mapping. Not an algorithm the paper proposes — it is the
// reference point of Table 1 ("Random average"): the expected latency
// balance of an oblivious scheduler, against which Global's imbalance
// exacerbation is demonstrated.
#pragma once

#include <cstdint>

#include "core/mapper.h"
#include "util/rng.h"

namespace nocmap {

class RandomMapper final : public Mapper {
 public:
  explicit RandomMapper(std::uint64_t seed = 1) : rng_(seed) {}

  std::string name() const override { return "Random"; }
  /// Each call draws a fresh uniform permutation (the mapper is stateful so
  /// repeated calls produce the independent samples Table 1 averages over).
  Mapping map(const ObmProblem& problem) override;

 private:
  Rng rng_;
};

}  // namespace nocmap
