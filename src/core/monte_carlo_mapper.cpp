#include "core/monte_carlo_mapper.h"

#include <limits>
#include <numeric>

#include "core/cost_cache.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace nocmap {

namespace {

// Throughput metrics (docs/metrics-schema.md): trials are accumulated once
// per shard — one relaxed add per 256 trials, nothing inside the trial loop.
const obs::Timer t_map("mc.map");
const obs::Counter c_trials("mc.trials");
const obs::Counter c_shards("mc.shards");

/// OBM objective (weighted max-APL) of a permutation, computed directly in
/// O(N + A) from the memoized eq.-13 table; avoids both the full
/// LatencyReport allocation and the per-trial cost recomputation in the hot
/// trial loop.
double quick_objective(const ObmProblem& problem, const ThreadCostCache& cache,
                       const std::vector<std::size_t>& perm) {
  const Workload& wl = problem.workload();
  double worst = 0.0;
  for (std::size_t i = 0; i < wl.num_applications(); ++i) {
    double weighted = 0.0;
    double volume = 0.0;
    for (std::size_t j = wl.first_thread(i); j < wl.last_thread(i); ++j) {
      weighted += cache.cost(j, static_cast<TileId>(perm[j]));
      volume += cache.rate(j);
    }
    if (volume > 0.0) {
      const double apl = problem.app_weight(i) * weighted / volume;
      if (apl > worst) worst = apl;
    }
  }
  return worst;
}

struct ShardBest {
  double max_apl = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> perm;
};

}  // namespace

Mapping MonteCarloMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(trials_ > 0, "MonteCarloMapper needs at least one trial");
  const obs::ScopedTimer map_scope(t_map);
  const std::size_t n = problem.num_threads();
  const Rng base(seed_);
  const ThreadCostCache cache(problem.workload(), problem.model());

  // Fixed shard geometry (independent of thread count) keeps the search
  // deterministic: shard s always runs the same trials with stream fork(s).
  constexpr std::size_t kShardSize = 256;
  const std::size_t shards = (trials_ + kShardSize - 1) / kShardSize;
  std::vector<ShardBest> best_per_shard(shards);

  ParallelTrialRunner runner(parallel_);
  runner.for_each(shards, [&](std::size_t s) {
    Rng rng = base.fork(s);
    ShardBest& best = best_per_shard[s];
    const std::size_t lo = s * kShardSize;
    const std::size_t hi = std::min(lo + kShardSize, trials_);
    c_trials.add(hi - lo);
    c_shards.add();
    // One permutation buffer per shard, re-derived in place each trial:
    // iota + Fisher–Yates consumes the same RNG draws as
    // random_permutation, so trial t still sees the exact stream it did
    // when the loop allocated a fresh vector every time.
    std::vector<std::size_t> perm(n);
    for (std::size_t t = lo; t < hi; ++t) {
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      rng.shuffle(perm);
      const double apl = quick_objective(problem, cache, perm);
      if (apl < best.max_apl) {
        best.max_apl = apl;
        best.perm = perm;  // copy only on improvement
      }
    }
  });

  // Deterministic merge: lowest max-APL, ties to the lowest shard index.
  const ShardBest* winner = &best_per_shard.front();
  for (const auto& cand : best_per_shard) {
    if (cand.max_apl < winner->max_apl) winner = &cand;
  }

  Mapping mapping;
  mapping.thread_to_tile.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    mapping.thread_to_tile[j] = static_cast<TileId>(winner->perm[j]);
  }
  return mapping;
}

}  // namespace nocmap
