#include "core/monte_carlo_mapper.h"

#include <limits>
#include <mutex>

#include "core/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nocmap {

namespace {

/// OBM objective (weighted max-APL) of a permutation, computed directly in
/// O(N + A); avoids the full LatencyReport allocation in the hot trial loop.
double quick_objective(const ObmProblem& problem,
                       const std::vector<std::size_t>& perm) {
  const Workload& wl = problem.workload();
  const TileLatencyModel& model = problem.model();
  double worst = 0.0;
  for (std::size_t i = 0; i < wl.num_applications(); ++i) {
    double weighted = 0.0;
    double volume = 0.0;
    for (std::size_t j = wl.first_thread(i); j < wl.last_thread(i); ++j) {
      const ThreadProfile& t = wl.thread(j);
      const auto k = static_cast<TileId>(perm[j]);
      weighted += t.cache_rate * model.tc(k) + t.memory_rate * model.tm(k);
      volume += t.total_rate();
    }
    if (volume > 0.0) {
      const double apl = problem.app_weight(i) * weighted / volume;
      if (apl > worst) worst = apl;
    }
  }
  return worst;
}

struct ShardBest {
  double max_apl = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> perm;
};

}  // namespace

Mapping MonteCarloMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(trials_ > 0, "MonteCarloMapper needs at least one trial");
  const std::size_t n = problem.num_threads();
  const Rng base(seed_);

  // Fixed shard geometry (independent of thread count) keeps the search
  // deterministic: shard s always runs the same trials with stream fork(s).
  constexpr std::size_t kShardSize = 256;
  const std::size_t shards = (trials_ + kShardSize - 1) / kShardSize;
  std::vector<ShardBest> best_per_shard(shards);

  auto run_shard = [&](std::size_t s) {
    Rng rng = base.fork(s);
    ShardBest& best = best_per_shard[s];
    const std::size_t lo = s * kShardSize;
    const std::size_t hi = std::min(lo + kShardSize, trials_);
    for (std::size_t t = lo; t < hi; ++t) {
      auto perm = random_permutation(n, rng);
      const double apl = quick_objective(problem, perm);
      if (apl < best.max_apl) {
        best.max_apl = apl;
        best.perm = std::move(perm);
      }
    }
  };

  if (parallel_ && shards > 1) {
    parallel_for(0, shards, run_shard);
  } else {
    for (std::size_t s = 0; s < shards; ++s) run_shard(s);
  }

  // Deterministic merge: lowest max-APL, ties to the lowest shard index.
  const ShardBest* winner = &best_per_shard.front();
  for (const auto& cand : best_per_shard) {
    if (cand.max_apl < winner->max_apl) winner = &cand;
  }

  Mapping mapping;
  mapping.thread_to_tile.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    mapping.thread_to_tile[j] = static_cast<TileId>(winner->perm[j]);
  }
  return mapping;
}

}  // namespace nocmap
