#include "core/monte_carlo_mapper.h"

#include <algorithm>
#include <array>
#include <limits>
#include <vector>

#include "core/batch_eval.h"
#include "core/cost_cache.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace nocmap {

namespace {

// Throughput metrics (docs/metrics-schema.md): trials are accumulated once
// per shard — one relaxed add per 256 trials, nothing inside the trial loop.
const obs::Timer t_map("mc.map");
const obs::Counter c_trials("mc.trials");
const obs::Counter c_shards("mc.shards");

// Trials generated and scored per batch-evaluator call. 32 row-major
// candidate rows (32 · N tiles) stay inside L1 for bench-scale problems
// while amortizing the cost-row traversal across enough independent
// accumulators to hide the FP-add latency chain.
constexpr std::size_t kBlock = 32;

/// Number of independent generator streams (rows generated together). Each
/// row's inside-out Fisher–Yates is a serial chain — every placement's load
/// depends on an unpredictable prior store — so single-row generation is
/// latency-bound; eight interleaved rows give the core eight independent
/// chains to overlap, which also hides the PCG state-update latency.
/// Streams are assigned row-position-fixed (row b+g from stream g), so
/// generation stays fully deterministic.
constexpr std::size_t kGenStreams = 8;
static_assert(kBlock % kGenStreams == 0);

/// Four inside-out Fisher–Yates placements (elements i..i+3) from ONE raw
/// 32-bit draw: the first index is the multiply-shift map (x·(i+1)) >> 32
/// and each subsequent one reuses the low 32 bits of the previous product
/// as a fresh variate for the next bound. The reused bits are approximately
/// uniform but not independent enough for rejection-free exactness, so
/// unlike Rng::uniform_u32 this mapping carries the plain multiply-shift
/// modulo bias of order bound/2^32 (< 1e-6 for bench-scale N) —
/// statistically irrelevant for a random search that only ranks objective
/// values, and a quarter of the RNG traffic of one draw per placement.
inline void fy_step_quad(TileId* r, std::size_t i, std::uint64_t x) {
  std::uint64_t m = x * (i + 1);
  auto j = static_cast<std::size_t>(m >> 32);
  r[i] = r[j];
  r[j] = static_cast<TileId>(i);
  m = static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) * (i + 2);
  j = static_cast<std::size_t>(m >> 32);
  r[i + 1] = r[j];
  r[j] = static_cast<TileId>(i + 1);
  m = static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) * (i + 3);
  j = static_cast<std::size_t>(m >> 32);
  r[i + 2] = r[j];
  r[j] = static_cast<TileId>(i + 2);
  m = static_cast<std::uint64_t>(static_cast<std::uint32_t>(m)) * (i + 4);
  j = static_cast<std::size_t>(m >> 32);
  r[i + 3] = r[j];
  r[j] = static_cast<TileId>(i + 3);
}

inline void fy_step_pair(TileId* r, std::size_t i, std::uint64_t x) {
  const std::uint64_t m1 = x * (i + 1);
  const auto j1 = static_cast<std::size_t>(m1 >> 32);
  r[i] = r[j1];
  r[j1] = static_cast<TileId>(i);
  const std::uint64_t m2 =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(m1)) * (i + 2);
  const auto j2 = static_cast<std::size_t>(m2 >> 32);
  r[i + 1] = r[j2];
  r[j2] = static_cast<TileId>(i + 1);
}

inline void fy_step_single(TileId* r, std::size_t i, std::uint64_t x) {
  const std::uint64_t m = x * (i + 1);
  const auto j = static_cast<std::size_t>(m >> 32);
  r[i] = r[j];
  r[j] = static_cast<TileId>(i);
}

/// Fills rows [0, count) of the row-major scratch (stride n) with
/// independent uniform random permutations of 0..n-1. Each row runs an
/// inside-out Fisher–Yates (a[i] = a[j]; a[j] = i for j uniform in [0, i]),
/// which needs no identity-permutation pass; rows are compact (4 cache
/// lines at bench scale), so eight interleaved chains run near ALU
/// throughput instead of store-load disambiguation latency.
void fill_random_rows(TileId* rows, std::size_t n, std::size_t count,
                      std::array<Rng, kGenStreams>& gs) {
  std::size_t b = 0;
  for (; b + kGenStreams <= count; b += kGenStreams) {
    TileId* r[kGenStreams];
    for (std::size_t g = 0; g < kGenStreams; ++g) {
      r[g] = rows + (b + g) * n;
      r[g][0] = 0;
    }
    std::size_t i = 1;
    while (i + 3 < n) {
      for (std::size_t g = 0; g < kGenStreams; ++g) {
        fy_step_quad(r[g], i, gs[g]());
      }
      i += 4;
    }
    while (i + 1 < n) {
      for (std::size_t g = 0; g < kGenStreams; ++g) {
        fy_step_pair(r[g], i, gs[g]());
      }
      i += 2;
    }
    if (i < n) {
      for (std::size_t g = 0; g < kGenStreams; ++g) {
        fy_step_single(r[g], i, gs[g]());
      }
    }
  }
  for (; b < count; ++b) {  // ragged tail: single rows from stream 0
    TileId* r = rows + b * n;
    r[0] = 0;
    std::size_t i = 1;
    while (i + 3 < n) {
      fy_step_quad(r, i, gs[0]());
      i += 4;
    }
    while (i + 1 < n) {
      fy_step_pair(r, i, gs[0]());
      i += 2;
    }
    if (i < n) fy_step_single(r, i, gs[0]());
  }
}

struct ShardBest {
  double max_apl = std::numeric_limits<double>::infinity();
  std::vector<TileId> perm;
};

}  // namespace

Mapping MonteCarloMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(trials_ > 0, "MonteCarloMapper needs at least one trial");
  const obs::ScopedTimer map_scope(t_map);
  const std::size_t n = problem.num_threads();
  const Rng base(seed_);
  const ThreadCostCache cache(problem.workload(), problem.model());
  const BatchEvaluator evaluator(problem, cache);

  // Fixed shard geometry (independent of thread count) keeps the search
  // deterministic: shard s always runs the same trials with stream fork(s).
  constexpr std::size_t kShardSize = 256;
  static_assert(kShardSize % kBlock == 0);
  const std::size_t shards = (trials_ + kShardSize - 1) / kShardSize;
  std::vector<ShardBest> best_per_shard(shards);

  ParallelTrialRunner runner(parallel_);
  runner.for_each(shards, [&](std::size_t s) {
    Rng rng = base.fork(s);
    // Per-shard generation streams (see fill_random_rows); all derive from
    // the shard stream, so shard s is self-contained.
    std::array<Rng, kGenStreams> gen{
        rng.fork(0xa), rng.fork(0xb), rng.fork(0xc), rng.fork(0xd),
        rng.fork(0xe), rng.fork(0xf), rng.fork(0x10), rng.fork(0x11)};
    ShardBest& best = best_per_shard[s];
    const std::size_t lo = s * kShardSize;
    const std::size_t hi = std::min(lo + kShardSize, trials_);
    c_trials.add(hi - lo);
    c_shards.add();
    std::vector<TileId> rows(kBlock * n);
    std::vector<double> scores(kBlock);
    best.perm.resize(n);
    for (std::size_t t0 = lo; t0 < hi; t0 += kBlock) {
      const std::size_t count = std::min(kBlock, hi - t0);
      fill_random_rows(rows.data(), n, count, gen);
      // Plain (unpruned) scoring: every lane's max-APL is exact, so the
      // running-best comparison below is trivially order-safe. A pruned
      // pass was measured slower here — the per-app cutoff checks cost
      // more than the truncated accumulation saves at bench scale.
      evaluator.score_rows(rows.data(), n, count, scores);
      for (std::size_t b = 0; b < count; ++b) {
        if (scores[b] < best.max_apl) {
          best.max_apl = scores[b];
          std::copy_n(&rows[b * n], n, best.perm.data());
        }
      }
    }
  });

  // Deterministic merge: lowest max-APL, ties to the lowest shard index.
  const ShardBest* winner = &best_per_shard.front();
  for (const auto& cand : best_per_shard) {
    if (cand.max_apl < winner->max_apl) winner = &cand;
  }

  Mapping mapping;
  mapping.thread_to_tile = winner->perm;
  return mapping;
}

}  // namespace nocmap
