#include "core/mapping_io.h"

#include <fstream>
#include <sstream>

namespace nocmap {

void write_mapping_csv(const Mapping& mapping, std::ostream& out) {
  out << "thread,tile\n";
  for (std::size_t j = 0; j < mapping.size(); ++j) {
    out << j << ',' << mapping.thread_to_tile[j] << '\n';
  }
}

void save_mapping_csv(const Mapping& mapping, const std::string& path) {
  std::ofstream out(path);
  NOCMAP_REQUIRE(out.good(), "cannot open mapping CSV for writing: " + path);
  write_mapping_csv(mapping, out);
  NOCMAP_REQUIRE(out.good(), "write failure on mapping CSV: " + path);
}

Mapping read_mapping_csv(std::istream& in) {
  std::string line;
  NOCMAP_REQUIRE(static_cast<bool>(std::getline(in, line)),
                 "empty mapping CSV");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  NOCMAP_REQUIRE(line == "thread,tile",
                 "unexpected mapping CSV header: " + line);

  Mapping mapping;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string thread_cell, tile_cell;
    NOCMAP_REQUIRE(static_cast<bool>(std::getline(row, thread_cell, ',')) &&
                       static_cast<bool>(std::getline(row, tile_cell)),
                   "expected 2 columns on mapping CSV line " +
                       std::to_string(line_no));
    try {
      NOCMAP_REQUIRE(std::stoull(thread_cell) ==
                         mapping.thread_to_tile.size(),
                     "thread index mismatch on mapping CSV line " +
                         std::to_string(line_no));
      mapping.thread_to_tile.push_back(
          static_cast<TileId>(std::stoul(tile_cell)));
    } catch (const std::logic_error&) {
      throw Error("non-numeric value on mapping CSV line " +
                  std::to_string(line_no));
    }
  }
  NOCMAP_REQUIRE(!mapping.thread_to_tile.empty(), "mapping CSV has no rows");
  NOCMAP_REQUIRE(mapping.is_valid_permutation(mapping.size()),
                 "mapping CSV is not a valid thread-to-tile permutation");
  return mapping;
}

Mapping load_mapping_csv(const std::string& path) {
  std::ifstream in(path);
  NOCMAP_REQUIRE(in.good(), "cannot open mapping CSV: " + path);
  return read_mapping_csv(in);
}

}  // namespace nocmap
