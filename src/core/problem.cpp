#include "core/problem.h"

#include <numeric>

namespace nocmap {

bool Mapping::is_valid_permutation(std::size_t n) const {
  if (thread_to_tile.size() != n) return false;
  std::vector<char> seen(n, 0);
  for (TileId t : thread_to_tile) {
    if (t >= n || seen[t]) return false;
    seen[t] = 1;
  }
  return true;
}

std::vector<std::size_t> Mapping::tile_to_thread() const {
  NOCMAP_REQUIRE(is_valid_permutation(thread_to_tile.size()),
                 "mapping is not a valid permutation");
  std::vector<std::size_t> inverse(thread_to_tile.size());
  for (std::size_t j = 0; j < thread_to_tile.size(); ++j) {
    inverse[thread_to_tile[j]] = j;
  }
  return inverse;
}

ObmProblem::ObmProblem(TileLatencyModel model, Workload workload)
    : ObmProblem(std::move(model), std::move(workload), {}) {}

ObmProblem::ObmProblem(TileLatencyModel model, Workload workload,
                       std::vector<double> app_weights)
    : model_(std::move(model)), workload_(std::move(workload)),
      app_weights_(std::move(app_weights)) {
  NOCMAP_REQUIRE(
      workload_.num_threads() == model_.mesh().num_tiles(),
      "workload thread count must equal tile count (pad with "
      "Workload::padded_to if needed)");
  if (app_weights_.empty()) {
    app_weights_.assign(workload_.num_applications(), 1.0);
  }
  NOCMAP_REQUIRE(app_weights_.size() == workload_.num_applications(),
                 "one service weight per application required");
  for (double w : app_weights_) {
    NOCMAP_REQUIRE(w > 0.0, "service weights must be positive");
    if (w != 1.0) weighted_ = true;
  }
}

double ObmProblem::app_weight(std::size_t i) const {
  NOCMAP_REQUIRE(i < app_weights_.size(), "application index out of range");
  return app_weights_[i];
}

Mapping ObmProblem::identity_mapping() const {
  Mapping m;
  m.thread_to_tile.resize(num_threads());
  std::iota(m.thread_to_tile.begin(), m.thread_to_tile.end(), TileId{0});
  return m;
}

}  // namespace nocmap
