#include "core/random_mapper.h"

namespace nocmap {

Mapping RandomMapper::map(const ObmProblem& problem) {
  const auto perm = random_permutation(problem.num_threads(), rng_);
  Mapping mapping;
  mapping.thread_to_tile.resize(perm.size());
  for (std::size_t j = 0; j < perm.size(); ++j) {
    mapping.thread_to_tile[j] = static_cast<TileId>(perm[j]);
  }
  return mapping;
}

}  // namespace nocmap
