// Contention-aware analytic network model.
//
// The paper's latency model treats the per-hop queuing delay td_q as a
// small constant, justified empirically (0..1 cycles at its loads). This
// module derives the queuing from first principles for a *given mapping*:
// it accumulates per-link flit rates by walking every traffic flow's
// dimension-order (XYZ) path (cache requests fan out uniformly to all
// banks, replies return, memory requests follow the problem's
// MemoryTrafficMode — nearest MC, round-robin over all MCs, or the
// dimension-order multicast tree whose shared prefixes carry each request
// once), then estimates per-link waiting with an M/D/1 approximation (unit
// service: one flit per cycle per link):
//
//     W(u) = u / (2·(1 − u))   cycles of queueing per flit
//
// Uses: predicting the saturation injection scale (1 / max link
// utilization), a mapping-dependent td_q estimate to refine the latency
// model, and hotspot analysis (does balancing APLs also balance links?).
#pragma once

#include <vector>

#include "core/problem.h"

namespace nocmap {

struct ContentionConfig {
  double injection_scale = 1.0;  ///< multiplier on workload rates
  double request_flits = 1.0;    ///< short packet
  double reply_flits = 5.0;      ///< long data packet
  bool include_replies = true;   ///< model the reply direction too
};

class ContentionModel {
 public:
  ContentionModel(const ObmProblem& problem, const Mapping& mapping,
                  const ContentionConfig& config = {});

  /// Flits/cycle on the directed link from `from` to its neighbour `to`
  /// (must be mesh-adjacent).
  double link_load(TileId from, TileId to) const;
  /// Same as link_load (capacity is 1 flit/cycle, so load == utilization).
  double link_utilization(TileId from, TileId to) const {
    return link_load(from, to);
  }

  double max_utilization() const;
  /// Mean utilization over all directed links (including idle ones).
  double mean_utilization() const;

  /// Injection scale at which the hottest link reaches capacity — the
  /// predicted saturation knee of the latency-vs-load curve.
  double saturation_scale() const;

  /// M/D/1 waiting time on one link (cycles per flit); clamped just below
  /// capacity to stay finite.
  static double queue_delay(double utilization);

  /// Expected queuing a packet accumulates along the XYZ path src→dst.
  double expected_packet_queuing(TileId src, TileId dst) const;

  /// Flit-weighted average per-hop queuing — the model's td_q estimate,
  /// comparable with ActivityCounters::avg_queue_wait().
  double predicted_td_q() const;

  /// Total flit·hops per cycle (conservation checks: equals the sum of all
  /// link loads).
  double total_flit_hops() const;

 private:
  std::size_t link_index(TileId from, TileId to) const;
  void add_flow(TileId src, TileId dst, double flits_per_cycle);
  void add_multicast_tree(TileId from, std::vector<TileId> dests,
                          double flits_per_cycle);

  const Mesh* mesh_;
  std::vector<double> load_;  // 6 directed link slots per tile
};

}  // namespace nocmap
