#include "core/batch_eval.h"

#include <algorithm>
#include <limits>

namespace nocmap {

void CandidateBatch::load(std::size_t lane, std::span<const TileId> perm) {
  NOCMAP_REQUIRE(lane < capacity_, "candidate lane out of range");
  NOCMAP_REQUIRE(perm.size() == num_threads_,
                 "candidate arity does not match the batch");
  for (std::size_t j = 0; j < num_threads_; ++j) {
    tiles_[j * capacity_ + lane] = perm[j];
  }
}

void CandidateBatch::extract(std::size_t lane, std::span<TileId> perm) const {
  NOCMAP_REQUIRE(lane < capacity_, "candidate lane out of range");
  NOCMAP_REQUIRE(perm.size() == num_threads_,
                 "candidate arity does not match the batch");
  for (std::size_t j = 0; j < num_threads_; ++j) {
    perm[j] = tiles_[j * capacity_ + lane];
  }
}

BatchEvaluator::BatchEvaluator(const ObmProblem& problem,
                               const ThreadCostCache& cache)
    : cache_(&cache), num_threads_(problem.num_threads()) {
  NOCMAP_REQUIRE(cache.num_threads() == problem.num_threads() &&
                     cache.num_tiles() == problem.num_tiles(),
                 "cost cache does not match the problem");
  const Workload& wl = problem.workload();
  apps_.reserve(wl.num_applications());
  for (std::size_t i = 0; i < wl.num_applications(); ++i) {
    AppSlice app;
    app.first = static_cast<std::uint32_t>(wl.first_thread(i));
    app.last = static_cast<std::uint32_t>(wl.last_thread(i));
    app.weight = problem.app_weight(i);
    // Thread-ascending summation, exactly as the scalar reduction
    // accumulates it (the cache's prefix sums round differently).
    double volume = 0.0;
    for (std::uint32_t j = app.first; j < app.last; ++j) {
      volume += cache.rate(j);
    }
    app.volume = volume;
    // Zero-volume applications never contribute to the objective; dropping
    // them here mirrors the scalar `volume > 0` guard.
    if (volume > 0.0) apps_.push_back(app);
  }
}

template <bool Pruned, typename TileAt>
void BatchEvaluator::score_block(std::size_t lanes, double cutoff, double* out,
                                 const TileAt& tile_at) const {
  NOCMAP_ASSERT(lanes <= kMaxLanes);
  double worst[kMaxLanes];
  double acc[kMaxLanes];
  for (std::size_t b = 0; b < lanes; ++b) worst[b] = 0.0;
  for (const AppSlice& app : apps_) {
    for (std::size_t b = 0; b < lanes; ++b) acc[b] = 0.0;
    for (std::uint32_t j = app.first; j < app.last; ++j) {
      const double* row = cache_->row(j);
      for (std::size_t b = 0; b < lanes; ++b) {
        acc[b] += row[tile_at(j, b)];
      }
    }
    for (std::size_t b = 0; b < lanes; ++b) {
      const double apl = app.weight * acc[b] / app.volume;
      if (apl > worst[b]) worst[b] = apl;
    }
    if constexpr (Pruned) {
      // The per-lane max only grows with later applications, so once every
      // lane has reached the cutoff none of them can come back under it.
      double live = worst[0];
      for (std::size_t b = 1; b < lanes; ++b) live = std::min(live, worst[b]);
      if (live >= cutoff) break;
    }
  }
  for (std::size_t b = 0; b < lanes; ++b) out[b] = worst[b];
}

void BatchEvaluator::score(const CandidateBatch& batch, std::size_t count,
                           std::span<double> out) const {
  NOCMAP_REQUIRE(batch.num_threads() == num_threads_,
                 "batch arity does not match the problem");
  NOCMAP_REQUIRE(count <= batch.capacity() && out.size() >= count,
                 "batch score count out of range");
  for (std::size_t b0 = 0; b0 < count; b0 += kMaxLanes) {
    const std::size_t lanes = std::min(kMaxLanes, count - b0);
    score_block<false>(
        lanes, 0.0, out.data() + b0,
        [&batch, b0](std::uint32_t j, std::size_t b) {
          return batch.lane_row(j)[b0 + b];
        });
  }
}

void BatchEvaluator::score_pruned(const CandidateBatch& batch,
                                  std::size_t count, double cutoff,
                                  std::span<double> out) const {
  NOCMAP_REQUIRE(batch.num_threads() == num_threads_,
                 "batch arity does not match the problem");
  NOCMAP_REQUIRE(count <= batch.capacity() && out.size() >= count,
                 "batch score count out of range");
  for (std::size_t b0 = 0; b0 < count; b0 += kPruneLanes) {
    const std::size_t lanes = std::min(kPruneLanes, count - b0);
    score_block<true>(
        lanes, cutoff, out.data() + b0,
        [&batch, b0](std::uint32_t j, std::size_t b) {
          return batch.lane_row(j)[b0 + b];
        });
  }
}

void BatchEvaluator::score_rows(const TileId* rows, std::size_t stride,
                                std::size_t count,
                                std::span<double> out) const {
  NOCMAP_REQUIRE(stride >= num_threads_,
                 "candidate row stride shorter than the thread count");
  NOCMAP_REQUIRE(out.size() >= count, "batch score count out of range");
  for (std::size_t b0 = 0; b0 < count; b0 += kMaxLanes) {
    const std::size_t lanes = std::min(kMaxLanes, count - b0);
    score_block<false>(
        lanes, 0.0, out.data() + b0,
        [rows, stride, b0](std::uint32_t j, std::size_t b) {
          return rows[(b0 + b) * stride + j];
        });
  }
}

}  // namespace nocmap
