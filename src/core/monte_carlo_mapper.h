// Monte-Carlo baseline for OBM (paper Section V.A algorithm 2): draw a large
// number of uniform random mappings (the paper uses 10⁴) and keep the one
// with the smallest max-APL. Trials are sharded with a fixed geometry and
// per-shard forked RNG streams, so the result is deterministic for a fixed
// (seed, trials) pair at any thread count; the ParallelConfig only decides
// how many workers execute the shards.
#pragma once

#include <cstdint>

#include "core/mapper.h"
#include "core/parallel.h"

namespace nocmap {

class MonteCarloMapper final : public Mapper {
 public:
  explicit MonteCarloMapper(std::size_t trials = 10000,
                            std::uint64_t seed = 1,
                            ParallelConfig parallel = {})
      : trials_(trials), seed_(seed), parallel_(parallel) {}

  std::string name() const override { return "MC"; }
  Mapping map(const ObmProblem& problem) override;

  std::size_t trials() const { return trials_; }

 private:
  std::size_t trials_;
  std::uint64_t seed_;
  ParallelConfig parallel_;
};

}  // namespace nocmap
