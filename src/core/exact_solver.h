// Exact OBM solver by depth-first branch-and-bound.
//
// OBM is NP-complete (paper Section III.C), so exact solutions are only
// tractable for small chips — but they are invaluable for measuring the
// optimality gap of the heuristics (SSS typically lands within a couple of
// percent on the instances this can solve). The search assigns threads to
// tiles in descending-rate order, pruning a partial assignment when an
// optimistic completion (every unassigned thread takes its cheapest free
// tile, ignoring the one-thread-per-tile constraint among the remainder)
// cannot beat the incumbent, which is seeded with the SSS solution.
#pragma once

#include <cstdint>

#include "core/problem.h"

namespace nocmap {

struct ExactResult {
  Mapping mapping;
  /// Optimal objective value: max-APL, or max_i w_i·APL_i when the problem
  /// carries QoS weights.
  double max_apl = 0.0;
  std::uint64_t nodes_explored = 0;
  /// False when the node budget was exhausted first; the mapping is then
  /// the best incumbent, not necessarily optimal.
  bool proven_optimal = false;
};

struct ExactSolverOptions {
  /// Hard cap on explored search nodes.
  std::uint64_t max_nodes = 50'000'000;
  /// Practical instance-size guard: refuse absurd inputs outright.
  std::size_t max_threads = 20;
};

/// Solves OBM exactly (within the node budget). Throws if the problem has
/// more threads than options.max_threads.
ExactResult solve_obm_exact(const ObmProblem& problem,
                            const ExactSolverOptions& options = {});

}  // namespace nocmap
