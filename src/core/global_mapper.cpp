#include "core/global_mapper.h"

#include <numeric>

#include "assign/hungarian.h"
#include "core/cost_cache.h"

namespace nocmap {

Mapping GlobalMapper::map(const ObmProblem& problem) {
  const std::size_t n = problem.num_threads();

  // The full N×N Hungarian cost matrix is exactly the memoized eq.-13 table.
  const ThreadCostCache cache(problem.workload(), problem.model());
  std::vector<TileId> all_tiles(n);
  std::iota(all_tiles.begin(), all_tiles.end(), TileId{0});
  const CostMatrix cost = cache.sam_matrix(0, all_tiles);

  const Assignment assignment = solve_assignment(cost);
  Mapping mapping;
  mapping.thread_to_tile.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    mapping.thread_to_tile[j] = static_cast<TileId>(assignment.row_to_col[j]);
  }
  return mapping;
}

}  // namespace nocmap
