#include "core/global_mapper.h"

#include "assign/hungarian.h"
#include "core/cost_cache.h"

namespace nocmap {

Mapping GlobalMapper::map(const ObmProblem& problem) {
  const std::size_t n = problem.num_threads();

  // The full N×N assignment cost matrix is exactly the memoized eq.-13
  // table, read in place — no copy, no per-solve allocations beyond the
  // workspace's first use.
  const ThreadCostCache cache(problem.workload(), problem.model());
  AssignmentWorkspace ws;
  const CostView view(cache.row(0), n, n, cache.row_stride());

  const Assignment& assignment = ws.solve(view);
  Mapping mapping;
  mapping.thread_to_tile.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    mapping.thread_to_tile[j] = static_cast<TileId>(assignment.row_to_col[j]);
  }
  return mapping;
}

}  // namespace nocmap
