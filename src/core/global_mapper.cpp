#include "core/global_mapper.h"

#include "assign/hungarian.h"

namespace nocmap {

Mapping GlobalMapper::map(const ObmProblem& problem) {
  const std::size_t n = problem.num_threads();
  const Workload& wl = problem.workload();
  const TileLatencyModel& model = problem.model();

  CostMatrix cost(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const ThreadProfile& t = wl.thread(j);
    for (std::size_t k = 0; k < n; ++k) {
      cost.at(j, k) = t.cache_rate * model.tc(static_cast<TileId>(k)) +
                      t.memory_rate * model.tm(static_cast<TileId>(k));
    }
  }

  const Assignment assignment = solve_assignment(cost);
  Mapping mapping;
  mapping.thread_to_tile.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    mapping.thread_to_tile[j] = static_cast<TileId>(assignment.row_to_col[j]);
  }
  return mapping;
}

}  // namespace nocmap
