// Single-Application Mapping (SAM, paper Section IV.A).
//
// Given one application's threads and an equal-sized set of candidate tiles,
// find the thread→tile assignment minimizing the application's APL. Because
// each thread's latency contribution depends only on its own tile (the L2 is
// address-hashed over the whole chip and the MC target is fixed per tile),
// this is a linear assignment problem with cost_{jk} = c_j·TC(k) + m_j·TM(k)
// (eq. 13), solved exactly by the Hungarian method in O(N_a³).
#pragma once

#include <span>
#include <vector>

#include "core/cost_cache.h"
#include "latency/model.h"
#include "workload/workload.h"

namespace nocmap {

/// Result of a SAM solve: tiles[j] is the tile of the j-th input thread,
/// and apl is the minimized application APL (eq. 12).
struct SamResult {
  std::vector<TileId> tiles;
  double apl = 0.0;
};

/// Optimally assigns `threads` to `tiles` (equal sizes required).
SamResult solve_sam(std::span<const ThreadProfile> threads,
                    std::span<const TileId> tiles,
                    const TileLatencyModel& model);

/// Cache-backed variant for the contiguous global thread range
/// [first_thread, first_thread + tiles.size()): the cost matrix comes from
/// the shared memoized ThreadCostCache instead of being recomputed from the
/// model. Pure with respect to the cache, so concurrent calls (e.g. the
/// per-application SAM solves of the parallel SSS stages) are safe.
SamResult solve_sam(const ThreadCostCache& cache, std::size_t first_thread,
                    std::span<const TileId> tiles);

/// Hot-path variant: solves in place over the cache through a lazy CostView
/// (no matrix materialization) using caller-owned scratch. With `warm` the
/// workspace's column potentials from its previous solve seed the kernel —
/// use for repeated near-identical solves of the *same logical site* (e.g.
/// the same application across SSS passes). Warm starts never change the
/// optimal APL; on instances with tied optima they may select a different
/// optimal permutation than a cold solve, so determinism requires the
/// workspace's solve history to be schedule-independent (key workspaces per
/// application, not per worker).
SamResult solve_sam(const ThreadCostCache& cache, std::size_t first_thread,
                    std::span<const TileId> tiles, AssignmentWorkspace& ws,
                    bool warm = false);

}  // namespace nocmap
