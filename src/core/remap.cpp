#include "core/remap.h"

#include <algorithm>
#include <vector>

#include "assign/hungarian.h"

namespace nocmap {

namespace {

/// Stage 2 of the migration-aware remap: within each application, assign
/// threads onto the fresh tile sets with the migration penalty λ folded into
/// the cost (see the header comment). Factored out so remap_budgeted can
/// re-run it under different penalties without repeating the SSS solve.
RemapResult assign_within_tile_sets(const ObmProblem& problem,
                                    const Mapping& fresh,
                                    const Mapping& old_mapping,
                                    double migration_penalty_cycles) {
  const Workload& wl = problem.workload();
  const TileLatencyModel& model = problem.model();

  RemapResult result;
  result.mapping.thread_to_tile.resize(problem.num_threads());
  AssignmentWorkspace ws;
  std::vector<double> cost;
  std::vector<TileId> tiles;
  for (std::size_t a = 0; a < wl.num_applications(); ++a) {
    const std::size_t lo = wl.first_thread(a);
    const std::size_t dn = wl.last_thread(a) - lo;
    tiles.resize(dn);
    for (std::size_t t = 0; t < dn; ++t) {
      tiles[t] = fresh.thread_to_tile[lo + t];
    }

    cost.resize(dn * dn);
    for (std::size_t t = 0; t < dn; ++t) {
      const std::size_t j = lo + t;
      const ThreadProfile& prof = wl.thread(j);
      const bool has_old = j < old_mapping.thread_to_tile.size();
      for (std::size_t k = 0; k < dn; ++k) {
        double c = prof.cache_rate * model.tc(tiles[k]) +
                   prof.memory_rate * model.tm(tiles[k]);
        if (has_old && old_mapping.thread_to_tile[j] != tiles[k]) {
          c += migration_penalty_cycles * prof.total_rate();
        }
        cost[t * dn + k] = c;
      }
    }
    const Assignment& assignment =
        ws.solve(CostView(cost.data(), dn, dn, dn));
    for (std::size_t t = 0; t < dn; ++t) {
      result.mapping.thread_to_tile[lo + t] =
          tiles[assignment.row_to_col[t]];
    }
  }

  // Count real migrations: zero-rate pad threads are fictitious and move
  // for free.
  result.moved_threads = 0;
  for (std::size_t j = 0; j < problem.num_threads(); ++j) {
    if (wl.thread(j).total_rate() <= 0.0) continue;
    const bool has_old = j < old_mapping.thread_to_tile.size();
    if (!has_old ||
        old_mapping.thread_to_tile[j] != result.mapping.thread_to_tile[j]) {
      ++result.moved_threads;
    }
  }
  result.report = evaluate(problem, result.mapping);
  return result;
}

/// Real threads whose old tile is absent from their application's fresh
/// tile set: these migrate under *any* penalty, so they lower-bound the
/// move count of every sticky solution.
std::size_t count_forced_moves(const ObmProblem& problem,
                               const Mapping& fresh,
                               const Mapping& old_mapping) {
  const Workload& wl = problem.workload();
  std::size_t forced = 0;
  std::vector<TileId> tiles;
  for (std::size_t a = 0; a < wl.num_applications(); ++a) {
    const std::size_t lo = wl.first_thread(a);
    const std::size_t hi = wl.last_thread(a);
    tiles.assign(fresh.thread_to_tile.begin() +
                     static_cast<std::ptrdiff_t>(lo),
                 fresh.thread_to_tile.begin() +
                     static_cast<std::ptrdiff_t>(hi));
    std::sort(tiles.begin(), tiles.end());
    for (std::size_t j = lo; j < hi; ++j) {
      if (wl.thread(j).total_rate() <= 0.0) continue;
      if (j >= old_mapping.thread_to_tile.size() ||
          !std::binary_search(tiles.begin(), tiles.end(),
                              old_mapping.thread_to_tile[j])) {
        ++forced;
      }
    }
  }
  return forced;
}

}  // namespace

std::size_t count_moved_threads(const Mapping& before, const Mapping& after) {
  const std::size_t overlap =
      std::min(before.thread_to_tile.size(), after.thread_to_tile.size());
  std::size_t moved = 0;
  for (std::size_t j = 0; j < overlap; ++j) {
    if (before.thread_to_tile[j] != after.thread_to_tile[j]) ++moved;
  }
  // Threads with no old position count as moved (they must be placed).
  moved += after.thread_to_tile.size() - overlap;
  return moved;
}

RemapResult remap_balanced(const ObmProblem& problem,
                           const Mapping& old_mapping,
                           double migration_penalty_cycles,
                           const SssOptions& sss_options) {
  NOCMAP_REQUIRE(migration_penalty_cycles >= 0.0,
                 "migration penalty must be non-negative");
  // Stage 1: fresh balanced solution fixes the per-application tile sets.
  SortSelectSwapMapper sss(sss_options);
  const Mapping fresh = sss.map(problem);
  return assign_within_tile_sets(problem, fresh, old_mapping,
                                 migration_penalty_cycles);
}

BudgetedRemapResult remap_budgeted(const ObmProblem& problem,
                                   const Mapping& old_mapping,
                                   std::size_t max_moved_threads,
                                   const SssOptions& sss_options) {
  NOCMAP_REQUIRE(old_mapping.is_valid_permutation(problem.num_threads()),
                 "budgeted remap needs a valid old mapping to fall back on");
  SortSelectSwapMapper sss(sss_options);
  const Mapping fresh = sss.map(problem);

  BudgetedRemapResult out;
  RemapResult free_moves =
      assign_within_tile_sets(problem, fresh, old_mapping, 0.0);
  if (free_moves.moved_threads <= max_moved_threads) {
    out.remap = std::move(free_moves);
    return out;
  }

  if (count_forced_moves(problem, fresh, old_mapping) > max_moved_threads) {
    // No penalty can fit the budget: keep everything where it is.
    out.remap.mapping = old_mapping;
    out.remap.moved_threads = 0;
    out.remap.report = evaluate(problem, old_mapping);
    out.reverted_to_old = true;
    return out;
  }

  // Exponential search for a penalty whose sticky solution fits the budget
  // (one exists: forced moves alone fit, and λ → ∞ moves only those).
  double lo = 0.0;
  double hi = 1.0;
  RemapResult at_hi;
  for (;;) {
    at_hi = assign_within_tile_sets(problem, fresh, old_mapping, hi);
    if (at_hi.moved_threads <= max_moved_threads) break;
    lo = hi;
    hi *= 16.0;
    if (hi > 1e30) {
      // Defensive only: forced moves fit the budget, so a finite penalty
      // always exists; never give back an over-budget result regardless.
      out.remap.mapping = old_mapping;
      out.remap.moved_threads = 0;
      out.remap.report = evaluate(problem, old_mapping);
      out.reverted_to_old = true;
      return out;
    }
  }
  // Bisect to the smallest budget-respecting penalty, so the remap pays no
  // more quality than the budget demands.
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    RemapResult at_mid =
        assign_within_tile_sets(problem, fresh, old_mapping, mid);
    if (at_mid.moved_threads <= max_moved_threads) {
      hi = mid;
      at_hi = std::move(at_mid);
    } else {
      lo = mid;
    }
  }
  out.remap = std::move(at_hi);
  out.penalty_cycles = hi;
  return out;
}

}  // namespace nocmap
