#include "core/remap.h"

#include <algorithm>

#include "assign/hungarian.h"

namespace nocmap {

std::size_t count_moved_threads(const Mapping& before, const Mapping& after) {
  const std::size_t overlap =
      std::min(before.thread_to_tile.size(), after.thread_to_tile.size());
  std::size_t moved = 0;
  for (std::size_t j = 0; j < overlap; ++j) {
    if (before.thread_to_tile[j] != after.thread_to_tile[j]) ++moved;
  }
  // Threads with no old position count as moved (they must be placed).
  moved += after.thread_to_tile.size() - overlap;
  return moved;
}

RemapResult remap_balanced(const ObmProblem& problem,
                           const Mapping& old_mapping,
                           double migration_penalty_cycles,
                           const SssOptions& sss_options) {
  NOCMAP_REQUIRE(migration_penalty_cycles >= 0.0,
                 "migration penalty must be non-negative");
  const Workload& wl = problem.workload();
  const TileLatencyModel& model = problem.model();

  // Stage 1: fresh balanced solution fixes the per-application tile sets.
  SortSelectSwapMapper sss(sss_options);
  Mapping fresh = sss.map(problem);

  // Stage 2: within each application, migration-aware assignment onto the
  // fresh tile set. One workspace and one cost buffer serve every
  // application's solve.
  RemapResult result;
  result.mapping.thread_to_tile.resize(problem.num_threads());
  AssignmentWorkspace ws;
  std::vector<double> cost;
  std::vector<TileId> tiles;
  for (std::size_t a = 0; a < wl.num_applications(); ++a) {
    const std::size_t lo = wl.first_thread(a);
    const std::size_t dn = wl.last_thread(a) - lo;
    tiles.resize(dn);
    for (std::size_t t = 0; t < dn; ++t) {
      tiles[t] = fresh.thread_to_tile[lo + t];
    }

    cost.resize(dn * dn);
    for (std::size_t t = 0; t < dn; ++t) {
      const std::size_t j = lo + t;
      const ThreadProfile& prof = wl.thread(j);
      const bool has_old = j < old_mapping.thread_to_tile.size();
      for (std::size_t k = 0; k < dn; ++k) {
        double c = prof.cache_rate * model.tc(tiles[k]) +
                   prof.memory_rate * model.tm(tiles[k]);
        if (has_old && old_mapping.thread_to_tile[j] != tiles[k]) {
          c += migration_penalty_cycles * prof.total_rate();
        }
        cost[t * dn + k] = c;
      }
    }
    const Assignment& assignment =
        ws.solve(CostView(cost.data(), dn, dn, dn));
    for (std::size_t t = 0; t < dn; ++t) {
      result.mapping.thread_to_tile[lo + t] =
          tiles[assignment.row_to_col[t]];
    }
  }

  // Count real migrations: zero-rate pad threads are fictitious and move
  // for free.
  result.moved_threads = 0;
  for (std::size_t j = 0; j < problem.num_threads(); ++j) {
    if (wl.thread(j).total_rate() <= 0.0) continue;
    const bool has_old = j < old_mapping.thread_to_tile.size();
    if (!has_old ||
        old_mapping.thread_to_tile[j] != result.mapping.thread_to_tile[j]) {
      ++result.moved_threads;
    }
  }
  result.report = evaluate(problem, result.mapping);
  return result;
}

}  // namespace nocmap
