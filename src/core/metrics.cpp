#include "core/metrics.h"

#include <algorithm>

#include "util/stats.h"

namespace nocmap {

double application_apl(const ObmProblem& problem, const Mapping& mapping,
                       std::size_t app_index) {
  const Workload& wl = problem.workload();
  const TileLatencyModel& model = problem.model();
  double weighted = 0.0;
  double volume = 0.0;
  for (std::size_t j = wl.first_thread(app_index);
       j < wl.last_thread(app_index); ++j) {
    const ThreadProfile& t = wl.thread(j);
    const TileId k = mapping.tile_of(j);
    weighted += t.cache_rate * model.tc(k) + t.memory_rate * model.tm(k);
    volume += t.total_rate();
  }
  return volume > 0.0 ? weighted / volume : 0.0;
}

LatencyReport evaluate(const ObmProblem& problem, const Mapping& mapping) {
  NOCMAP_REQUIRE(mapping.is_valid_permutation(problem.num_threads()),
                 "mapping must be a valid permutation");
  const Workload& wl = problem.workload();
  const TileLatencyModel& model = problem.model();

  LatencyReport report;
  report.apl.resize(wl.num_applications(), 0.0);

  std::vector<double> active_apls;
  double total_weighted = 0.0;
  double total_volume = 0.0;

  for (std::size_t i = 0; i < wl.num_applications(); ++i) {
    double weighted = 0.0;
    double volume = 0.0;
    for (std::size_t j = wl.first_thread(i); j < wl.last_thread(i); ++j) {
      const ThreadProfile& t = wl.thread(j);
      const TileId k = mapping.tile_of(j);
      weighted += t.cache_rate * model.tc(k) + t.memory_rate * model.tm(k);
      volume += t.total_rate();
    }
    total_weighted += weighted;
    total_volume += volume;
    if (volume > 0.0) {
      report.apl[i] = weighted / volume;
      active_apls.push_back(report.apl[i]);
      report.objective =
          std::max(report.objective, problem.app_weight(i) * report.apl[i]);
    }
  }

  if (!active_apls.empty()) {
    report.max_apl = max_value(active_apls);
    report.dev_apl = stddev_population(active_apls);
    report.min_to_max = min_to_max_ratio(active_apls);
  }
  report.g_apl = total_volume > 0.0 ? total_weighted / total_volume : 0.0;
  return report;
}

}  // namespace nocmap
