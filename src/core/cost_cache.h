// Memoized thread×tile placement-cost matrix (paper eq. 13).
//
// Every mapping algorithm ultimately scores a placement through the same
// scalar: cost(j, k) = c_j·TC(k) + m_j·TM(k). SAM builds an n×n slice of it
// per Hungarian call, the Global mapper builds the full N×N matrix, and the
// incremental evaluator recomputes entries on every move — historically each
// from the raw model. ThreadCostCache computes the full matrix once per
// problem (O(N²) fused multiply-adds, ~50 µs at N = 256) and shares it:
// SAM's assignment solves, the Global mapper, and the evaluator all read the
// same immutable table. Immutability after construction also makes it safe
// to read concurrently from the SSS window-evaluation workers.
//
// The assignment kernel reads the table in place through `sam_view` (a
// strided CostView gathering the application's tile columns), so no per-call
// matrix is materialized; `sam_matrix` remains for callers that want an
// owning copy. Per-thread request rates are cached with a prefix-sum so any
// contiguous range's traffic volume (the APL denominator) is O(1).
//
// Batch layout: rows are stored with a stride padded up to a multiple of
// kRowBlock doubles (one cache line), so every row starts on its own block
// and a batch-evaluation pass (core/batch_eval.h) can stream thread rows
// j = 0..N-1 exactly once while scoring K transposed candidates against each
// row — the candidates, not the cost table, are the transposed operand. The
// padding cells are zero-filled and never addressed by cost()/row().
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "assign/hungarian.h"
#include "latency/model.h"
#include "workload/workload.h"

namespace nocmap {

namespace check_hooks {
/// Mutation-canary fault injection (test-only; DESIGN.md §10). When enabled,
/// every subsequently constructed ThreadCostCache copies thread 0's cost for
/// tile k from tile k+1 — a deliberate off-by-one in the cost copy. The
/// fuzzer's canary self-test turns this on to prove the differential oracles
/// detect and shrink a seeded bug; nothing outside tests may enable it. The
/// probe is a single relaxed atomic load per cache construction, so the
/// production path is unaffected.
void set_cost_cache_off_by_one(bool enabled);
bool cost_cache_off_by_one();
}  // namespace check_hooks

class ThreadCostCache {
 public:
  /// Row padding quantum (doubles per cache line); see the header comment.
  static constexpr std::size_t kRowBlock = 8;

  /// Builds the dense num_threads × num_tiles matrix eagerly.
  ThreadCostCache(const Workload& workload, const TileLatencyModel& model);

  std::size_t num_threads() const { return num_threads_; }
  std::size_t num_tiles() const { return num_tiles_; }

  /// Distance in doubles between consecutive rows (num_tiles padded up to a
  /// multiple of kRowBlock).
  std::size_t row_stride() const { return row_stride_; }

  /// cost(j, k) = c_j·TC(k) + m_j·TM(k) for global thread j on tile k.
  double cost(std::size_t thread, TileId tile) const {
    return costs_[thread * row_stride_ + tile];
  }

  /// Raw row of the cost table for global thread j (num_tiles live entries;
  /// the next row starts row_stride() doubles later).
  const double* row(std::size_t thread) const {
    NOCMAP_ASSERT(thread < num_threads_);
    return &costs_[thread * row_stride_];
  }

  /// Total request rate (c_j + m_j) of global thread j — the APL
  /// denominator contribution, cached alongside the costs.
  double rate(std::size_t thread) const { return rates_[thread]; }

  /// Σ rate(j) for j in [first, first + count) — O(1) from the prefix sum.
  double rate_sum(std::size_t first, std::size_t count) const {
    NOCMAP_ASSERT(first + count <= num_threads_);
    return rate_prefix_[first + count] - rate_prefix_[first];
  }

  /// Lazy n×n SAM cost view for the contiguous global thread range
  /// [first_thread, first_thread + tiles.size()) against `tiles`: reads the
  /// cache in place, no copy. The cache and the `tiles` storage must
  /// outlive the returned view.
  CostView sam_view(std::size_t first_thread,
                    std::span<const TileId> tiles) const;

  /// Dense owning copy of the same n×n SAM cost block.
  CostMatrix sam_matrix(std::size_t first_thread,
                        std::span<const TileId> tiles) const;

 private:
  std::size_t num_threads_;
  std::size_t num_tiles_;
  std::size_t row_stride_;     // num_tiles_ rounded up to kRowBlock
  std::vector<double> costs_;  // row-major [thread][tile], padded rows
  std::vector<double> rates_;
  std::vector<double> rate_prefix_;  // rate_prefix_[j] = Σ rates_[0..j)
};

}  // namespace nocmap
