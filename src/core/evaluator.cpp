#include "core/evaluator.h"

#include <algorithm>

#include "core/metrics.h"

namespace nocmap {

MappingEvaluator::MappingEvaluator(const ObmProblem& problem, Mapping initial,
                                   const ThreadCostCache& cache)
    : MappingEvaluator(problem, std::move(initial), &cache) {}

MappingEvaluator::MappingEvaluator(const ObmProblem& problem, Mapping initial)
    : MappingEvaluator(problem, std::move(initial), nullptr) {}

MappingEvaluator::MappingEvaluator(const ObmProblem& problem, Mapping initial,
                                   const ThreadCostCache* cache)
    : problem_(&problem), cache_(cache), mapping_(std::move(initial)) {
  NOCMAP_REQUIRE(mapping_.is_valid_permutation(problem.num_threads()),
                 "initial mapping must be a valid permutation");
  NOCMAP_REQUIRE(cache == nullptr ||
                     (cache->num_threads() == problem.num_threads() &&
                      cache->num_tiles() == problem.num_tiles()),
                 "cost cache does not match the problem");
  const Workload& wl = problem.workload();
  const std::size_t num_apps = wl.num_applications();

  tile_to_thread_.assign(problem.num_tiles(), 0);
  for (std::size_t j = 0; j < mapping_.size(); ++j) {
    tile_to_thread_[mapping_.tile_of(j)] = j;
  }

  numerator_.assign(num_apps, 0.0);
  denominator_.assign(num_apps, 0.0);
  for (std::size_t i = 0; i < num_apps; ++i) {
    recompute_app(i);
    for (std::size_t j = wl.first_thread(i); j < wl.last_thread(i); ++j) {
      denominator_[i] += wl.thread(j).total_rate();
    }
    total_denominator_ += denominator_[i];
  }
}

double MappingEvaluator::apl(std::size_t app) const {
  NOCMAP_REQUIRE(app < numerator_.size(), "application index out of range");
  return denominator_[app] > 0.0 ? numerator_[app] / denominator_[app] : 0.0;
}

double MappingEvaluator::max_apl() const {
  double best = 0.0;
  for (std::size_t i = 0; i < numerator_.size(); ++i) {
    if (denominator_[i] > 0.0) {
      best = std::max(best, numerator_[i] / denominator_[i]);
    }
  }
  return best;
}

double MappingEvaluator::objective() const {
  double best = 0.0;
  for (std::size_t i = 0; i < numerator_.size(); ++i) {
    if (denominator_[i] > 0.0) {
      best = std::max(best, problem_->app_weight(i) * numerator_[i] /
                                denominator_[i]);
    }
  }
  return best;
}

double MappingEvaluator::g_apl() const {
  if (total_denominator_ <= 0.0) return 0.0;
  double total_numerator = 0.0;
  for (const double n : numerator_) total_numerator += n;
  return total_numerator / total_denominator_;
}

double MappingEvaluator::thread_cost(std::size_t j, TileId tile) const {
  if (cache_ != nullptr) return cache_->cost(j, tile);
  const ThreadProfile& t = problem_->workload().thread(j);
  const TileLatencyModel& model = problem_->model();
  return t.cache_rate * model.tc(tile) + t.memory_rate * model.tm(tile);
}

void MappingEvaluator::place_thread(std::size_t j, TileId tile) {
  mapping_.thread_to_tile[j] = tile;
  tile_to_thread_[tile] = j;
}

void MappingEvaluator::recompute_app(std::size_t app) {
  const Workload& wl = problem_->workload();
  double sum = 0.0;
  for (std::size_t j = wl.first_thread(app); j < wl.last_thread(app); ++j) {
    sum += thread_cost(j, mapping_.tile_of(j));
  }
  numerator_[app] = sum;
}

void MappingEvaluator::swap_threads(std::size_t j1, std::size_t j2) {
  NOCMAP_REQUIRE(j1 < mapping_.size() && j2 < mapping_.size(),
                 "thread index out of range");
  if (j1 == j2) return;
  const TileId t1 = mapping_.tile_of(j1);
  const TileId t2 = mapping_.tile_of(j2);
  place_thread(j1, t2);
  place_thread(j2, t1);
  const Workload& wl = problem_->workload();
  const std::size_t a1 = wl.application_of(j1);
  const std::size_t a2 = wl.application_of(j2);
  recompute_app(std::min(a1, a2));
  if (a1 != a2) recompute_app(std::max(a1, a2));
}

void MappingEvaluator::apply_group(std::span<const std::size_t> threads,
                                   std::span<const TileId> tiles) {
  NOCMAP_REQUIRE(threads.size() == tiles.size(),
                 "group thread/tile arity mismatch");
#ifndef NDEBUG
  // The tile multiset must equal the tiles the group currently occupies,
  // otherwise the permutation would break.
  std::vector<TileId> held;
  held.reserve(threads.size());
  for (std::size_t j : threads) held.push_back(mapping_.tile_of(j));
  std::vector<TileId> target(tiles.begin(), tiles.end());
  std::sort(held.begin(), held.end());
  std::sort(target.begin(), target.end());
  NOCMAP_ASSERT(held == target);
#endif
  const Workload& wl = problem_->workload();
  // Collect the affected applications, then recompute each once in
  // ascending order (the order is fixed so the result is too).
  group_apps_.clear();
  for (std::size_t idx = 0; idx < threads.size(); ++idx) {
    place_thread(threads[idx], tiles[idx]);
    group_apps_.push_back(wl.application_of(threads[idx]));
  }
  std::sort(group_apps_.begin(), group_apps_.end());
  group_apps_.erase(std::unique(group_apps_.begin(), group_apps_.end()),
                    group_apps_.end());
  for (const std::size_t app : group_apps_) recompute_app(app);
}

double MappingEvaluator::recomputed_max_apl() const {
  return evaluate(*problem_, mapping_).max_apl;
}

}  // namespace nocmap
