#include "core/evaluator.h"

#include <algorithm>

#include "core/metrics.h"

namespace nocmap {

MappingEvaluator::MappingEvaluator(const ObmProblem& problem, Mapping initial)
    : problem_(&problem), mapping_(std::move(initial)) {
  NOCMAP_REQUIRE(mapping_.is_valid_permutation(problem.num_threads()),
                 "initial mapping must be a valid permutation");
  const Workload& wl = problem.workload();
  const std::size_t num_apps = wl.num_applications();

  tile_to_thread_.assign(problem.num_tiles(), 0);
  for (std::size_t j = 0; j < mapping_.size(); ++j) {
    tile_to_thread_[mapping_.tile_of(j)] = j;
  }

  numerator_.assign(num_apps, 0.0);
  denominator_.assign(num_apps, 0.0);
  for (std::size_t i = 0; i < num_apps; ++i) {
    for (std::size_t j = wl.first_thread(i); j < wl.last_thread(i); ++j) {
      numerator_[i] += thread_cost(j, mapping_.tile_of(j));
      denominator_[i] += wl.thread(j).total_rate();
    }
    total_numerator_ += numerator_[i];
    total_denominator_ += denominator_[i];
  }
}

double MappingEvaluator::apl(std::size_t app) const {
  NOCMAP_REQUIRE(app < numerator_.size(), "application index out of range");
  return denominator_[app] > 0.0 ? numerator_[app] / denominator_[app] : 0.0;
}

double MappingEvaluator::max_apl() const {
  double best = 0.0;
  for (std::size_t i = 0; i < numerator_.size(); ++i) {
    if (denominator_[i] > 0.0) {
      best = std::max(best, numerator_[i] / denominator_[i]);
    }
  }
  return best;
}

double MappingEvaluator::objective() const {
  double best = 0.0;
  for (std::size_t i = 0; i < numerator_.size(); ++i) {
    if (denominator_[i] > 0.0) {
      best = std::max(best, problem_->app_weight(i) * numerator_[i] /
                                denominator_[i]);
    }
  }
  return best;
}

double MappingEvaluator::g_apl() const {
  return total_denominator_ > 0.0 ? total_numerator_ / total_denominator_
                                  : 0.0;
}

double MappingEvaluator::thread_cost(std::size_t j, TileId tile) const {
  const ThreadProfile& t = problem_->workload().thread(j);
  const TileLatencyModel& model = problem_->model();
  return t.cache_rate * model.tc(tile) + t.memory_rate * model.tm(tile);
}

void MappingEvaluator::move_thread_unchecked(std::size_t j, TileId tile) {
  const std::size_t app = problem_->workload().application_of(j);
  const TileId old_tile = mapping_.thread_to_tile[j];
  const double delta = thread_cost(j, tile) - thread_cost(j, old_tile);
  numerator_[app] += delta;
  total_numerator_ += delta;
  mapping_.thread_to_tile[j] = tile;
  tile_to_thread_[tile] = j;
}

void MappingEvaluator::swap_threads(std::size_t j1, std::size_t j2) {
  NOCMAP_REQUIRE(j1 < mapping_.size() && j2 < mapping_.size(),
                 "thread index out of range");
  if (j1 == j2) return;
  const TileId t1 = mapping_.tile_of(j1);
  const TileId t2 = mapping_.tile_of(j2);
  move_thread_unchecked(j1, t2);
  move_thread_unchecked(j2, t1);
}

void MappingEvaluator::apply_group(std::span<const std::size_t> threads,
                                   std::span<const TileId> tiles) {
  NOCMAP_REQUIRE(threads.size() == tiles.size(),
                 "group thread/tile arity mismatch");
#ifndef NDEBUG
  // The tile multiset must equal the tiles the group currently occupies,
  // otherwise the permutation would break.
  std::vector<TileId> held;
  held.reserve(threads.size());
  for (std::size_t j : threads) held.push_back(mapping_.tile_of(j));
  std::vector<TileId> target(tiles.begin(), tiles.end());
  std::sort(held.begin(), held.end());
  std::sort(target.begin(), target.end());
  NOCMAP_ASSERT(held == target);
#endif
  for (std::size_t idx = 0; idx < threads.size(); ++idx) {
    move_thread_unchecked(threads[idx], tiles[idx]);
  }
}

double MappingEvaluator::recomputed_max_apl() const {
  return evaluate(*problem_, mapping_).max_apl;
}

}  // namespace nocmap
