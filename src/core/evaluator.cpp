#include "core/evaluator.h"

#include <algorithm>

#include "core/metrics.h"

namespace nocmap {

MappingEvaluator::MappingEvaluator(const ObmProblem& problem, Mapping initial,
                                   const ThreadCostCache& cache)
    : MappingEvaluator(problem, std::move(initial), &cache) {}

MappingEvaluator::MappingEvaluator(const ObmProblem& problem, Mapping initial)
    : MappingEvaluator(problem, std::move(initial), nullptr) {}

MappingEvaluator::MappingEvaluator(const ObmProblem& problem, Mapping initial,
                                   const ThreadCostCache* cache)
    : problem_(&problem), cache_(cache), mapping_(std::move(initial)) {
  NOCMAP_REQUIRE(mapping_.is_valid_permutation(problem.num_threads()),
                 "initial mapping must be a valid permutation");
  NOCMAP_REQUIRE(cache == nullptr ||
                     (cache->num_threads() == problem.num_threads() &&
                      cache->num_tiles() == problem.num_tiles()),
                 "cost cache does not match the problem");
  const Workload& wl = problem.workload();
  const std::size_t num_apps = wl.num_applications();

  tile_to_thread_.assign(problem.num_tiles(), 0);
  for (std::size_t j = 0; j < mapping_.size(); ++j) {
    tile_to_thread_[mapping_.tile_of(j)] = j;
  }
  // Memoized thread -> application lookup: the annealer's prescore resolves
  // two applications per proposed swap, and the out-of-line
  // Workload::application_of call is measurable at that rate.
  app_of_.resize(mapping_.size());
  for (std::size_t j = 0; j < mapping_.size(); ++j) {
    app_of_[j] = static_cast<std::uint32_t>(wl.application_of(j));
  }

  numerator_.assign(num_apps, 0.0);
  denominator_.assign(num_apps, 0.0);
  for (std::size_t i = 0; i < num_apps; ++i) {
    recompute_app(i);
    for (std::size_t j = wl.first_thread(i); j < wl.last_thread(i); ++j) {
      denominator_[i] += wl.thread(j).total_rate();
    }
    total_denominator_ += denominator_[i];
  }
}

double MappingEvaluator::apl(std::size_t app) const {
  NOCMAP_REQUIRE(app < numerator_.size(), "application index out of range");
  return denominator_[app] > 0.0 ? numerator_[app] / denominator_[app] : 0.0;
}

double MappingEvaluator::max_apl() const {
  double best = 0.0;
  for (std::size_t i = 0; i < numerator_.size(); ++i) {
    if (denominator_[i] > 0.0) {
      best = std::max(best, numerator_[i] / denominator_[i]);
    }
  }
  return best;
}

double MappingEvaluator::objective() const {
  double best = 0.0;
  for (std::size_t i = 0; i < numerator_.size(); ++i) {
    if (denominator_[i] > 0.0) {
      best = std::max(best, problem_->app_weight(i) * numerator_[i] /
                                denominator_[i]);
    }
  }
  return best;
}

double MappingEvaluator::g_apl() const {
  if (total_denominator_ <= 0.0) return 0.0;
  double total_numerator = 0.0;
  for (const double n : numerator_) total_numerator += n;
  return total_numerator / total_denominator_;
}

double MappingEvaluator::thread_cost(std::size_t j, TileId tile) const {
  if (cache_ != nullptr) return cache_->cost(j, tile);
  const ThreadProfile& t = problem_->workload().thread(j);
  const TileLatencyModel& model = problem_->model();
  return t.cache_rate * model.tc(tile) + t.memory_rate * model.tm(tile);
}

void MappingEvaluator::place_thread(std::size_t j, TileId tile) {
  mapping_.thread_to_tile[j] = tile;
  tile_to_thread_[tile] = j;
}

void MappingEvaluator::recompute_app(std::size_t app) {
  const Workload& wl = problem_->workload();
  double sum = 0.0;
  for (std::size_t j = wl.first_thread(app); j < wl.last_thread(app); ++j) {
    sum += thread_cost(j, mapping_.tile_of(j));
  }
  numerator_[app] = sum;
}

void MappingEvaluator::swap_threads(std::size_t j1, std::size_t j2) {
  NOCMAP_REQUIRE(j1 < mapping_.size() && j2 < mapping_.size(),
                 "thread index out of range");
  if (j1 == j2) return;
  const TileId t1 = mapping_.tile_of(j1);
  const TileId t2 = mapping_.tile_of(j2);
  place_thread(j1, t2);
  place_thread(j2, t1);
  const Workload& wl = problem_->workload();
  const std::size_t a1 = wl.application_of(j1);
  const std::size_t a2 = wl.application_of(j2);
  recompute_app(std::min(a1, a2));
  if (a1 != a2) recompute_app(std::max(a1, a2));
}

void MappingEvaluator::apply_group(std::span<const std::size_t> threads,
                                   std::span<const TileId> tiles) {
  NOCMAP_REQUIRE(threads.size() == tiles.size(),
                 "group thread/tile arity mismatch");
#ifndef NDEBUG
  // The tile multiset must equal the tiles the group currently occupies,
  // otherwise the permutation would break.
  std::vector<TileId> held;
  held.reserve(threads.size());
  for (std::size_t j : threads) held.push_back(mapping_.tile_of(j));
  std::vector<TileId> target(tiles.begin(), tiles.end());
  std::sort(held.begin(), held.end());
  std::sort(target.begin(), target.end());
  NOCMAP_ASSERT(held == target);
#endif
  const Workload& wl = problem_->workload();
  // Collect the affected applications, then recompute each once in
  // ascending order (the order is fixed so the result is too).
  group_apps_.clear();
  for (std::size_t idx = 0; idx < threads.size(); ++idx) {
    place_thread(threads[idx], tiles[idx]);
    group_apps_.push_back(wl.application_of(threads[idx]));
  }
  std::sort(group_apps_.begin(), group_apps_.end());
  group_apps_.erase(std::unique(group_apps_.begin(), group_apps_.end()),
                    group_apps_.end());
  for (const std::size_t app : group_apps_) recompute_app(app);
}

void MappingEvaluator::score_group_candidates(
    std::span<const std::size_t> threads, const TileId* tiles,
    std::size_t count, std::span<double> out) const {
  NOCMAP_REQUIRE(out.size() >= count, "score output span too small");
  const Workload& wl = problem_->workload();
  const std::size_t num_apps = numerator_.size();

  // Affected applications, ascending and deduplicated — the same set
  // apply_group would recompute.
  std::vector<std::size_t> apps;
  apps.reserve(threads.size());
  for (const std::size_t j : threads) apps.push_back(wl.application_of(j));
  std::sort(apps.begin(), apps.end());
  apps.erase(std::unique(apps.begin(), apps.end()), apps.end());

  // The untouched applications contribute the same term to every candidate;
  // max over applications is order-independent, so fold them once.
  double base = 0.0;
  {
    auto it = apps.begin();
    for (std::size_t i = 0; i < num_apps; ++i) {
      if (it != apps.end() && *it == i) {
        ++it;
        continue;
      }
      if (denominator_[i] > 0.0) {
        base = std::max(base, problem_->app_weight(i) * numerator_[i] /
                                  denominator_[i]);
      }
    }
  }

  constexpr std::size_t kLanes = 64;
  double worst[kLanes];
  double acc[kLanes];
  for (std::size_t b0 = 0; b0 < count; b0 += kLanes) {
    const std::size_t lanes = std::min(kLanes, count - b0);
    for (std::size_t b = 0; b < lanes; ++b) worst[b] = base;
    for (const std::size_t app : apps) {
      for (std::size_t b = 0; b < lanes; ++b) acc[b] = 0.0;
      for (std::size_t j = wl.first_thread(app); j < wl.last_thread(app);
           ++j) {
        // Group membership resolved once per thread, shared by all lanes.
        std::size_t x = threads.size();
        for (std::size_t xi = 0; xi < threads.size(); ++xi) {
          if (threads[xi] == j) {
            x = xi;
            break;
          }
        }
        if (x == threads.size()) {
          const double c = thread_cost(j, mapping_.tile_of(j));
          for (std::size_t b = 0; b < lanes; ++b) acc[b] += c;
        } else if (cache_ != nullptr) {
          const double* row = cache_->row(j);
          const TileId* cand = tiles + x * count + b0;
          for (std::size_t b = 0; b < lanes; ++b) acc[b] += row[cand[b]];
        } else {
          const TileId* cand = tiles + x * count + b0;
          for (std::size_t b = 0; b < lanes; ++b) {
            acc[b] += thread_cost(j, cand[b]);
          }
        }
      }
      if (denominator_[app] > 0.0) {
        const double weight = problem_->app_weight(app);
        const double den = denominator_[app];
        for (std::size_t b = 0; b < lanes; ++b) {
          const double apl = weight * acc[b] / den;
          if (apl > worst[b]) worst[b] = apl;
        }
      }
    }
    for (std::size_t b = 0; b < lanes; ++b) out[b0 + b] = worst[b];
  }
}

void MappingEvaluator::score_swap_candidates(
    std::span<const SwapProposal> proposals, std::span<double> out) {
  NOCMAP_REQUIRE(out.size() >= proposals.size(),
                 "score output span too small");
  const std::size_t num_apps = numerator_.size();
  // Weighted APL of every application in the current state, refreshed once
  // per block (the state is frozen while a block is prescored).
  swap_wapl_.resize(num_apps);
  for (std::size_t i = 0; i < num_apps; ++i) {
    swap_wapl_[i] = denominator_[i] > 0.0
                        ? problem_->app_weight(i) * numerator_[i] /
                              denominator_[i]
                        : 0.0;
  }
  for (std::size_t p = 0; p < proposals.size(); ++p) {
    const std::size_t j1 = proposals[p].j1;
    const std::size_t j2 = proposals[p].j2;
    NOCMAP_ASSERT(j1 < mapping_.size() && j2 < mapping_.size());
    const std::size_t a1 = app_of_[j1];
    const std::size_t a2 = app_of_[j2];
    const TileId t1 = mapping_.tile_of(j1);
    const TileId t2 = mapping_.tile_of(j2);
    double v1 = swap_wapl_[a1];
    double v2 = swap_wapl_[a2];
    if (j1 != j2) {
      const double c11 = thread_cost(j1, t1);
      const double c12 = thread_cost(j1, t2);
      const double c22 = thread_cost(j2, t2);
      const double c21 = thread_cost(j2, t1);
      if (a1 == a2) {
        if (denominator_[a1] > 0.0) {
          const double num = numerator_[a1] - c11 - c22 + c12 + c21;
          v1 = v2 = problem_->app_weight(a1) * num / denominator_[a1];
        }
      } else {
        if (denominator_[a1] > 0.0) {
          const double num = numerator_[a1] - c11 + c12;
          v1 = problem_->app_weight(a1) * num / denominator_[a1];
        }
        if (denominator_[a2] > 0.0) {
          const double num = numerator_[a2] - c22 + c21;
          v2 = problem_->app_weight(a2) * num / denominator_[a2];
        }
      }
    }
    double worst = 0.0;
    for (std::size_t a = 0; a < num_apps; ++a) {
      const double v = a == a1 ? v1 : a == a2 ? v2 : swap_wapl_[a];
      if (v > worst) worst = v;
    }
    out[p] = worst;
  }
}

double MappingEvaluator::recomputed_max_apl() const {
  return evaluate(*problem_, mapping_).max_apl;
}

}  // namespace nocmap
