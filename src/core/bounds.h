// Lower bounds on the OBM objective (max-APL).
//
// Used to (a) prune the exact branch-and-bound solver and (b) report the
// optimality gap of heuristics. Two bounds compose:
//
//  * Volume bound: max-APL >= g-APL_min, the optimal global APL from one
//    Hungarian solve — the max of per-application averages cannot be below
//    the best achievable volume-weighted overall average.
//  * Per-application bound: for each application i, APL_i is minimized when
//    the application can pick its |a_i| favourite tiles from the whole chip
//    without competition; max-APL >= max_i of those relaxed minima. The
//    relaxed minimum is itself a rectangular assignment, solved by padding
//    the cost matrix with zero-cost dummy rows.
#pragma once

#include "core/problem.h"

namespace nocmap {

/// Optimal (unconstrained-by-balance) g-APL: the Global baseline's value.
double optimal_gapl(const ObmProblem& problem);

/// Relaxed minimum APL of application `app` if it alone chose its tiles.
double relaxed_min_apl(const ObmProblem& problem, std::size_t app);

/// Combined lower bound on the optimal objective (max-APL, or the weighted
/// variant when the problem carries QoS weights).
double max_apl_lower_bound(const ObmProblem& problem);

}  // namespace nocmap
