// Lower bounds on the OBM objective (max-APL).
//
// Used to (a) prune the exact branch-and-bound solver and (b) report the
// optimality gap of heuristics. Two bounds compose:
//
//  * Volume bound: max-APL >= g-APL_min, the optimal global APL from one
//    assignment solve — the max of per-application averages cannot be below
//    the best achievable volume-weighted overall average.
//  * Per-application bound: for each application i, APL_i is minimized when
//    the application can pick its |a_i| favourite tiles from the whole chip
//    without competition; max-APL >= max_i of those relaxed minima. The
//    relaxed minimum is a rectangular |a_i|×N assignment, solved directly
//    (no dummy-row padding) by the workspace kernel.
//
// Each bound has a convenience overload that builds its own eq.-13 cache,
// and a hot-path overload taking a shared ThreadCostCache plus an
// AssignmentWorkspace. The composite bound reuses one workspace across all
// of its solves so the scratch arrays are allocated once; the rectangular
// per-application relaxations themselves always run cold (carried column
// potentials are unsound when columns may stay unmatched — see
// assign/hungarian.h).
#pragma once

#include "core/cost_cache.h"
#include "core/problem.h"

namespace nocmap {

/// Optimal (unconstrained-by-balance) g-APL: the Global baseline's value.
double optimal_gapl(const ObmProblem& problem);
double optimal_gapl(const ObmProblem& problem, const ThreadCostCache& cache,
                    AssignmentWorkspace& ws);

/// Relaxed minimum APL of application `app` if it alone chose its tiles.
double relaxed_min_apl(const ObmProblem& problem, std::size_t app);
double relaxed_min_apl(const ObmProblem& problem, std::size_t app,
                       const ThreadCostCache& cache, AssignmentWorkspace& ws,
                       bool warm = false);

/// Combined lower bound on the optimal objective (max-APL, or the weighted
/// variant when the problem carries QoS weights).
double max_apl_lower_bound(const ObmProblem& problem);
double max_apl_lower_bound(const ObmProblem& problem,
                           const ThreadCostCache& cache,
                           AssignmentWorkspace& ws);

}  // namespace nocmap
