// The Global baseline (paper Sections II.D, V.A algorithm 1): minimize the
// overall g-APL of all threads, ignoring per-application balance.
//
// Because g-APL's denominator (total communication volume) is mapping-
// independent, minimizing g-APL is exactly minimizing
// Σ_j c_j·TC(π(j)) + m_j·TM(π(j)) — one N×N linear assignment. We therefore
// solve Global *optimally* with the Hungarian method, making it the
// strongest form of the baseline the paper argues against.
#pragma once

#include "core/mapper.h"

namespace nocmap {

class GlobalMapper final : public Mapper {
 public:
  std::string name() const override { return "Global"; }
  Mapping map(const ObmProblem& problem) override;
};

}  // namespace nocmap
