// Cluster-based simulated annealing (paper reference [17], Lu/Xia/Jantsch
// DDECS'08) — the other general search baseline the paper's Section IV
// names alongside plain SA and genetic search.
//
// Two phases:
//   1. Coarse: partition the mesh into square tile clusters (default 2×2)
//     and anneal at cluster granularity — a move swaps the thread groups
//     of two clusters wholesale. This explores the layout space in far
//     fewer, larger steps than thread-level SA.
//   2. Fine: standard thread-swap annealing from the coarse solution.
//
// Objective: the OBM max-APL (weighted when the problem has QoS weights),
// evaluated incrementally.
#pragma once

#include <cstdint>

#include "core/mapper.h"

namespace nocmap {

struct ClusterSaParams {
  std::uint32_t cluster_side = 2;      ///< tiles per cluster edge
  std::size_t coarse_iterations = 2000;
  std::size_t fine_iterations = 20000;
  double initial_temp_fraction = 0.05;
  double final_temp_fraction = 1e-4;
  std::uint64_t seed = 1;
};

class ClusterSaMapper final : public Mapper {
 public:
  explicit ClusterSaMapper(ClusterSaParams params = {}) : params_(params) {}

  std::string name() const override { return "CSA"; }
  Mapping map(const ObmProblem& problem) override;

  const ClusterSaParams& params() const { return params_; }

 private:
  ClusterSaParams params_;
};

}  // namespace nocmap
