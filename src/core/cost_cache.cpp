#include "core/cost_cache.h"

#include <atomic>

#include "util/error.h"

namespace nocmap {

static_assert(sizeof(TileId) == sizeof(std::uint32_t),
              "CostView column gather assumes 32-bit tile ids");

namespace check_hooks {

namespace {
std::atomic<bool> g_cost_off_by_one{false};
}  // namespace

void set_cost_cache_off_by_one(bool enabled) {
  g_cost_off_by_one.store(enabled, std::memory_order_relaxed);
}

bool cost_cache_off_by_one() {
  return g_cost_off_by_one.load(std::memory_order_relaxed);
}

}  // namespace check_hooks

ThreadCostCache::ThreadCostCache(const Workload& workload,
                                 const TileLatencyModel& model)
    : num_threads_(workload.num_threads()),
      num_tiles_(model.mesh().num_tiles()),
      row_stride_((model.mesh().num_tiles() + kRowBlock - 1) / kRowBlock *
                  kRowBlock) {
  costs_.assign(num_threads_ * row_stride_, 0.0);
  rates_.resize(num_threads_);
  rate_prefix_.resize(num_threads_ + 1);
  rate_prefix_[0] = 0.0;
  for (std::size_t j = 0; j < num_threads_; ++j) {
    const ThreadProfile& t = workload.thread(j);
    rates_[j] = t.total_rate();
    rate_prefix_[j + 1] = rate_prefix_[j] + rates_[j];
    double* row = &costs_[j * row_stride_];
    for (std::size_t k = 0; k < num_tiles_; ++k) {
      const auto tile = static_cast<TileId>(k);
      row[k] = t.cache_rate * model.tc(tile) + t.memory_rate * model.tm(tile);
    }
  }
  if (check_hooks::cost_cache_off_by_one() && num_threads_ > 0 &&
      num_tiles_ > 1) {
    for (std::size_t k = 0; k + 1 < num_tiles_; ++k) {
      costs_[k] = costs_[k + 1];
    }
  }
}

CostView ThreadCostCache::sam_view(std::size_t first_thread,
                                   std::span<const TileId> tiles) const {
  const std::size_t n = tiles.size();
  NOCMAP_REQUIRE(first_thread + n <= num_threads_,
                 "SAM thread range out of cache bounds");
  return CostView(row(first_thread), n, n, row_stride_, tiles.data());
}

CostMatrix ThreadCostCache::sam_matrix(std::size_t first_thread,
                                       std::span<const TileId> tiles) const {
  const std::size_t n = tiles.size();
  NOCMAP_REQUIRE(first_thread + n <= num_threads_,
                 "SAM thread range out of cache bounds");
  CostMatrix matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      matrix.at(j, k) = cost(first_thread + j, tiles[k]);
    }
  }
  return matrix;
}

}  // namespace nocmap
