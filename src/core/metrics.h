// Latency metrics of the paper's evaluation (Sections II.D and III.A).
//
//   APL_i   — average packet latency of application i (eq. 5): the rate-
//             weighted mean of per-thread latencies under a mapping.
//   max-APL — the OBM objective (eq. 6/7): max over applications.
//   dev-APL — population standard deviation of the applications' APLs;
//             rejected as an objective (Fig. 5 pathology) but reported as a
//             balance indicator (Table 4).
//   g-APL   — global APL over all packets: total weighted latency divided by
//             total communication volume (Section II.D); the objective of
//             the Global baseline.
//
// Applications with zero total rate (e.g. pad threads) contribute APL 0 and
// are excluded from max/dev/g aggregation, mirroring that they inject no
// packets.
#pragma once

#include <vector>

#include "core/problem.h"

namespace nocmap {

/// Full metric bundle for one (problem, mapping) pair.
struct LatencyReport {
  std::vector<double> apl;  ///< per-application APL, paper eq. 5
  double max_apl = 0.0;     ///< eq. 6
  double dev_apl = 0.0;     ///< population stddev of APLs
  double g_apl = 0.0;       ///< global APL
  double min_to_max = 1.0;  ///< min/max APL ratio (Section III.A metric)
  /// The optimization objective: max_i w_i·APL_i. Equals max_apl for the
  /// unweighted (paper) problem; differs only under QoS weights.
  double objective = 0.0;
};

/// APL of application i under `mapping` (eq. 5).
double application_apl(const ObmProblem& problem, const Mapping& mapping,
                       std::size_t app_index);

/// Evaluates every metric for the mapping. Requires a valid permutation.
LatencyReport evaluate(const ObmProblem& problem, const Mapping& mapping);

}  // namespace nocmap
