#include "core/genetic_mapper.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/cost_cache.h"
#include "core/metrics.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace nocmap {

namespace {

// Generation-throughput metrics (docs/metrics-schema.md). Evaluations are
// summed locally across the run and published once, off the breeding loop.
const obs::Timer t_map("ga.map");
const obs::Counter c_generations("ga.generations");
const obs::Counter c_evaluations("ga.evaluations");

using Genome = std::vector<TileId>;

double fitness(const ObmProblem& problem, const ThreadCostCache& cache,
               const Genome& genome) {
  const Workload& wl = problem.workload();
  double worst = 0.0;
  for (std::size_t i = 0; i < wl.num_applications(); ++i) {
    double weighted = 0.0;
    double volume = 0.0;
    for (std::size_t j = wl.first_thread(i); j < wl.last_thread(i); ++j) {
      weighted += cache.cost(j, genome[j]);
      volume += cache.rate(j);
    }
    if (volume > 0.0) {
      worst = std::max(worst, problem.app_weight(i) * weighted / volume);
    }
  }
  return worst;
}

/// Partially mapped crossover: child inherits a random segment from parent
/// a and fills the rest from parent b via the PMX mapping, preserving
/// permutation validity. Writes into caller-owned storage (`child` and the
/// `position_of` scratch) so the generation loop performs no allocations;
/// the two segment-bound draws match the old allocating version exactly.
void pmx_into(const Genome& a, const Genome& b, Rng& rng, Genome& child,
              std::vector<TileId>& position_of) {
  const std::size_t n = a.size();
  std::size_t lo = rng.uniform_u32(static_cast<std::uint32_t>(n));
  std::size_t hi = rng.uniform_u32(static_cast<std::uint32_t>(n));
  if (lo > hi) std::swap(lo, hi);

  constexpr TileId kUnset = std::numeric_limits<TileId>::max();
  child.resize(n);
  position_of.assign(n, static_cast<TileId>(kUnset));
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    position_of[a[i]] = static_cast<TileId>(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= lo && i <= hi) continue;
    TileId candidate = b[i];
    // Follow the mapping chain until the candidate is not in the segment.
    while (position_of[candidate] != static_cast<TileId>(kUnset)) {
      candidate = b[position_of[candidate]];
    }
    child[i] = candidate;
    position_of[candidate] = static_cast<TileId>(i);
  }
}

}  // namespace

Mapping GeneticMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(params_.population >= 2, "population must be >= 2");
  NOCMAP_REQUIRE(params_.elites < params_.population,
                 "elites must be < population");
  NOCMAP_REQUIRE(params_.tournament >= 1, "tournament must be >= 1");

  const obs::ScopedTimer map_scope(t_map);
  const std::size_t n = problem.num_threads();
  Rng rng(params_.seed);
  const ThreadCostCache cache(problem.workload(), problem.model());
  ParallelTrialRunner runner(params_.parallel);

  struct Individual {
    Genome genome;
    double fitness = 0.0;
  };
  // Two persistent generations, swapped each round: parents are read from
  // `population`, offspring written into `next`, and every genome buffer is
  // reused for the whole run.
  std::vector<Individual> population(params_.population);
  std::vector<Individual> next(params_.population);
  for (auto& ind : population) {
    // iota + shuffle in the genome's own storage draws exactly what
    // random_permutation drew, keeping seeds compatible.
    ind.genome.resize(n);
    std::iota(ind.genome.begin(), ind.genome.end(), TileId{0});
    rng.shuffle(ind.genome);
  }
  // Fitness is a pure function of the genome, so evaluations fan out; the
  // breeding RNG stream above never depends on them mid-generation.
  runner.for_each(population.size(), [&](std::size_t i) {
    population[i].fitness = fitness(problem, cache, population[i].genome);
  });

  auto by_fitness = [](const Individual& x, const Individual& y) {
    return x.fitness < y.fitness;
  };

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (std::size_t t = 0; t < params_.tournament; ++t) {
      const auto idx = rng.uniform_u32(
          static_cast<std::uint32_t>(population.size()));
      if (best == nullptr || population[idx].fitness < best->fitness) {
        best = &population[idx];
      }
    }
    return *best;
  };

  std::uint64_t evaluations = population.size();  // initial fitness fan-out
  std::vector<TileId> pmx_scratch;
  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    std::sort(population.begin(), population.end(), by_fitness);
    for (std::size_t e = 0; e < params_.elites; ++e) {
      next[e] = population[e];
    }
    for (std::size_t k = params_.elites; k < population.size(); ++k) {
      const Individual& pa = tournament_pick();
      const Individual& pb = tournament_pick();
      Individual& child = next[k];
      if (rng.bernoulli(params_.crossover_rate)) {
        pmx_into(pa.genome, pb.genome, rng, child.genome, pmx_scratch);
      } else {
        child.genome = pa.genome;
      }
      if (rng.bernoulli(params_.mutation_rate)) {
        const auto x = rng.uniform_u32(static_cast<std::uint32_t>(n));
        const auto y = rng.uniform_u32(static_cast<std::uint32_t>(n));
        std::swap(child.genome[x], child.genome[y]);
      }
    }
    // Offspring fitness fans out (elites keep theirs from last generation).
    runner.for_each(next.size() - params_.elites, [&](std::size_t i) {
      Individual& ind = next[params_.elites + i];
      ind.fitness = fitness(problem, cache, ind.genome);
    });
    evaluations += next.size() - params_.elites;
    std::swap(population, next);
  }
  c_generations.add(params_.generations);
  c_evaluations.add(evaluations);

  const auto best =
      std::min_element(population.begin(), population.end(), by_fitness);
  Mapping mapping;
  mapping.thread_to_tile = best->genome;
  return mapping;
}

}  // namespace nocmap
