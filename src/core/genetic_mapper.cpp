#include "core/genetic_mapper.h"

#include <algorithm>
#include <limits>

#include "core/cost_cache.h"
#include "core/metrics.h"
#include "util/rng.h"

namespace nocmap {

namespace {

using Genome = std::vector<TileId>;

double fitness(const ObmProblem& problem, const ThreadCostCache& cache,
               const Genome& genome) {
  const Workload& wl = problem.workload();
  double worst = 0.0;
  for (std::size_t i = 0; i < wl.num_applications(); ++i) {
    double weighted = 0.0;
    double volume = 0.0;
    for (std::size_t j = wl.first_thread(i); j < wl.last_thread(i); ++j) {
      weighted += cache.cost(j, genome[j]);
      volume += cache.rate(j);
    }
    if (volume > 0.0) {
      worst = std::max(worst, problem.app_weight(i) * weighted / volume);
    }
  }
  return worst;
}

/// Partially mapped crossover: child inherits a random segment from parent
/// a and fills the rest from parent b via the PMX mapping, preserving
/// permutation validity.
Genome pmx(const Genome& a, const Genome& b, Rng& rng) {
  const std::size_t n = a.size();
  std::size_t lo = rng.uniform_u32(static_cast<std::uint32_t>(n));
  std::size_t hi = rng.uniform_u32(static_cast<std::uint32_t>(n));
  if (lo > hi) std::swap(lo, hi);

  constexpr TileId kUnset = std::numeric_limits<TileId>::max();
  Genome child(n, kUnset);
  std::vector<TileId> position_of(n, static_cast<TileId>(kUnset));
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    position_of[a[i]] = static_cast<TileId>(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (i >= lo && i <= hi) continue;
    TileId candidate = b[i];
    // Follow the mapping chain until the candidate is not in the segment.
    while (position_of[candidate] != static_cast<TileId>(kUnset)) {
      candidate = b[position_of[candidate]];
    }
    child[i] = candidate;
    position_of[candidate] = static_cast<TileId>(i);
  }
  return child;
}

}  // namespace

Mapping GeneticMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(params_.population >= 2, "population must be >= 2");
  NOCMAP_REQUIRE(params_.elites < params_.population,
                 "elites must be < population");
  NOCMAP_REQUIRE(params_.tournament >= 1, "tournament must be >= 1");

  const std::size_t n = problem.num_threads();
  Rng rng(params_.seed);
  const ThreadCostCache cache(problem.workload(), problem.model());
  ParallelTrialRunner runner(params_.parallel);

  struct Individual {
    Genome genome;
    double fitness = 0.0;
  };
  std::vector<Individual> population(params_.population);
  for (auto& ind : population) {
    ind.genome.reserve(n);
    for (std::size_t v : random_permutation(n, rng)) {
      ind.genome.push_back(static_cast<TileId>(v));
    }
  }
  // Fitness is a pure function of the genome, so evaluations fan out; the
  // breeding RNG stream above never depends on them mid-generation.
  runner.for_each(population.size(), [&](std::size_t i) {
    population[i].fitness = fitness(problem, cache, population[i].genome);
  });

  auto by_fitness = [](const Individual& x, const Individual& y) {
    return x.fitness < y.fitness;
  };

  auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (std::size_t t = 0; t < params_.tournament; ++t) {
      const auto idx = rng.uniform_u32(
          static_cast<std::uint32_t>(population.size()));
      if (best == nullptr || population[idx].fitness < best->fitness) {
        best = &population[idx];
      }
    }
    return *best;
  };

  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    std::sort(population.begin(), population.end(), by_fitness);
    std::vector<Individual> next;
    next.reserve(population.size());
    for (std::size_t e = 0; e < params_.elites; ++e) {
      next.push_back(population[e]);
    }
    while (next.size() < population.size()) {
      const Individual& pa = tournament_pick();
      const Individual& pb = tournament_pick();
      Individual child;
      child.genome = rng.bernoulli(params_.crossover_rate)
                         ? pmx(pa.genome, pb.genome, rng)
                         : pa.genome;
      if (rng.bernoulli(params_.mutation_rate)) {
        const auto x = rng.uniform_u32(static_cast<std::uint32_t>(n));
        const auto y = rng.uniform_u32(static_cast<std::uint32_t>(n));
        std::swap(child.genome[x], child.genome[y]);
      }
      next.push_back(std::move(child));
    }
    // Offspring fitness fans out (elites keep theirs from last generation).
    runner.for_each(next.size() - params_.elites, [&](std::size_t i) {
      Individual& ind = next[params_.elites + i];
      ind.fitness = fitness(problem, cache, ind.genome);
    });
    population = std::move(next);
  }

  const auto best =
      std::min_element(population.begin(), population.end(), by_fitness);
  Mapping mapping;
  mapping.thread_to_tile = best->genome;
  return mapping;
}

}  // namespace nocmap
