#include "core/genetic_mapper.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/batch_eval.h"
#include "core/cost_cache.h"
#include "core/metrics.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace nocmap {

namespace {

// Generation-throughput metrics (docs/metrics-schema.md). Evaluations are
// summed locally across the run and published once, off the breeding loop.
const obs::Timer t_map("ga.map");
const obs::Counter c_generations("ga.generations");
const obs::Counter c_evaluations("ga.evaluations");

// Genomes scored per batch-evaluator call when the initial population's
// fitness fans out (later generations maintain fitness incrementally via
// the numerator deltas below, so only generation zero rescores). Small
// enough that a default population still splits into independent work
// units for the parallel runner, large enough to amortize the cost-row
// traversal (lane amortization is within ~10% of its asymptote by 32
// lanes); per-genome fitness is independent of the blocking, so the value
// of this constant never changes results.
constexpr std::size_t kFitnessBatch = 32;

/// Two bounded indices from one raw 32-bit draw: the first is the
/// multiply-shift map (x·bound) >> 32, the second reuses the low 32 bits of
/// that product as a fresh variate. Carries the plain multiply-shift modulo
/// bias of order bound/2^32 (< 1e-6 at bench scale) instead of uniform_u32's
/// rejection-free exactness — irrelevant for selection pressure and operator
/// sites, and it halves the serial PCG traffic of the breeding loop.
inline std::pair<std::uint32_t, std::uint32_t> bounded_pair(
    Rng& rng, std::uint32_t bound) {
  const std::uint64_t x = rng();
  const std::uint64_t m1 = x * bound;
  const std::uint64_t m2 =
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(m1)) * bound;
  return {static_cast<std::uint32_t>(m1 >> 32),
          static_cast<std::uint32_t>(m2 >> 32)};
}

/// Per-application view used by the delta-tracked fitness: the same slices
/// the batch evaluator scores (zero-volume applications dropped, volume
/// summed thread-ascending, objective term (weight · numerator) / volume),
/// so a fitness value derived from tracked numerators bit-matches a fresh
/// scalar or batched evaluation of the same genome up to the accumulated
/// delta rounding (bounded far below any selection-relevant difference).
struct GaApp {
  std::uint32_t first = 0;
  std::uint32_t last = 0;
  double weight = 0.0;
  double volume = 0.0;
};

/// Partially mapped crossover in the copy-then-repair formulation: the
/// child starts as a full row copy of parent b, the segment [lo, hi] is
/// overwritten from parent a, and only the values that overwrite displaced
/// (the classic PMX repair set — at most segment-length of them) are
/// relocated by chasing the mapping chain through the parents' inverse
/// permutations. Work is O(n) memcpy plus O(segment) repair instead of an
/// O(n) per-position chase scan, and the maintained inverse rows make both
/// the segment-membership test and the chase single loads. The child's
/// inverse row is produced alongside, so inverses stay pool-resident and
/// never need an O(n) rebuild.
///
/// `child_num` must enter holding parent b's per-application cost
/// numerators; the crossover folds in the exact cost difference at every
/// position where the child diverges from b (segment diffs + relocations),
/// so the child's numerators leave bit-consistent with its genome without
/// an O(n) rescore.
void pmx_into(const TileId* a, const TileId* b, const TileId* inv_a,
              const TileId* inv_b, std::uint32_t lo, std::uint32_t hi,
              std::size_t n, const ThreadCostCache& cache,
              const std::uint32_t* app_slot, TileId* child, TileId* child_inv,
              double* child_num, std::uint32_t* displaced,
              std::uint32_t* diffs) {
  const std::uint32_t span = hi - lo;  // membership: idx - lo <= span

  std::copy_n(b, n, child);  // full base row; segment diffs rewritten below
  std::copy_n(inv_b, n, child_inv);
  // Pass 1 (branchless compaction): find where the parents disagree inside
  // the segment. Every position-level cost below — segment writes, inverse
  // fixups, cost deltas, displacement tests — scales with this diff count,
  // which collapses toward zero as the population converges, so a
  // late-generation crossover is little more than the two row copies above.
  std::uint32_t num_diffs = 0;
  for (std::uint32_t s = lo; s <= hi; ++s) {
    diffs[num_diffs] = s;
    num_diffs += static_cast<std::uint32_t>(a[s] != b[s]);
  }
  // Pass 2: write the diff positions from a, fold their cost deltas, and
  // compact the displaced subset (those s whose b-value does not also live
  // in a's segment, i.e. the classic PMX repair set). Displaced positions
  // are always diffs: a[s] == b[s] places b[s] in a's segment at s itself.
  std::uint32_t num_displaced = 0;
  for (std::uint32_t d = 0; d < num_diffs; ++d) {
    const std::uint32_t s = diffs[d];
    child[s] = a[s];
    child_inv[a[s]] = static_cast<TileId>(s);
    child_num[app_slot[s]] += cache.cost(s, a[s]) - cache.cost(s, b[s]);
    displaced[num_displaced] = s;
    num_displaced += static_cast<std::uint32_t>(
        static_cast<std::uint32_t>(inv_a[b[s]]) - lo > span);
  }
  // Pass 3: relocate each displaced value by following a[j] ->
  // position-in-b until the chain leaves the segment. That final position
  // held a duplicate of a segment value, so the displaced value lands
  // there — and its cost contribution swaps from b's tile to v's.
  for (std::uint32_t d = 0; d < num_displaced; ++d) {
    const std::uint32_t s = displaced[d];
    const TileId v = b[s];
    std::uint32_t j = s;
    do {
      j = inv_b[a[j]];
    } while (j - lo <= span);
    child[j] = v;
    child_inv[v] = static_cast<TileId>(j);
    child_num[app_slot[j]] += cache.cost(j, v) - cache.cost(j, b[j]);
  }
}

}  // namespace

Mapping GeneticMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(params_.population >= 2, "population must be >= 2");
  NOCMAP_REQUIRE(params_.elites < params_.population,
                 "elites must be < population");
  NOCMAP_REQUIRE(params_.tournament >= 1, "tournament must be >= 1");

  const obs::ScopedTimer map_scope(t_map);
  const std::size_t n = problem.num_threads();
  const std::size_t pop_size = params_.population;
  Rng rng(params_.seed);
  const ThreadCostCache cache(problem.workload(), problem.model());
  const BatchEvaluator evaluator(problem, cache);
  ParallelTrialRunner runner(params_.parallel);

  // Per-application slices for the delta-tracked fitness, constructed
  // exactly as the batch evaluator builds its own (thread-ascending volume
  // sums, zero-volume applications dropped), so numerator-derived fitness
  // values bit-match the batched scorer on identical genomes. Threads of
  // dropped applications route their (never-read) contributions to a dummy
  // trailing slot, keeping the per-position delta updates branch-free.
  const Workload& wl = problem.workload();
  std::vector<GaApp> apps;
  apps.reserve(wl.num_applications());
  for (std::size_t i = 0; i < wl.num_applications(); ++i) {
    GaApp app;
    app.first = static_cast<std::uint32_t>(wl.first_thread(i));
    app.last = static_cast<std::uint32_t>(wl.last_thread(i));
    app.weight = problem.app_weight(i);
    double volume = 0.0;
    for (std::uint32_t j = app.first; j < app.last; ++j) {
      volume += cache.rate(j);
    }
    app.volume = volume;
    if (volume > 0.0) apps.push_back(app);
  }
  const std::size_t num_slots = apps.size() + 1;  // + dummy slot
  std::vector<std::uint32_t> app_slot(n,
                                      static_cast<std::uint32_t>(apps.size()));
  for (std::size_t a = 0; a < apps.size(); ++a) {
    for (std::uint32_t j = apps[a].first; j < apps[a].last; ++j) {
      app_slot[j] = static_cast<std::uint32_t>(a);
    }
  }
  auto fitness_from = [&](const double* num) {
    double worst = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const double apl = apps[a].weight * num[a] / apps[a].volume;
      if (apl > worst) worst = apl;
    }
    return worst;
  };

  // Two persistent generations as flat genome pools (row k = genome k),
  // swapped each round: parents are read from `pop`, offspring written
  // into `next`, and every buffer is reused for the whole run. The flat
  // rows feed BatchEvaluator::score_rows directly — fitness for a whole
  // lane block is one contiguous pass over the cost rows instead of one
  // cache-missing walk per individual.
  std::vector<TileId> pop(pop_size * n);
  std::vector<TileId> next(pop_size * n);
  // Inverse-permutation pools (row k = inverse of genome k), maintained
  // incrementally through elitism, crossover and mutation — PMX repair
  // needs both parents' inverses, and keeping them pool-resident makes
  // that a pair of row reads instead of an O(n) rebuild per crossover.
  std::vector<TileId> pop_inv(pop_size * n);
  std::vector<TileId> next_inv(pop_size * n);
  std::vector<double> fit(pop_size);
  std::vector<double> next_fit(pop_size);
  // Per-genome per-application cost numerators, maintained incrementally
  // through elitism, crossover and mutation. A clone is a row copy, a
  // mutation is four cost-cache loads, and a PMX child touches only the
  // positions where it diverges from its base parent — so offspring
  // fitness becomes a handful of scalar ops instead of an O(n) rescore,
  // while staying bit-consistent with the batched scorer up to delta
  // rounding (~1e-11 relative over a full run; asserted in debug builds).
  std::vector<double> pop_num(pop_size * num_slots);
  std::vector<double> next_num(pop_size * num_slots);
  for (std::size_t k = 0; k < pop_size; ++k) {
    const std::span<TileId> row(&pop[k * n], n);
    std::iota(row.begin(), row.end(), TileId{0});
    rng.shuffle(row);
    TileId* inv = &pop_inv[k * n];
    for (std::size_t i = 0; i < n; ++i) inv[row[i]] = static_cast<TileId>(i);
    // Thread-ascending accumulation lands each slot's additions in the
    // same order the batched scorer uses, so fitness_from(num) reproduces
    // score_rows bit-for-bit on the initial population.
    double* num = &pop_num[k * num_slots];
    std::fill_n(num, num_slots, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      num[app_slot[j]] += cache.cost(j, row[j]);
    }
  }
  // Fitness is a pure function of the genome, so evaluations fan out in
  // fixed lane blocks; the breeding RNG stream above never depends on them
  // mid-generation, and per-genome fitness does not depend on the blocking.
  runner.for_each_batch(pop_size, kFitnessBatch,
                        [&](std::size_t lo, std::size_t hi) {
                          evaluator.score_rows(
                              &pop[lo * n], n, hi - lo,
                              std::span<double>(fit.data() + lo, hi - lo));
                        });

  // Tournament over the unsorted population: uniform index draws (paired,
  // two contestants per raw draw), first pick then strictly-better
  // replacements — exactly the classic selection pressure without
  // requiring a sorted array.
  // Contestant comparisons are data-random, so every "keep the better"
  // decision is a conditional select (ternary compiles to cmov), never a
  // branch — at two picks per child the mispredict tax would be real.
  const auto upop = static_cast<std::uint32_t>(pop_size);
  auto tournament_pick = [&]() -> std::size_t {
    std::size_t best;
    std::size_t t;
    if (params_.tournament >= 2) {
      const auto [i1, i2] = bounded_pair(rng, upop);
      best = fit[i2] < fit[i1] ? i2 : i1;
      t = 2;
    } else {
      return bounded_pair(rng, upop).first;
    }
    for (; t + 1 < params_.tournament; t += 2) {
      const auto [i1, i2] = bounded_pair(rng, upop);
      best = fit[i1] < fit[best] ? std::size_t{i1} : best;
      best = fit[i2] < fit[best] ? std::size_t{i2} : best;
    }
    if (t < params_.tournament) {
      const std::size_t i1 = bounded_pair(rng, upop).first;
      best = fit[i1] < fit[best] ? i1 : best;
    }
    return best;
  };

  std::uint64_t evaluations = pop_size;  // initial fitness fan-out
  const std::size_t offspring = pop_size - params_.elites;
  std::vector<std::uint8_t> elite_taken(pop_size);
  std::vector<std::uint32_t> pmx_displaced(n);
  std::vector<std::uint32_t> pmx_diffs(n);
  const auto un = static_cast<std::uint32_t>(n);
  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    // Elites by repeated top-k scan (ties to the lowest index) — the only
    // consumer of a sorted population was this copy and the tournament's
    // rank lookup, so the former O(P log P) sort per generation reduces to
    // O(elites · P) with a deterministic tie-break.
    std::fill(elite_taken.begin(), elite_taken.end(), std::uint8_t{0});
    for (std::size_t e = 0; e < params_.elites; ++e) {
      std::size_t best = ParallelTrialRunner::npos;
      for (std::size_t k = 0; k < pop_size; ++k) {
        if (elite_taken[k]) continue;
        if (best == ParallelTrialRunner::npos || fit[k] < fit[best]) best = k;
      }
      elite_taken[best] = 1;
      std::copy_n(&pop[best * n], n, &next[e * n]);
      std::copy_n(&pop_inv[best * n], n, &next_inv[e * n]);
      std::copy_n(&pop_num[best * num_slots], num_slots,
                  &next_num[e * num_slots]);
      next_fit[e] = fit[best];
    }
    // Classic symmetric breeding: each tournament round produces TWO
    // children from the same parent pair — PMX(a, b) and its mirror
    // PMX(b, a) over the same segment — so the tournament picks, the
    // crossover decision and the segment draw are all shared across the
    // pair. Mutation stays an independent per-child decision.
    auto mutate = [&](TileId* child, TileId* child_inv, double* child_num) {
      // Operator decisions are single-draw uniform32 comparisons: the rates
      // are coarse tuning constants, so 2^-32 resolution loses nothing.
      if (rng.uniform32() < params_.mutation_rate) {
        const auto [x, y] = bounded_pair(rng, un);
        const TileId tx = child[x];
        const TileId ty = child[y];
        // x == y folds both deltas to an exact 0.0, so no guard is needed.
        child_num[app_slot[x]] += cache.cost(x, ty) - cache.cost(x, tx);
        child_num[app_slot[y]] += cache.cost(y, tx) - cache.cost(y, ty);
        child[x] = ty;
        child[y] = tx;
        child_inv[ty] = static_cast<TileId>(x);
        child_inv[tx] = static_cast<TileId>(y);
      }
    };
    for (std::size_t k = params_.elites; k < pop_size; k += 2) {
      const std::size_t pa = tournament_pick();
      const std::size_t pb = tournament_pick();
      const bool twins = k + 1 < pop_size;
      TileId* c1 = &next[k * n];
      TileId* c1_inv = &next_inv[k * n];
      double* c1_num = &next_num[k * num_slots];
      TileId* c2 = twins ? &next[(k + 1) * n] : nullptr;
      TileId* c2_inv = twins ? &next_inv[(k + 1) * n] : nullptr;
      double* c2_num = twins ? &next_num[(k + 1) * num_slots] : nullptr;
      if (rng.uniform32() < params_.crossover_rate) {
        auto [lo, hi] = bounded_pair(rng, un);
        if (lo > hi) std::swap(lo, hi);
        // Each child's numerators start as its base parent's (the one it is
        // a row copy of) and pmx_into folds in the divergence deltas.
        std::copy_n(&pop_num[pb * num_slots], num_slots, c1_num);
        pmx_into(&pop[pa * n], &pop[pb * n], &pop_inv[pa * n],
                 &pop_inv[pb * n], lo, hi, n, cache, app_slot.data(), c1,
                 c1_inv, c1_num, pmx_displaced.data(), pmx_diffs.data());
        if (twins) {
          std::copy_n(&pop_num[pa * num_slots], num_slots, c2_num);
          pmx_into(&pop[pb * n], &pop[pa * n], &pop_inv[pb * n],
                   &pop_inv[pa * n], lo, hi, n, cache, app_slot.data(), c2,
                   c2_inv, c2_num, pmx_displaced.data(), pmx_diffs.data());
        }
      } else {
        std::copy_n(&pop[pa * n], n, c1);
        std::copy_n(&pop_inv[pa * n], n, c1_inv);
        std::copy_n(&pop_num[pa * num_slots], num_slots, c1_num);
        if (twins) {
          std::copy_n(&pop[pb * n], n, c2);
          std::copy_n(&pop_inv[pb * n], n, c2_inv);
          std::copy_n(&pop_num[pb * num_slots], num_slots, c2_num);
        }
      }
      mutate(c1, c1_inv, c1_num);
      next_fit[k] = fitness_from(c1_num);
      if (twins) {
        mutate(c2, c2_inv, c2_num);
        next_fit[k + 1] = fitness_from(c2_num);
      }
    }
    evaluations += offspring;
#if !defined(NDEBUG)
    // Debug cross-check: the tracked numerators must agree with a fresh
    // batched rescore of every offspring. The only admissible difference
    // is FP rounding of the accumulated deltas, orders of magnitude below
    // the tolerance here — anything larger is a delta-bookkeeping bug.
    {
      std::vector<double> check(offspring);
      evaluator.score_rows(&next[params_.elites * n], n, offspring,
                           std::span<double>(check));
      for (std::size_t i = 0; i < offspring; ++i) {
        NOCMAP_ASSERT(std::abs(next_fit[params_.elites + i] - check[i]) <=
                      1e-6 * std::max(1.0, std::abs(check[i])));
      }
    }
#endif
    std::swap(pop, next);
    std::swap(pop_inv, next_inv);
    std::swap(pop_num, next_num);
    std::swap(fit, next_fit);
  }
  c_generations.add(params_.generations);
  c_evaluations.add(evaluations);

  std::size_t best = 0;
  for (std::size_t k = 1; k < pop_size; ++k) {
    if (fit[k] < fit[best]) best = k;
  }
  Mapping mapping;
  mapping.thread_to_tile.assign(&pop[best * n], &pop[best * n] + n);
  return mapping;
}

}  // namespace nocmap
