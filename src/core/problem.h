// The On-chip-latency Balanced Mapping (OBM) problem instance and the
// thread-to-tile mapping type (paper Section III.B).
//
// An OBM instance bundles a chip (its TileLatencyModel: the {TC(k)} and
// {TM(k)} arrays) with a Workload whose total thread count equals the tile
// count. A Mapping is the permutation π with π(j) = k meaning global thread
// j runs on tile k.
#pragma once

#include <cstddef>
#include <vector>

#include "latency/model.h"
#include "workload/workload.h"

namespace nocmap {

/// Thread-to-tile permutation π(j) = k, both 0-based.
struct Mapping {
  std::vector<TileId> thread_to_tile;

  std::size_t size() const { return thread_to_tile.size(); }
  TileId tile_of(std::size_t thread) const { return thread_to_tile[thread]; }

  /// True iff this is a permutation of 0..n-1 for the given n.
  bool is_valid_permutation(std::size_t n) const;

  /// Inverse view: tile → thread. Requires a valid permutation.
  std::vector<std::size_t> tile_to_thread() const;
};

/// One OBM problem instance. Construction validates that the workload's
/// thread count equals the chip's tile count (callers with fewer threads
/// pad via Workload::padded_to, per paper footnote 1).
///
/// QoS extension: optional per-application service weights generalize the
/// objective to min max_i w_i·APL_i. The paper motivates balancing with
/// paying users in a shared environment (Section I); weights express
/// *differentiated* service — w_i > 1 buys application i a proportionally
/// lower latency target. With all weights 1 (the default) this is exactly
/// the paper's OBM.
class ObmProblem {
 public:
  ObmProblem(TileLatencyModel model, Workload workload);
  /// With explicit service weights (size must equal the application count;
  /// all weights must be positive).
  ObmProblem(TileLatencyModel model, Workload workload,
             std::vector<double> app_weights);

  const TileLatencyModel& model() const { return model_; }
  const Workload& workload() const { return workload_; }
  const Mesh& mesh() const { return model_.mesh(); }

  std::size_t num_tiles() const { return model_.mesh().num_tiles(); }
  std::size_t num_threads() const { return workload_.num_threads(); }
  std::size_t num_applications() const {
    return workload_.num_applications();
  }

  /// Service weight of application i (1.0 unless set at construction).
  double app_weight(std::size_t i) const;
  /// True when any weight differs from 1 (the weighted-OBM variant).
  bool is_weighted() const { return weighted_; }

  /// Identity mapping (thread j on tile j), handy as a starting point.
  Mapping identity_mapping() const;

 private:
  TileLatencyModel model_;
  Workload workload_;
  std::vector<double> app_weights_;
  bool weighted_ = false;
};

}  // namespace nocmap
