// Simulated-annealing baseline for OBM (paper Section V.A algorithm 3).
//
// State: a thread-to-tile permutation. Move: swap the tiles of two uniformly
// random threads (the paper's definition of a "move"). Objective: max-APL,
// evaluated incrementally in O(A) per move via MappingEvaluator. Cooling is
// geometric from an initial temperature proportional to the starting
// objective down to a fixed terminal fraction; the iteration budget is a
// parameter so Figure 12 (solution quality vs. allowed runtime) can sweep
// it.
#pragma once

#include <cstdint>

#include "core/mapper.h"
#include "core/parallel.h"

namespace nocmap {

/// Optimization objective for the annealer. kMaxApl is the paper's OBM
/// objective; the other two are the Section-III.A candidate metrics the
/// paper rejects — implemented so the pathology (perfectly "balanced" but
/// uniformly slow solutions) can be demonstrated empirically rather than
/// only on the Figure-5 toy instance.
enum class AnnealObjective {
  kMaxApl,      ///< minimize max_i APL_i (the OBM objective)
  kDevApl,      ///< minimize the stddev of the APLs
  kMinToMax,    ///< maximize min(APL)/max(APL), i.e. minimize its negation
};

const char* anneal_objective_name(AnnealObjective objective);

struct AnnealingParams {
  std::size_t iterations = 200000;
  /// Initial temperature as a fraction of the initial max-APL.
  double initial_temp_fraction = 0.05;
  /// Terminal temperature as a fraction of the initial temperature.
  double final_temp_fraction = 1e-4;
  std::uint64_t seed = 1;
  AnnealObjective objective = AnnealObjective::kMaxApl;
  /// Independent chains; the best final state wins (ties to the lowest
  /// chain index). One restart (the default) is the classic single chain
  /// seeded with `seed` exactly as before; with R > 1, chain r draws from
  /// the forked stream Rng(seed).fork(r), so the result depends only on
  /// (seed, R) — never on how chains are scheduled onto workers.
  std::size_t restarts = 1;
  /// How chains are executed; each chain is inherently sequential, so
  /// parallelism comes from running restarts concurrently.
  ParallelConfig parallel = {};
};

class AnnealingMapper final : public Mapper {
 public:
  explicit AnnealingMapper(AnnealingParams params = {}) : params_(params) {}

  std::string name() const override;
  Mapping map(const ObmProblem& problem) override;

  const AnnealingParams& params() const { return params_; }

 private:
  AnnealingParams params_;
};

}  // namespace nocmap
