#include "core/sam.h"

#include "assign/hungarian.h"

namespace nocmap {

namespace {

/// Shared tail of both overloads: solve the assignment and translate the
/// column permutation back to tile ids.
SamResult finish_sam(const CostMatrix& cost, std::span<const TileId> tiles,
                     double volume) {
  const Assignment assignment = solve_assignment(cost);
  SamResult result;
  result.tiles.resize(tiles.size());
  for (std::size_t j = 0; j < tiles.size(); ++j) {
    result.tiles[j] = tiles[assignment.row_to_col[j]];
  }
  result.apl = volume > 0.0 ? assignment.total_cost / volume : 0.0;
  return result;
}

}  // namespace

SamResult solve_sam(std::span<const ThreadProfile> threads,
                    std::span<const TileId> tiles,
                    const TileLatencyModel& model) {
  NOCMAP_REQUIRE(threads.size() == tiles.size(),
                 "SAM needs as many tiles as threads");
  NOCMAP_REQUIRE(!threads.empty(), "SAM on empty application");

  const std::size_t n = threads.size();
  CostMatrix cost(n, n);
  double volume = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      cost.at(j, k) = threads[j].cache_rate * model.tc(tiles[k]) +
                      threads[j].memory_rate * model.tm(tiles[k]);
    }
    volume += threads[j].total_rate();
  }
  return finish_sam(cost, tiles, volume);
}

SamResult solve_sam(const ThreadCostCache& cache, std::size_t first_thread,
                    std::span<const TileId> tiles) {
  NOCMAP_REQUIRE(!tiles.empty(), "SAM on empty application");
  const std::size_t n = tiles.size();
  double volume = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    volume += cache.rate(first_thread + j);
  }
  return finish_sam(cache.sam_matrix(first_thread, tiles), tiles, volume);
}

}  // namespace nocmap
