#include "core/sam.h"

#include "assign/hungarian.h"

namespace nocmap {

SamResult solve_sam(std::span<const ThreadProfile> threads,
                    std::span<const TileId> tiles,
                    const TileLatencyModel& model) {
  NOCMAP_REQUIRE(threads.size() == tiles.size(),
                 "SAM needs as many tiles as threads");
  NOCMAP_REQUIRE(!threads.empty(), "SAM on empty application");

  const std::size_t n = threads.size();
  CostMatrix cost(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      cost.at(j, k) = threads[j].cache_rate * model.tc(tiles[k]) +
                      threads[j].memory_rate * model.tm(tiles[k]);
    }
  }

  const Assignment assignment = solve_assignment(cost);

  SamResult result;
  result.tiles.resize(n);
  double volume = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    result.tiles[j] = tiles[assignment.row_to_col[j]];
    volume += threads[j].total_rate();
  }
  result.apl = volume > 0.0 ? assignment.total_cost / volume : 0.0;
  return result;
}

}  // namespace nocmap
