#include "core/sam.h"

#include "assign/hungarian.h"

namespace nocmap {

namespace {

/// Shared tail of every overload: translate the assignment's column
/// permutation back to tile ids.
SamResult finish_sam(const Assignment& assignment,
                     std::span<const TileId> tiles, double volume) {
  SamResult result;
  result.tiles.resize(tiles.size());
  for (std::size_t j = 0; j < tiles.size(); ++j) {
    result.tiles[j] = tiles[assignment.row_to_col[j]];
  }
  result.apl = volume > 0.0 ? assignment.total_cost / volume : 0.0;
  return result;
}

}  // namespace

SamResult solve_sam(std::span<const ThreadProfile> threads,
                    std::span<const TileId> tiles,
                    const TileLatencyModel& model) {
  NOCMAP_REQUIRE(threads.size() == tiles.size(),
                 "SAM needs as many tiles as threads");
  NOCMAP_REQUIRE(!threads.empty(), "SAM on empty application");

  const std::size_t n = threads.size();
  CostMatrix cost(n, n);
  double volume = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = 0; k < n; ++k) {
      cost.at(j, k) = threads[j].cache_rate * model.tc(tiles[k]) +
                      threads[j].memory_rate * model.tm(tiles[k]);
    }
    volume += threads[j].total_rate();
  }
  AssignmentWorkspace ws;
  return finish_sam(ws.solve(CostView::of(cost)), tiles, volume);
}

SamResult solve_sam(const ThreadCostCache& cache, std::size_t first_thread,
                    std::span<const TileId> tiles) {
  AssignmentWorkspace ws;
  return solve_sam(cache, first_thread, tiles, ws, /*warm=*/false);
}

SamResult solve_sam(const ThreadCostCache& cache, std::size_t first_thread,
                    std::span<const TileId> tiles, AssignmentWorkspace& ws,
                    bool warm) {
  NOCMAP_REQUIRE(!tiles.empty(), "SAM on empty application");
  const CostView view = cache.sam_view(first_thread, tiles);
  const Assignment& assignment = warm ? ws.solve_warm(view) : ws.solve(view);
  return finish_sam(assignment, tiles,
                    cache.rate_sum(first_thread, tiles.size()));
}

}  // namespace nocmap
