// The proposed sort-select-swap (SSS) algorithm (paper Section IV.B,
// Algorithm 2) — the paper's primary contribution.
//
//   1. *Sort* all tiles by their cache APL TC(k) ascending.
//   2. *Select* (coarse tuning): for each application with ΔN_i threads,
//      divide the remaining sorted tile list into ΔN_i equal sections, take
//      the middle tile of each section — so every application receives an
//      even spread of good and bad cache-latency tiles — then assign its
//      threads to those tiles optimally with the Hungarian-based SAM.
//   3. *Swap* (fine tuning): slide a 4-tile window over the sorted tile
//      list with step sizes s = 1 .. N/4 (window positions i, i+s, i+2s,
//      i+3s); for each window, try all 4! = 24 permutations of the threads
//      currently on those tiles and greedily keep the one minimizing
//      max-APL. This is where memory-controller traffic gets balanced
//      across applications.
//   4. Re-run SAM inside each application to repair any within-application
//      suboptimality introduced by the swaps.
//
// Overall O(N³), dominated by the Hungarian calls. Options expose each stage
// for the ablation bench.
#pragma once

#include "core/mapper.h"
#include "core/parallel.h"

namespace nocmap {

struct SssOptions {
  /// Stage 3 on/off (ablation: selection only).
  bool window_swaps = true;
  /// Stage 4 on/off (ablation: no final SAM repair).
  bool final_sam = true;
  /// Window size w; the paper uses 4 (w! permutations per window, so keep
  /// small). Must be >= 2.
  std::size_t window_size = 4;
  /// Largest window step; 0 means the paper's N/4.
  std::size_t max_step = 0;
  /// Parallel execution policy. The default (hardware threads,
  /// deterministic) produces a mapping bit-identical to the serial sweep:
  /// stage 2/4 SAM solves fan out per application, and the stage-3 sweep
  /// speculatively evaluates window rounds against snapshots, committing in
  /// canonical serial order (see DESIGN.md, "Parallelism & determinism").
  ParallelConfig parallel = {};
};

class SortSelectSwapMapper final : public Mapper {
 public:
  explicit SortSelectSwapMapper(SssOptions options = {})
      : options_(options) {}

  std::string name() const override { return "SSS"; }
  Mapping map(const ObmProblem& problem) override;

  const SssOptions& options() const { return options_; }

  /// The TC-ascending tile order used by stages 1–3 (exposed for tests).
  static std::vector<TileId> sorted_tiles(const TileLatencyModel& model);

 private:
  SssOptions options_;
};

}  // namespace nocmap
