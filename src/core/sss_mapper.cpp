#include "core/sss_mapper.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "core/cost_cache.h"
#include "core/evaluator.h"
#include "core/sam.h"
#include "obs/metrics.h"

namespace nocmap {

namespace {

// Stage timings and fine-tuning statistics (docs/metrics-schema.md). The
// timers wrap whole stages and the counters are accumulated locally per
// sweep/round, so nothing lands on the per-permutation hot path — and
// nothing here feeds back into the mapping, preserving the parallel
// engine's bit-identity contract.
const obs::Timer t_sort("sss.sort");
const obs::Timer t_select("sss.select");
const obs::Timer t_swap("sss.swap");
const obs::Timer t_final_sam("sss.final_sam");
const obs::Counter c_maps("sss.maps");
const obs::Counter c_windows_evaluated("sss.windows_evaluated");
const obs::Counter c_windows_committed("sss.windows_committed");
const obs::Counter c_rounds("sss.rounds");
const obs::Counter c_stale_discarded("sss.windows_discarded_stale");

}  // namespace

std::vector<TileId> SortSelectSwapMapper::sorted_tiles(
    const TileLatencyModel& model) {
  std::vector<TileId> tiles(model.mesh().num_tiles());
  std::iota(tiles.begin(), tiles.end(), TileId{0});
  std::stable_sort(tiles.begin(), tiles.end(), [&](TileId a, TileId b) {
    return model.tc(a) < model.tc(b);
  });
  return tiles;
}

namespace {

/// One stage-3 window: tiles sorted[start + x*step] for x in [0, w).
struct Window {
  std::size_t start = 0;
  std::size_t step = 0;
};

/// The canonical stage-3 window order — step size ascending, start position
/// ascending — exactly the order the serial greedy sweep visits them in.
std::vector<Window> window_schedule(std::size_t n, std::size_t w,
                                    std::size_t max_step) {
  std::vector<Window> windows;
  for (std::size_t step = 1; step <= max_step; ++step) {
    if ((w - 1) * step >= n) break;  // window no longer fits
    const std::size_t last_start = n - (w - 1) * step;
    for (std::size_t start = 0; start < last_start; ++start) {
      windows.push_back({start, step});
    }
  }
  return windows;
}

/// Reusable buffers for evaluate_window. After a call, window_threads and
/// best_tiles describe the last evaluated window. cand_tiles holds all
/// w!-1 non-identity window permutations at once, transposed (position-
/// major: candidate k's tile for position x lives at x·K + k), the layout
/// score_group_candidates consumes with contiguous per-position rows.
struct WindowScratch {
  std::vector<std::size_t> perm_idx;
  std::vector<TileId> window_tiles;
  std::vector<std::size_t> window_threads;
  std::vector<TileId> best_tiles;
  std::vector<TileId> cand_tiles;
  std::vector<double> scores;
  std::size_t num_candidates;  // w! - 1

  explicit WindowScratch(std::size_t w)
      : perm_idx(w), window_tiles(w), window_threads(w), best_tiles(w) {
    NOCMAP_REQUIRE(w <= 12, "window size too large to enumerate");
    std::size_t fact = 1;
    for (std::size_t i = 2; i <= w; ++i) fact *= i;
    num_candidates = fact - 1;
    cand_tiles.resize(w * num_candidates);
    scores.resize(num_candidates);
  }
};

/// Scores every non-identity permutation of the threads on one window's
/// tiles in a single batched pass and records the best strictly-improving
/// one in s.best_tiles. The evaluator is never mutated: all candidates are
/// enumerated into the scratch's transposed block and scored through
/// MappingEvaluator::score_group_candidates, whose values are bit-identical
/// to the objective() an apply/revert probe would have observed. Selection
/// walks the scores in the same next_permutation order with the same
/// strict-< test, so the chosen permutation — and therefore the whole SSS
/// mapping — is bit-identical to the old mutating probe loop, at a fraction
/// of the work (no per-candidate numerator rebuilds for apply and revert).
///
/// Because evaluation is read-only, the parallel speculation workers score
/// windows directly against the shared evaluator instead of mutating
/// per-worker snapshot copies.
bool evaluate_window(const MappingEvaluator& eval,
                     std::span<const TileId> sorted, const Window& win,
                     WindowScratch& s) {
  const std::size_t w = s.window_tiles.size();
  const std::size_t K = s.num_candidates;
  for (std::size_t x = 0; x < w; ++x) {
    s.window_tiles[x] = sorted[win.start + x * win.step];
    s.window_threads[x] = eval.thread_on(s.window_tiles[x]);
  }

  // Baseline = identity permutation of the window.
  double best_obj = eval.objective();
  s.best_tiles = s.window_tiles;
  bool improved = false;

  std::iota(s.perm_idx.begin(), s.perm_idx.end(), std::size_t{0});
  std::size_t k = 0;
  while (std::next_permutation(s.perm_idx.begin(), s.perm_idx.end())) {
    for (std::size_t x = 0; x < w; ++x) {
      s.cand_tiles[x * K + k] = s.window_tiles[s.perm_idx[x]];
    }
    ++k;
  }
  NOCMAP_ASSERT(k == K);
  eval.score_group_candidates(s.window_threads, s.cand_tiles.data(), K,
                              s.scores);

  std::size_t best_k = K;
  for (k = 0; k < K; ++k) {
    if (s.scores[k] < best_obj) {
      best_obj = s.scores[k];
      best_k = k;
      improved = true;
    }
  }
  if (improved) {
    for (std::size_t x = 0; x < w; ++x) {
      s.best_tiles[x] = s.cand_tiles[x * K + best_k];
    }
  }
  return improved;
}

/// The canonical serial sweep: evaluate each window in order, greedily
/// committing improvements.
void sweep_windows_serial(MappingEvaluator& eval,
                          std::span<const TileId> sorted,
                          std::span<const Window> windows, std::size_t w) {
  WindowScratch s(w);
  std::uint64_t committed = 0;
  for (const Window& win : windows) {
    if (evaluate_window(eval, sorted, win, s)) {
      eval.apply_group(s.window_threads, s.best_tiles);
      ++committed;
    }
  }
  c_windows_evaluated.add(windows.size());
  c_windows_committed.add(committed);
}

/// Speculative parallel sweep (snapshot-evaluate-commit rounds).
///
/// Each round speculatively evaluates a block of upcoming windows in
/// parallel against the current evaluator state, then walks the results in
/// canonical order. Windows that found no improvement are exact — a serial
/// sweep would have evaluated them against the same state and left it
/// untouched. The first improving window is therefore also exact and its
/// permutation is committed verbatim. In deterministic mode the rest of the
/// round is discarded (their snapshots are stale) and the next round starts
/// after the commit, which replays the serial greedy protocol bit-exactly
/// at any thread count. In batched mode the walk instead continues,
/// revalidating each later improving window against the live state before
/// committing — fewer discarded evaluations, but the protocol (and hence
/// the mapping) follows the round geometry rather than the serial order.
///
/// The round size adapts: it shrinks to a couple of windows per worker
/// while commits are frequent (early, step-1 windows) and doubles while
/// rounds come back dry (the long converged tail), bounding the speculation
/// wasted on stale rounds.
void sweep_windows_parallel(MappingEvaluator& eval,
                            std::span<const TileId> sorted,
                            std::span<const Window> windows, std::size_t w,
                            ParallelTrialRunner& runner, bool deterministic) {
  struct WindowResult {
    bool improved = false;
    std::vector<TileId> best_tiles;
  };

  const std::size_t threads = runner.num_threads();
  const std::size_t min_round = threads * 4;
  const std::size_t max_round = std::max<std::size_t>(min_round, 2048);
  std::vector<WindowResult> results(windows.size());
  WindowScratch commit_scratch(w);

  std::uint64_t rounds = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t n_committed = 0;
  std::uint64_t stale = 0;

  std::size_t pos = 0;
  std::size_t round = min_round;
  while (pos < windows.size()) {
    const std::size_t end = std::min(pos + round, windows.size());
    const std::size_t count = end - pos;
    ++rounds;
    evaluated += count;

    // Fan out: window scoring is read-only (score_group_candidates never
    // mutates the evaluator), so every task scores directly against the
    // shared evaluator — frozen for the duration of the fan-out — and
    // fills its result slots; only the enumeration scratch is per-task.
    const std::size_t tasks = std::min(count, threads * 2);
    const std::size_t per_task = (count + tasks - 1) / tasks;
    runner.for_each(tasks, [&, pos, end, per_task](std::size_t t) {
      const std::size_t lo = pos + t * per_task;
      const std::size_t hi = std::min(lo + per_task, end);
      if (lo >= hi) return;
      WindowScratch s(w);
      for (std::size_t i = lo; i < hi; ++i) {
        WindowResult& r = results[i];
        r.improved = evaluate_window(eval, sorted, windows[i], s);
        if (r.improved) r.best_tiles = s.best_tiles;
      }
    });

    // Serial canonical commit walk.
    std::size_t next = end;
    bool committed = false;
    for (std::size_t i = pos; i < end; ++i) {
      if (!results[i].improved) continue;
      if (!committed) {
        // Every earlier window in the round left the state untouched, so
        // this speculation saw the exact serial state: commit verbatim.
        const Window& win = windows[i];
        for (std::size_t x = 0; x < w; ++x) {
          commit_scratch.window_tiles[x] = sorted[win.start + x * win.step];
          commit_scratch.window_threads[x] =
              eval.thread_on(commit_scratch.window_tiles[x]);
        }
        eval.apply_group(commit_scratch.window_threads,
                         results[i].best_tiles);
        committed = true;
        ++n_committed;
        if (deterministic) {
          next = i + 1;  // later speculations are stale; restart after i
          stale += end - next;
          break;
        }
      } else if (evaluate_window(eval, sorted, windows[i], commit_scratch)) {
        // Batched mode: the state moved since the snapshot, so revalidate
        // on the live evaluator before committing.
        eval.apply_group(commit_scratch.window_threads,
                         commit_scratch.best_tiles);
        ++n_committed;
      }
    }
    pos = next;
    round = committed ? min_round : std::min(round * 2, max_round);
  }

  c_rounds.add(rounds);
  c_windows_evaluated.add(evaluated);
  c_windows_committed.add(n_committed);
  c_stale_discarded.add(stale);
}

}  // namespace

Mapping SortSelectSwapMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(options_.window_size >= 2, "window size must be >= 2");
  c_maps.add();
  const Workload& wl = problem.workload();
  const std::size_t n = problem.num_threads();
  const std::size_t num_apps = wl.num_applications();

  // Shared eq.-13 table: every SAM assignment call and every evaluator query
  // below reads this one immutable matrix.
  const ThreadCostCache cache(wl, problem.model());
  ParallelTrialRunner runner(options_.parallel);

  // One assignment workspace per application, not per worker: the stage-2
  // and stage-4 solves for application i always reuse sam_ws[i], so the
  // warm-start history (and therefore the selected optimum, even on tied
  // cost matrices) is identical no matter which worker runs the solve —
  // which keeps the parallel mapping bit-identical to the serial one.
  std::vector<AssignmentWorkspace> sam_ws(num_apps);

  // ---- Stage 1: sort tiles by cache APL.
  std::vector<TileId> sorted;
  {
    const obs::ScopedTimer scope(t_sort);
    sorted = sorted_tiles(problem.model());
  }

  // ---- Stage 2: per application, select evenly spread tiles from the
  // remaining list (sequential by construction — each application picks
  // from what its predecessors left), then SAM-assign threads to the chosen
  // tiles; the per-application Hungarian solves are independent and fan out.
  Mapping mapping;
  mapping.thread_to_tile.resize(n);
  {
    const obs::ScopedTimer select_scope(t_select);
    std::vector<std::vector<TileId>> chosen(num_apps);
    std::vector<TileId> avail = sorted;
    for (std::size_t i = 0; i < num_apps; ++i) {
      const std::size_t dn = wl.last_thread(i) - wl.first_thread(i);
      NOCMAP_ASSERT(dn <= avail.size());

      // Middle of each of dn equal-length sections of the remaining list.
      // Indices are strictly increasing because |avail|/dn >= 1.
      std::vector<std::size_t> picks(dn);
      for (std::size_t s = 0; s < dn; ++s) {
        picks[s] = static_cast<std::size_t>(
            (static_cast<double>(s) + 0.5) *
            static_cast<double>(avail.size()) / static_cast<double>(dn));
      }
      chosen[i].resize(dn);
      for (std::size_t s = 0; s < dn; ++s) chosen[i][s] = avail[picks[s]];

      // Remove the chosen tiles (descending index order keeps picks valid).
      for (std::size_t s = dn; s-- > 0;) {
        avail.erase(avail.begin() + static_cast<std::ptrdiff_t>(picks[s]));
      }
    }
    runner.for_each(num_apps, [&](std::size_t i) {
      const std::size_t lo = wl.first_thread(i);
      const SamResult sam = solve_sam(cache, lo, chosen[i], sam_ws[i]);
      for (std::size_t t = 0; t < chosen[i].size(); ++t) {
        mapping.thread_to_tile[lo + t] = sam.tiles[t];
      }
    });
  }

  // ---- Stage 3: greedy sliding-window permutation swaps over the sorted
  // tile list.
  if (options_.window_swaps) {
    const obs::ScopedTimer swap_scope(t_swap);
    MappingEvaluator eval(problem, std::move(mapping), cache);
    const std::size_t w = options_.window_size;
    const std::size_t max_step =
        options_.max_step > 0 ? options_.max_step
                              : std::max<std::size_t>(n / 4, 1);
    const std::vector<Window> windows = window_schedule(n, w, max_step);
    if (runner.parallel()) {
      sweep_windows_parallel(eval, sorted, windows, w, runner,
                             options_.parallel.deterministic);
    } else {
      sweep_windows_serial(eval, sorted, windows, w);
    }
    mapping = eval.mapping();
  }

  // ---- Stage 4: final SAM repair inside each application — independent
  // per-application solves over disjoint mapping ranges, so they fan out.
  // Warm-started from each application's stage-2 potentials: the window
  // swaps only perturb a few tiles per application, so the stage-2 duals
  // are near-optimal and the repair solve is close to O(n²).
  if (options_.final_sam) {
    const obs::ScopedTimer sam_scope(t_final_sam);
    runner.for_each(num_apps, [&](std::size_t i) {
      const std::size_t lo = wl.first_thread(i);
      const std::size_t dn = wl.last_thread(i) - lo;
      std::vector<TileId> tiles(dn);
      for (std::size_t t = 0; t < dn; ++t) {
        tiles[t] = mapping.thread_to_tile[lo + t];
      }
      const SamResult sam = solve_sam(cache, lo, tiles, sam_ws[i],
                                      /*warm=*/true);
      for (std::size_t t = 0; t < dn; ++t) {
        mapping.thread_to_tile[lo + t] = sam.tiles[t];
      }
    });
  }

  return mapping;
}

}  // namespace nocmap
