#include "core/sss_mapper.h"

#include <algorithm>
#include <numeric>

#include "core/evaluator.h"
#include "core/sam.h"

namespace nocmap {

std::vector<TileId> SortSelectSwapMapper::sorted_tiles(
    const TileLatencyModel& model) {
  std::vector<TileId> tiles(model.mesh().num_tiles());
  std::iota(tiles.begin(), tiles.end(), TileId{0});
  std::stable_sort(tiles.begin(), tiles.end(), [&](TileId a, TileId b) {
    return model.tc(a) < model.tc(b);
  });
  return tiles;
}

Mapping SortSelectSwapMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(options_.window_size >= 2, "window size must be >= 2");
  const Workload& wl = problem.workload();
  const TileLatencyModel& model = problem.model();
  const std::size_t n = problem.num_threads();

  // ---- Stage 1: sort tiles by cache APL.
  const std::vector<TileId> sorted = sorted_tiles(model);

  // ---- Stage 2: per application, select evenly spread tiles from the
  // remaining list and SAM-assign its threads to them.
  Mapping mapping;
  mapping.thread_to_tile.resize(n);
  std::vector<TileId> avail = sorted;
  for (std::size_t i = 0; i < wl.num_applications(); ++i) {
    const std::size_t dn = wl.last_thread(i) - wl.first_thread(i);
    NOCMAP_ASSERT(dn <= avail.size());

    // Middle of each of dn equal-length sections of the remaining list.
    // Indices are strictly increasing because |avail|/dn >= 1.
    std::vector<std::size_t> picks(dn);
    for (std::size_t s = 0; s < dn; ++s) {
      picks[s] = static_cast<std::size_t>(
          (static_cast<double>(s) + 0.5) * static_cast<double>(avail.size()) /
          static_cast<double>(dn));
    }
    std::vector<TileId> chosen(dn);
    for (std::size_t s = 0; s < dn; ++s) chosen[s] = avail[picks[s]];

    const auto threads =
        std::span(wl.threads()).subspan(wl.first_thread(i), dn);
    const SamResult sam = solve_sam(threads, chosen, model);
    for (std::size_t t = 0; t < dn; ++t) {
      mapping.thread_to_tile[wl.first_thread(i) + t] = sam.tiles[t];
    }

    // Remove the chosen tiles (descending index order keeps picks valid).
    for (std::size_t s = dn; s-- > 0;) {
      avail.erase(avail.begin() +
                  static_cast<std::ptrdiff_t>(picks[s]));
    }
  }

  // ---- Stage 3: greedy sliding-window permutation swaps over the sorted
  // tile list.
  if (options_.window_swaps) {
    MappingEvaluator eval(problem, std::move(mapping));
    const std::size_t w = options_.window_size;
    const std::size_t max_step =
        options_.max_step > 0 ? options_.max_step : std::max<std::size_t>(
                                                        n / 4, 1);

    std::vector<std::size_t> perm_idx(w);
    std::vector<TileId> window_tiles(w);
    std::vector<std::size_t> window_threads(w);
    std::vector<TileId> permuted(w);
    std::vector<TileId> best_tiles(w);

    for (std::size_t step = 1; step <= max_step; ++step) {
      if ((w - 1) * step >= n) break;  // window no longer fits
      const std::size_t last_start = n - (w - 1) * step;
      for (std::size_t start = 0; start < last_start; ++start) {
        for (std::size_t x = 0; x < w; ++x) {
          window_tiles[x] = sorted[start + x * step];
          window_threads[x] = eval.thread_on(window_tiles[x]);
        }

        // Baseline = identity permutation of the window.
        double best_obj = eval.objective();
        best_tiles = window_tiles;
        bool improved = false;

        std::iota(perm_idx.begin(), perm_idx.end(), std::size_t{0});
        while (std::next_permutation(perm_idx.begin(), perm_idx.end())) {
          for (std::size_t x = 0; x < w; ++x) {
            permuted[x] = window_tiles[perm_idx[x]];
          }
          eval.apply_group(window_threads, permuted);
          const double obj = eval.objective();
          if (obj < best_obj) {
            best_obj = obj;
            best_tiles = permuted;
            improved = true;
          }
          eval.apply_group(window_threads, window_tiles);  // revert
        }

        if (improved) {
          eval.apply_group(window_threads, best_tiles);
        }
      }
    }
    mapping = eval.mapping();
  }

  // ---- Stage 4: final SAM repair inside each application.
  if (options_.final_sam) {
    for (std::size_t i = 0; i < wl.num_applications(); ++i) {
      const std::size_t lo = wl.first_thread(i);
      const std::size_t dn = wl.last_thread(i) - lo;
      std::vector<TileId> tiles(dn);
      for (std::size_t t = 0; t < dn; ++t) {
        tiles[t] = mapping.thread_to_tile[lo + t];
      }
      const auto threads = std::span(wl.threads()).subspan(lo, dn);
      const SamResult sam = solve_sam(threads, tiles, model);
      for (std::size_t t = 0; t < dn; ++t) {
        mapping.thread_to_tile[lo + t] = sam.tiles[t];
      }
    }
  }

  return mapping;
}

}  // namespace nocmap
