#include "core/contention.h"

#include <algorithm>
#include <limits>

namespace nocmap {

namespace {

/// Direction slot of the link from `from` to adjacent `to`:
/// 0=east, 1=west, 2=south, 3=north.
std::size_t direction_slot(const Mesh& mesh, TileId from, TileId to) {
  const TileCoord a = mesh.coord_of(from);
  const TileCoord b = mesh.coord_of(to);
  if (b.row == a.row && b.col == a.col + 1) return 0;
  if (b.row == a.row && a.col == b.col + 1) return 1;
  if (b.col == a.col && b.row == a.row + 1) return 2;
  if (b.col == a.col && a.row == b.row + 1) return 3;
  throw Error("link endpoints are not mesh-adjacent");
}

}  // namespace

std::size_t ContentionModel::link_index(TileId from, TileId to) const {
  return static_cast<std::size_t>(from) * 4 +
         direction_slot(*mesh_, from, to);
}

void ContentionModel::add_flow(TileId src, TileId dst,
                               double flits_per_cycle) {
  if (src == dst || flits_per_cycle <= 0.0) return;
  // Walk the XY path: columns first, then rows.
  TileCoord here = mesh_->coord_of(src);
  const TileCoord there = mesh_->coord_of(dst);
  TileId at = src;
  while (here.col != there.col) {
    const std::uint32_t next_col =
        here.col < there.col ? here.col + 1 : here.col - 1;
    const TileId next = mesh_->tile_at(here.row, next_col);
    load_[link_index(at, next)] += flits_per_cycle;
    at = next;
    here.col = next_col;
  }
  while (here.row != there.row) {
    const std::uint32_t next_row =
        here.row < there.row ? here.row + 1 : here.row - 1;
    const TileId next = mesh_->tile_at(next_row, here.col);
    load_[link_index(at, next)] += flits_per_cycle;
    at = next;
    here.row = next_row;
  }
}

ContentionModel::ContentionModel(const ObmProblem& problem,
                                 const Mapping& mapping,
                                 const ContentionConfig& config)
    : mesh_(&problem.mesh()) {
  NOCMAP_REQUIRE(mapping.is_valid_permutation(problem.num_threads()),
                 "contention model needs a valid mapping");
  NOCMAP_REQUIRE(config.injection_scale > 0.0,
                 "injection scale must be positive");
  load_.assign(problem.num_tiles() * 4, 0.0);

  const Workload& wl = problem.workload();
  const auto n = static_cast<double>(problem.num_tiles());

  for (std::size_t j = 0; j < wl.num_threads(); ++j) {
    const ThreadProfile& t = wl.thread(j);
    const TileId s = mapping.tile_of(j);
    // Rates are requests per kilocycle.
    const double cache_rate =
        t.cache_rate / 1000.0 * config.injection_scale;
    const double memory_rate =
        t.memory_rate / 1000.0 * config.injection_scale;

    if (cache_rate > 0.0) {
      const double per_bank = cache_rate / n;
      for (TileId bank = 0; bank < problem.num_tiles(); ++bank) {
        add_flow(s, bank, per_bank * config.request_flits);
        if (config.include_replies) {
          add_flow(bank, s, per_bank * config.reply_flits);
        }
      }
    }
    if (memory_rate > 0.0) {
      const TileId mc = problem.mesh().nearest_mc(s);
      add_flow(s, mc, memory_rate * config.request_flits);
      if (config.include_replies) {
        add_flow(mc, s, memory_rate * config.reply_flits);
      }
    }
  }
}

double ContentionModel::link_load(TileId from, TileId to) const {
  return load_[link_index(from, to)];
}

double ContentionModel::max_utilization() const {
  return *std::max_element(load_.begin(), load_.end());
}

double ContentionModel::mean_utilization() const {
  // Count only physical links (border tiles lack some directions; their
  // slots stay zero and are excluded).
  const std::size_t links =
      2 * (mesh_->rows() * (mesh_->cols() - 1) +
           mesh_->cols() * (mesh_->rows() - 1));
  double sum = 0.0;
  for (double u : load_) sum += u;
  return links > 0 ? sum / static_cast<double>(links) : 0.0;
}

double ContentionModel::saturation_scale() const {
  const double u = max_utilization();
  return u > 0.0 ? 1.0 / u : std::numeric_limits<double>::infinity();
}

double ContentionModel::queue_delay(double utilization) {
  const double u = std::clamp(utilization, 0.0, 0.999);
  return u / (2.0 * (1.0 - u));
}

double ContentionModel::expected_packet_queuing(TileId src,
                                                TileId dst) const {
  if (src == dst) return 0.0;
  double total = 0.0;
  TileCoord here = mesh_->coord_of(src);
  const TileCoord there = mesh_->coord_of(dst);
  TileId at = src;
  while (here.col != there.col) {
    const std::uint32_t next_col =
        here.col < there.col ? here.col + 1 : here.col - 1;
    const TileId next = mesh_->tile_at(here.row, next_col);
    total += queue_delay(link_load(at, next));
    at = next;
    here.col = next_col;
  }
  while (here.row != there.row) {
    const std::uint32_t next_row =
        here.row < there.row ? here.row + 1 : here.row - 1;
    const TileId next = mesh_->tile_at(next_row, here.col);
    total += queue_delay(link_load(at, next));
    at = next;
    here.row = next_row;
  }
  return total;
}

double ContentionModel::predicted_td_q() const {
  // A random flit lands on link L with probability proportional to L's
  // load, and then waits W(u_L).
  double weighted = 0.0;
  double total = 0.0;
  for (double u : load_) {
    weighted += u * queue_delay(u);
    total += u;
  }
  return total > 0.0 ? weighted / total : 0.0;
}

double ContentionModel::total_flit_hops() const {
  double sum = 0.0;
  for (double u : load_) sum += u;
  return sum;
}

}  // namespace nocmap
