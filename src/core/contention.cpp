#include "core/contention.h"

#include <algorithm>
#include <array>
#include <limits>

namespace nocmap {

namespace {

/// Direction slot of the link from `from` to adjacent `to`:
/// 0=east, 1=west, 2=south, 3=north, 4=up, 5=down.
constexpr std::size_t kLinkSlots = 6;

std::size_t direction_slot(const Mesh& mesh, TileId from, TileId to) {
  const TileCoord a = mesh.coord_of(from);
  const TileCoord b = mesh.coord_of(to);
  if (b.layer == a.layer) {
    if (b.row == a.row && b.col == a.col + 1) return 0;
    if (b.row == a.row && a.col == b.col + 1) return 1;
    if (b.col == a.col && b.row == a.row + 1) return 2;
    if (b.col == a.col && a.row == b.row + 1) return 3;
  } else if (b.row == a.row && b.col == a.col) {
    if (b.layer == a.layer + 1) return 4;
    if (a.layer == b.layer + 1) return 5;
  }
  throw Error("link endpoints are not mesh-adjacent");
}

/// Invokes fn(at, next) for every directed link on the dimension-order
/// (X, then Y, then Z) path src→dst.
template <typename Fn>
void walk_path(const Mesh& mesh, TileId src, TileId dst, Fn&& fn) {
  TileCoord here = mesh.coord_of(src);
  const TileCoord there = mesh.coord_of(dst);
  TileId at = src;
  while (here.col != there.col) {
    here.col = here.col < there.col ? here.col + 1 : here.col - 1;
    const TileId next = mesh.tile_at(here);
    fn(at, next);
    at = next;
  }
  while (here.row != there.row) {
    here.row = here.row < there.row ? here.row + 1 : here.row - 1;
    const TileId next = mesh.tile_at(here);
    fn(at, next);
    at = next;
  }
  while (here.layer != there.layer) {
    here.layer = here.layer < there.layer ? here.layer + 1 : here.layer - 1;
    const TileId next = mesh.tile_at(here);
    fn(at, next);
    at = next;
  }
}

}  // namespace

std::size_t ContentionModel::link_index(TileId from, TileId to) const {
  return static_cast<std::size_t>(from) * kLinkSlots +
         direction_slot(*mesh_, from, to);
}

void ContentionModel::add_flow(TileId src, TileId dst,
                               double flits_per_cycle) {
  if (src == dst || flits_per_cycle <= 0.0) return;
  walk_path(*mesh_, src, dst, [&](TileId at, TileId next) {
    load_[link_index(at, next)] += flits_per_cycle;
  });
}

void ContentionModel::add_multicast_tree(TileId from,
                                         std::vector<TileId> dests,
                                         double flits_per_cycle) {
  // Mirror of TrafficEngine::emit_multicast: shared tree prefixes carry the
  // request once; replication happens at branch points.
  dests.erase(std::remove(dests.begin(), dests.end(), from), dests.end());
  if (dests.empty() || flits_per_cycle <= 0.0) return;

  const TileCoord here = mesh_->coord_of(from);
  enum { kEastG, kWestG, kSouthG, kNorthG, kUpG, kDownG, kNumGroups };
  std::array<std::vector<TileId>, kNumGroups> groups;
  std::array<TileCoord, kNumGroups> extreme{};
  for (TileId m : dests) {
    const TileCoord c = mesh_->coord_of(m);
    std::size_t g;
    if (c.col > here.col) g = kEastG;
    else if (c.col < here.col) g = kWestG;
    else if (c.row > here.row) g = kSouthG;
    else if (c.row < here.row) g = kNorthG;
    else if (c.layer > here.layer) g = kUpG;
    else g = kDownG;
    if (groups[g].empty()) {
      extreme[g] = c;
    } else {
      switch (g) {
        case kEastG: extreme[g].col = std::min(extreme[g].col, c.col); break;
        case kWestG: extreme[g].col = std::max(extreme[g].col, c.col); break;
        case kSouthG: extreme[g].row = std::min(extreme[g].row, c.row); break;
        case kNorthG: extreme[g].row = std::max(extreme[g].row, c.row); break;
        case kUpG:
          extreme[g].layer = std::min(extreme[g].layer, c.layer);
          break;
        case kDownG:
          extreme[g].layer = std::max(extreme[g].layer, c.layer);
          break;
      }
    }
    groups[g].push_back(m);
  }
  for (std::size_t g = 0; g < kNumGroups; ++g) {
    if (groups[g].empty()) continue;
    TileCoord next = here;
    if (g == kEastG || g == kWestG) next.col = extreme[g].col;
    else if (g == kSouthG || g == kNorthG) next.row = extreme[g].row;
    else next.layer = extreme[g].layer;
    const TileId endpoint = mesh_->tile_at(next);
    add_flow(from, endpoint, flits_per_cycle);
    add_multicast_tree(endpoint, std::move(groups[g]), flits_per_cycle);
  }
}

ContentionModel::ContentionModel(const ObmProblem& problem,
                                 const Mapping& mapping,
                                 const ContentionConfig& config)
    : mesh_(&problem.mesh()) {
  NOCMAP_REQUIRE(mapping.is_valid_permutation(problem.num_threads()),
                 "contention model needs a valid mapping");
  NOCMAP_REQUIRE(config.injection_scale > 0.0,
                 "injection scale must be positive");
  load_.assign(problem.num_tiles() * kLinkSlots, 0.0);

  const Workload& wl = problem.workload();
  const auto n = static_cast<double>(problem.num_tiles());
  const MemoryTrafficMode mode = problem.model().mode();
  const auto mcs = mesh_->mc_tiles();

  for (std::size_t j = 0; j < wl.num_threads(); ++j) {
    const ThreadProfile& t = wl.thread(j);
    const TileId s = mapping.tile_of(j);
    // Rates are requests per kilocycle.
    const double cache_rate =
        t.cache_rate / 1000.0 * config.injection_scale;
    const double memory_rate =
        t.memory_rate / 1000.0 * config.injection_scale;

    if (cache_rate > 0.0) {
      const double per_bank = cache_rate / n;
      for (TileId bank = 0; bank < problem.num_tiles(); ++bank) {
        add_flow(s, bank, per_bank * config.request_flits);
        if (config.include_replies) {
          add_flow(bank, s, per_bank * config.reply_flits);
        }
      }
    }
    if (memory_rate > 0.0) {
      switch (mode) {
        case MemoryTrafficMode::kProximity: {
          const TileId mc = mesh_->nearest_mc(s);
          add_flow(s, mc, memory_rate * config.request_flits);
          if (config.include_replies) {
            add_flow(mc, s, memory_rate * config.reply_flits);
          }
          break;
        }
        case MemoryTrafficMode::kInterleaved: {
          const double per_mc =
              memory_rate / static_cast<double>(mcs.size());
          for (TileId mc : mcs) {
            add_flow(s, mc, per_mc * config.request_flits);
            if (config.include_replies) {
              add_flow(mc, s, per_mc * config.reply_flits);
            }
          }
          break;
        }
        case MemoryTrafficMode::kMulticast: {
          add_multicast_tree(s, {mcs.begin(), mcs.end()},
                             memory_rate * config.request_flits);
          // One data reply, from the designated responder (nearest MC).
          if (config.include_replies) {
            add_flow(mesh_->nearest_mc(s), s,
                     memory_rate * config.reply_flits);
          }
          break;
        }
      }
    }
  }
}

double ContentionModel::link_load(TileId from, TileId to) const {
  return load_[link_index(from, to)];
}

double ContentionModel::max_utilization() const {
  return *std::max_element(load_.begin(), load_.end());
}

double ContentionModel::mean_utilization() const {
  // Count only physical links (border tiles lack some directions; their
  // slots stay zero and are excluded).
  const std::size_t planar =
      2 * (mesh_->rows() * (mesh_->cols() - 1) +
           mesh_->cols() * (mesh_->rows() - 1)) * mesh_->layers();
  const std::size_t vertical =
      2 * (mesh_->layers() - 1) * mesh_->tiles_per_layer();
  const std::size_t links = planar + vertical;
  double sum = 0.0;
  for (double u : load_) sum += u;
  return links > 0 ? sum / static_cast<double>(links) : 0.0;
}

double ContentionModel::saturation_scale() const {
  const double u = max_utilization();
  return u > 0.0 ? 1.0 / u : std::numeric_limits<double>::infinity();
}

double ContentionModel::queue_delay(double utilization) {
  const double u = std::clamp(utilization, 0.0, 0.999);
  return u / (2.0 * (1.0 - u));
}

double ContentionModel::expected_packet_queuing(TileId src,
                                                TileId dst) const {
  if (src == dst) return 0.0;
  double total = 0.0;
  walk_path(*mesh_, src, dst, [&](TileId at, TileId next) {
    total += queue_delay(link_load(at, next));
  });
  return total;
}

double ContentionModel::predicted_td_q() const {
  // A random flit lands on link L with probability proportional to L's
  // load, and then waits W(u_L).
  double weighted = 0.0;
  double total = 0.0;
  for (double u : load_) {
    weighted += u * queue_delay(u);
    total += u;
  }
  return total > 0.0 ? weighted / total : 0.0;
}

double ContentionModel::total_flit_hops() const {
  double sum = 0.0;
  for (double u : load_) sum += u;
  return sum;
}

}  // namespace nocmap
