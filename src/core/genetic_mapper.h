// Genetic-search baseline for OBM.
//
// The paper's related work (Section IV, refs [14][17]) cites genetic search
// as a general neighborhood-search approach to NoC mapping that is "too
// time-consuming to reach a satisfying solution"; we implement it so that
// claim can be measured rather than assumed (see ext_heuristic_faceoff).
//
// Standard permutation GA: tournament selection, PMX (partially mapped
// crossover, which preserves permutation validity), swap mutation, and
// elitism, with max-APL as the (minimized) fitness.
#pragma once

#include <cstdint>

#include "core/mapper.h"
#include "core/parallel.h"

namespace nocmap {

struct GeneticParams {
  std::size_t population = 64;
  std::size_t generations = 200;
  std::size_t tournament = 4;
  double crossover_rate = 0.9;
  double mutation_rate = 0.2;  ///< probability of one swap per offspring
  std::size_t elites = 2;      ///< individuals copied unchanged
  std::uint64_t seed = 1;
  /// Fitness-evaluation execution policy. Breeding (selection, PMX,
  /// mutation) stays on one RNG stream and is serial; the per-individual
  /// fitness evaluations are pure and fan out, so results are identical at
  /// any thread count.
  ParallelConfig parallel = {};
};

class GeneticMapper final : public Mapper {
 public:
  explicit GeneticMapper(GeneticParams params = {}) : params_(params) {}

  std::string name() const override { return "GA"; }
  Mapping map(const ObmProblem& problem) override;

  const GeneticParams& params() const { return params_; }

 private:
  GeneticParams params_;
};

}  // namespace nocmap
