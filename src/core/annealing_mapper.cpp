#include "core/annealing_mapper.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "core/cost_cache.h"
#include "core/evaluator.h"
#include "obs/metrics.h"
#include "util/fastmath.h"
#include "util/rng.h"

namespace nocmap {

namespace {

// Iteration-throughput metrics (docs/metrics-schema.md). Accumulated locally
// per chain and published with one add each when the chain finishes, so the
// per-iteration hot loop carries plain integer increments only.
const obs::Timer t_map("sa.map");
const obs::Counter c_chains("sa.chains");
const obs::Counter c_iterations("sa.iterations");
const obs::Counter c_accepts("sa.accepts");

}  // namespace

const char* anneal_objective_name(AnnealObjective objective) {
  switch (objective) {
    case AnnealObjective::kMaxApl: return "max-APL";
    case AnnealObjective::kDevApl: return "dev-APL";
    case AnnealObjective::kMinToMax: return "min-to-max";
  }
  return "?";
}

std::string AnnealingMapper::name() const {
  if (params_.objective == AnnealObjective::kMaxApl) return "SA";
  return std::string("SA(") + anneal_objective_name(params_.objective) + ")";
}

namespace {

/// Scalar objective (minimized) from the evaluator's per-app APLs.
double objective_value(const MappingEvaluator& eval, std::size_t num_apps,
                       AnnealObjective kind) {
  switch (kind) {
    case AnnealObjective::kMaxApl:
      return eval.objective();
    case AnnealObjective::kDevApl: {
      // Population stddev over applications with traffic.
      double sum = 0.0, sum_sq = 0.0;
      std::size_t count = 0;
      for (std::size_t a = 0; a < num_apps; ++a) {
        const double apl = eval.apl(a);
        if (apl > 0.0) {
          sum += apl;
          sum_sq += apl * apl;
          ++count;
        }
      }
      if (count == 0) return 0.0;
      const double mean = sum / static_cast<double>(count);
      return std::sqrt(
          std::max(0.0, sum_sq / static_cast<double>(count) - mean * mean));
    }
    case AnnealObjective::kMinToMax: {
      double lo = std::numeric_limits<double>::infinity();
      double hi = 0.0;
      for (std::size_t a = 0; a < num_apps; ++a) {
        const double apl = eval.apl(a);
        if (apl > 0.0) {
          lo = std::min(lo, apl);
          hi = std::max(hi, apl);
        }
      }
      if (hi == 0.0) return 0.0;
      return -lo / hi;  // maximize the ratio => minimize its negation
    }
  }
  return 0.0;
}

}  // namespace

Mapping AnnealingMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(params_.iterations > 0, "SA needs at least one iteration");
  NOCMAP_REQUIRE(params_.restarts > 0, "SA needs at least one restart");
  const obs::ScopedTimer map_scope(t_map);
  const std::size_t n = problem.num_threads();
  const std::size_t num_apps = problem.num_applications();
  const ThreadCostCache cache(problem.workload(), problem.model());

  struct ChainResult {
    Mapping best;
    double obj = std::numeric_limits<double>::infinity();
  };

  // Random initial state, shuffled directly in the mapping's own storage.
  auto initial_mapping = [&](Rng& rng) {
    Mapping initial;
    initial.thread_to_tile.resize(n);
    std::iota(initial.thread_to_tile.begin(), initial.thread_to_tile.end(),
              TileId{0});
    rng.shuffle(initial.thread_to_tile);
    return initial;
  };

  // Cooling schedule shared by both chain variants: relative to the
  // max-APL magnitude so acceptance probabilities stay meaningful for all
  // objectives.
  auto cooling = [&](const MappingEvaluator& eval) {
    const double scale = std::max(eval.max_apl(), 1.0);
    const double t0 = std::max(params_.initial_temp_fraction * scale, 1e-9);
    const double t_end = std::max(t0 * params_.final_temp_fraction, 1e-12);
    const double alpha =
        std::pow(t_end / t0, 1.0 / static_cast<double>(params_.iterations));
    return std::pair<double, double>(t0, alpha);
  };

  // Flat max-APL chain: the hot configuration (the paper's OBM objective).
  // The chain owns its whole state as flat arrays — permutation, per-app
  // numerators, per-app weighted APLs — and fuses move scoring into the
  // walk: each proposal is scored against the *current* state by the same
  // delta substitution MappingEvaluator::score_swap_candidates performs
  // (4 cost-row lookups, affected numerators re-derived, weighted max over
  // applications), so there is never a stale prescore to discard, and an
  // accepted move commits with a handful of stores instead of a canonical
  // O(N/A) recompute. Proposals are pre-drawn in blocks of 64 (two bounded
  // indices per raw PCG draw, multiply-shift, bias < 1e-6 — irrelevant for
  // a Metropolis walk) so the generator's serial dependency chain is off
  // the scoring path.
  //
  // Numerators evolve by delta arithmetic here — the annealer trades the
  // evaluator's purity invariant (which exists for the parallel SSS sweep's
  // apply/revert exactness, not needed inside a sequential chain) for
  // per-move cost; every 8192 consumed iterations the numerators are
  // re-derived from the permutation to keep the accumulated rounding drift
  // bounded, and the returned best mapping is re-scored canonically so the
  // cross-restart argmin merge sees exact objectives.
  //
  // Uphill acceptance compares a single-draw uniform32() variate (2^-32
  // resolution) against fast_exp_neg — deterministic arithmetic, no libm.
  // For delta >= 23·temp the true probability e^-23 is below that
  // resolution: the chain accepts only the exact-zero draw (and only while
  // exp(-delta/temp) is still positive, i.e. delta < ~700·temp), the same
  // decision the comparison would make, without the polynomial.
  //
  // The RNG draw pattern differs from the classic loop's (paired bounded
  // draws, one uniform32 lazily per uphill move), so chains were
  // re-goldened against the classic annealer: equal mapping quality on the
  // bench workloads, with the batch_eval / mapper_relations oracles as the
  // safety net.
  auto run_chain_max_apl = [&](Rng rng) -> ChainResult {
    Mapping state = initial_mapping(rng);
    std::vector<TileId>& perm = state.thread_to_tile;

    // Frozen per-app tables. inv_wden folds the zero-traffic guard: apps
    // with no traffic get factor 0, contributing 0 to the max exactly as
    // the canonical objective() skips them (all weighted APLs are >= 0).
    const Workload& wl = problem.workload();
    std::vector<std::uint32_t> app_of(n);
    for (std::size_t j = 0; j < n; ++j) {
      app_of[j] = static_cast<std::uint32_t>(wl.application_of(j));
    }
    std::vector<double> inv_wden(num_apps, 0.0);
    std::vector<double> den(num_apps, 0.0);
    for (std::size_t a = 0; a < num_apps; ++a) {
      for (std::size_t j = wl.first_thread(a); j < wl.last_thread(a); ++j) {
        den[a] += wl.thread(j).total_rate();
      }
      if (den[a] > 0.0) inv_wden[a] = problem.app_weight(a) / den[a];
    }

    std::vector<double> num(num_apps);
    std::vector<double> wapl(num_apps);
    // (Re)derives numerators and weighted APLs from the permutation in
    // canonical thread-ascending order; returns the current objective.
    auto renormalize = [&]() -> double {
      double worst = 0.0;
      for (std::size_t a = 0; a < num_apps; ++a) {
        double sum = 0.0;
        for (std::size_t j = wl.first_thread(a); j < wl.last_thread(a); ++j) {
          sum += cache.cost(j, perm[j]);
        }
        num[a] = sum;
        wapl[a] = sum * inv_wden[a];
        worst = std::max(worst, wapl[a]);
      }
      return worst;
    };
    double current = renormalize();
    ChainResult result{state, current};

    const MappingEvaluator cooling_eval(problem, state, cache);
    const auto [t0, alpha] = cooling(cooling_eval);

    constexpr std::size_t kBlock = 64;
    std::uint32_t j1s[kBlock];
    std::uint32_t j2s[kBlock];
    const auto un64 = static_cast<std::uint64_t>(n);

    double temp = t0;
    std::uint64_t accepts = 0;
    std::size_t done = 0;
    std::size_t since_renorm = 0;
    while (done < params_.iterations) {
      const std::size_t count = std::min(kBlock, params_.iterations - done);
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t m1 = static_cast<std::uint64_t>(rng()) * un64;
        j1s[i] = static_cast<std::uint32_t>(m1 >> 32);
        const std::uint64_t m2 =
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(m1)) * un64;
        j2s[i] = static_cast<std::uint32_t>(m2 >> 32);
      }
      for (std::size_t i = 0; i < count; ++i, temp *= alpha) {
        const std::size_t j1 = j1s[i];
        const std::size_t j2 = j2s[i];
        if (j1 == j2) continue;
        const std::size_t a1 = app_of[j1];
        const std::size_t a2 = app_of[j2];
        const TileId t1 = perm[j1];
        const TileId t2 = perm[j2];
        const double c11 = cache.cost(j1, t1);
        const double c12 = cache.cost(j1, t2);
        const double c22 = cache.cost(j2, t2);
        const double c21 = cache.cost(j2, t1);
        double n1, n2;
        if (a1 == a2) {
          n1 = n2 = num[a1] - c11 - c22 + c12 + c21;
        } else {
          n1 = num[a1] - c11 + c12;
          n2 = num[a2] - c22 + c21;
        }
        const double v1 = n1 * inv_wden[a1];
        const double v2 = n2 * inv_wden[a2];
        double worst = v1 > v2 ? v1 : v2;
        for (std::size_t a = 0; a < num_apps; ++a) {
          if (a != a1 && a != a2 && wapl[a] > worst) worst = wapl[a];
        }
        const double delta = worst - current;
        bool take = delta <= 0.0;
        if (!take) {
          const double u = rng.uniform32();
          take = delta < 23.0 * temp
                     ? u < fast_exp_neg(delta / temp)
                     : u == 0.0 && delta < 700.0 * temp;
        }
        if (take) {
          ++accepts;
          perm[j1] = t2;
          perm[j2] = t1;
          num[a1] = n1;
          num[a2] = n2;
          wapl[a1] = v1;
          wapl[a2] = v2;
          current = worst;
          if (current < result.obj) {
            result.obj = current;
            result.best = state;  // copy-on-improvement
          }
        }
      }
      done += count;
      since_renorm += count;
      if (since_renorm >= 8192) {
        current = renormalize();
        since_renorm = 0;
      }
    }
    // Canonical objective of the best mapping, so the restart merge (and
    // the reported quality) never carries delta-arithmetic drift.
    result.obj = MappingEvaluator(problem, result.best, cache).objective();
    c_chains.add();
    c_iterations.add(params_.iterations);
    c_accepts.add(accepts);
    return result;
  };

  // Classic one-swap-at-a-time chain for the alternative objectives, whose
  // scalarizations need the evaluator's per-app APLs after the move.
  auto run_chain_classic = [&](Rng rng) -> ChainResult {
    MappingEvaluator eval(problem, initial_mapping(rng), cache);
    double current = objective_value(eval, num_apps, params_.objective);
    ChainResult result{eval.mapping(), current};
    const auto [t0, alpha] = cooling(eval);

    double temp = t0;
    std::uint64_t iterations = 0;
    std::uint64_t accepts = 0;
    for (std::size_t it = 0; it < params_.iterations; ++it, temp *= alpha) {
      ++iterations;
      const auto j1 = static_cast<std::size_t>(
          rng.uniform_u32(static_cast<std::uint32_t>(n)));
      const auto j2 = static_cast<std::size_t>(
          rng.uniform_u32(static_cast<std::uint32_t>(n)));
      if (j1 == j2) continue;

      eval.swap_threads(j1, j2);
      const double candidate = objective_value(eval, num_apps,
                                               params_.objective);
      const double delta = candidate - current;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
        ++accepts;
        current = candidate;
        if (current < result.obj) {
          result.obj = current;
          result.best = eval.mapping();
        }
      } else {
        eval.swap_threads(j1, j2);  // revert
      }
    }
    c_chains.add();
    c_iterations.add(iterations);
    c_accepts.add(accepts);
    return result;
  };

  // One full annealing chain driven by its own RNG stream. Chains share
  // only the problem and the read-only cost cache, so any number of them
  // can run concurrently.
  auto run_chain = [&](Rng rng) -> ChainResult {
    return params_.objective == AnnealObjective::kMaxApl
               ? run_chain_max_apl(std::move(rng))
               : run_chain_classic(std::move(rng));
  };

  // The single-restart path is the canonical chain, seeded exactly as the
  // classic serial annealer.
  if (params_.restarts == 1) return run_chain(Rng(params_.seed)).best;

  const std::vector<Rng> streams =
      Rng(params_.seed).fork_streams(params_.restarts);
  std::vector<ChainResult> results(params_.restarts);
  ParallelTrialRunner runner(params_.parallel);
  runner.for_each(params_.restarts,
                  [&](std::size_t r) { results[r] = run_chain(streams[r]); });

  std::vector<double> objectives;
  objectives.reserve(results.size());
  for (const ChainResult& r : results) objectives.push_back(r.obj);
  return std::move(results[ParallelTrialRunner::argmin(objectives)].best);
}

}  // namespace nocmap
