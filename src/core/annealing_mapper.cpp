#include "core/annealing_mapper.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "core/cost_cache.h"
#include "core/evaluator.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace nocmap {

namespace {

// Iteration-throughput metrics (docs/metrics-schema.md). Accumulated locally
// per chain and published with one add each when the chain finishes, so the
// per-iteration hot loop carries plain integer increments only.
const obs::Timer t_map("sa.map");
const obs::Counter c_chains("sa.chains");
const obs::Counter c_iterations("sa.iterations");
const obs::Counter c_accepts("sa.accepts");

}  // namespace

const char* anneal_objective_name(AnnealObjective objective) {
  switch (objective) {
    case AnnealObjective::kMaxApl: return "max-APL";
    case AnnealObjective::kDevApl: return "dev-APL";
    case AnnealObjective::kMinToMax: return "min-to-max";
  }
  return "?";
}

std::string AnnealingMapper::name() const {
  if (params_.objective == AnnealObjective::kMaxApl) return "SA";
  return std::string("SA(") + anneal_objective_name(params_.objective) + ")";
}

namespace {

/// Scalar objective (minimized) from the evaluator's per-app APLs.
double objective_value(const MappingEvaluator& eval, std::size_t num_apps,
                       AnnealObjective kind) {
  switch (kind) {
    case AnnealObjective::kMaxApl:
      return eval.objective();
    case AnnealObjective::kDevApl: {
      // Population stddev over applications with traffic.
      double sum = 0.0, sum_sq = 0.0;
      std::size_t count = 0;
      for (std::size_t a = 0; a < num_apps; ++a) {
        const double apl = eval.apl(a);
        if (apl > 0.0) {
          sum += apl;
          sum_sq += apl * apl;
          ++count;
        }
      }
      if (count == 0) return 0.0;
      const double mean = sum / static_cast<double>(count);
      return std::sqrt(
          std::max(0.0, sum_sq / static_cast<double>(count) - mean * mean));
    }
    case AnnealObjective::kMinToMax: {
      double lo = std::numeric_limits<double>::infinity();
      double hi = 0.0;
      for (std::size_t a = 0; a < num_apps; ++a) {
        const double apl = eval.apl(a);
        if (apl > 0.0) {
          lo = std::min(lo, apl);
          hi = std::max(hi, apl);
        }
      }
      if (hi == 0.0) return 0.0;
      return -lo / hi;  // maximize the ratio => minimize its negation
    }
  }
  return 0.0;
}

}  // namespace

Mapping AnnealingMapper::map(const ObmProblem& problem) {
  NOCMAP_REQUIRE(params_.iterations > 0, "SA needs at least one iteration");
  NOCMAP_REQUIRE(params_.restarts > 0, "SA needs at least one restart");
  const obs::ScopedTimer map_scope(t_map);
  const std::size_t n = problem.num_threads();
  const std::size_t num_apps = problem.num_applications();
  const ThreadCostCache cache(problem.workload(), problem.model());

  struct ChainResult {
    Mapping best;
    double obj = std::numeric_limits<double>::infinity();
  };

  // One full annealing chain driven by its own RNG stream. Chains share
  // only the problem and the read-only cost cache, so any number of them
  // can run concurrently.
  auto run_chain = [&](Rng rng) -> ChainResult {
    // Random initial state, shuffled directly in the mapping's own storage.
    // The templated Fisher–Yates makes the same uniform_u32 draws as
    // random_permutation did, so every chain's stream is unchanged.
    Mapping initial;
    initial.thread_to_tile.resize(n);
    std::iota(initial.thread_to_tile.begin(), initial.thread_to_tile.end(),
              TileId{0});
    rng.shuffle(initial.thread_to_tile);
    MappingEvaluator eval(problem, std::move(initial), cache);

    double current = objective_value(eval, num_apps, params_.objective);
    ChainResult result{eval.mapping(), current};

    // Temperature scale: relative to the max-APL magnitude so acceptance
    // probabilities stay meaningful for all objectives.
    const double scale = std::max(eval.max_apl(), 1.0);
    const double t0 = std::max(params_.initial_temp_fraction * scale, 1e-9);
    const double t_end = std::max(t0 * params_.final_temp_fraction, 1e-12);
    const double alpha =
        std::pow(t_end / t0, 1.0 / static_cast<double>(params_.iterations));

    double temp = t0;
    std::uint64_t iterations = 0;
    std::uint64_t accepts = 0;
    for (std::size_t it = 0; it < params_.iterations; ++it, temp *= alpha) {
      ++iterations;
      const auto j1 = static_cast<std::size_t>(
          rng.uniform_u32(static_cast<std::uint32_t>(n)));
      const auto j2 = static_cast<std::size_t>(
          rng.uniform_u32(static_cast<std::uint32_t>(n)));
      if (j1 == j2) continue;

      eval.swap_threads(j1, j2);
      const double candidate = objective_value(eval, num_apps,
                                               params_.objective);
      const double delta = candidate - current;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temp)) {
        ++accepts;
        current = candidate;
        if (current < result.obj) {
          result.obj = current;
          result.best = eval.mapping();
        }
      } else {
        eval.swap_threads(j1, j2);  // revert
      }
    }
    c_chains.add();
    c_iterations.add(iterations);
    c_accepts.add(accepts);
    return result;
  };

  // The single-restart path is the canonical chain, seeded exactly as the
  // classic serial annealer.
  if (params_.restarts == 1) return run_chain(Rng(params_.seed)).best;

  const std::vector<Rng> streams =
      Rng(params_.seed).fork_streams(params_.restarts);
  std::vector<ChainResult> results(params_.restarts);
  ParallelTrialRunner runner(params_.parallel);
  runner.for_each(params_.restarts,
                  [&](std::size_t r) { results[r] = run_chain(streams[r]); });

  std::vector<double> objectives;
  objectives.reserve(results.size());
  for (const ChainResult& r : results) objectives.push_back(r.obj);
  return std::move(results[ParallelTrialRunner::argmin(objectives)].best);
}

}  // namespace nocmap
