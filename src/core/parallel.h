// Deterministic parallel execution for the mapping algorithms.
//
// Every parallel path in the mappers follows the same discipline so results
// are bit-identical at any thread count:
//
//   1. *Fixed work geometry.* The decomposition into independent units
//      (Monte-Carlo shards, SA restarts, GA fitness slots, SSS window
//      rounds) depends only on the problem and the algorithm parameters —
//      never on the thread count. Threads only change which worker executes
//      a unit.
//   2. *Pure units, slotted results.* Each unit reads shared state that is
//      frozen for the duration of the fan-out and writes only to its own
//      pre-allocated result slot. Randomized units draw from their own
//      forked RNG stream (Rng::fork / fork_streams).
//   3. *Canonical merges.* Results are combined serially in slot order with
//      deterministic tie-breaking (lowest index wins).
//
// ParallelConfig is the knob threaded through every mapper's options and the
// bench layer; ParallelTrialRunner is the execution engine the mappers share.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>

#include "util/thread_pool.h"

namespace nocmap {

/// Parallelism policy for a mapper.
struct ParallelConfig {
  /// Worker count: 0 means std::thread::hardware_concurrency(), 1 runs
  /// everything inline on the calling thread (the serial path).
  std::size_t num_threads = 0;
  /// When true (the default) every algorithm follows its canonical serial
  /// protocol exactly, so the mapping is bit-identical to the 1-thread run.
  /// When false, SSS may commit window swaps evaluated against a stale
  /// snapshot (batched commits with revalidation): still reproducible
  /// run-to-run and race-free, but following the batched protocol rather
  /// than the canonical one, trading a little solution quality for fewer
  /// discarded speculative evaluations.
  bool deterministic = true;

  /// The concrete worker count (resolves 0 to the hardware concurrency).
  std::size_t resolved_threads() const;
  /// True when everything runs inline on the calling thread.
  bool serial() const { return resolved_threads() == 1; }

  static ParallelConfig serial_config() { return {1, true}; }
};

/// Runs batches of independent work units for a mapper, inline when the
/// config resolves to one thread and on an owned ThreadPool otherwise.
/// The unit body must be pure up to its own result slot (discipline above);
/// under that contract for_each is deterministic by construction.
class ParallelTrialRunner {
 public:
  explicit ParallelTrialRunner(const ParallelConfig& config);
  ~ParallelTrialRunner();

  ParallelTrialRunner(const ParallelTrialRunner&) = delete;
  ParallelTrialRunner& operator=(const ParallelTrialRunner&) = delete;

  std::size_t num_threads() const { return threads_; }
  bool parallel() const { return pool_ != nullptr; }

  /// Runs body(i) for i in [0, count) and blocks until all complete.
  /// Single-unit batches run inline even on a parallel runner: there is
  /// nothing to overlap, and the result is identical either way. Units in
  /// this codebase are chunky (trial shards, SA chains, Hungarian solves,
  /// window rounds), so any batch of two or more is worth dispatching.
  void for_each(std::size_t count,
                const std::function<void(std::size_t)>& body);

  /// Runs body(lo, hi) over consecutive half-open ranges of [0, count)
  /// of width `batch_size` (the final range ragged), one range per work
  /// unit. The range geometry depends only on (count, batch_size) — never
  /// the worker count — so a batched fan-out (e.g. the GA scoring a
  /// population through the batch evaluator in lane blocks) keeps the
  /// fixed-work-geometry discipline: per-slot results are identical at any
  /// thread count.
  void for_each_batch(std::size_t count, std::size_t batch_size,
                      const std::function<void(std::size_t, std::size_t)>& body);

  /// Canonical merge: index of the smallest score, ties to the lowest
  /// index. Empty input returns npos.
  static std::size_t argmin(std::span<const double> scores);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null on the serial path
};

}  // namespace nocmap
