// Migration-aware dynamic remapping (extension of paper Section IV.B).
//
// The paper proposes re-solving OBM whenever applications arrive or leave.
// A from-scratch re-solve may move every thread, and each migration costs
// real work (context transfer, private-cache warmup). This module keeps
// SSS's balance while minimizing migrations:
//
//   1. Solve the new OBM instance with sort-select-swap — this fixes the
//      per-application *tile sets*, which is what latency balance depends
//      on (each application's APL is determined by its set of tiles and
//      its internal assignment).
//   2. Within each application, assign threads to that tile set with a
//      migration-aware SAM: cost_{jk} = c_j·TC(k) + m_j·TM(k) +
//      λ·(c_j+m_j)·[k ≠ old tile of j]. The penalty λ is in cycles — the
//      latency-equivalent price of moving one unit of request rate — so it
//      composes dimensionally with the latency cost.
//
// λ = 0 reproduces plain SSS; λ → ∞ keeps every thread whose old tile is
// in its application's new tile set in place.
#pragma once

#include "core/metrics.h"
#include "core/sss_mapper.h"

namespace nocmap {

struct RemapResult {
  Mapping mapping;
  /// Threads whose tile changed relative to the old mapping.
  std::size_t moved_threads = 0;
  /// Metrics of the new mapping under the (new) problem.
  LatencyReport report;
};

/// Balanced remap with migration penalty λ (cycles per unit rate moved).
/// `old_mapping` must be a valid permutation for the problem's tile count;
/// threads beyond its size (e.g. a freshly arrived application occupying
/// previously idle pad slots) are treated as having no old position.
RemapResult remap_balanced(const ObmProblem& problem,
                           const Mapping& old_mapping,
                           double migration_penalty_cycles,
                           const SssOptions& sss_options = {});

/// Budgeted remap: remap_balanced with a *hard* cap on the number of
/// migrated threads instead of a penalty the caller must tune.
struct BudgetedRemapResult {
  /// Mapping/moved/report of the budget-respecting remap. The invariant is
  /// `remap.moved_threads <= max_moved_threads`, always.
  RemapResult remap;
  /// The migration penalty λ (cycles) whose solution met the budget; 0 when
  /// the unconstrained remap was already within budget.
  double penalty_cycles = 0.0;
  /// True when even maximal stickiness could not meet the budget (the fresh
  /// tile sets force more moves than allowed) and the old mapping was kept
  /// unchanged instead.
  bool reverted_to_old = false;
};

/// Finds the cheapest-possible remap that migrates at most
/// `max_moved_threads` threads (zero-rate pad threads move for free and are
/// not counted, as in remap_balanced):
///
///   1. Solve the unconstrained remap (λ = 0); done if within budget.
///   2. Otherwise bisect the migration penalty λ to the smallest value whose
///      sticky solution fits the budget, so quality degrades no more than
///      the budget demands.
///   3. Threads whose old tile is not in their application's fresh tile set
///      *must* move under any penalty; when those forced moves alone exceed
///      the budget, the old mapping is returned unchanged (an identity
///      remap, `reverted_to_old` set).
///
/// A budget of 0 therefore always produces an identity remap; a budget of
/// SIZE_MAX (or >= the real-thread count) reproduces remap_balanced(λ=0)
/// exactly. Unlike remap_balanced, `old_mapping` must be a valid permutation
/// for the problem (step 3's fallback has to be a legal mapping).
BudgetedRemapResult remap_budgeted(const ObmProblem& problem,
                                   const Mapping& old_mapping,
                                   std::size_t max_moved_threads,
                                   const SssOptions& sss_options = {});

/// Number of positions where the two mappings differ.
std::size_t count_moved_threads(const Mapping& before, const Mapping& after);

}  // namespace nocmap
