// Migration-aware dynamic remapping (extension of paper Section IV.B).
//
// The paper proposes re-solving OBM whenever applications arrive or leave.
// A from-scratch re-solve may move every thread, and each migration costs
// real work (context transfer, private-cache warmup). This module keeps
// SSS's balance while minimizing migrations:
//
//   1. Solve the new OBM instance with sort-select-swap — this fixes the
//      per-application *tile sets*, which is what latency balance depends
//      on (each application's APL is determined by its set of tiles and
//      its internal assignment).
//   2. Within each application, assign threads to that tile set with a
//      migration-aware SAM: cost_{jk} = c_j·TC(k) + m_j·TM(k) +
//      λ·(c_j+m_j)·[k ≠ old tile of j]. The penalty λ is in cycles — the
//      latency-equivalent price of moving one unit of request rate — so it
//      composes dimensionally with the latency cost.
//
// λ = 0 reproduces plain SSS; λ → ∞ keeps every thread whose old tile is
// in its application's new tile set in place.
#pragma once

#include "core/metrics.h"
#include "core/sss_mapper.h"

namespace nocmap {

struct RemapResult {
  Mapping mapping;
  /// Threads whose tile changed relative to the old mapping.
  std::size_t moved_threads = 0;
  /// Metrics of the new mapping under the (new) problem.
  LatencyReport report;
};

/// Balanced remap with migration penalty λ (cycles per unit rate moved).
/// `old_mapping` must be a valid permutation for the problem's tile count;
/// threads beyond its size (e.g. a freshly arrived application occupying
/// previously idle pad slots) are treated as having no old position.
RemapResult remap_balanced(const ObmProblem& problem,
                           const Mapping& old_mapping,
                           double migration_penalty_cycles,
                           const SssOptions& sss_options = {});

/// Number of positions where the two mappings differ.
std::size_t count_moved_threads(const Mapping& before, const Mapping& after);

}  // namespace nocmap
