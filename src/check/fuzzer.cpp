#include "check/fuzzer.h"

#include <filesystem>
#include <sstream>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/rng.h"

namespace nocmap::check {

namespace {

// Fuzz statistics (docs/metrics-schema.md "check.*"): totals over the
// process, surfaced through RunReports by write_report().
const obs::Counter c_scenarios("check.scenarios");
const obs::Counter c_checks("check.oracle_checks");
const obs::Counter c_failures("check.failures");
const obs::Counter c_shrink_attempts("check.shrink_attempts");
const obs::Timer t_fuzz("check.fuzz");

/// Resolves option names to oracle pointers (all oracles when empty).
std::vector<const Oracle*> resolve_oracles(
    const std::vector<std::string>& names) {
  std::vector<const Oracle*> oracles;
  if (names.empty()) {
    for (const Oracle& oracle : all_oracles()) oracles.push_back(&oracle);
    return oracles;
  }
  for (const std::string& name : names) {
    const Oracle* oracle = find_oracle(name);
    NOCMAP_REQUIRE(oracle != nullptr, "unknown oracle '" + name + "'");
    oracles.push_back(oracle);
  }
  return oracles;
}

std::string repro_filename(const FuzzFailure& failure) {
  std::ostringstream os;
  os << "repro-" << failure.oracle << "-seed" << failure.original.seed
     << ".scenario";
  return os.str();
}

}  // namespace

std::uint64_t iteration_seed(std::uint64_t base, std::size_t i) {
  // splitmix64 decorrelates consecutive bases, so overlapping runs
  // (seed=1, seed=2, ...) explore disjoint scenario streams.
  return splitmix64(base + 0x9e3779b97f4a7c15ULL * (i + 1));
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  const obs::ScopedTimer scope(t_fuzz);
  const std::vector<const Oracle*> oracles = resolve_oracles(options.oracles);

  FuzzReport report;
  for (std::size_t i = 0; i < options.iterations; ++i) {
    const ScenarioSpec spec =
        generate_scenario(iteration_seed(options.seed, i));
    ++report.scenarios;
    c_scenarios.add();

    for (const Oracle* oracle : oracles) {
      if (!oracle->applicable(spec)) continue;
      ++report.oracle_checks;
      c_checks.add();
      const OracleResult outcome = oracle->run(spec);
      if (outcome.ok) continue;

      c_failures.add();
      FuzzFailure failure;
      failure.original = spec;
      failure.minimal = spec;
      failure.oracle = oracle->name;
      failure.detail = outcome.detail;
      if (options.shrink) {
        const ShrinkResult shrunk = shrink_scenario(spec, *oracle);
        failure.minimal = shrunk.minimal;
        failure.shrink_attempts = shrunk.attempts;
        c_shrink_attempts.add(shrunk.attempts);
        // Report the minimized failure message — it names the smallest
        // reproducing configuration, which is what gets debugged.
        const OracleResult minimal_outcome = oracle->run(failure.minimal);
        if (!minimal_outcome.ok) failure.detail = minimal_outcome.detail;
      }
      if (!options.repro_dir.empty()) {
        std::filesystem::create_directories(options.repro_dir);
        const std::filesystem::path path =
            std::filesystem::path(options.repro_dir) /
            repro_filename(failure);
        save_repro(path.string(), failure.minimal, failure.oracle);
        failure.repro_path = path.string();
      }
      report.failures.push_back(std::move(failure));
      if (options.max_failures != 0 &&
          report.failures.size() >= options.max_failures) {
        return report;
      }
    }
  }
  return report;
}

ReplayResult replay_repro(const std::string& path) {
  std::string recorded;
  const ScenarioSpec spec = load_repro(path, &recorded);

  std::vector<const Oracle*> oracles;
  if (!recorded.empty()) {
    const Oracle* oracle = find_oracle(recorded);
    NOCMAP_REQUIRE(oracle != nullptr,
                   "repro names unknown oracle '" + recorded + "'");
    oracles.push_back(oracle);
  } else {
    for (const Oracle& oracle : all_oracles()) oracles.push_back(&oracle);
  }

  ReplayResult result;
  for (const Oracle* oracle : oracles) {
    if (!oracle->applicable(spec)) continue;
    c_checks.add();
    const OracleResult outcome = oracle->run(spec);
    if (!outcome.ok) {
      result.ok = false;
      result.oracle = oracle->name;
      result.detail = outcome.detail;
      return result;
    }
  }
  return result;
}

void write_report(const FuzzOptions& options, const FuzzReport& report,
                  obs::RunReport& out) {
  out.set("fuzz.seed", std::uint64_t{options.seed});
  out.set("fuzz.iterations", std::uint64_t{options.iterations});
  out.set("fuzz.scenarios", std::uint64_t{report.scenarios});
  out.set("fuzz.oracle_checks", std::uint64_t{report.oracle_checks});
  out.set("fuzz.failures", std::uint64_t{report.failures.size()});
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    const FuzzFailure& failure = report.failures[i];
    const std::string prefix = "fuzz.failure_" + std::to_string(i);
    out.set(prefix + ".oracle", failure.oracle);
    out.set(prefix + ".seed", std::uint64_t{failure.original.seed});
    out.set(prefix + ".detail", failure.detail);
    if (!failure.repro_path.empty()) {
      out.set(prefix + ".repro", failure.repro_path);
      out.note_artifact(failure.repro_path);
    }
  }
  out.attach_metrics();
}

}  // namespace nocmap::check
