#include "check/scenario.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>

#include "latency/model.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/synthesis.h"

namespace nocmap::check {

namespace {

constexpr std::uint32_t kMinSide = 3;
constexpr std::uint32_t kMaxSide = 8;
constexpr std::uint32_t kMaxLayers = 8;
constexpr std::uint32_t kMaxApps = 4;

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t seed) {
  // A fixed stream constant keeps scenario generation independent of every
  // other Rng consumer seeded with the same value.
  Rng rng(splitmix64(seed), 0x6e6f636d61702121ULL);

  ScenarioSpec spec;
  spec.seed = seed;
  spec.mesh_side = kMinSide + rng.uniform_u32(kMaxSide - kMinSide + 1);
  spec.torus = rng.bernoulli(0.1);
  if (spec.torus) {
    // The torus constructor pins corner MCs; keep the spec consistent.
    spec.mc_placement = McPlacement::kCorners;
  } else {
    const double p = rng.uniform();
    spec.mc_placement = p < 0.6   ? McPlacement::kCorners
                        : p < 0.8 ? McPlacement::kEdgeMiddles
                                  : McPlacement::kDiamond;
  }
  spec.config = "C" + std::to_string(1 + rng.uniform_u32(8));

  const std::uint32_t tiles = spec.mesh_side * spec.mesh_side;
  spec.num_applications =
      1 + rng.uniform_u32(std::min(kMaxApps, tiles));
  spec.threads_per_app = 1 + rng.uniform_u32(tiles / spec.num_applications);
  spec.injection_scale = rng.uniform(0.3, 0.9);
  spec.bursty = rng.bernoulli(0.2);

  // Generalized axes (3D stacking, arbitrary MC sets, traffic modes) are
  // drawn after all classic fields so the classic draw sequence — and with
  // it every pre-existing corpus scenario's 2D shape — is unchanged per
  // seed. Stacking only grows the tile count, so the thread budget drawn
  // above stays feasible.
  if (!spec.torus && rng.bernoulli(0.25)) {
    spec.mesh_layers = 2 + rng.uniform_u32(3);  // 2..4 dies
    if (rng.bernoulli(0.5)) {
      // TSVs are short: vertical hops at a fraction of a planar hop.
      spec.tsv_hop_cost = rng.uniform(0.25, 1.0);
    }
  }
  if (!spec.torus && rng.bernoulli(0.15)) {
    spec.mc_placement = McPlacement::kRandom;
    spec.mc_count =
        1 + rng.uniform_u32(std::min(8u, spec.num_tiles() / 2));
  }
  const double pm = rng.uniform();
  spec.traffic_mode = pm < 0.6    ? MemoryTrafficMode::kProximity
                      : pm < 0.85 ? MemoryTrafficMode::kInterleaved
                                  : MemoryTrafficMode::kMulticast;

  validate_scenario(spec);
  return spec;
}

void validate_scenario(const ScenarioSpec& spec) {
  NOCMAP_REQUIRE(spec.mesh_side >= 2 && spec.mesh_side <= 64,
                 "mesh_side out of range");
  NOCMAP_REQUIRE(spec.mesh_layers >= 1 && spec.mesh_layers <= kMaxLayers,
                 "mesh_layers out of range");
  NOCMAP_REQUIRE(spec.tsv_hop_cost > 0.0 && spec.tsv_hop_cost <= 16.0,
                 "tsv_hop_cost out of range");
  NOCMAP_REQUIRE(spec.num_applications >= 1, "need at least one application");
  NOCMAP_REQUIRE(spec.threads_per_app >= 1, "need at least one thread/app");
  NOCMAP_REQUIRE(spec.num_threads() <= spec.num_tiles(),
                 "more threads than tiles");
  NOCMAP_REQUIRE(!spec.torus || spec.mesh_layers == 1,
                 "torus wraparound is 2D-only");
  NOCMAP_REQUIRE(!spec.torus || spec.mc_placement == McPlacement::kCorners,
                 "torus meshes pin corner MCs");
  NOCMAP_REQUIRE(
      (spec.mc_placement == McPlacement::kRandom) == (spec.mc_count > 0),
      "mc_count is the kRandom MC-set size and must be zero otherwise");
  NOCMAP_REQUIRE(spec.mc_count <= spec.num_tiles(), "more MCs than tiles");
  NOCMAP_REQUIRE(spec.injection_scale > 0.0 && spec.injection_scale <= 2.0,
                 "injection_scale out of range");
  parsec_config(spec.config);  // throws on unknown name
}

Mesh build_mesh(const ScenarioSpec& spec) {
  validate_scenario(spec);
  if (spec.torus) return Mesh::square_torus(spec.mesh_side);
  if (spec.mc_placement == McPlacement::kRandom) {
    // Partial Fisher-Yates over the tile ids on a dedicated stream; the
    // sorted prefix is the MC set. Depends only on (seed, mc_count,
    // geometry) so the fuzzer, shrinker, and sweep all rebuild the same
    // chip for a given spec.
    Rng rng(splitmix64(spec.seed), 0x6d632d736574212dULL);
    std::vector<TileId> pool(spec.num_tiles());
    std::iota(pool.begin(), pool.end(), TileId{0});
    for (std::uint32_t i = 0; i < spec.mc_count; ++i) {
      const std::uint32_t j =
          i + rng.uniform_u32(static_cast<std::uint32_t>(pool.size()) - i);
      std::swap(pool[i], pool[j]);
    }
    std::vector<TileId> mcs(pool.begin(), pool.begin() + spec.mc_count);
    std::sort(mcs.begin(), mcs.end());
    if (spec.mesh_layers > 1) {
      return Mesh(spec.mesh_layers, spec.mesh_side, spec.mesh_side,
                  std::move(mcs), spec.tsv_hop_cost);
    }
    return Mesh(spec.mesh_side, spec.mesh_side, std::move(mcs));
  }
  if (spec.mesh_layers > 1) {
    return Mesh::stacked_with_placement(spec.mesh_layers, spec.mesh_side,
                                        spec.mc_placement,
                                        spec.tsv_hop_cost);
  }
  return Mesh::square_with_placement(spec.mesh_side, spec.mc_placement);
}

bool simulator_supported(const ScenarioSpec& spec) {
  // Network's neighbor map covers planar and vertical links but no torus
  // wraparound (network.cpp rejects torus meshes outright).
  return !spec.torus;
}

ObmProblem build_problem(const ScenarioSpec& spec) {
  const Mesh mesh = build_mesh(spec);
  SynthesisOptions opt;
  opt.num_applications = spec.num_applications;
  opt.threads_per_app = spec.threads_per_app;
  Workload workload =
      synthesize_workload(parsec_config(spec.config), spec.seed, opt);
  if (workload.num_threads() < mesh.num_tiles()) {
    workload = workload.padded_to(mesh.num_tiles());
  }
  return ObmProblem(
      TileLatencyModel(mesh, LatencyParams{}, spec.traffic_mode),
      std::move(workload));
}

std::string to_repro(const ScenarioSpec& spec, const std::string& oracle) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10)
     << "# nocmap_fuzz repro v1\n"
     << "seed=" << spec.seed << "\n"
     << "mesh_side=" << spec.mesh_side << "\n"
     << "mesh_layers=" << spec.mesh_layers << "\n"
     << "tsv_hop_cost=" << spec.tsv_hop_cost << "\n"
     << "mc_placement=" << mc_placement_name(spec.mc_placement) << "\n"
     << "mc_count=" << spec.mc_count << "\n"
     << "torus=" << (spec.torus ? 1 : 0) << "\n"
     << "traffic_mode=" << memory_traffic_mode_name(spec.traffic_mode)
     << "\n"
     << "config=" << spec.config << "\n"
     << "num_applications=" << spec.num_applications << "\n"
     << "threads_per_app=" << spec.threads_per_app << "\n"
     << "injection_scale=" << spec.injection_scale << "\n"
     << "bursty=" << (spec.bursty ? 1 : 0) << "\n";
  if (!oracle.empty()) os << "oracle=" << oracle << "\n";
  return os.str();
}

ScenarioSpec from_repro(const std::string& text, std::string* oracle_out) {
  ScenarioSpec spec;
  std::string oracle;
  std::map<std::string, bool> seen;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    NOCMAP_REQUIRE(eq != std::string::npos,
                   "malformed repro line '" + line + "'");
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    NOCMAP_REQUIRE(!seen[key], "duplicate repro key '" + key + "'");
    seen[key] = true;
    try {
      if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "mesh_side") {
        spec.mesh_side = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "mesh_layers") {
        spec.mesh_layers = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "tsv_hop_cost") {
        spec.tsv_hop_cost = std::stod(value);
      } else if (key == "mc_placement") {
        NOCMAP_REQUIRE(mc_placement_from_name(value, spec.mc_placement),
                       "unknown mc_placement '" + value + "'");
      } else if (key == "mc_count") {
        spec.mc_count = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "torus") {
        spec.torus = std::stoi(value) != 0;
      } else if (key == "traffic_mode") {
        NOCMAP_REQUIRE(
            memory_traffic_mode_from_name(value, spec.traffic_mode),
            "unknown traffic_mode '" + value + "'");
      } else if (key == "config") {
        spec.config = value;
      } else if (key == "num_applications") {
        spec.num_applications = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "threads_per_app") {
        spec.threads_per_app = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "injection_scale") {
        spec.injection_scale = std::stod(value);
      } else if (key == "bursty") {
        spec.bursty = std::stoi(value) != 0;
      } else if (key == "oracle") {
        oracle = value;
      } else {
        NOCMAP_REQUIRE(false, "unknown repro key '" + key + "'");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      NOCMAP_REQUIRE(false, "bad value for repro key '" + key + "'");
    }
  }
  // Keys that postdate the v1 corpus (mesh_layers, tsv_hop_cost, mc_count,
  // traffic_mode) stay optional with their 2D/proximity defaults so old
  // repro files keep parsing; the classic keys remain mandatory.
  for (const char* required :
       {"seed", "mesh_side", "mc_placement", "torus", "config",
        "num_applications", "threads_per_app", "injection_scale", "bursty"}) {
    NOCMAP_REQUIRE(seen[required],
                   std::string("repro missing key '") + required + "'");
  }
  validate_scenario(spec);
  if (oracle_out != nullptr) *oracle_out = oracle;
  return spec;
}

void save_repro(const std::string& path, const ScenarioSpec& spec,
                const std::string& oracle) {
  std::ofstream os(path);
  NOCMAP_REQUIRE(os.good(), "cannot create repro file " + path);
  os << to_repro(spec, oracle);
}

ScenarioSpec load_repro(const std::string& path, std::string* oracle_out) {
  std::ifstream is(path);
  NOCMAP_REQUIRE(is.good(), "cannot open repro file " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return from_repro(buffer.str(), oracle_out);
}

}  // namespace nocmap::check
