#include "check/scenario.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>

#include "latency/model.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/synthesis.h"

namespace nocmap::check {

namespace {

constexpr std::uint32_t kMinSide = 3;
constexpr std::uint32_t kMaxSide = 8;
constexpr std::uint32_t kMaxApps = 4;

const char* placement_name(McPlacement p) {
  switch (p) {
    case McPlacement::kCorners: return "corners";
    case McPlacement::kEdgeMiddles: return "edge_middles";
    case McPlacement::kDiamond: return "diamond";
  }
  return "corners";
}

McPlacement placement_from_name(const std::string& name) {
  if (name == "corners") return McPlacement::kCorners;
  if (name == "edge_middles") return McPlacement::kEdgeMiddles;
  if (name == "diamond") return McPlacement::kDiamond;
  NOCMAP_REQUIRE(false, "unknown mc_placement '" + name + "'");
  return McPlacement::kCorners;
}

}  // namespace

ScenarioSpec generate_scenario(std::uint64_t seed) {
  // A fixed stream constant keeps scenario generation independent of every
  // other Rng consumer seeded with the same value.
  Rng rng(splitmix64(seed), 0x6e6f636d61702121ULL);

  ScenarioSpec spec;
  spec.seed = seed;
  spec.mesh_side = kMinSide + rng.uniform_u32(kMaxSide - kMinSide + 1);
  spec.torus = rng.bernoulli(0.1);
  if (spec.torus) {
    // The torus constructor pins corner MCs; keep the spec consistent.
    spec.mc_placement = McPlacement::kCorners;
  } else {
    const double p = rng.uniform();
    spec.mc_placement = p < 0.6   ? McPlacement::kCorners
                        : p < 0.8 ? McPlacement::kEdgeMiddles
                                  : McPlacement::kDiamond;
  }
  spec.config = "C" + std::to_string(1 + rng.uniform_u32(8));

  const std::uint32_t tiles = spec.num_tiles();
  spec.num_applications =
      1 + rng.uniform_u32(std::min(kMaxApps, tiles));
  spec.threads_per_app = 1 + rng.uniform_u32(tiles / spec.num_applications);
  spec.injection_scale = rng.uniform(0.3, 0.9);
  spec.bursty = rng.bernoulli(0.2);

  validate_scenario(spec);
  return spec;
}

void validate_scenario(const ScenarioSpec& spec) {
  NOCMAP_REQUIRE(spec.mesh_side >= 2 && spec.mesh_side <= 64,
                 "mesh_side out of range");
  NOCMAP_REQUIRE(spec.num_applications >= 1, "need at least one application");
  NOCMAP_REQUIRE(spec.threads_per_app >= 1, "need at least one thread/app");
  NOCMAP_REQUIRE(spec.num_threads() <= spec.num_tiles(),
                 "more threads than tiles");
  NOCMAP_REQUIRE(!spec.torus || spec.mc_placement == McPlacement::kCorners,
                 "torus meshes pin corner MCs");
  NOCMAP_REQUIRE(spec.injection_scale > 0.0 && spec.injection_scale <= 2.0,
                 "injection_scale out of range");
  parsec_config(spec.config);  // throws on unknown name
}

ObmProblem build_problem(const ScenarioSpec& spec) {
  validate_scenario(spec);
  const Mesh mesh =
      spec.torus ? Mesh::square_torus(spec.mesh_side)
                 : Mesh::square_with_placement(spec.mesh_side,
                                               spec.mc_placement);
  SynthesisOptions opt;
  opt.num_applications = spec.num_applications;
  opt.threads_per_app = spec.threads_per_app;
  Workload workload =
      synthesize_workload(parsec_config(spec.config), spec.seed, opt);
  if (workload.num_threads() < mesh.num_tiles()) {
    workload = workload.padded_to(mesh.num_tiles());
  }
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    std::move(workload));
}

std::string to_repro(const ScenarioSpec& spec, const std::string& oracle) {
  std::ostringstream os;
  os << "# nocmap_fuzz repro v1\n"
     << "seed=" << spec.seed << "\n"
     << "mesh_side=" << spec.mesh_side << "\n"
     << "mc_placement=" << placement_name(spec.mc_placement) << "\n"
     << "torus=" << (spec.torus ? 1 : 0) << "\n"
     << "config=" << spec.config << "\n"
     << "num_applications=" << spec.num_applications << "\n"
     << "threads_per_app=" << spec.threads_per_app << "\n"
     << "injection_scale="
     << std::setprecision(std::numeric_limits<double>::max_digits10)
     << spec.injection_scale << "\n"
     << "bursty=" << (spec.bursty ? 1 : 0) << "\n";
  if (!oracle.empty()) os << "oracle=" << oracle << "\n";
  return os.str();
}

ScenarioSpec from_repro(const std::string& text, std::string* oracle_out) {
  ScenarioSpec spec;
  std::string oracle;
  std::map<std::string, bool> seen;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    NOCMAP_REQUIRE(eq != std::string::npos,
                   "malformed repro line '" + line + "'");
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    NOCMAP_REQUIRE(!seen[key], "duplicate repro key '" + key + "'");
    seen[key] = true;
    try {
      if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "mesh_side") {
        spec.mesh_side = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "mc_placement") {
        spec.mc_placement = placement_from_name(value);
      } else if (key == "torus") {
        spec.torus = std::stoi(value) != 0;
      } else if (key == "config") {
        spec.config = value;
      } else if (key == "num_applications") {
        spec.num_applications = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "threads_per_app") {
        spec.threads_per_app = static_cast<std::uint32_t>(std::stoul(value));
      } else if (key == "injection_scale") {
        spec.injection_scale = std::stod(value);
      } else if (key == "bursty") {
        spec.bursty = std::stoi(value) != 0;
      } else if (key == "oracle") {
        oracle = value;
      } else {
        NOCMAP_REQUIRE(false, "unknown repro key '" + key + "'");
      }
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      NOCMAP_REQUIRE(false, "bad value for repro key '" + key + "'");
    }
  }
  for (const char* required :
       {"seed", "mesh_side", "mc_placement", "torus", "config",
        "num_applications", "threads_per_app", "injection_scale", "bursty"}) {
    NOCMAP_REQUIRE(seen[required],
                   std::string("repro missing key '") + required + "'");
  }
  validate_scenario(spec);
  if (oracle_out != nullptr) *oracle_out = oracle;
  return spec;
}

void save_repro(const std::string& path, const ScenarioSpec& spec,
                const std::string& oracle) {
  std::ofstream os(path);
  NOCMAP_REQUIRE(os.good(), "cannot create repro file " + path);
  os << to_repro(spec, oracle);
}

ScenarioSpec load_repro(const std::string& path, std::string* oracle_out) {
  std::ifstream is(path);
  NOCMAP_REQUIRE(is.good(), "cannot open repro file " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return from_repro(buffer.str(), oracle_out);
}

}  // namespace nocmap::check
