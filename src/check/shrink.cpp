#include "check/shrink.h"

#include <functional>

namespace nocmap::check {

namespace {

/// Smallest square side that can host the spec's threads on its layer count.
std::uint32_t min_side_for(const ScenarioSpec& spec) {
  std::uint32_t side = 2;
  while (side * side * spec.mesh_layers < spec.num_threads()) ++side;
  return side;
}

}  // namespace

ShrinkResult shrink_scenario(const ScenarioSpec& spec, const Oracle& oracle) {
  ShrinkResult result;
  result.minimal = spec;

  // A candidate replaces the current minimum iff it is still valid, the
  // oracle still applies, and the oracle still fails.
  auto still_fails = [&](const ScenarioSpec& candidate) {
    try {
      validate_scenario(candidate);
    } catch (const Error&) {
      return false;
    }
    if (!oracle.applicable(candidate)) return false;
    ++result.attempts;
    return !oracle.run(candidate).ok;
  };
  auto try_accept = [&](ScenarioSpec candidate) {
    if (still_fails(candidate)) {
      result.minimal = candidate;
      ++result.accepted;
      return true;
    }
    return false;
  };

  if (!still_fails(result.minimal)) return result;  // not failing: no-op

  // Phase order per the subsystem contract: apps, then threads, then mesh.
  // Each phase halves while it can, then steps by one to the floor.
  auto descend = [&](const std::function<std::uint32_t(const ScenarioSpec&)>&
                         get,
                     const std::function<void(ScenarioSpec&, std::uint32_t)>&
                         set,
                     std::uint32_t floor) {
    while (get(result.minimal) / 2 >= floor) {
      ScenarioSpec candidate = result.minimal;
      set(candidate, get(result.minimal) / 2);
      if (!try_accept(candidate)) break;
    }
    while (get(result.minimal) > floor) {
      ScenarioSpec candidate = result.minimal;
      set(candidate, get(result.minimal) - 1);
      if (!try_accept(candidate)) break;
    }
  };

  descend([](const ScenarioSpec& s) { return s.num_applications; },
          [](ScenarioSpec& s, std::uint32_t v) { s.num_applications = v; },
          1);
  descend([](const ScenarioSpec& s) { return s.threads_per_app; },
          [](ScenarioSpec& s, std::uint32_t v) { s.threads_per_app = v; },
          1);
  descend([](const ScenarioSpec& s) { return s.mesh_layers; },
          [](ScenarioSpec& s, std::uint32_t v) { s.mesh_layers = v; }, 1);
  descend([](const ScenarioSpec& s) { return s.mesh_side; },
          [](ScenarioSpec& s, std::uint32_t v) { s.mesh_side = v; },
          min_side_for(result.minimal));
  // kRandom MC sets shrink by count; the seed keeps the drawn prefix
  // stable, so a smaller count is a subset of the larger set.
  if (result.minimal.mc_placement == McPlacement::kRandom) {
    descend([](const ScenarioSpec& s) { return s.mc_count; },
            [](ScenarioSpec& s, std::uint32_t v) { s.mc_count = v; }, 1);
  }

  // Normalization: drop incidental structure the failure does not need.
  {
    ScenarioSpec candidate = result.minimal;
    candidate.torus = false;
    candidate.mc_placement = McPlacement::kCorners;
    candidate.mc_count = 0;
    if (candidate != result.minimal) try_accept(candidate);
  }
  {
    ScenarioSpec candidate = result.minimal;
    candidate.mesh_layers = 1;
    candidate.tsv_hop_cost = 1.0;
    if (candidate != result.minimal) try_accept(candidate);
  }
  {
    ScenarioSpec candidate = result.minimal;
    candidate.traffic_mode = MemoryTrafficMode::kProximity;
    if (candidate != result.minimal) try_accept(candidate);
  }
  {
    ScenarioSpec candidate = result.minimal;
    candidate.config = "C1";
    if (candidate != result.minimal) try_accept(candidate);
  }
  {
    ScenarioSpec candidate = result.minimal;
    candidate.bursty = false;
    candidate.injection_scale = 0.5;
    if (candidate != result.minimal) try_accept(candidate);
  }
  return result;
}

}  // namespace nocmap::check
