// Seeded property-based differential fuzzing driver (DESIGN.md §10).
//
// run_fuzz() walks a deterministic seed sequence derived from one base
// seed, synthesizes a scenario per iteration, runs every applicable oracle,
// and on the first failure minimizes the scenario with the shrinker and
// writes a self-contained repro file that `nocmap_fuzz --replay` (or
// replay_repro()) re-executes. Fuzz statistics are published through the
// observability counters (check.* in docs/metrics-schema.md) and can be
// folded into a RunReport via write_report().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracles.h"
#include "check/scenario.h"
#include "check/shrink.h"
#include "obs/run_report.h"

namespace nocmap::check {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t iterations = 100;
  /// Directory minimized repro files are written into (created on demand);
  /// empty disables repro writing.
  std::string repro_dir = ".";
  /// Restrict to these oracle names; empty means all registered oracles.
  std::vector<std::string> oracles;
  /// Minimize failures before reporting them.
  bool shrink = true;
  /// Stop after this many failing scenarios (0 = never stop early).
  std::size_t max_failures = 1;
};

struct FuzzFailure {
  ScenarioSpec original;
  ScenarioSpec minimal;  ///< == original when shrinking is disabled
  std::string oracle;
  std::string detail;      ///< the oracle's failure message
  std::string repro_path;  ///< "" when repro writing is disabled
  std::size_t shrink_attempts = 0;
};

struct FuzzReport {
  std::size_t scenarios = 0;      ///< scenarios generated and checked
  std::size_t oracle_checks = 0;  ///< individual oracle executions
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// The seed of fuzz iteration `i` under base seed `base` (exposed so tests
/// and repro tooling can reconstruct any iteration independently).
std::uint64_t iteration_seed(std::uint64_t base, std::size_t i);

/// Runs the fuzz loop. Throws nocmap::Error on invalid options (e.g. an
/// unknown oracle name); oracle failures are reported, not thrown.
FuzzReport run_fuzz(const FuzzOptions& options);

struct ReplayResult {
  bool ok = true;
  std::string oracle;  ///< first failing oracle, when not ok
  std::string detail;
};

/// Re-executes a repro file: the recorded oracle when one is present (and
/// still applicable), every applicable oracle otherwise.
ReplayResult replay_repro(const std::string& path);

/// Folds fuzz outcome + the check.* metric snapshot into a RunReport.
void write_report(const FuzzOptions& options, const FuzzReport& report,
                  obs::RunReport& out);

}  // namespace nocmap::check
