#include "check/oracles.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "assign/hungarian.h"
#include "core/annealing_mapper.h"
#include "core/batch_eval.h"
#include "core/cost_cache.h"
#include "core/evaluator.h"
#include "core/exact_solver.h"
#include "core/genetic_mapper.h"
#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/random_mapper.h"
#include "core/sss_mapper.h"
#include "netsim/sim.h"
#include "service/replay.h"
#include "util/rng.h"

namespace nocmap::check {

namespace {

/// Relative closeness for quantities that are the same computation run
/// through two code paths (FP association may differ, true disagreement is
/// orders of magnitude larger).
bool rel_close(double a, double b, double rel = 1e-9) {
  return std::abs(a - b) <= rel * std::max({std::abs(a), std::abs(b), 1.0});
}

OracleResult fail(std::string detail) { return {false, std::move(detail)}; }

/// The mapper roster the differential oracles cross-check. Budgets are
/// deliberately small — fuzzing wants many scenarios over polished
/// solutions — and all seeds derive from the scenario seed so a spec fully
/// determines every mapper's output. Serial execution keeps oracle runs
/// cheap under sanitizers (the engine is thread-count-invariant anyway).
std::vector<std::unique_ptr<Mapper>> scenario_mappers(
    const ScenarioSpec& spec) {
  std::vector<std::unique_ptr<Mapper>> mappers;
  mappers.push_back(std::make_unique<GlobalMapper>());
  mappers.push_back(std::make_unique<MonteCarloMapper>(
      256, spec.seed ^ 0x4d43ULL, ParallelConfig::serial_config()));
  AnnealingParams sa;
  sa.iterations = 4000;
  sa.seed = spec.seed ^ 0x5341ULL;
  sa.parallel = ParallelConfig::serial_config();
  mappers.push_back(std::make_unique<AnnealingMapper>(sa));
  SssOptions sss;
  sss.parallel = ParallelConfig::serial_config();
  mappers.push_back(std::make_unique<SortSelectSwapMapper>(sss));
  GeneticParams ga;
  ga.population = 24;
  ga.generations = 40;
  ga.seed = spec.seed ^ 0x4741ULL;
  ga.parallel = ParallelConfig::serial_config();
  mappers.push_back(std::make_unique<GeneticMapper>(ga));
  return mappers;
}

bool always(const ScenarioSpec&) { return true; }

// ---------------------------------------------------------------------------
// mapper_sanity

OracleResult run_mapper_sanity(const ScenarioSpec& spec) {
  const ObmProblem problem = build_problem(spec);

  // Cost-cache coherence: the memoized matrix must equal eq. 13 recomputed
  // from the raw model. This is the oracle the mutation canary trips.
  const ThreadCostCache cache(problem.workload(), problem.model());
  const TileLatencyModel& model = problem.model();
  for (std::size_t j = 0; j < problem.num_threads(); ++j) {
    const ThreadProfile& t = problem.workload().thread(j);
    for (TileId k = 0; k < problem.num_tiles(); ++k) {
      const double expected =
          t.cache_rate * model.tc(k) + t.memory_rate * model.tm(k);
      if (!rel_close(cache.cost(j, k), expected, 1e-12)) {
        std::ostringstream os;
        os << "cost cache incoherent at thread " << j << " tile " << k
           << ": cached " << cache.cost(j, k) << " vs model " << expected;
        return fail(os.str());
      }
    }
  }

  for (const auto& mapper : scenario_mappers(spec)) {
    const Mapping mapping = mapper->map(problem);
    if (!mapping.is_valid_permutation(problem.num_tiles())) {
      return fail(mapper->name() + " returned an invalid permutation");
    }

    // Incremental evaluator vs the batch metrics path.
    MappingEvaluator eval(problem, mapping);
    const LatencyReport report = evaluate(problem, mapping);
    if (!rel_close(eval.max_apl(), report.max_apl)) {
      std::ostringstream os;
      os << mapper->name() << ": evaluator max-APL " << eval.max_apl()
         << " != evaluate() max-APL " << report.max_apl;
      return fail(os.str());
    }
    if (!rel_close(eval.g_apl(), report.g_apl)) {
      std::ostringstream os;
      os << mapper->name() << ": evaluator g-APL " << eval.g_apl()
         << " != evaluate() g-APL " << report.g_apl;
      return fail(os.str());
    }
  }

  // Evaluator purity: after a storm of incremental swaps the live state
  // must equal a from-scratch recomputation (the parallel engine's
  // bit-identity contract rests on this).
  MappingEvaluator eval(problem, problem.identity_mapping());
  Rng rng(spec.seed, 0x73776170ULL);
  const auto n = static_cast<std::uint32_t>(problem.num_threads());
  for (int i = 0; i < 64; ++i) {
    eval.swap_threads(rng.uniform_u32(n), rng.uniform_u32(n));
  }
  if (!rel_close(eval.max_apl(), eval.recomputed_max_apl())) {
    std::ostringstream os;
    os << "evaluator drifted after swap storm: incremental "
       << eval.max_apl() << " vs recomputed " << eval.recomputed_max_apl();
    return fail(os.str());
  }
  return {};
}

// ---------------------------------------------------------------------------
// global_gapl

OracleResult run_global_gapl(const ScenarioSpec& spec) {
  const ObmProblem problem = build_problem(spec);
  GlobalMapper global;
  const double global_g = evaluate(problem, global.map(problem)).g_apl;
  for (const auto& mapper : scenario_mappers(spec)) {
    const double other_g = evaluate(problem, mapper->map(problem)).g_apl;
    if (global_g > other_g * (1.0 + 1e-9)) {
      std::ostringstream os;
      os << "Global g-APL " << global_g << " exceeds " << mapper->name()
         << " g-APL " << other_g
         << " — Global's assignment solve is no longer optimal";
      return fail(os.str());
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// exact_bound

bool exact_applicable(const ScenarioSpec& spec) {
  return spec.num_tiles() <= 16;  // branch-and-bound territory
}

OracleResult run_exact_bound(const ScenarioSpec& spec) {
  const ObmProblem problem = build_problem(spec);
  ExactSolverOptions options;
  options.max_nodes = 2'000'000;
  const ExactResult exact = solve_obm_exact(problem, options);
  if (!exact.proven_optimal) return {};  // budget bound — nothing to assert
  if (!exact.mapping.is_valid_permutation(problem.num_tiles())) {
    return fail("exact solver returned an invalid permutation");
  }
  for (const auto& mapper : scenario_mappers(spec)) {
    const double objective =
        evaluate(problem, mapper->map(problem)).objective;
    if (objective < exact.max_apl * (1.0 - 1e-9)) {
      std::ostringstream os;
      os << mapper->name() << " objective " << objective
         << " beats the proven optimum " << exact.max_apl
         << " — one of the two objective evaluations is wrong";
      return fail(os.str());
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// hungarian

OracleResult run_hungarian(const ScenarioSpec& spec) {
  Rng rng(spec.seed, 0x68756e67ULL);
  AssignmentWorkspace workspace;
  for (int round = 0; round < 3; ++round) {
    const std::size_t n = 2 + rng.uniform_u32(7);  // 2..8 — n! reachable
    CostMatrix cost(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        cost.at(r, c) = rng.uniform(0.0, 100.0);
      }
    }
    const Assignment truth = solve_assignment_brute_force(cost);
    const Assignment one_shot = solve_assignment(cost);

    const double cold_cost = workspace.solve(CostView::of(cost)).total_cost;

    // Prime the warm path on a perturbed sibling instance, then re-solve
    // the original warm: carried potentials must not change the optimum.
    CostMatrix perturbed = cost;
    for (std::size_t r = 0; r < n; ++r) {
      perturbed.at(r, rng.uniform_u32(static_cast<std::uint32_t>(n))) +=
          rng.uniform(0.0, 5.0);
    }
    workspace.solve(CostView::of(perturbed));
    const Assignment& warm = workspace.solve_warm(CostView::of(cost));

    std::vector<bool> used(n, false);
    for (const std::size_t col : warm.row_to_col) {
      if (col >= n || used[col]) {
        return fail("warm assignment is not a permutation");
      }
      used[col] = true;
    }
    for (const auto& [label, value] :
         {std::pair<const char*, double>{"one-shot", one_shot.total_cost},
          {"workspace-cold", cold_cost},
          {"workspace-warm", warm.total_cost}}) {
      if (!rel_close(value, truth.total_cost)) {
        std::ostringstream os;
        os << label << " assignment cost " << value
           << " != brute-force optimum " << truth.total_cost << " (n=" << n
           << ", round " << round << ")";
        return fail(os.str());
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// netsim oracles

bool netsim_applicable(const ScenarioSpec& spec) {
  // Simulator-unsupported topologies (torus wraparound) are classified as
  // inapplicable here — reaching the simulator would abort on its
  // NOCMAP_REQUIRE instead of failing the oracle. A tile cap keeps a fuzz
  // iteration in the tens of milliseconds while admitting small stacks
  // (2×4×4, 3×3×3, ...).
  return simulator_supported(spec) && spec.num_tiles() <= 32;
}

OracleResult run_netsim_conservation(const ScenarioSpec& spec) {
  const ObmProblem problem = build_problem(spec);
  SimConfig config;
  config.warmup_cycles = 0;  // counters then cover the whole run
  config.measure_cycles = 4000;
  config.traffic.seed = spec.seed;
  config.traffic.injection_scale = std::min(spec.injection_scale, 0.9);
  config.traffic.bursty = spec.bursty;
  const SimResult sim =
      run_simulation(problem, problem.identity_mapping(), config);

  if (sim.drain_incomplete) {
    return fail("drain phase hit its cap with packets still in flight");
  }
  if (sim.flits_injected != sim.flits_ejected) {
    std::ostringstream os;
    os << "flit conservation violated: injected " << sim.flits_injected
       << " != ejected " << sim.flits_ejected;
    return fail(os.str());
  }
  const ActivityCounters& total = sim.activity_with_drain;
  if (total.crossbar_traversals !=
      total.link_traversals + sim.flits_ejected) {
    std::ostringstream os;
    os << "crossbar identity violated: " << total.crossbar_traversals
       << " traversals != " << total.link_traversals << " link hops + "
       << sim.flits_ejected << " ejections";
    return fail(os.str());
  }
  if (total.buffer_writes != sim.flits_injected + total.link_traversals) {
    std::ostringstream os;
    os << "buffer-write identity violated: " << total.buffer_writes
       << " writes != " << sim.flits_injected << " injections + "
       << total.link_traversals << " link hops";
    return fail(os.str());
  }
  if (total.buffer_reads != total.buffer_writes) {
    std::ostringstream os;
    os << "flits left buffered after drain: " << total.buffer_writes
       << " writes vs " << total.buffer_reads << " reads";
    return fail(os.str());
  }

  // RouterLoadSummary vs the raw per-router counters it summarizes.
  const double cycles = static_cast<double>(sim.measured_cycles);
  const double tiles = static_cast<double>(problem.num_tiles());
  const double summed_crossbar =
      sim.load.mean_crossbar_per_cycle * tiles * cycles;
  if (!rel_close(summed_crossbar,
                 static_cast<double>(sim.activity.crossbar_traversals),
                 1e-6)) {
    std::ostringstream os;
    os << "RouterLoadSummary mean crossbar (" << summed_crossbar
       << " summed) disagrees with activity counters ("
       << sim.activity.crossbar_traversals << ")";
    return fail(os.str());
  }
  if (sim.load.max_crossbar_per_cycle + 1e-12 <
      sim.load.mean_crossbar_per_cycle) {
    return fail("per-router max crossbar rate below the mean");
  }
  // Independent recount of the directed links (planar per layer + TSVs),
  // deliberately not calling num_directed_links().
  const Mesh& mesh = problem.mesh();
  const double links =
      2.0 * ((mesh.rows() * (mesh.cols() - 1) +
              mesh.cols() * (mesh.rows() - 1)) *
                 mesh.layers() +
             (mesh.layers() - 1) * mesh.rows() * mesh.cols());
  const double expected_util =
      static_cast<double>(sim.activity.link_traversals) / (links * cycles);
  if (!rel_close(sim.load.link_utilization, expected_util) ||
      sim.load.link_utilization < 0.0 ||
      sim.load.link_utilization > 1.0 + 1e-12) {
    std::ostringstream os;
    os << "link utilization " << sim.load.link_utilization
       << " inconsistent with counters (expected " << expected_util << ")";
    return fail(os.str());
  }
  return {};
}

OracleResult run_netsim_rank(const ScenarioSpec& spec) {
  const ObmProblem problem = build_problem(spec);
  GlobalMapper global;
  RandomMapper random(spec.seed ^ 0x726e64ULL);
  const Mapping good = global.map(problem);
  const Mapping bad = random.map(problem);

  const double analytic_good = evaluate(problem, good).g_apl;
  const double analytic_bad = evaluate(problem, bad).g_apl;
  // Only assert rank when the analytic model predicts a decisive gap —
  // Global is *optimal* on analytic g-APL, so ordering is guaranteed there;
  // small gaps may legitimately invert under queuing effects.
  if (analytic_bad <= analytic_good * 1.20) return {};

  SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 12000;
  config.traffic.seed = spec.seed;  // paired traffic for both mappings
  config.traffic.injection_scale = std::min(spec.injection_scale, 0.9);
  config.traffic.bursty = spec.bursty;
  const SimResult sim_good = run_simulation(problem, good, config);
  const SimResult sim_bad = run_simulation(problem, bad, config);
  if (sim_bad.g_apl < sim_good.g_apl * 0.95) {
    std::ostringstream os;
    os << "measured rank disagrees with the analytic model: analytic g-APL "
       << analytic_good << " (Global) vs " << analytic_bad
       << " (random), measured " << sim_good.g_apl << " vs " << sim_bad.g_apl;
    return fail(os.str());
  }
  return {};
}

// ---------------------------------------------------------------------------
// batch_eval

/// Differential check of every batched scoring path against the scalar
/// evaluator it replaces. The batched paths advertise bit-identity (except
/// the annealer's delta-substitution prescore, which advertises ulp-level
/// agreement), so the comparisons here are ==, not rel_close: any rounding
/// reordering introduced into the batch kernels fails the fuzz campaign
/// immediately.
OracleResult run_batch_eval(const ScenarioSpec& spec) {
  const ObmProblem problem = build_problem(spec);
  const ThreadCostCache cache(problem.workload(), problem.model());
  const BatchEvaluator batch_eval(problem, cache);
  const std::size_t n = problem.num_threads();
  Rng rng(spec.seed, 0x62617463ULL);

  // Batch sizes cover the degenerate single lane, a ragged tail over the
  // pruning sub-block, and a full multiple of the internal lane block.
  static constexpr std::size_t kBatchSizes[] = {1, 7, 32, 129};
  for (const std::size_t count : kBatchSizes) {
    CandidateBatch batch(n, count);
    std::vector<std::vector<TileId>> perms(count);
    for (std::size_t b = 0; b < count; ++b) {
      const std::vector<std::size_t> p = random_permutation(n, rng);
      perms[b].assign(p.begin(), p.end());
      batch.load(b, perms[b]);
    }

    std::vector<double> scores(count);
    batch_eval.score(batch, count, scores);
    for (std::size_t b = 0; b < count; ++b) {
      Mapping m;
      m.thread_to_tile = perms[b];
      const MappingEvaluator scalar(problem, std::move(m), cache);
      if (scores[b] != scalar.objective()) {
        std::ostringstream os;
        os << "batch score[" << b << "] of " << count << " = " << scores[b]
           << " != scalar objective " << scalar.objective();
        return fail(os.str());
      }
    }

    // score_rows (candidate-major, the GA pool layout) must agree exactly.
    std::vector<TileId> rows(count * n);
    for (std::size_t b = 0; b < count; ++b) {
      std::copy(perms[b].begin(), perms[b].end(), &rows[b * n]);
    }
    std::vector<double> row_scores(count);
    batch_eval.score_rows(rows.data(), n, count, row_scores);
    for (std::size_t b = 0; b < count; ++b) {
      if (row_scores[b] != scores[b]) {
        std::ostringstream os;
        os << "score_rows[" << b << "] = " << row_scores[b]
           << " != transposed batch score " << scores[b];
        return fail(os.str());
      }
    }

    // Pruned scoring post-condition: below the cutoff the score is exact;
    // at or above it the true score is guaranteed >= the cutoff.
    const double cutoff =
        scores[rng.uniform_u32(static_cast<std::uint32_t>(count))];
    std::vector<double> pruned(count);
    batch_eval.score_pruned(batch, count, cutoff, pruned);
    for (std::size_t b = 0; b < count; ++b) {
      if (pruned[b] < cutoff && pruned[b] != scores[b]) {
        std::ostringstream os;
        os << "pruned score[" << b << "] = " << pruned[b]
           << " claims exactness below cutoff " << cutoff
           << " but the exact score is " << scores[b];
        return fail(os.str());
      }
      if (pruned[b] >= cutoff && scores[b] < cutoff) {
        std::ostringstream os;
        os << "pruned score[" << b << "] = " << pruned[b]
           << " reports >= cutoff " << cutoff
           << " but the exact score " << scores[b] << " is below it";
        return fail(os.str());
      }
    }
  }

  // score_group_candidates vs the mutating apply/revert probe it replaced
  // in the SSS window sweep: bit-identical by contract.
  {
    MappingEvaluator eval(problem, problem.identity_mapping(), cache);
    const auto un = static_cast<std::uint32_t>(n);
    for (int i = 0; i < 16; ++i) {
      eval.swap_threads(rng.uniform_u32(un), rng.uniform_u32(un));
    }
    const std::size_t w = 2 + rng.uniform_u32(3);  // window of 2..4 threads
    std::vector<std::size_t> threads;
    while (threads.size() < w) {
      const std::size_t j = rng.uniform_u32(un);
      if (std::find(threads.begin(), threads.end(), j) == threads.end()) {
        threads.push_back(j);
      }
    }
    std::vector<TileId> held(w);
    for (std::size_t x = 0; x < w; ++x) {
      held[x] = eval.mapping().tile_of(threads[x]);
    }
    // All cyclic rotations of the held tiles, transposed position-major.
    const std::size_t count = w;
    std::vector<TileId> cands(w * count);
    for (std::size_t b = 0; b < count; ++b) {
      for (std::size_t x = 0; x < w; ++x) {
        cands[x * count + b] = held[(x + b) % w];
      }
    }
    std::vector<double> group_scores(count);
    eval.score_group_candidates(threads, cands.data(), count, group_scores);
    std::vector<TileId> applied(w);
    for (std::size_t b = 0; b < count; ++b) {
      for (std::size_t x = 0; x < w; ++x) applied[x] = cands[x * count + b];
      eval.apply_group(threads, applied);
      const double truth = eval.objective();
      eval.apply_group(threads, held);  // exact revert
      if (group_scores[b] != truth) {
        std::ostringstream os;
        os << "score_group_candidates[" << b << "] = " << group_scores[b]
           << " != apply_group objective " << truth;
        return fail(os.str());
      }
    }

    // score_swap_candidates (the annealer's prescore) advertises ulp-level
    // agreement with swap + objective + revert, not bit-identity.
    std::vector<SwapProposal> proposals(24);
    for (SwapProposal& p : proposals) {
      p.j1 = rng.uniform_u32(un);
      p.j2 = rng.uniform_u32(un);
    }
    std::vector<double> swap_scores(proposals.size());
    eval.score_swap_candidates(proposals, swap_scores);
    for (std::size_t p = 0; p < proposals.size(); ++p) {
      eval.swap_threads(proposals[p].j1, proposals[p].j2);
      const double truth = eval.objective();
      eval.swap_threads(proposals[p].j1, proposals[p].j2);  // revert
      if (!rel_close(swap_scores[p], truth)) {
        std::ostringstream os;
        os << "score_swap_candidates[" << p << "] (" << proposals[p].j1
           << "<->" << proposals[p].j2 << ") = " << swap_scores[p]
           << " not within 1e-9 of the canonical objective " << truth;
        return fail(os.str());
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// service_replay

OracleResult run_service_replay(const ScenarioSpec& spec) {
  // Derive a short churn trace and service configuration from the spec.
  // Budget and threshold sweep with the seed so the fuzzer covers the
  // identity (budget 0), tight, and unbounded regimes.
  service::TraceConfig trace;
  trace.seed = spec.seed;
  trace.num_events = 32;
  trace.num_tiles = spec.num_tiles();
  trace.min_threads_per_app = 1;
  trace.max_threads_per_app =
      std::max(2u, std::min(spec.threads_per_app * 2, spec.num_tiles()));
  trace.config = spec.config;
  const std::vector<service::Event> events = service::generate_trace(trace);

  const Mesh mesh = build_mesh(spec);
  const TileLatencyModel chip(mesh, LatencyParams{}, spec.traffic_mode);

  service::ServiceConfig config;
  static constexpr std::size_t kBudgets[] = {0, 1, 2, 4,
                                             static_cast<std::size_t>(-1)};
  config.migration_budget = kBudgets[(spec.seed >> 8) % 5];
  config.degradation_threshold =
      1.05 + 0.05 * static_cast<double>((spec.seed >> 16) % 5);
  config.sss.parallel = ParallelConfig::serial_config();
  service::MappingService engine(chip, config);

  // Worker-count differential: a sibling whose fallback SSS runs on two
  // workers must emit the identical decision stream (the engine's
  // bit-identity contract, checked event by event).
  service::ServiceConfig sibling_config = config;
  sibling_config.sss.parallel = {2, true};
  service::MappingService sibling(chip, sibling_config);

  SssOptions fresh_options;
  fresh_options.parallel = ParallelConfig::serial_config();
  SortSelectSwapMapper fresh_sss(fresh_options);

  const double theta = config.degradation_threshold;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const service::Event& event = events[i];
    const std::size_t free_tiles =
        engine.num_tiles() - engine.occupied_tiles();
    bool known = false;
    for (const service::Resident& r : engine.residents()) {
      known |= r.id == event.app_id;
    }

    const service::Decision d = engine.handle(event);
    const service::Decision d2 = sibling.handle(event);
    if (!(d == d2)) {
      std::ostringstream os;
      os << "event " << i << " (" << service::event_kind_name(event.kind)
         << " app " << event.app_id
         << "): 1-worker and 2-worker decisions differ — objective " << d.objective
         << " vs " << d2.objective << ", moved " << d.moved_threads << " vs "
         << d2.moved_threads;
      return fail(os.str());
    }

    // Budget compliance: a hard cap, incremental path and fallback combined.
    if (d.moved_threads > config.migration_budget) {
      std::ostringstream os;
      os << "event " << i << " moved " << d.moved_threads
         << " resident threads, over the budget of "
         << config.migration_budget;
      return fail(os.str());
    }

    // Admission law: an arrival is accepted iff it is non-empty, fits the
    // free tiles, and its id is fresh.
    if (event.kind == service::EventKind::kArrival) {
      const std::size_t n = event.app.num_threads();
      const bool should_admit = n > 0 && n <= free_tiles && !known;
      if (d.accepted != should_admit) {
        std::ostringstream os;
        os << "event " << i << ": arrival of " << n << " threads with "
           << free_tiles << " tiles free was "
           << (d.accepted ? "accepted" : "rejected") << ", expected the "
           << (should_admit ? "opposite" : "rejection");
        return fail(os.str());
      }
    }

    // Occupancy bookkeeping vs a from-scratch recompute off the residents.
    std::size_t resident_threads = 0;
    std::vector<std::uint64_t> rebuilt(engine.num_tiles(),
                                       service::MappingService::kFreeTile);
    for (const service::Resident& r : engine.residents()) {
      if (r.tiles.size() != r.app.num_threads()) {
        return fail("resident tile list out of sync with its thread count");
      }
      resident_threads += r.tiles.size();
      for (const TileId k : r.tiles) {
        if (k >= engine.num_tiles()) {
          std::ostringstream os;
          os << "event " << i << ": resident " << r.id
             << " placed on out-of-range tile " << k;
          return fail(os.str());
        }
        if (rebuilt[k] != service::MappingService::kFreeTile) {
          std::ostringstream os;
          os << "event " << i << ": tile " << k << " owned by residents "
             << rebuilt[k] << " and " << r.id;
          return fail(os.str());
        }
        rebuilt[k] = r.id;
      }
    }
    if (d.occupied_tiles != resident_threads ||
        engine.occupied_tiles() != resident_threads) {
      std::ostringstream os;
      os << "event " << i << ": occupancy counter "
         << engine.occupied_tiles() << " != " << resident_threads
         << " resident threads";
      return fail(os.str());
    }
    if (engine.occupancy() != rebuilt) {
      return fail("occupancy() map disagrees with the resident recompute");
    }

    if (engine.residents().empty()) continue;

    // Differential objective: the service's incrementally maintained
    // max-APL vs the batch evaluator on the snapshot instance.
    const ObmProblem snapshot = engine.snapshot_problem();
    const Mapping placement = engine.snapshot_mapping();
    if (!placement.is_valid_permutation(engine.num_tiles())) {
      std::ostringstream os;
      os << "event " << i << ": snapshot mapping is not a permutation";
      return fail(os.str());
    }
    const LatencyReport report = evaluate(snapshot, placement);
    if (!rel_close(d.objective, report.max_apl)) {
      std::ostringstream os;
      os << "event " << i << ": service objective " << d.objective
         << " != evaluate() max-APL " << report.max_apl;
      return fail(os.str());
    }

    // Quality contract. The relaxed lower bound under-approximates the
    // optimum, which a fresh SSS solve over-approximates, so
    //   lower_bound <= fresh always, and
    //   objective <= threshold * lower_bound <= threshold * fresh
    // whenever the service did not flag the decision degraded.
    if (d.accepted && i % 3 == 0) {
      const double fresh = evaluate(snapshot, fresh_sss.map(snapshot)).max_apl;
      if (d.lower_bound > fresh * (1.0 + 1e-9)) {
        std::ostringstream os;
        os << "event " << i << ": relaxed lower bound " << d.lower_bound
           << " exceeds the fresh SSS objective " << fresh
           << " — the bound is not a bound";
        return fail(os.str());
      }
      if (!d.quality_degraded &&
          d.objective > theta * fresh * (1.0 + 1e-9)) {
        std::ostringstream os;
        os << "event " << i << ": decision not flagged degraded but objective "
           << d.objective << " is beyond " << theta
           << "x the fresh SSS objective " << fresh;
        return fail(os.str());
      }
    }
  }
  return {};
}

constexpr Oracle kOracles[] = {
    {"mapper_sanity",
     "permutation validity, cost-cache coherence, evaluator purity",
     always, run_mapper_sanity},
    {"global_gapl",
     "Global's assignment-optimal g-APL lower-bounds every mapper",
     always, run_global_gapl},
    {"exact_bound",
     "heuristic objectives upper-bound the branch-and-bound optimum",
     exact_applicable, run_exact_bound},
    {"hungarian",
     "warm/cold/one-shot assignment solves match O(n!) brute force",
     always, run_hungarian},
    {"netsim_conservation",
     "flit conservation and load-summary identities on the cycle-level sim",
     netsim_applicable, run_netsim_conservation},
    {"netsim_rank",
     "measured g-APL ordering agrees with decisive analytic gaps",
     netsim_applicable, run_netsim_rank},
    {"service_replay",
     "online mapping service honors budget, quality bound and bookkeeping",
     always, run_service_replay},
    {"batch_eval",
     "batched candidate scoring bit-matches the scalar evaluator",
     always, run_batch_eval},
};

}  // namespace

std::span<const Oracle> all_oracles() { return kOracles; }

const Oracle* find_oracle(std::string_view name) {
  for (const Oracle& oracle : kOracles) {
    if (name == oracle.name) return &oracle;
  }
  return nullptr;
}

}  // namespace nocmap::check
