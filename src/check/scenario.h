// Seeded scenario synthesis for the differential-fuzzing subsystem
// (DESIGN.md §10).
//
// A ScenarioSpec is a small, fully explicit description of one randomized
// OBM instance: chip geometry (mesh side, MC placement, optional torus
// links), workload shape (Table-3 configuration, application count, threads
// per application) and traffic knobs for the cycle-level oracles. Every
// field is derived deterministically from a single 64-bit seed by
// generate_scenario(), and the textual repro format round-trips the spec
// exactly, so any failure found by the fuzzer is reproducible from either
// the seed alone or the self-contained repro file.
#pragma once

#include <cstdint>
#include <string>

#include "core/problem.h"
#include "topology/mesh.h"

namespace nocmap::check {

/// One synthesized fuzzing scenario. All fields are plain values so a spec
/// can be serialized, mutated by the shrinker, and rebuilt into an
/// ObmProblem at will.
struct ScenarioSpec {
  /// The seed the spec was generated from (kept for provenance; also seeds
  /// workload synthesis and the traffic engine so the whole scenario is one
  /// number).
  std::uint64_t seed = 0;
  std::uint32_t mesh_side = 4;
  McPlacement mc_placement = McPlacement::kCorners;
  bool torus = false;
  /// Table-3 workload configuration name ("C1".."C8").
  std::string config = "C1";
  std::uint32_t num_applications = 2;
  std::uint32_t threads_per_app = 4;
  /// Netsim traffic knobs (only read by the cycle-level oracles).
  double injection_scale = 0.5;
  bool bursty = false;

  std::uint32_t num_tiles() const { return mesh_side * mesh_side; }
  std::uint32_t num_threads() const {
    return num_applications * threads_per_app;
  }

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Derives a complete, valid spec from one 64-bit seed. Pure function:
/// identical seeds give identical specs on every platform and run.
ScenarioSpec generate_scenario(std::uint64_t seed);

/// Throws nocmap::Error when the spec violates a structural constraint
/// (zero sizes, more threads than tiles, unknown config, ...).
void validate_scenario(const ScenarioSpec& spec);

/// Builds the OBM instance the spec describes: square mesh (or torus) with
/// the named MC placement, a synthesized Table-3 workload, padded with idle
/// threads up to the tile count as the paper prescribes.
ObmProblem build_problem(const ScenarioSpec& spec);

/// Self-contained textual repro ("# nocmap_fuzz repro v1" + key=value
/// lines). `oracle` optionally records which oracle failed so --replay can
/// re-run exactly that check first; empty means "run all applicable".
std::string to_repro(const ScenarioSpec& spec, const std::string& oracle = "");

/// Parses a repro produced by to_repro (unknown keys rejected, all spec
/// keys required). On success `oracle_out`, when non-null, receives the
/// recorded oracle name ("" if absent). Throws nocmap::Error on malformed
/// input; the parsed spec is validated before being returned.
ScenarioSpec from_repro(const std::string& text,
                        std::string* oracle_out = nullptr);

/// File-level conveniences over to_repro/from_repro.
void save_repro(const std::string& path, const ScenarioSpec& spec,
                const std::string& oracle = "");
ScenarioSpec load_repro(const std::string& path,
                        std::string* oracle_out = nullptr);

}  // namespace nocmap::check
