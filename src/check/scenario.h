// Seeded scenario synthesis for the differential-fuzzing subsystem
// (DESIGN.md §10).
//
// A ScenarioSpec is a small, fully explicit description of one randomized
// OBM instance: chip geometry (mesh side, stacked layers, MC placement,
// optional torus links), workload shape (Table-3 configuration, application
// count, threads per application), the memory-traffic mode, and traffic
// knobs for the cycle-level oracles. Every field is derived
// deterministically from a single 64-bit seed by generate_scenario(), and
// the textual repro format round-trips the spec exactly, so any failure
// found by the fuzzer is reproducible from either the seed alone or the
// self-contained repro file.
#pragma once

#include <cstdint>
#include <string>

#include "core/problem.h"
#include "latency/model.h"
#include "topology/mesh.h"

namespace nocmap::check {

/// One synthesized fuzzing scenario. All fields are plain values so a spec
/// can be serialized, mutated by the shrinker, and rebuilt into an
/// ObmProblem at will.
struct ScenarioSpec {
  /// The seed the spec was generated from (kept for provenance; also seeds
  /// workload synthesis and the traffic engine so the whole scenario is one
  /// number).
  std::uint64_t seed = 0;
  std::uint32_t mesh_side = 4;
  /// Stacked dies of mesh_side × mesh_side tiles each; 1 means a planar 2D
  /// mesh (the classic scenario space — repro files from before this axis
  /// existed parse with this default).
  std::uint32_t mesh_layers = 1;
  /// Cost of one vertical (TSV) hop in planar-hop units; only meaningful
  /// when mesh_layers > 1.
  double tsv_hop_cost = 1.0;
  McPlacement mc_placement = McPlacement::kCorners;
  /// Size of the seed-drawn MC set; nonzero exactly when mc_placement is
  /// kRandom (the named schemes fix their own MC count).
  std::uint32_t mc_count = 0;
  bool torus = false;
  /// How memory requests pick their MC destination (latency/model.h).
  MemoryTrafficMode traffic_mode = MemoryTrafficMode::kProximity;
  /// Table-3 workload configuration name ("C1".."C8").
  std::string config = "C1";
  std::uint32_t num_applications = 2;
  std::uint32_t threads_per_app = 4;
  /// Netsim traffic knobs (only read by the cycle-level oracles).
  double injection_scale = 0.5;
  bool bursty = false;

  std::uint32_t num_tiles() const {
    return mesh_side * mesh_side * mesh_layers;
  }
  std::uint32_t num_threads() const {
    return num_applications * threads_per_app;
  }

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Derives a complete, valid spec from one 64-bit seed. Pure function:
/// identical seeds give identical specs on every platform and run.
ScenarioSpec generate_scenario(std::uint64_t seed);

/// Throws nocmap::Error when the spec violates a structural constraint
/// (zero sizes, more threads than tiles, unknown config, ...).
void validate_scenario(const ScenarioSpec& spec);

/// Builds the mesh the spec describes: square torus, planar square, or
/// stacked mesh, with the named MC placement — or, for kRandom, an MC set
/// of mc_count distinct tiles drawn from the seed on a dedicated Rng
/// stream (so the set depends only on seed, mc_count, and geometry, never
/// on other scenario draws). Shared by build_problem, the oracles, and the
/// sweep runner so every consumer sees the identical chip.
Mesh build_mesh(const ScenarioSpec& spec);

/// True when the cycle-level simulator models this spec's topology. The
/// simulator handles planar and stacked meshes but not torus wraparound
/// (Network's neighbor map has no wrap links); callers — the netsim
/// oracles' applicability gates and the sweep runner's netsim stage — must
/// classify unsupported combos as skips instead of reaching the
/// simulator's NOCMAP_REQUIRE.
bool simulator_supported(const ScenarioSpec& spec);

/// Builds the OBM instance the spec describes: build_mesh()'s chip, a
/// latency model in the spec's traffic mode, and a synthesized Table-3
/// workload padded with idle threads up to the tile count as the paper
/// prescribes.
ObmProblem build_problem(const ScenarioSpec& spec);

/// Self-contained textual repro ("# nocmap_fuzz repro v1" + key=value
/// lines). `oracle` optionally records which oracle failed so --replay can
/// re-run exactly that check first; empty means "run all applicable".
std::string to_repro(const ScenarioSpec& spec, const std::string& oracle = "");

/// Parses a repro produced by to_repro (unknown keys rejected; the classic
/// 2D keys are required, while keys added later — mesh_layers,
/// tsv_hop_cost, mc_count, traffic_mode — are optional with their 2D
/// defaults so pre-existing corpus files keep parsing). On success
/// `oracle_out`, when non-null, receives the
/// recorded oracle name ("" if absent). Throws nocmap::Error on malformed
/// input; the parsed spec is validated before being returned.
ScenarioSpec from_repro(const std::string& text,
                        std::string* oracle_out = nullptr);

/// File-level conveniences over to_repro/from_repro.
void save_repro(const std::string& path, const ScenarioSpec& spec,
                const std::string& oracle = "");
ScenarioSpec load_repro(const std::string& path,
                        std::string* oracle_out = nullptr);

}  // namespace nocmap::check
