// Automatic scenario minimization (DESIGN.md §10).
//
// Given a spec that fails an oracle, the shrinker searches for the smallest
// spec that still fails it, re-running the oracle after every candidate
// reduction. Reductions are tried in a fixed documented order — halve the
// application count, halve the threads per application, shrink the mesh —
// each phase first halving (fast descent) and then decrementing (tight
// minimum), followed by a normalization pass that resets incidental knobs
// (placement, torus links, config, traffic shape) to their defaults when the
// failure survives without them. The process is deterministic: the same
// failing spec and oracle always minimize to the same repro.
#pragma once

#include <cstddef>

#include "check/oracles.h"
#include "check/scenario.h"

namespace nocmap::check {

struct ShrinkResult {
  /// Smallest spec found that still fails the oracle.
  ScenarioSpec minimal;
  /// Oracle re-executions performed while shrinking.
  std::size_t attempts = 0;
  /// Candidate reductions that kept the failure and were accepted.
  std::size_t accepted = 0;
};

/// Minimizes `spec` against `oracle`. Precondition: oracle.run(spec)
/// currently fails (if it doesn't, the input spec is returned unchanged
/// with zero accepted reductions).
ShrinkResult shrink_scenario(const ScenarioSpec& spec, const Oracle& oracle);

}  // namespace nocmap::check
