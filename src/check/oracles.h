// Differential and invariant oracles for the fuzzing subsystem
// (DESIGN.md §10).
//
// Each oracle is a named, self-contained property check over one
// ScenarioSpec: it rebuilds everything it needs from the spec, runs two or
// more independent implementations of the same quantity against each other
// (or an exact conservation identity), and reports the first violated
// property with enough detail to debug. Oracles are pure functions of the
// spec, so a failure replays bit-identically from a repro file.
//
// The registry:
//   mapper_sanity        — permutation validity of every mapper; cost-cache
//                          coherence vs the raw model (eq. 13); incremental
//                          evaluator vs batch evaluate() vs from-scratch
//                          recomputation after a swap storm.
//   global_gapl          — Global solves min g-APL *optimally* (one linear
//                          assignment), so its g-APL must lower-bound every
//                          other mapper's.
//   exact_bound          — on small instances (≤16 tiles) the heuristics'
//                          objectives must upper-bound the branch-and-bound
//                          optimum.
//   hungarian            — warm-started and cold workspace solves and the
//                          one-shot API must all match the O(n!) brute
//                          force on random ≤8×8 cost matrices.
//   netsim_conservation  — cycle-level invariants: complete drain, flit
//                          conservation, crossbar/link/buffer identities,
//                          and RouterLoadSummary consistency with the raw
//                          per-router activity counters.
//   netsim_rank          — when the analytic model says Global beats a
//                          random mapping on g-APL by a wide margin, the
//                          measured (cycle-level) g-APL must agree on the
//                          ordering.
//   service_replay       — replays a synthesized churn trace through the
//                          online MappingService: per-event migration-budget
//                          compliance, admission law, occupancy bookkeeping
//                          vs recompute, incremental objective vs the batch
//                          evaluator, lower-bound validity against a fresh
//                          SSS solve, and 1-vs-2-worker decision equality.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "check/scenario.h"

namespace nocmap::check {

struct OracleResult {
  bool ok = true;
  /// On failure: which property broke, with the disagreeing values.
  std::string detail;
};

struct Oracle {
  const char* name;
  /// One-line description (--list-oracles, docs).
  const char* what;
  /// Whether the oracle can run on this spec (e.g. exact_bound needs a
  /// small instance, the netsim oracles need a non-torus mesh).
  bool (*applicable)(const ScenarioSpec& spec);
  OracleResult (*run)(const ScenarioSpec& spec);
};

/// Every registered oracle, in a fixed documented order.
std::span<const Oracle> all_oracles();

/// Lookup by name; nullptr when unknown.
const Oracle* find_oracle(std::string_view name);

}  // namespace nocmap::check
