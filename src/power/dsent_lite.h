// DSENT-lite: an event-energy NoC power model (substitution for DSENT,
// paper reference [24]; DESIGN.md §5.3).
//
// Dynamic power = Σ (event count × per-event energy) / elapsed time.
// Per-event energies are representative 45 nm / 1.0 V / 128-bit-flit
// magnitudes (order-of-magnitude faithful to DSENT's electrical models for
// a 3-stage VC router with 1 mm links). The paper's Figure-11 claim is
// purely *relative* — SSS dynamic power within ~2.7% of Global — and
// relative dynamic power depends only on activity ratios, so absolute
// calibration is not load-bearing; the constants are still documented and
// overridable.
//
// Static power is modelled as a constant per router + per link, reported
// separately (the paper notes static power is approximately equal across
// mapping schemes).
#pragma once

#include "netsim/types.h"

namespace nocmap {

/// Per-event energies in picojoules and leakage in milliwatts.
struct PowerParams {
  // 45 nm, 1.0 V, 128-bit flit defaults.
  double buffer_write_pj = 1.25;   ///< flit write into an input VC buffer
  double buffer_read_pj = 0.95;    ///< flit read out of an input VC buffer
  double crossbar_pj = 1.65;       ///< 5x5 crossbar traversal per flit
  double sw_arbiter_pj = 0.12;     ///< switch-allocator grant
  double vc_arbiter_pj = 0.18;     ///< output-VC allocation (head flits)
  double link_pj = 2.10;           ///< 1 mm 128-bit link traversal per flit

  double router_leakage_mw = 4.8;  ///< per router
  double link_leakage_mw = 1.1;    ///< per unidirectional inter-router link

  double clock_ghz = 2.0;          ///< paper Table 2
};

/// Power breakdown in milliwatts.
struct PowerReport {
  double buffer_mw = 0.0;
  double crossbar_mw = 0.0;
  double arbiter_mw = 0.0;
  double link_mw = 0.0;
  double dynamic_mw = 0.0;  ///< sum of the above
  double static_mw = 0.0;
  double total_mw = 0.0;
};

class DsentLitePowerModel {
 public:
  explicit DsentLitePowerModel(PowerParams params = {}) : params_(params) {}

  const PowerParams& params() const { return params_; }

  /// Converts measured activity over `cycles` into a power report for a
  /// network with `num_routers` routers and `num_links` unidirectional
  /// inter-router links.
  PowerReport report(const ActivityCounters& activity, Cycle cycles,
                     std::size_t num_routers, std::size_t num_links) const;

  /// Energy of a single event set (picojoules); exposed for unit tests.
  double dynamic_energy_pj(const ActivityCounters& activity) const;

 private:
  PowerParams params_;
};

/// Number of unidirectional inter-router links in a (possibly stacked)
/// mesh: 2 · ((rows·(cols−1) + cols·(rows−1))·layers + (layers−1)·rows·cols)
/// — planar links per layer plus the TSVs between adjacent layers.
std::size_t mesh_link_count(const Mesh& mesh);

}  // namespace nocmap
