#include "power/dsent_lite.h"

#include "util/error.h"

namespace nocmap {

double DsentLitePowerModel::dynamic_energy_pj(
    const ActivityCounters& activity) const {
  const auto bw = static_cast<double>(activity.buffer_writes);
  const auto br = static_cast<double>(activity.buffer_reads);
  const auto xb = static_cast<double>(activity.crossbar_traversals);
  const auto sa = static_cast<double>(activity.sw_arbitrations);
  const auto va = static_cast<double>(activity.vc_allocations);
  const auto lk = static_cast<double>(activity.link_traversals);
  return bw * params_.buffer_write_pj + br * params_.buffer_read_pj +
         xb * params_.crossbar_pj + sa * params_.sw_arbiter_pj +
         va * params_.vc_arbiter_pj + lk * params_.link_pj;
}

PowerReport DsentLitePowerModel::report(const ActivityCounters& activity,
                                        Cycle cycles,
                                        std::size_t num_routers,
                                        std::size_t num_links) const {
  NOCMAP_REQUIRE(cycles > 0, "power report needs a non-empty window");
  // pJ / (cycles / f) = pJ·GHz/cycles gives milliwatts directly:
  // 1 pJ · 1 GHz = 1 mW.
  const double to_mw = params_.clock_ghz / static_cast<double>(cycles);

  PowerReport r;
  r.buffer_mw = (static_cast<double>(activity.buffer_writes) *
                     params_.buffer_write_pj +
                 static_cast<double>(activity.buffer_reads) *
                     params_.buffer_read_pj) *
                to_mw;
  r.crossbar_mw = static_cast<double>(activity.crossbar_traversals) *
                  params_.crossbar_pj * to_mw;
  r.arbiter_mw = (static_cast<double>(activity.sw_arbitrations) *
                      params_.sw_arbiter_pj +
                  static_cast<double>(activity.vc_allocations) *
                      params_.vc_arbiter_pj) *
                 to_mw;
  r.link_mw =
      static_cast<double>(activity.link_traversals) * params_.link_pj * to_mw;
  r.dynamic_mw = r.buffer_mw + r.crossbar_mw + r.arbiter_mw + r.link_mw;
  r.static_mw = static_cast<double>(num_routers) * params_.router_leakage_mw +
                static_cast<double>(num_links) * params_.link_leakage_mw;
  r.total_mw = r.dynamic_mw + r.static_mw;
  return r;
}

std::size_t mesh_link_count(const Mesh& mesh) {
  const std::size_t rows = mesh.rows();
  const std::size_t cols = mesh.cols();
  const std::size_t layers = mesh.layers();
  // Planar links per layer plus one TSV per tile position between adjacent
  // layers, all directed (hence the factor 2).
  return 2 * ((rows * (cols - 1) + cols * (rows - 1)) * layers +
              (layers - 1) * rows * cols);
}

}  // namespace nocmap
