#include "netsim/sim.h"

#include <algorithm>

#include "obs/metrics.h"

namespace nocmap {

namespace {

// Simulation metrics (docs/metrics-schema.md): totals published once per
// run_simulation call, gauges keeping the worst load seen by any run in the
// process. Nothing is touched inside the cycle loop.
const obs::Timer t_run("netsim.run_simulation");
const obs::Counter c_runs("netsim.runs");
const obs::Counter c_cycles("netsim.cycles");
const obs::Counter c_packets("netsim.packets_measured");
const obs::Counter c_flits_injected("netsim.flits_injected");
const obs::Counter c_flits_ejected("netsim.flits_ejected");
const obs::Counter c_link_traversals("netsim.link_traversals");
const obs::Counter c_queue_wait("netsim.queue_wait_cycles");
const obs::Gauge g_link_util("netsim.max_link_utilization");
const obs::Gauge g_crossbar("netsim.max_crossbar_per_cycle");
const obs::Gauge g_queue_wait("netsim.max_avg_queue_wait");
const obs::Gauge g_occupancy("netsim.max_queue_occupancy");
// Batch metrics: one batch == one run_simulation_batch call.
const obs::Timer t_batch("netsim.batch.run");
const obs::Counter c_batches("netsim.batch.batches");
const obs::Counter c_batch_scenarios("netsim.batch.scenarios");
// Spatial-partition metrics (DESIGN.md §16): runs that used more than one
// domain, the domains they summed to, and the halo-exchange volume.
const obs::Counter c_parallel_runs("netsim.parallel.runs");
const obs::Counter c_parallel_domains("netsim.parallel.domains");
const obs::Counter c_parallel_boundary("netsim.parallel.boundary_flits");

RouterLoadSummary summarize_load(const Network& net, const Mesh& mesh,
                                 Cycle measured) {
  RouterLoadSummary load;
  if (measured == 0) return load;
  const double cycles = static_cast<double>(measured);
  const std::size_t tiles = mesh.num_tiles();
  double crossbar_sum = 0.0;
  for (std::size_t t = 0; t < tiles; ++t) {
    const ActivityCounters& a =
        net.measured_router_activity(static_cast<TileId>(t));
    const double per_cycle = static_cast<double>(a.crossbar_traversals) /
                             cycles;
    crossbar_sum += per_cycle;
    if (per_cycle > load.max_crossbar_per_cycle) {
      load.max_crossbar_per_cycle = per_cycle;
      load.hottest_router = static_cast<TileId>(t);
    }
    load.max_avg_queue_wait =
        std::max(load.max_avg_queue_wait, a.avg_queue_wait());
    load.max_queue_occupancy =
        std::max(load.max_queue_occupancy,
                 static_cast<double>(a.queue_wait_cycles) / cycles);
  }
  load.mean_crossbar_per_cycle =
      crossbar_sum / static_cast<double>(tiles);
  load.link_utilization =
      static_cast<double>(net.measured_total_activity().link_traversals) /
      (static_cast<double>(num_directed_links(mesh)) * cycles);
  return load;
}

}  // namespace

std::uint64_t num_directed_links(const Mesh& mesh) {
  const std::uint64_t r = mesh.rows();
  const std::uint64_t c = mesh.cols();
  const std::uint64_t l = mesh.layers();
  std::uint64_t undirected = (r * (c - 1) + c * (r - 1)) * l;
  // Vertical (TSV) links between adjacent layers, one per tile position.
  undirected += (l - 1) * r * c;
  if (mesh.is_torus()) {
    // A wrap link is a *distinct* adjacent pair only when the wrapped
    // dimension has >= 3 tiles: at width 2 the wrap connects the same two
    // tiles as the existing mesh link, and at width 1 it is a self-loop.
    if (c >= 3) undirected += r;  // one horizontal wrap per row
    if (r >= 3) undirected += c;  // one vertical wrap per column
  }
  return 2 * undirected;
}

SimResult run_simulation(const ObmProblem& problem, const Mapping& mapping,
                         const SimConfig& config) {
  const obs::ScopedTimer run_scope(t_run);
  Network net(problem.mesh(), config.network, config.sim_workers);
  // The problem's latency model owns the memory-traffic mode; the cycle
  // engine always simulates what the analytic model assumed.
  TrafficConfig traffic_config = config.traffic;
  traffic_config.memory_mode = problem.model().mode();
  TrafficEngine traffic(problem, mapping, traffic_config);

  const std::size_t num_apps = problem.num_applications();
  SimResult result;
  result.per_app.resize(num_apps);
  result.per_class.resize(kNumPacketClasses);
  result.per_app_histogram.reserve(num_apps);
  for (std::size_t a = 0; a < num_apps; ++a) {
    result.per_app_histogram.emplace_back(0.0, config.histogram_max,
                                          config.histogram_bins);
  }

  const Cycle measure_start = config.warmup_cycles;
  const Cycle measure_end = config.warmup_cycles + config.measure_cycles;

  std::vector<LocalAccess> locals;
  auto record = [&](std::size_t app, PacketClass cls, double latency,
                    Cycle created) {
    if (created < measure_start || created >= measure_end) return;
    result.per_app[app].add(latency);
    result.per_app_histogram[app].add(latency);
    result.overall.add(latency);
    result.per_class[static_cast<std::size_t>(cls)].add(latency);
    ++result.packets_measured;
  };

  auto drain_ejections = [&](Cycle now) {
    for (const Ejection& e : net.take_ejections()) {
      traffic.on_ejection(net, e, now);
      record(e.info.app, e.info.cls, static_cast<double>(e.latency()),
             e.info.created);
    }
  };

  // --- Warmup: latency samples and activity are discarded (record() drops
  // anything created before measure_start).
  Cycle cycle = 0;
  for (; cycle < measure_start; ++cycle) {
    locals.clear();
    traffic.generate(net, cycle, locals);
    net.step();
    drain_ejections(net.now());
  }
  // Resetting between the loops (not on a cycle == measure_start test
  // inside a combined loop) also covers measure_cycles == 0, which
  // previously never reset and leaked warmup activity into the result.
  net.reset_activity();

  // --- Measurement window.
  for (; cycle < measure_end; ++cycle) {
    locals.clear();
    traffic.generate(net, cycle, locals);
    for (const LocalAccess& la : locals) {
      record(la.app, la.cls, 0.0, cycle);
      ++result.local_accesses;
    }
    net.step();
    drain_ejections(net.now());
  }
  // Freeze the window's per-router counters: the drain below keeps moving
  // flits, and its activity must not inflate the load summary.
  net.snapshot_activity();
  result.activity = net.measured_total_activity();
  result.measured_cycles = measure_end - measure_start;

  // --- Drain: stop creating requests, let replies and in-flight packets
  // finish so no measured packet is censored.
  traffic.stop_generation();
  Cycle drained = 0;
  while ((net.packets_in_flight() > 0 || !traffic.idle()) &&
         drained < config.max_drain_cycles) {
    locals.clear();
    traffic.generate(net, net.now(), locals);  // issues due replies only
    net.step();
    drain_ejections(net.now());
    ++drained;
  }
  result.drain_incomplete =
      net.packets_in_flight() > 0 || !traffic.idle();
  result.activity_with_drain = net.total_activity();
  result.load = summarize_load(net, problem.mesh(), result.measured_cycles);

  // --- Aggregate metrics.
  result.apl.resize(num_apps, 0.0);
  std::vector<double> active;
  for (std::size_t a = 0; a < num_apps; ++a) {
    if (result.per_app[a].count() > 0) {
      result.apl[a] = result.per_app[a].mean();
      active.push_back(result.apl[a]);
    }
  }
  if (!active.empty()) {
    result.max_apl = max_value(active);
    result.dev_apl = stddev_population(active);
  }
  result.g_apl = result.overall.mean();
  result.flits_injected = net.flits_injected();
  result.flits_ejected = net.flits_ejected();

  c_runs.add();
  c_cycles.add(measure_end + drained);
  c_packets.add(result.packets_measured);
  c_flits_injected.add(result.flits_injected);
  c_flits_ejected.add(result.flits_ejected);
  c_link_traversals.add(result.activity.link_traversals);
  c_queue_wait.add(result.activity.queue_wait_cycles);
  g_link_util.set_max(result.load.link_utilization);
  g_crossbar.set_max(result.load.max_crossbar_per_cycle);
  g_queue_wait.set_max(result.load.max_avg_queue_wait);
  g_occupancy.set_max(result.load.max_queue_occupancy);
  if (net.num_domains() > 1) {
    c_parallel_runs.add();
    c_parallel_domains.add(net.num_domains());
    c_parallel_boundary.add(net.boundary_flits());
  }
  return result;
}

std::vector<SimResult> run_simulation_batch(
    const std::vector<BatchScenario>& scenarios,
    const ParallelConfig& parallel) {
  const obs::ScopedTimer batch_scope(t_batch);
  for (const BatchScenario& s : scenarios) {
    NOCMAP_REQUIRE(s.problem != nullptr && s.mapping != nullptr,
                   "batch scenario needs a problem and a mapping");
  }
  std::vector<SimResult> results(scenarios.size());
  ParallelTrialRunner runner(parallel);
  runner.for_each(scenarios.size(), [&](std::size_t i) {
    const BatchScenario& s = scenarios[i];
    results[i] = run_simulation(*s.problem, *s.mapping, s.config);
  });
  c_batches.add();
  c_batch_scenarios.add(scenarios.size());
  return results;
}

}  // namespace nocmap
