#include "netsim/sim.h"

#include <algorithm>

namespace nocmap {

SimResult run_simulation(const ObmProblem& problem, const Mapping& mapping,
                         const SimConfig& config) {
  Network net(problem.mesh(), config.network);
  TrafficEngine traffic(problem, mapping, config.traffic);

  const std::size_t num_apps = problem.num_applications();
  SimResult result;
  result.per_app.resize(num_apps);
  result.per_class.resize(kNumPacketClasses);
  result.per_app_histogram.reserve(num_apps);
  for (std::size_t a = 0; a < num_apps; ++a) {
    result.per_app_histogram.emplace_back(0.0, config.histogram_max,
                                          config.histogram_bins);
  }

  const Cycle measure_start = config.warmup_cycles;
  const Cycle measure_end = config.warmup_cycles + config.measure_cycles;

  std::vector<LocalAccess> locals;
  auto record = [&](std::size_t app, PacketClass cls, double latency,
                    Cycle created) {
    if (created < measure_start || created >= measure_end) return;
    result.per_app[app].add(latency);
    result.per_app_histogram[app].add(latency);
    result.overall.add(latency);
    result.per_class[static_cast<std::size_t>(cls)].add(latency);
    ++result.packets_measured;
  };

  auto drain_ejections = [&](Cycle now) {
    for (const Ejection& e : net.take_ejections()) {
      traffic.on_ejection(e, now);
      record(e.info.app, e.info.cls, static_cast<double>(e.latency()),
             e.info.created);
    }
  };

  // --- Warmup + measurement.
  for (Cycle cycle = 0; cycle < measure_end; ++cycle) {
    if (cycle == measure_start) net.reset_activity();
    locals.clear();
    traffic.generate(net, cycle, locals);
    for (const LocalAccess& la : locals) {
      record(la.app, la.cls, 0.0, cycle);
      if (cycle >= measure_start && cycle < measure_end) {
        ++result.local_accesses;
      }
    }
    net.step();
    drain_ejections(net.now());
  }
  result.activity = net.total_activity();
  result.measured_cycles = config.measure_cycles;

  // --- Drain: stop creating requests, let replies and in-flight packets
  // finish so no measured packet is censored.
  traffic.stop_generation();
  Cycle drained = 0;
  while ((net.packets_in_flight() > 0 || !traffic.idle()) &&
         drained < config.max_drain_cycles) {
    locals.clear();
    traffic.generate(net, net.now(), locals);  // issues due replies only
    net.step();
    drain_ejections(net.now());
    ++drained;
  }
  result.drain_incomplete =
      net.packets_in_flight() > 0 || !traffic.idle();

  // --- Aggregate metrics.
  result.apl.resize(num_apps, 0.0);
  std::vector<double> active;
  for (std::size_t a = 0; a < num_apps; ++a) {
    if (result.per_app[a].count() > 0) {
      result.apl[a] = result.per_app[a].mean();
      active.push_back(result.apl[a]);
    }
  }
  if (!active.empty()) {
    result.max_apl = max_value(active);
    result.dev_apl = stddev_population(active);
  }
  result.g_apl = result.overall.mean();
  return result;
}

}  // namespace nocmap
