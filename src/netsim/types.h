// Shared types of the cycle-level NoC simulator (substitution for the
// paper's Garnet; DESIGN.md §5.2).
//
// The simulator models the paper's Table-2 network: a mesh of canonical
// 3-stage credit-based wormhole routers with virtual channels and XY
// (dimension-order) routing; 128-bit links make request packets 1 flit and
// 64-byte data replies 5 flits.
#pragma once

#include <cstdint>
#include <limits>

#include "topology/mesh.h"

namespace nocmap {

using Cycle = std::uint64_t;
using PacketId = std::uint64_t;

inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// The packet kinds of the paper's traffic model (Section II.B): requests,
/// data replies, and the coherence checking/forwarding packets an L2 bank
/// sends to the private L1 that owns a dirty line (which then supplies the
/// data to the requester directly).
enum class PacketClass : std::uint8_t {
  kCacheRequest,   ///< core → hashed L2 bank, short (1 flit)
  kCacheReply,     ///< L2 bank (or owner L1) → core, long (5 flits)
  kMemoryRequest,  ///< core → MC (delivery segment), short (1 flit)
  kMemoryReply,    ///< MC → core, long (5 flits)
  kCacheForward,   ///< L2 bank → owner L1, short (1 flit)
  /// Multicast-tree forwarding segment: a memory request travelling toward
  /// a branch router where the NI replicates it (multicast memory mode
  /// only). Segments whose endpoint is an MC use kMemoryRequest so the
  /// per-class delivery statistics stay end-to-end.
  kMemoryForward,
};
inline constexpr std::size_t kNumPacketClasses = 6;

inline const char* packet_class_name(PacketClass c) {
  switch (c) {
    case PacketClass::kCacheRequest: return "cache_request";
    case PacketClass::kCacheReply: return "cache_reply";
    case PacketClass::kMemoryRequest: return "memory_request";
    case PacketClass::kMemoryReply: return "memory_reply";
    case PacketClass::kCacheForward: return "cache_forward";
    case PacketClass::kMemoryForward: return "memory_forward";
  }
  return "?";
}

inline bool is_request(PacketClass c) {
  return c == PacketClass::kCacheRequest || c == PacketClass::kMemoryRequest;
}

/// Immutable description of one packet in flight.
struct PacketInfo {
  PacketId id = 0;
  PacketClass cls = PacketClass::kCacheRequest;
  TileId src = 0;
  TileId dst = 0;
  std::uint32_t flits = 1;
  std::size_t app = 0;        ///< owning application (replies inherit it)
  std::size_t thread = 0;     ///< originating thread (global index)
  Cycle created = 0;          ///< cycle the packet entered the source queue
};

/// Deterministic routing algorithms. XY is the paper's configuration
/// (deadlock-free dimension order, Section II.C); YX is its transpose;
/// O1TURN picks XY or YX per packet (balanced by packet id) and stays
/// deadlock-free by partitioning the VCs between the two sub-routes.
enum class RoutingAlgo : std::uint8_t { kXY, kYX, kO1Turn };

inline const char* routing_name(RoutingAlgo r) {
  switch (r) {
    case RoutingAlgo::kXY: return "XY";
    case RoutingAlgo::kYX: return "YX";
    case RoutingAlgo::kO1Turn: return "O1TURN";
  }
  return "?";
}

/// One flow-control unit. Wormhole switching moves these individually.
struct Flit {
  PacketId packet = 0;
  std::uint32_t index = 0;  ///< 0-based position within the packet
  bool is_head = false;
  bool is_tail = false;
  bool yx = false;  ///< true = Y-first sub-route (YX / O1TURN second class)
  TileId dst = 0;
  Cycle enqueued = 0;  ///< cycle it entered the current input buffer
  /// Links traversed so far; fuels distance-weighted arbitration.
  std::uint32_t hops = 0;
};

/// Switch-allocation policy. kRoundRobin is the canonical fair arbiter;
/// kDistanceWeighted is a simplified probabilistic distance-based
/// arbitration (paper reference [16], Lee et al.) that favours flits that
/// have already travelled farther — the *architectural* alternative to
/// mapping-stage latency balancing that the paper's Section I argues can
/// be avoided by balancing at the mapping stage instead.
enum class Arbitration : std::uint8_t { kRoundRobin, kDistanceWeighted };

/// Activity counters that feed the DSENT-lite power model. All counts are
/// events over the measured window.
struct ActivityCounters {
  std::uint64_t buffer_writes = 0;     ///< flit written into an input VC
  std::uint64_t buffer_reads = 0;      ///< flit read out of an input VC
  std::uint64_t crossbar_traversals = 0;
  std::uint64_t link_traversals = 0;   ///< inter-router link flit-hops
  std::uint64_t sw_arbitrations = 0;   ///< switch-allocator grants
  std::uint64_t vc_allocations = 0;    ///< output-VC grants (head flits)
  /// Cycles flits spent waiting in input buffers beyond the router
  /// pipeline minimum — the measured counterpart of the analytic td_q.
  std::uint64_t queue_wait_cycles = 0;

  ActivityCounters& operator+=(const ActivityCounters& o) {
    buffer_writes += o.buffer_writes;
    buffer_reads += o.buffer_reads;
    crossbar_traversals += o.crossbar_traversals;
    link_traversals += o.link_traversals;
    sw_arbitrations += o.sw_arbitrations;
    vc_allocations += o.vc_allocations;
    queue_wait_cycles += o.queue_wait_cycles;
    return *this;
  }

  /// Average per-hop queuing delay in cycles (paper Section II.C: observed
  /// 0..1 at evaluated loads). Hops are counted as buffer reads.
  double avg_queue_wait() const {
    return buffer_reads > 0 ? static_cast<double>(queue_wait_cycles) /
                                  static_cast<double>(buffer_reads)
                            : 0.0;
  }
};

/// Router/network micro-architecture parameters (paper Table 2 defaults).
struct NetworkConfig {
  std::uint32_t vcs_per_port = 3;      ///< virtual channels per input port
  std::uint32_t buffer_depth = 5;      ///< flits per VC buffer
  std::uint32_t router_pipeline = 3;   ///< cycles a flit spends in a router
  std::uint32_t link_latency = 1;      ///< cycles per planar inter-router link
  std::uint32_t tsv_link_latency = 1;  ///< cycles per vertical (TSV) link
  std::uint32_t short_packet_flits = 1;
  std::uint32_t long_packet_flits = 5;
  RoutingAlgo routing = RoutingAlgo::kXY;  ///< the paper uses XY
  Arbitration arbitration = Arbitration::kRoundRobin;
  std::uint64_t arbitration_seed = 1;  ///< for the probabilistic arbiter

  /// VC range [lo, hi) a flit of the given sub-route may claim. Under
  /// O1TURN the VCs are split between the XY and YX classes (deadlock
  /// freedom); otherwise all VCs are shared.
  void vc_range(bool yx, std::uint32_t& lo, std::uint32_t& hi) const {
    if (routing == RoutingAlgo::kO1Turn) {
      const std::uint32_t mid = vcs_per_port / 2;
      lo = yx ? mid : 0;
      hi = yx ? vcs_per_port : mid;
    } else {
      lo = 0;
      hi = vcs_per_port;
    }
  }
};

}  // namespace nocmap
