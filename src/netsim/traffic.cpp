#include "netsim/traffic.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace nocmap {

TrafficEngine::TrafficEngine(const ObmProblem& problem, const Mapping& mapping,
                             const TrafficConfig& config)
    : problem_(&problem), config_(config) {
  NOCMAP_REQUIRE(mapping.is_valid_permutation(problem.num_threads()),
                 "traffic engine needs a valid mapping");
  NOCMAP_REQUIRE(config.injection_scale > 0.0,
                 "injection scale must be positive");
  NOCMAP_REQUIRE(
      config.forward_probability >= 0.0 && config.forward_probability <= 1.0,
      "forward probability must be in [0,1]");
  NOCMAP_REQUIRE(!config.bursty || (config.burst_duty > 0.0 &&
                                    config.burst_duty < 1.0),
                 "burst duty must be in (0,1)");
  NOCMAP_REQUIRE(!config.bursty || config.burst_dwell_cycles >= 2.0,
                 "burst dwell must be at least 2 cycles");

  const Rng base(splitmix64(config.seed) ^ 0x9d3f5c1e2b4a6879ULL);
  coherence_rng_ = base.fork(0xc0ffee);
  sources_.resize(problem.num_tiles());
  thread_tile_.resize(problem.num_threads());
  const Workload& wl = problem.workload();
  for (std::size_t j = 0; j < wl.num_threads(); ++j) {
    const TileId tile = mapping.tile_of(j);
    thread_tile_[j] = tile;
    TileSource& src = sources_[tile];
    src.thread = j;
    src.app = wl.application_of(j);
    // Workload rates are requests per kilocycle.
    src.cache_per_cycle =
        wl.thread(j).cache_rate / 1000.0 * config.injection_scale;
    src.memory_per_cycle =
        wl.thread(j).memory_rate / 1000.0 * config.injection_scale;
    src.rng = base.fork(j);
    if (config.bursty) {
      // Start in the stationary distribution to avoid an all-ON transient.
      src.burst_on = src.rng.bernoulli(config.burst_duty);
    }
    // Stagger rotation starts by thread so interleaved requests don't all
    // open on the same MC (real interleaving hashes addresses).
    src.interleave_next = static_cast<std::uint32_t>(
        j % problem.mesh().mc_tiles().size());
  }
}

void TrafficEngine::draw_tile(TileId tile, std::vector<DrawEntry>& out) {
  const Mesh& mesh = problem_->mesh();
  TileSource& src = sources_[tile];
  double burst_gain = 1.0;
  if (config_.bursty &&
      (src.cache_per_cycle > 0.0 || src.memory_per_cycle > 0.0)) {
    // Two-state Markov modulation: ON at rate/duty, OFF at zero; dwell
    // times chosen so the long-run mean rate is unchanged.
    const double t_on = config_.burst_duty * config_.burst_dwell_cycles;
    const double t_off =
        (1.0 - config_.burst_duty) * config_.burst_dwell_cycles;
    if (src.burst_on) {
      if (src.rng.bernoulli(std::min(1.0, 1.0 / t_on))) {
        src.burst_on = false;
      }
    } else if (src.rng.bernoulli(std::min(1.0, 1.0 / t_off))) {
      src.burst_on = true;
    }
    if (!src.burst_on) return;
    burst_gain = 1.0 / config_.burst_duty;
  }

  for (const auto& [base_rate, cls] :
       {std::pair{src.cache_per_cycle, PacketClass::kCacheRequest},
        std::pair{src.memory_per_cycle, PacketClass::kMemoryRequest}}) {
    const double rate = base_rate * burst_gain;
    if (rate <= 0.0) continue;
    // Rates above one request/cycle inject the integer part
    // deterministically plus a Bernoulli fractional part.
    auto count = static_cast<std::uint32_t>(rate);
    if (src.rng.bernoulli(rate - std::floor(rate))) ++count;
    for (std::uint32_t c = 0; c < count; ++c) {
      TileId dst = 0;
      if (cls == PacketClass::kCacheRequest) {
        // Address-hashed bank: uniform over all tiles, including this one.
        dst = static_cast<TileId>(src.rng.uniform_u32(
            static_cast<std::uint32_t>(mesh.num_tiles())));
      } else {
        switch (config_.memory_mode) {
          case MemoryTrafficMode::kProximity:
            dst = mesh.nearest_mc(tile);
            break;
          case MemoryTrafficMode::kInterleaved: {
            const auto mcs = mesh.mc_tiles();
            dst = mcs[src.interleave_next];
            src.interleave_next = static_cast<std::uint32_t>(
                (src.interleave_next + 1) % mcs.size());
            break;
          }
          case MemoryTrafficMode::kMulticast:
            // Sentinel: the commit phase expands the tree from the source
            // tile itself (a DrawEntry carries a single destination).
            dst = tile;
            break;
        }
      }
      out.push_back({tile, cls, dst});
    }
  }
}

void TrafficEngine::generate(Network& net, Cycle now,
                             std::vector<LocalAccess>& locals) {
  // Issue follow-ups (replies / forwards) that have finished service.
  for (auto it = pending_replies_.begin();
       it != pending_replies_.end() && it->first <= now;
       it = pending_replies_.erase(it)) {
    PacketInfo pkt = it->second;
    pkt.created = now;
    pkt.flits = pkt.cls == PacketClass::kCacheForward
                    ? net.config().short_packet_flits
                    : net.config().long_packet_flits;
    if (pkt.src == pkt.dst) {
      // Degenerate follow-up (e.g. owner == requester tile): zero latency.
      locals.push_back({pkt.cls, pkt.app, pkt.thread});
      continue;
    }
    net.inject_packet(pkt);
  }

  if (!generating_) return;

  // Draw phase: per-tile RNG advances, fanned over the network's domains.
  // The serial path (one domain, no team) runs the identical code.
  const std::size_t nd = net.num_domains();
  draw_entries_.resize(std::max(draw_entries_.size(), nd));
  auto draw_domain = [&](std::size_t d) {
    std::vector<DrawEntry>& out = draw_entries_[d];
    out.clear();
    const TileId end = net.domain_end_tile(d);
    for (TileId tile = net.domain_first_tile(d); tile < end; ++tile) {
      draw_tile(tile, out);
    }
  };
  if (CycleWorkerTeam* team = net.team()) {
    team->run(draw_domain);
  } else {
    for (std::size_t d = 0; d < nd; ++d) draw_domain(d);
  }

  // Commit phase (serial): domains ascend and tiles ascend within each, so
  // ids and local-access records land in ascending-tile order — the serial
  // engine's exact sequence.
  for (std::size_t d = 0; d < nd; ++d) {
    for (const DrawEntry& e : draw_entries_[d]) {
      const TileSource& src = sources_[e.tile];
      if (e.cls == PacketClass::kMemoryRequest &&
          config_.memory_mode == MemoryTrafficMode::kMulticast) {
        const auto mcs = problem_->mesh().mc_tiles();
        emit_multicast(net, e.tile, {mcs.begin(), mcs.end()}, now, now,
                       src.app, src.thread, &locals,
                       /*record_local_delivery=*/true);
        continue;
      }
      if (e.dst == e.tile) {
        // Local access: no packets at all; record request and reply as
        // zero-latency samples to stay comparable with the analytic
        // average.
        locals.push_back({e.cls, src.app, src.thread});
        locals.push_back({e.cls == PacketClass::kCacheRequest
                              ? PacketClass::kCacheReply
                              : PacketClass::kMemoryReply,
                          src.app, src.thread});
        continue;
      }
      PacketInfo info;
      info.id = next_id_++;
      info.cls = e.cls;
      info.src = e.tile;
      info.dst = e.dst;
      info.flits = net.config().short_packet_flits;
      info.app = src.app;
      info.thread = src.thread;
      info.created = now;
      net.inject_packet(info);
    }
  }
}

void TrafficEngine::emit_multicast(Network& net, TileId from,
                                   std::vector<TileId> dests, Cycle created,
                                   Cycle now, std::size_t app,
                                   std::size_t thread,
                                   std::vector<LocalAccess>* locals,
                                   bool record_local_delivery) {
  const Mesh& mesh = problem_->mesh();
  const TileId requester = thread_tile_[thread];
  const TileId responder = mesh.nearest_mc(requester);

  // Delivery at this tile itself (the root is an MC, or a branch point
  // landed exactly on one).
  if (auto it = std::find(dests.begin(), dests.end(), from);
      it != dests.end()) {
    dests.erase(it);
    if (record_local_delivery && locals != nullptr) {
      locals->push_back({PacketClass::kMemoryRequest, app, thread});
    }
    if (from == responder) {
      schedule(now + config_.memory_service_latency,
               PacketClass::kMemoryReply, from, requester, app, thread);
    }
  }
  if (dests.empty()) return;

  // Group the remaining destinations by their first dimension-order hop
  // from here; each group's branch point is the nearest point where the
  // shared path prefix ends (the extreme coordinate along that dimension),
  // so recursing from the branch point reproduces the XYZ multicast tree.
  const TileCoord here = mesh.coord_of(from);
  struct Group {
    std::vector<TileId> dests;
    TileCoord next;
    bool any = false;
  };
  enum { kEastG, kWestG, kSouthG, kNorthG, kUpG, kDownG, kNumGroups };
  std::array<Group, kNumGroups> groups;
  for (TileId m : dests) {
    const TileCoord c = mesh.coord_of(m);
    std::size_t g;
    if (c.col > here.col) g = kEastG;
    else if (c.col < here.col) g = kWestG;
    else if (c.row > here.row) g = kSouthG;
    else if (c.row < here.row) g = kNorthG;
    else if (c.layer > here.layer) g = kUpG;
    else g = kDownG;
    Group& grp = groups[g];
    if (!grp.any) {
      grp.any = true;
      grp.next = c;
    } else {
      switch (g) {
        case kEastG: grp.next.col = std::min(grp.next.col, c.col); break;
        case kWestG: grp.next.col = std::max(grp.next.col, c.col); break;
        case kSouthG: grp.next.row = std::min(grp.next.row, c.row); break;
        case kNorthG: grp.next.row = std::max(grp.next.row, c.row); break;
        case kUpG: grp.next.layer = std::min(grp.next.layer, c.layer); break;
        case kDownG:
          grp.next.layer = std::max(grp.next.layer, c.layer);
          break;
      }
    }
    grp.dests.push_back(m);
  }
  for (std::size_t g = 0; g < kNumGroups; ++g) {
    Group& grp = groups[g];
    if (!grp.any) continue;
    // The branch point keeps this tile's coordinates in the dimensions the
    // group has not diverged in yet.
    TileCoord next = here;
    if (g == kEastG || g == kWestG) {
      next.col = grp.next.col;
    } else if (g == kSouthG || g == kNorthG) {
      next.row = grp.next.row;
    } else {
      next.layer = grp.next.layer;
    }
    const TileId endpoint = mesh.tile_at(next);
    const bool delivers =
        std::find(grp.dests.begin(), grp.dests.end(), endpoint) !=
        grp.dests.end();

    PacketInfo info;
    info.id = next_id_++;
    info.cls = delivers ? PacketClass::kMemoryRequest
                        : PacketClass::kMemoryForward;
    info.src = from;
    info.dst = endpoint;
    info.flits = net.config().short_packet_flits;
    info.app = app;
    info.thread = thread;
    info.created = created;
    multicast_.emplace(info.id,
                       MulticastBranch{std::move(grp.dests), created});
    net.inject_packet(info);
  }
}

void TrafficEngine::schedule(Cycle due, PacketClass cls, TileId src,
                             TileId dst, std::size_t app,
                             std::size_t thread) {
  PacketInfo pkt;
  pkt.id = next_id_++;
  pkt.cls = cls;
  pkt.src = src;
  pkt.dst = dst;
  pkt.flits = 0;  // filled from the network's packet format at injection
  pkt.app = app;
  pkt.thread = thread;
  pending_replies_.emplace(due, pkt);
}

void TrafficEngine::on_ejection(Network& net, const Ejection& ejection,
                                Cycle now) {
  const PacketInfo& pkt = ejection.info;
  const TileId requester = thread_tile_[pkt.thread];

  // Multicast tree segments (delivery or pure branch) continue the fan-out
  // from their endpoint; the reply comes from the designated responder
  // inside emit_multicast. Requests carry a branch record; a kMemoryRequest
  // without one is a plain unicast request from the other modes.
  if (auto it = multicast_.find(pkt.id); it != multicast_.end()) {
    MulticastBranch branch = std::move(it->second);
    multicast_.erase(it);
    emit_multicast(net, pkt.dst, std::move(branch.dests), branch.created,
                   now, pkt.app, pkt.thread, nullptr,
                   /*record_local_delivery=*/false);
    return;
  }

  switch (pkt.cls) {
    case PacketClass::kCacheRequest: {
      const Cycle due = now + config_.l2_service_latency;
      if (config_.forward_probability > 0.0 &&
          coherence_rng_.bernoulli(config_.forward_probability)) {
        // Line dirty in another private L1: the bank forwards to the owner
        // tile, which will supply the data (paper Section II.B's
        // checking/forwarding packets).
        const auto owner = static_cast<TileId>(coherence_rng_.uniform_u32(
            static_cast<std::uint32_t>(problem_->num_tiles())));
        schedule(due, PacketClass::kCacheForward, pkt.dst, owner, pkt.app,
                 pkt.thread);
      } else {
        schedule(due, PacketClass::kCacheReply, pkt.dst, requester, pkt.app,
                 pkt.thread);
      }
      break;
    }
    case PacketClass::kCacheForward:
      // The owner L1 supplies the line to the requester after its lookup.
      schedule(now + 1, PacketClass::kCacheReply, pkt.dst, requester,
               pkt.app, pkt.thread);
      break;
    case PacketClass::kMemoryRequest:
      schedule(now + config_.memory_service_latency,
               PacketClass::kMemoryReply, pkt.dst, requester, pkt.app,
               pkt.thread);
      break;
    case PacketClass::kCacheReply:
    case PacketClass::kMemoryReply:
      break;  // transaction complete
    case PacketClass::kMemoryForward:
      break;  // always carries a branch record; handled above
  }
}

}  // namespace nocmap
