#include "netsim/router.h"

#include <algorithm>

namespace nocmap {

PortDir opposite(PortDir d) {
  switch (d) {
    case PortDir::kNorth: return PortDir::kSouth;
    case PortDir::kEast: return PortDir::kWest;
    case PortDir::kSouth: return PortDir::kNorth;
    case PortDir::kWest: return PortDir::kEast;
    case PortDir::kLocal: return PortDir::kLocal;
  }
  return PortDir::kLocal;
}

Router::Router(TileId id, const Mesh& mesh, const NetworkConfig& config)
    : id_(id), mesh_(&mesh), config_(config),
      arbiter_rng_(splitmix64(config.arbitration_seed) ^
                   splitmix64(static_cast<std::uint64_t>(id) + 1)) {
  NOCMAP_REQUIRE(config_.vcs_per_port >= 1, "need at least one VC");
  NOCMAP_REQUIRE(kNumPorts * config_.vcs_per_port <= 64,
                 "arbitration candidate buffer supports <= 64 VC slots");
  NOCMAP_REQUIRE(config_.buffer_depth >= 1, "need at least one buffer slot");
  inputs_.resize(kNumPorts * config_.vcs_per_port);
  outputs_.resize(kNumPorts * config_.vcs_per_port);
  // Downstream input buffers start empty: full credit everywhere.
  for (auto& ovc : outputs_) ovc.credits = config_.buffer_depth;
}

Router::InputVc& Router::in_vc(PortDir port, std::uint32_t vc) {
  return inputs_[port_index(port) * config_.vcs_per_port + vc];
}

const Router::InputVc& Router::in_vc(PortDir port, std::uint32_t vc) const {
  return inputs_[port_index(port) * config_.vcs_per_port + vc];
}

Router::OutputVc& Router::out_vc(PortDir port, std::uint32_t vc) {
  return outputs_[port_index(port) * config_.vcs_per_port + vc];
}

bool Router::can_accept(PortDir port, std::uint32_t vc) const {
  return in_vc(port, vc).buffer.size() < config_.buffer_depth;
}

void Router::receive_flit(PortDir port, std::uint32_t vc, const Flit& flit,
                          Cycle now) {
  InputVc& ivc = in_vc(port, vc);
  NOCMAP_REQUIRE(ivc.buffer.size() < config_.buffer_depth,
                 "input VC buffer overflow (credit protocol violated)");
  Flit stored = flit;
  stored.enqueued = now;
  ivc.buffer.push_back(stored);
  ++activity_.buffer_writes;
}

void Router::receive_credit(PortDir port, std::uint32_t vc) {
  OutputVc& ovc = out_vc(port, vc);
  NOCMAP_REQUIRE(ovc.credits < config_.buffer_depth,
                 "credit overflow (credit protocol violated)");
  ++ovc.credits;
}

PortDir Router::route(TileId dst, bool yx) const {
  const TileCoord here = mesh_->coord_of(id_);
  const TileCoord there = mesh_->coord_of(dst);
  if (yx) {
    // Y (rows) first, then X (columns).
    if (there.row > here.row) return PortDir::kSouth;
    if (there.row < here.row) return PortDir::kNorth;
    if (there.col > here.col) return PortDir::kEast;
    if (there.col < here.col) return PortDir::kWest;
    return PortDir::kLocal;
  }
  // Dimension order: X (columns) first, then Y (rows).
  if (there.col > here.col) return PortDir::kEast;
  if (there.col < here.col) return PortDir::kWest;
  if (there.row > here.row) return PortDir::kSouth;
  if (there.row < here.row) return PortDir::kNorth;
  return PortDir::kLocal;
}

void Router::tick(Cycle now, std::vector<Departure>& out) {
  const std::uint32_t vcs = config_.vcs_per_port;

  // --- Route computation + VC allocation for head flits at buffer heads.
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (std::uint32_t v = 0; v < vcs; ++v) {
      InputVc& ivc = in_vc(static_cast<PortDir>(p), v);
      if (ivc.buffer.empty()) continue;
      const Flit& head = ivc.buffer.front();
      if (!head.is_head) continue;  // body/tail: route already held
      if (!ivc.route_valid) {
        ivc.out_port = route(head.dst, head.yx);
        ivc.route_valid = true;
      }
      if (!ivc.out_vc_valid) {
        // Claim the lowest-index free downstream VC within the flit's
        // sub-route class (O1TURN partitions VCs; see NetworkConfig).
        std::uint32_t lo = 0;
        std::uint32_t hi = vcs;
        config_.vc_range(head.yx, lo, hi);
        for (std::uint32_t ov = lo; ov < hi; ++ov) {
          OutputVc& ovc = out_vc(ivc.out_port, ov);
          if (!ovc.allocated) {
            ovc.allocated = true;
            ivc.out_vc = ov;
            ivc.out_vc_valid = true;
            ++activity_.vc_allocations;
            break;
          }
        }
      }
    }
  }

  // --- Separable switch allocation: each output port grants one input VC,
  // each input port issues at most one flit.
  std::array<bool, kNumPorts> input_busy{};
  for (std::size_t op = 0; op < kNumPorts; ++op) {
    const std::size_t slots = kNumPorts * vcs;
    std::uint32_t& rr = rr_pointer_[op];

    auto eligible = [&](std::size_t slot) -> bool {
      const auto ip = static_cast<PortDir>(slot / vcs);
      const auto iv = static_cast<std::uint32_t>(slot % vcs);
      if (input_busy[port_index(ip)]) return false;
      const InputVc& ivc = in_vc(ip, iv);
      if (ivc.buffer.empty() || !ivc.route_valid || !ivc.out_vc_valid) {
        return false;
      }
      if (port_index(ivc.out_port) != op) return false;
      if (ivc.buffer.front().enqueued + config_.router_pipeline > now) {
        return false;
      }
      return outputs_[op * vcs + ivc.out_vc].credits > 0;
    };

    // Pick the winner slot per the configured policy.
    std::size_t winner = slots;  // sentinel: no grant
    if (config_.arbitration == Arbitration::kRoundRobin) {
      for (std::size_t offset = 0; offset < slots; ++offset) {
        const std::size_t slot = (rr + offset) % slots;
        if (eligible(slot)) {
          winner = slot;
          break;
        }
      }
    } else {
      // Distance-weighted (PDBA-lite): sample among the eligible
      // candidates with probability proportional to 1 + hops travelled,
      // equalizing service between short- and long-haul packets.
      double total_weight = 0.0;
      std::array<std::size_t, 64> candidates{};  // kNumPorts * vcs <= 64
      std::array<double, 64> weights{};
      std::size_t count = 0;
      for (std::size_t slot = 0; slot < slots && count < 64; ++slot) {
        if (!eligible(slot)) continue;
        const auto ip = static_cast<PortDir>(slot / vcs);
        const auto iv = static_cast<std::uint32_t>(slot % vcs);
        const double w =
            1.0 + static_cast<double>(in_vc(ip, iv).buffer.front().hops);
        candidates[count] = slot;
        weights[count] = w;
        total_weight += w;
        ++count;
      }
      if (count > 0) {
        double pick = arbiter_rng_.uniform(0.0, total_weight);
        winner = candidates[count - 1];
        for (std::size_t c = 0; c < count; ++c) {
          pick -= weights[c];
          if (pick <= 0.0) {
            winner = candidates[c];
            break;
          }
        }
      }
    }
    if (winner == slots) continue;

    const auto ip = static_cast<PortDir>(winner / vcs);
    const auto iv = static_cast<std::uint32_t>(winner % vcs);
    InputVc& ivc = in_vc(ip, iv);
    const Flit& flit = ivc.buffer.front();
    OutputVc& ovc = out_vc(ivc.out_port, ivc.out_vc);

    // Grant: switch traversal.
    --ovc.credits;
    input_busy[port_index(ip)] = true;
    ++activity_.sw_arbitrations;
    ++activity_.buffer_reads;
    ++activity_.crossbar_traversals;
    activity_.queue_wait_cycles +=
        now - (flit.enqueued + config_.router_pipeline);

    Departure dep;
    dep.out_port = ivc.out_port;
    dep.out_vc = ivc.out_vc;
    dep.in_port = ip;
    dep.in_vc = iv;
    dep.flit = flit;
    ivc.buffer.pop_front();

    if (dep.flit.is_tail) {
      ovc.allocated = false;
      ivc.route_valid = false;
      ivc.out_vc_valid = false;
    }
    out.push_back(dep);
    rr = static_cast<std::uint32_t>((winner + 1) % slots);
  }
}

std::size_t Router::buffered_flits() const {
  std::size_t total = 0;
  for (const auto& ivc : inputs_) total += ivc.buffer.size();
  return total;
}

}  // namespace nocmap
