#include "netsim/router.h"

#include <bit>

namespace nocmap {

PortDir opposite(PortDir d) {
  switch (d) {
    case PortDir::kNorth: return PortDir::kSouth;
    case PortDir::kEast: return PortDir::kWest;
    case PortDir::kSouth: return PortDir::kNorth;
    case PortDir::kWest: return PortDir::kEast;
    case PortDir::kLocal: return PortDir::kLocal;
    case PortDir::kUp: return PortDir::kDown;
    case PortDir::kDown: return PortDir::kUp;
  }
  return PortDir::kLocal;
}

RouterEngine::RouterEngine(const Mesh& mesh, const NetworkConfig& config,
                           std::size_t num_routers, TileId first_tile)
    : mesh_(&mesh),
      config_(config),
      num_routers_(num_routers),
      vcs_(config.vcs_per_port),
      depth_(config.buffer_depth),
      vc_slots_(kNumPorts * config.vcs_per_port) {
  NOCMAP_REQUIRE(config_.vcs_per_port >= 1, "need at least one VC");
  NOCMAP_REQUIRE(kNumPorts * config_.vcs_per_port <= 64,
                 "arbitration candidate buffer supports <= 64 VC slots");
  NOCMAP_REQUIRE(config_.buffer_depth >= 1, "need at least one buffer slot");
  NOCMAP_REQUIRE(num_routers >= 1, "engine needs at least one router");

  const std::size_t total_vcs = num_routers * vc_slots_;
  pool_.resize(total_vcs * depth_);
  fifo_head_.assign(total_vcs, 0);
  fifo_size_.assign(total_vcs, 0);
  route_valid_.assign(total_vcs, 0);
  out_port_.assign(total_vcs, 0);
  out_vc_valid_.assign(total_vcs, 0);
  out_vc_.assign(total_vcs, 0);
  out_allocated_.assign(total_vcs, 0);
  // Downstream input buffers start empty: full credit everywhere.
  out_credits_.assign(total_vcs, depth_);
  rr_pointer_.assign(num_routers * kNumPorts, 0);
  nonempty_mask_.assign(num_routers, 0);
  buffered_.assign(num_routers, 0);
  activity_.assign(num_routers, ActivityCounters{});
  active_words_.assign((num_routers + 63) / 64, 0);

  arbiter_rng_.reserve(num_routers);
  coord_.reserve(num_routers);
  for (std::size_t r = 0; r < num_routers; ++r) {
    const auto tile = static_cast<TileId>(first_tile + r);
    arbiter_rng_.emplace_back(
        splitmix64(config.arbitration_seed) ^
        splitmix64(static_cast<std::uint64_t>(tile) + 1));
    coord_.push_back(mesh.coord_of(tile));
  }
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    port_slot_mask_[p] = ((1ull << vcs_) - 1) << (p * vcs_);
  }
}

bool RouterEngine::can_accept(std::size_t router, PortDir port,
                              std::uint32_t vc) const {
  return fifo_size_[vc_index(router, port_index(port), vc)] < depth_;
}

void RouterEngine::receive_flit(std::size_t router, PortDir port,
                                std::uint32_t vc, const Flit& flit,
                                Cycle now) {
  const std::size_t slot = port_index(port) * vcs_ + vc;
  const std::size_t idx = router * vc_slots_ + slot;
  NOCMAP_REQUIRE(fifo_size_[idx] < depth_,
                 "input VC buffer overflow (credit protocol violated)");
  std::size_t tail = fifo_head_[idx] + fifo_size_[idx];
  if (tail >= depth_) tail -= depth_;
  Flit& stored = pool_[idx * depth_ + tail];
  stored = flit;
  stored.enqueued = now;
  ++fifo_size_[idx];
  nonempty_mask_[router] |= 1ull << slot;
  ++buffered_[router];
  ++activity_[router].buffer_writes;
  active_words_[router >> 6] |= 1ull << (router & 63);
}

void RouterEngine::receive_credit(std::size_t router, PortDir port,
                                  std::uint32_t vc) {
  const std::size_t idx = vc_index(router, port_index(port), vc);
  NOCMAP_REQUIRE(out_credits_[idx] < depth_,
                 "credit overflow (credit protocol violated)");
  ++out_credits_[idx];
}

PortDir RouterEngine::route(std::size_t router, TileId dst, bool yx) const {
  const TileCoord here = coord_[router];
  const TileCoord there = mesh_->coord_of(dst);
  if (yx) {
    // Y (rows) first, then X (columns), then Z (layers).
    if (there.row > here.row) return PortDir::kSouth;
    if (there.row < here.row) return PortDir::kNorth;
    if (there.col > here.col) return PortDir::kEast;
    if (there.col < here.col) return PortDir::kWest;
    if (there.layer > here.layer) return PortDir::kUp;
    if (there.layer < here.layer) return PortDir::kDown;
    return PortDir::kLocal;
  }
  // Dimension order: X (columns) first, then Y (rows), then Z (layers).
  // Resolving Z last keeps both sub-routes deadlock-free (strict dimension
  // order) and means planar traffic never touches the TSV ports.
  if (there.col > here.col) return PortDir::kEast;
  if (there.col < here.col) return PortDir::kWest;
  if (there.row > here.row) return PortDir::kSouth;
  if (there.row < here.row) return PortDir::kNorth;
  if (there.layer > here.layer) return PortDir::kUp;
  if (there.layer < here.layer) return PortDir::kDown;
  return PortDir::kLocal;
}

void RouterEngine::tick(std::size_t router, Cycle now,
                        std::vector<Departure>& out) {
  const std::uint32_t vcs = vcs_;
  const std::size_t base = router * vc_slots_;
  ActivityCounters& act = activity_[router];

  // --- Route computation + VC allocation for head flits at buffer heads,
  // fused with the switch-allocation request scan. Occupied slots are
  // visited in ascending (port, vc) order — identical to the nested loop a
  // dense implementation would run — and a slot's SA request depends only
  // on its own state and untouched credit counters, so computing it right
  // after the slot's RC/VA step matches a separate full pass bit-for-bit.
  std::array<std::uint64_t, kNumPorts> requests{};
  std::uint64_t pending = nonempty_mask_[router];
  while (pending) {
    const auto slot = static_cast<std::size_t>(std::countr_zero(pending));
    pending &= pending - 1;
    const std::size_t idx = base + slot;
    const Flit& head = pool_[idx * depth_ + fifo_head_[idx]];
    if (head.is_head) {  // body/tail: route already held
      if (!route_valid_[idx]) {
        out_port_[idx] =
            static_cast<std::uint8_t>(route(router, head.dst, head.yx));
        route_valid_[idx] = 1;
      }
      if (!out_vc_valid_[idx]) {
        // Claim the lowest-index free downstream VC within the flit's
        // sub-route class (O1TURN partitions VCs; see NetworkConfig).
        std::uint32_t lo = 0;
        std::uint32_t hi = vcs;
        config_.vc_range(head.yx, lo, hi);
        const std::size_t obase = base + out_port_[idx] * vcs;
        for (std::uint32_t ov = lo; ov < hi; ++ov) {
          if (!out_allocated_[obase + ov]) {
            out_allocated_[obase + ov] = 1;
            out_vc_[idx] = static_cast<std::uint8_t>(ov);
            out_vc_valid_[idx] = 1;
            ++act.vc_allocations;
            break;
          }
        }
      }
    }
    if (route_valid_[idx] && out_vc_valid_[idx] &&
        head.enqueued + config_.router_pipeline <= now &&
        out_credits_[base + out_port_[idx] * vcs + out_vc_[idx]] > 0) {
      requests[out_port_[idx]] |= 1ull << slot;
    }
  }

  // --- Separable switch allocation: each output port grants one input VC,
  // each input port issues at most one flit.
  const std::size_t slots = vc_slots_;
  std::uint64_t busy_inputs = 0;  // VC slots of input ports already granted
  for (std::size_t op = 0; op < kNumPorts; ++op) {
    const std::uint64_t eligible = requests[op] & ~busy_inputs;
    if (eligible == 0) continue;
    std::uint32_t& rr = rr_pointer_[router * kNumPorts + op];

    std::size_t winner;
    if (config_.arbitration == Arbitration::kRoundRobin) {
      // First eligible slot at or after the round-robin pointer, wrapping.
      const std::uint64_t ahead = eligible & (~0ull << rr);
      winner = static_cast<std::size_t>(
          std::countr_zero(ahead != 0 ? ahead : eligible));
    } else {
      // Distance-weighted (PDBA-lite): sample among the eligible
      // candidates with probability proportional to 1 + hops travelled,
      // equalizing service between short- and long-haul packets.
      double total_weight = 0.0;
      std::array<std::size_t, 64> candidates{};  // kNumPorts * vcs <= 64
      std::array<double, 64> weights{};
      std::size_t count = 0;
      std::uint64_t scan = eligible;
      while (scan) {
        const auto slot = static_cast<std::size_t>(std::countr_zero(scan));
        scan &= scan - 1;
        const std::size_t idx = base + slot;
        const double w =
            1.0 + static_cast<double>(
                      pool_[idx * depth_ + fifo_head_[idx]].hops);
        candidates[count] = slot;
        weights[count] = w;
        total_weight += w;
        ++count;
      }
      double pick = arbiter_rng_[router].uniform(0.0, total_weight);
      winner = candidates[count - 1];
      for (std::size_t c = 0; c < count; ++c) {
        pick -= weights[c];
        if (pick <= 0.0) {
          winner = candidates[c];
          break;
        }
      }
    }

    const std::size_t idx = base + winner;
    const std::size_t ip = winner / vcs;
    const std::size_t ovidx = base + out_port_[idx] * vcs + out_vc_[idx];
    const Flit& flit = pool_[idx * depth_ + fifo_head_[idx]];

    // Grant: switch traversal.
    --out_credits_[ovidx];
    busy_inputs |= port_slot_mask_[ip];
    ++act.sw_arbitrations;
    ++act.buffer_reads;
    ++act.crossbar_traversals;
    act.queue_wait_cycles += now - (flit.enqueued + config_.router_pipeline);

    Departure dep;
    dep.out_port = static_cast<PortDir>(out_port_[idx]);
    dep.out_vc = out_vc_[idx];
    dep.in_port = static_cast<PortDir>(ip);
    dep.in_vc = static_cast<std::uint32_t>(winner % vcs);
    dep.flit = flit;

    // Pop the ring-buffer front.
    std::uint32_t head_next = fifo_head_[idx] + 1;
    if (head_next == depth_) head_next = 0;
    fifo_head_[idx] = head_next;
    if (--fifo_size_[idx] == 0) nonempty_mask_[router] &= ~(1ull << winner);
    --buffered_[router];

    if (dep.flit.is_tail) {
      out_allocated_[ovidx] = 0;
      route_valid_[idx] = 0;
      out_vc_valid_[idx] = 0;
    }
    out.push_back(dep);
    rr = static_cast<std::uint32_t>((winner + 1) % slots);
  }
}

void RouterEngine::reset_activity() {
  for (auto& a : activity_) a = ActivityCounters{};
}

}  // namespace nocmap
