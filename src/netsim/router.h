// Canonical 3-stage credit-based wormhole virtual-channel router
// (paper Table 2; substitution for Garnet's router model).
//
// Micro-architecture modelled per cycle:
//  * Input units: per input port, per VC, a FIFO flit buffer of fixed depth.
//    A VC holds one packet at a time (allocated head → tail).
//  * Route computation: XY dimension-order, performed when a head flit
//    reaches the buffer head (look-ahead routing is folded into the fixed
//    3-cycle pipeline latency).
//  * VC allocation: a head flit claims a free VC of the downstream input
//    port (lowest-index free VC wins).
//  * Switch allocation: separable round-robin — each output port grants one
//    input VC per cycle among those with an eligible flit, an allocated
//    output VC, and a downstream credit; each input port sends at most one
//    flit per cycle through the crossbar.
//  * Switch traversal: the granted flit leaves this cycle; the network
//    delivers it to the neighbour after the link latency and returns a
//    credit upstream.
//
// The 3-stage pipeline is modelled as a minimum residence time: a flit that
// entered an input buffer at cycle t is eligible for switch allocation from
// t + router_pipeline.
//
// Storage is structure-of-arrays across *all* routers of a mesh
// (RouterEngine): one flat ring-buffer flit pool plus parallel state arrays
// indexed by (router, port, vc), so the per-cycle loop touches contiguous
// memory and never allocates. Occupancy bitmasks (one bit per input VC
// slot, ≤ 64 slots per router) drive both the RC/VA pass and the separable
// switch allocator, and an active-router bitmask lets the network skip
// idle routers entirely — an idle router's tick changes no state, so the
// skip is exact, not approximate. DESIGN.md §12 documents the engine.
#pragma once

#include <array>
#include <vector>

#include "netsim/types.h"
#include "util/rng.h"

namespace nocmap {

/// Mesh router ports. kLocal connects to the tile's network interface;
/// kUp/kDown are the TSV ports of a stacked mesh. They come *after* kLocal
/// so the (port, vc) slot numbering of a planar router — and with it every
/// round-robin arbitration decision — is unchanged from the 5-port layout:
/// on a 2D mesh slots of ports 5–6 are never occupied, and the allocator
/// skips empty slots, so the extra ports are exactly inert.
enum class PortDir : std::uint8_t {
  kNorth = 0,
  kEast = 1,
  kSouth = 2,
  kWest = 3,
  kLocal = 4,
  kUp = 5,
  kDown = 6,
};
inline constexpr std::size_t kNumPorts = 7;

inline std::size_t port_index(PortDir d) { return static_cast<std::size_t>(d); }

/// Opposite direction (the input port a flit arrives on after traversing a
/// link out of `d`).
PortDir opposite(PortDir d);

/// A flit leaving a router this cycle.
struct Departure {
  PortDir out_port = PortDir::kLocal;
  std::uint32_t out_vc = 0;
  PortDir in_port = PortDir::kLocal;  ///< where it came from (credit return)
  std::uint32_t in_vc = 0;
  Flit flit;
};

/// Structure-of-arrays router state for `num_routers` consecutive tiles
/// starting at `first_tile`. The Network runs one engine for the whole mesh
/// (router index == TileId); the standalone Router below wraps a one-router
/// engine for unit tests and micro-level studies.
class RouterEngine {
 public:
  RouterEngine(const Mesh& mesh, const NetworkConfig& config,
               std::size_t num_routers, TileId first_tile);

  std::size_t num_routers() const { return num_routers_; }

  /// True if the input VC has buffer space for one more flit.
  bool can_accept(std::size_t router, PortDir port, std::uint32_t vc) const;

  /// Deposits a flit into an input VC buffer at cycle `now` and marks the
  /// router active. Precondition: can_accept(router, port, vc).
  void receive_flit(std::size_t router, PortDir port, std::uint32_t vc,
                    const Flit& flit, Cycle now);

  /// Returns one credit to the output unit (port, vc): a downstream buffer
  /// slot was freed.
  void receive_credit(std::size_t router, PortDir port, std::uint32_t vc);

  /// Performs VC allocation + switch allocation + switch traversal for one
  /// cycle; appends departures to `out` in output-port order.
  void tick(std::size_t router, Cycle now, std::vector<Departure>& out);

  const ActivityCounters& activity(std::size_t router) const {
    return activity_[router];
  }
  void reset_activity();

  /// Total flits currently buffered (drain/conservation checks).
  std::size_t buffered_flits(std::size_t router) const {
    return buffered_[router];
  }

  // --- Active-router worklist. A router is activated by every flit
  // deposit; the caller retires it after a tick that leaves its buffers
  // empty. Words are iterated low-to-high, so scanning set bits visits
  // routers in ascending index order — the same order as a dense loop,
  // which keeps ejection and event push order (and therefore floating-point
  // accumulation order downstream) identical to ticking every router.
  std::size_t num_active_words() const { return active_words_.size(); }
  std::uint64_t active_word(std::size_t w) const { return active_words_[w]; }
  void retire_if_idle(std::size_t router) {
    if (buffered_[router] == 0) {
      active_words_[router >> 6] &= ~(1ull << (router & 63));
    }
  }

 private:
  /// Dimension-order route for a destination from `router` (X-first, or
  /// Y-first when the flit carries the YX sub-route).
  PortDir route(std::size_t router, TileId dst, bool yx) const;

  /// Index into the per-input-VC arrays.
  std::size_t vc_index(std::size_t router, std::size_t port,
                       std::uint32_t vc) const {
    return (router * kNumPorts + port) * vcs_ + vc;
  }

  const Mesh* mesh_;
  NetworkConfig config_;
  std::size_t num_routers_ = 0;
  std::uint32_t vcs_ = 0;
  std::uint32_t depth_ = 0;
  std::size_t vc_slots_ = 0;  ///< kNumPorts * vcs_: VC slots per router

  // Per input VC (flattened [router][port][vc]): ring-buffer cursors into
  // the flit pool plus the held route / output-VC claim.
  std::vector<Flit> pool_;  ///< [router][port][vc][depth_] ring storage
  std::vector<std::uint32_t> fifo_head_;
  std::vector<std::uint32_t> fifo_size_;
  std::vector<std::uint8_t> route_valid_;
  std::vector<std::uint8_t> out_port_;
  std::vector<std::uint8_t> out_vc_valid_;
  std::vector<std::uint8_t> out_vc_;

  // Per output VC (same flattening): wormhole allocation + credits.
  std::vector<std::uint8_t> out_allocated_;
  std::vector<std::uint32_t> out_credits_;

  // Per (router, output port): round-robin pointer over input VC slots.
  std::vector<std::uint32_t> rr_pointer_;

  // Per router.
  std::vector<std::uint64_t> nonempty_mask_;  ///< bit per occupied VC slot
  std::vector<std::uint32_t> buffered_;
  std::vector<ActivityCounters> activity_;
  std::vector<Rng> arbiter_rng_;      ///< distance-weighted draws
  std::vector<TileCoord> coord_;      ///< cached mesh coordinates
  std::array<std::uint64_t, kNumPorts> port_slot_mask_{};

  std::vector<std::uint64_t> active_words_;
};

/// One router viewed in isolation: the unit-test / single-tile facade over
/// a one-router engine. Same cycle-exact behaviour as a router embedded in
/// a Network's engine.
class Router {
 public:
  Router(TileId id, const Mesh& mesh, const NetworkConfig& config)
      : id_(id), engine_(mesh, config, 1, id) {}

  TileId id() const { return id_; }

  bool can_accept(PortDir port, std::uint32_t vc) const {
    return engine_.can_accept(0, port, vc);
  }
  void receive_flit(PortDir port, std::uint32_t vc, const Flit& flit,
                    Cycle now) {
    engine_.receive_flit(0, port, vc, flit, now);
  }
  void receive_credit(PortDir port, std::uint32_t vc) {
    engine_.receive_credit(0, port, vc);
  }
  void tick(Cycle now, std::vector<Departure>& out) {
    engine_.tick(0, now, out);
  }

  const ActivityCounters& activity() const { return engine_.activity(0); }
  void reset_activity() { engine_.reset_activity(); }
  std::size_t buffered_flits() const { return engine_.buffered_flits(0); }

 private:
  TileId id_;
  RouterEngine engine_;
};

}  // namespace nocmap
