// Canonical 3-stage credit-based wormhole virtual-channel router
// (paper Table 2; substitution for Garnet's router model).
//
// Micro-architecture modelled per cycle:
//  * Input units: per input port, per VC, a FIFO flit buffer of fixed depth.
//    A VC holds one packet at a time (allocated head → tail).
//  * Route computation: XY dimension-order, performed when a head flit
//    reaches the buffer head (look-ahead routing is folded into the fixed
//    3-cycle pipeline latency).
//  * VC allocation: a head flit claims a free VC of the downstream input
//    port (lowest-index free VC wins).
//  * Switch allocation: separable round-robin — each output port grants one
//    input VC per cycle among those with an eligible flit, an allocated
//    output VC, and a downstream credit; each input port sends at most one
//    flit per cycle through the crossbar.
//  * Switch traversal: the granted flit leaves this cycle; the network
//    delivers it to the neighbour after the link latency and returns a
//    credit upstream.
//
// The 3-stage pipeline is modelled as a minimum residence time: a flit that
// entered an input buffer at cycle t is eligible for switch allocation from
// t + router_pipeline.
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "netsim/types.h"
#include "util/rng.h"

namespace nocmap {

/// Mesh router ports. kLocal connects to the tile's network interface.
enum class PortDir : std::uint8_t {
  kNorth = 0,
  kEast = 1,
  kSouth = 2,
  kWest = 3,
  kLocal = 4,
};
inline constexpr std::size_t kNumPorts = 5;

inline std::size_t port_index(PortDir d) { return static_cast<std::size_t>(d); }

/// Opposite direction (the input port a flit arrives on after traversing a
/// link out of `d`).
PortDir opposite(PortDir d);

/// A flit leaving a router this cycle.
struct Departure {
  PortDir out_port = PortDir::kLocal;
  std::uint32_t out_vc = 0;
  PortDir in_port = PortDir::kLocal;  ///< where it came from (credit return)
  std::uint32_t in_vc = 0;
  Flit flit;
};

class Router {
 public:
  Router(TileId id, const Mesh& mesh, const NetworkConfig& config);

  TileId id() const { return id_; }

  /// True if the input VC has buffer space for one more flit.
  bool can_accept(PortDir port, std::uint32_t vc) const;

  /// Deposits a flit into an input VC buffer at cycle `now`.
  /// Precondition: can_accept(port, vc).
  void receive_flit(PortDir port, std::uint32_t vc, const Flit& flit,
                    Cycle now);

  /// Returns one credit to the output unit (port, vc): a downstream buffer
  /// slot was freed.
  void receive_credit(PortDir port, std::uint32_t vc);

  /// Performs VC allocation + switch allocation + switch traversal for one
  /// cycle; appends departures to `out`. The network routes each departure
  /// over the corresponding link and returns the credit upstream.
  void tick(Cycle now, std::vector<Departure>& out);

  const ActivityCounters& activity() const { return activity_; }
  void reset_activity() { activity_ = {}; }

  /// Total flits currently buffered (drain/conservation checks).
  std::size_t buffered_flits() const;

 private:
  struct InputVc {
    std::deque<Flit> buffer;
    bool route_valid = false;
    PortDir out_port = PortDir::kLocal;
    bool out_vc_valid = false;
    std::uint32_t out_vc = 0;
  };

  struct OutputVc {
    bool allocated = false;
    std::uint32_t credits = 0;
  };

  /// Dimension-order route for the flit's destination from this router
  /// (X-first, or Y-first when the flit carries the YX sub-route).
  PortDir route(TileId dst, bool yx) const;

  InputVc& in_vc(PortDir port, std::uint32_t vc);
  const InputVc& in_vc(PortDir port, std::uint32_t vc) const;
  OutputVc& out_vc(PortDir port, std::uint32_t vc);

  TileId id_;
  const Mesh* mesh_;
  NetworkConfig config_;
  std::vector<InputVc> inputs_;    // [port][vc] flattened
  std::vector<OutputVc> outputs_;  // [port][vc] flattened
  std::array<std::uint32_t, kNumPorts> rr_pointer_{};  // per output port
  Rng arbiter_rng_{0};  // distance-weighted arbitration draws
  ActivityCounters activity_;
};

}  // namespace nocmap
