// Whole-network cycle-level model: routers, links, network interfaces.
//
// The Network owns one RouterEngine covering every tile (structure-of-
// arrays router state; see router.h) and one network interface (NI) per
// tile. Traffic enters through NI source queues (open-loop injection:
// queues are unbounded, so offered load is never throttled by the network —
// matching trace-driven evaluation), moves through the credit-based
// wormhole fabric, and is consumed by NI sinks. The caller drives the clock
// via step() and drains ejection records; packet payload semantics
// (cache/memory transactions, replies) live in traffic.h on top of this
// layer.
//
// Idle tiles cost nothing: routers are ticked off the engine's active
// bitmask and NIs off a source-queue bitmask, both scanned in ascending
// tile order so event and ejection ordering — and with it every
// floating-point accumulation downstream — is identical to the dense loop.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "netsim/router.h"

namespace nocmap {

/// A packet that fully left the network (its tail flit reached the NI sink).
struct Ejection {
  PacketInfo info;
  Cycle ejected = 0;

  /// End-to-end network latency in cycles: source-queue entry to tail
  /// ejection (includes source queuing and serialization).
  Cycle latency() const { return ejected - info.created; }
};

class Network {
 public:
  Network(const Mesh& mesh, const NetworkConfig& config);

  const Mesh& mesh() const { return *mesh_; }
  const NetworkConfig& config() const { return config_; }
  Cycle now() const { return now_; }

  /// Queues a packet for injection at info.src. Requires src != dst (local
  /// accesses never enter the network; handle them in the traffic layer).
  void inject_packet(const PacketInfo& info);

  /// Advances the network by one cycle.
  void step();

  /// Ejections completed since the last call (cleared by the call).
  std::vector<Ejection> take_ejections();

  /// Packets currently inside the network or its source queues.
  std::size_t packets_in_flight() const { return packets_.size(); }
  /// Flits injected into / ejected from the fabric so far (conservation).
  std::uint64_t flits_injected() const { return flits_injected_; }
  std::uint64_t flits_ejected() const { return flits_ejected_; }

  /// Sum of router activity counters (plus link traversals counted here).
  ActivityCounters total_activity() const;
  /// One router's own counters (tests / per-router utilization studies).
  const ActivityCounters& router_activity(TileId t) const;
  void reset_activity();

  /// Freezes the current per-router counters as the measurement-window
  /// snapshot, so load summaries computed later (e.g. after a drain phase)
  /// cannot be inflated by post-window traffic.
  void snapshot_activity();
  /// Per-router counters as of the last snapshot_activity() call (falls
  /// back to the live counters when no snapshot was taken).
  const ActivityCounters& measured_router_activity(TileId t) const;
  /// Sum of the snapshot counters, link traversals included.
  ActivityCounters measured_total_activity() const;

 private:
  struct Ni {
    std::deque<Flit> source_queue;
    // Credit view of the router's local input VCs.
    std::vector<std::uint32_t> credits;
    bool vc_held = false;
    std::uint32_t held_vc = 0;
    // Sink-side reassembly: flits received for the current packets.
    std::unordered_map<PacketId, std::uint32_t> sink_flits;
  };

  struct PendingFlit {
    TileId router;
    PortDir port;
    std::uint32_t vc;
    Flit flit;
  };
  struct PendingCredit {
    TileId router;
    PortDir port;
    std::uint32_t vc;
  };
  struct PendingSink {
    TileId tile;
    std::uint32_t out_vc;  ///< local output VC to recredit on consumption
    Flit flit;
  };
  struct Bucket {
    std::vector<PendingFlit> flits;
    std::vector<PendingCredit> credits;
    std::vector<PendingCredit> ni_credits;  // port unused; router==tile
    std::vector<PendingSink> sinks;
  };

  Bucket& bucket_at(Cycle cycle);
  TileId neighbor(TileId tile, PortDir dir) const;

  void deliver_due_events();
  void inject_from_nis();
  void tick_routers();
  void process_sink(const PendingSink& sink);

  const Mesh* mesh_;
  NetworkConfig config_;
  Cycle now_ = 0;

  RouterEngine engine_;
  std::vector<Ni> nis_;
  std::vector<std::uint64_t> ni_active_words_;  ///< nonempty source queues
  std::unordered_map<PacketId, PacketInfo> packets_;
  std::vector<Ejection> ejections_;

  // Ring of future-event buckets; horizon covers the largest network-
  // internal delay (link latency / credit return).
  std::vector<Bucket> ring_;

  std::vector<Departure> departures_scratch_;
  std::uint64_t flits_injected_ = 0;
  std::uint64_t flits_ejected_ = 0;
  std::uint64_t link_traversals_ = 0;

  // Measurement-window snapshot (snapshot_activity).
  std::vector<ActivityCounters> measured_activity_;
  std::uint64_t measured_link_traversals_ = 0;
  bool have_snapshot_ = false;
};

}  // namespace nocmap
