// Whole-network cycle-level model: routers, links, network interfaces.
//
// The Network is spatially partitioned into contiguous row-band *domains*
// (DESIGN.md §16). On a stacked mesh the bands run over global rows
// (layer, row) — the layer-major tile layout makes a band of global rows a
// contiguous (layer, row) slab, so the 2D machinery carries over unchanged
// and vertical hops are just another cross-domain (or intra-domain) link.
// Each domain owns a RouterEngine covering its tiles
// (structure-of-arrays router state; see router.h), the network interfaces
// (NIs) of those tiles, its own future-event ring, and its own counters —
// so within a cycle every domain's work (event delivery, NI injection,
// router ticks) touches only domain-local state and can run on its own
// worker. Events that cross a domain boundary (flits and credits to the
// adjacent row band) are staged in per-domain outboxes during the parallel
// phase and committed into the target domains' rings at a per-cycle
// barrier — the same snapshot/commit discipline the mapper engine uses
// (core/parallel.h). With one domain (the default) the code path is the
// serial engine, unchanged.
//
// Determinism: the partitioned step is bit-identical to the serial engine
// at any domain count. Within a cycle a router's tick reads and writes only
// its own domain's state; staged boundary events land at cycle now+1 or
// later, so no domain ever observes another domain's current-cycle writes.
// Event delivery order within a bucket differs from the serial engine only
// across domains, and every cross-domain event commutes: flit and credit
// deliveries target distinct (router, port, VC) state, and a directed link
// carries at most one flit per cycle. Ejections — whose order feeds
// floating-point accumulation downstream — are produced only by a tile's
// own domain (a local-port departure never crosses a boundary), collected
// per domain in ascending-tile order, and concatenated in domain order at
// the commit barrier: exactly the serial engine's ascending-tile order.
//
// Traffic enters through NI source queues (open-loop injection: queues are
// unbounded, so offered load is never throttled by the network — matching
// trace-driven evaluation), moves through the credit-based wormhole fabric,
// and is consumed by NI sinks. The caller drives the clock via step() and
// drains ejection records; packet payload semantics (cache/memory
// transactions, replies) live in traffic.h on top of this layer.
//
// Idle tiles cost nothing: routers are ticked off each domain engine's
// active bitmask and NIs off a per-domain source-queue bitmask, both
// scanned in ascending tile order so event and ejection ordering — and
// with it every floating-point accumulation downstream — is identical to
// the dense loop.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "netsim/router.h"
#include "util/cycle_barrier.h"

namespace nocmap {

/// A packet that fully left the network (its tail flit reached the NI sink).
struct Ejection {
  PacketInfo info;
  Cycle ejected = 0;

  /// End-to-end network latency in cycles: source-queue entry to tail
  /// ejection (includes source queuing and serialization).
  Cycle latency() const { return ejected - info.created; }
};

class Network {
 public:
  /// `sim_workers` requests the spatial partition width: the mesh is split
  /// into min(sim_workers, layers*rows) contiguous row-band domains
  /// ((layer, row) slabs on a stacked mesh) stepped on a
  /// persistent worker team (0 resolves to the hardware concurrency).
  /// Results are bit-identical at every worker count; 1 (the default) is
  /// the serial engine with no threads spawned.
  Network(const Mesh& mesh, const NetworkConfig& config,
          std::size_t sim_workers = 1);

  const Mesh& mesh() const { return *mesh_; }
  const NetworkConfig& config() const { return config_; }
  Cycle now() const { return now_; }

  /// Row-band domains the mesh is partitioned into (1 = serial).
  std::size_t num_domains() const { return domains_.size(); }
  /// Tiles [first, end) of domain `d` (contiguous, ascending with d).
  TileId domain_first_tile(std::size_t d) const { return domains_[d].first; }
  TileId domain_end_tile(std::size_t d) const { return domains_[d].end; }
  /// The per-cycle worker team, or nullptr when stepping serially. The
  /// traffic layer fans its per-tile draws over the same domains/team so
  /// one barrier discipline covers the whole cycle.
  CycleWorkerTeam* team() { return team_.get(); }

  /// Flits staged across a domain boundary so far (halo exchange volume;
  /// 0 when running with one domain).
  std::uint64_t boundary_flits() const { return boundary_flits_; }

  /// Queues a packet for injection at info.src. Requires src != dst (local
  /// accesses never enter the network; handle them in the traffic layer).
  /// Serial-phase only (between step() calls).
  void inject_packet(const PacketInfo& info);

  /// Advances the network by one cycle: every domain delivers its due
  /// events, injects from its NIs and ticks its routers (in parallel when
  /// a team exists), then boundary events and ejections commit serially.
  void step();

  /// Ejections completed since the last call (cleared by the call).
  std::vector<Ejection> take_ejections();

  /// Packets currently inside the network or its source queues.
  std::size_t packets_in_flight() const;
  /// Flits injected into / ejected from the fabric so far (conservation).
  std::uint64_t flits_injected() const;
  std::uint64_t flits_ejected() const;

  /// Sum of router activity counters (plus link traversals counted here).
  ActivityCounters total_activity() const;
  /// One router's own counters (tests / per-router utilization studies).
  const ActivityCounters& router_activity(TileId t) const;
  void reset_activity();

  /// Freezes the current per-router counters as the measurement-window
  /// snapshot, so load summaries computed later (e.g. after a drain phase)
  /// cannot be inflated by post-window traffic.
  void snapshot_activity();
  /// Per-router counters as of the last snapshot_activity() call (falls
  /// back to the live counters when no snapshot was taken).
  const ActivityCounters& measured_router_activity(TileId t) const;
  /// Sum of the snapshot counters, link traversals included.
  ActivityCounters measured_total_activity() const;

 private:
  struct Ni {
    std::deque<Flit> source_queue;
    // Credit view of the router's local input VCs.
    std::vector<std::uint32_t> credits;
    bool vc_held = false;
    std::uint32_t held_vc = 0;
    // Sink-side reassembly: flits received for the current packets.
    std::unordered_map<PacketId, std::uint32_t> sink_flits;
  };

  struct PendingFlit {
    TileId router;
    PortDir port;
    std::uint32_t vc;
    Flit flit;
  };
  struct PendingCredit {
    TileId router;
    PortDir port;
    std::uint32_t vc;
  };
  struct PendingSink {
    TileId tile;
    std::uint32_t out_vc;  ///< local output VC to recredit on consumption
    Flit flit;
  };
  struct Bucket {
    std::vector<PendingFlit> flits;
    std::vector<PendingCredit> credits;
    std::vector<PendingCredit> ni_credits;  // port unused; router==tile
    std::vector<PendingSink> sinks;
  };

  /// Staged cross-boundary event: a Bucket entry plus its absolute due
  /// cycle, parked in the producing domain's outbox until the commit
  /// barrier routes it into the owning domain's ring.
  struct StagedFlit {
    Cycle due;
    PendingFlit flit;
  };
  struct StagedCredit {
    Cycle due;
    PendingCredit credit;
  };

  /// One row band: every per-cycle mutable structure a worker touches
  /// during the parallel phase lives here, so domains share nothing but
  /// the (const) mesh and config until the commit barrier.
  struct Domain {
    TileId first = 0;
    TileId end = 0;  ///< one past the last tile
    RouterEngine engine;
    /// Ring of future-event buckets for *this domain's* routers; horizon
    /// covers the largest network-internal delay.
    std::vector<Bucket> ring;
    /// Nonempty source queues of this domain's NIs, bit = tile - first.
    std::vector<std::uint64_t> ni_active_words;
    /// Packets expected to eject in this domain (keyed by id, filled at
    /// injection time from info.dst — the sink-side packet table).
    std::unordered_map<PacketId, PacketInfo> expected;
    /// Ejections produced this cycle, ascending tile order; moved to the
    /// global list (domain order == tile order) at the commit barrier.
    std::vector<Ejection> fresh_ejections;
    /// Cross-boundary events staged during the parallel phase.
    std::vector<StagedFlit> out_flits;
    std::vector<StagedCredit> out_credits;
    std::vector<Departure> scratch;
    std::uint64_t flits_injected = 0;
    std::uint64_t flits_ejected = 0;
    std::uint64_t link_traversals = 0;
    std::uint64_t packets_completed = 0;

    Domain(const Mesh& mesh, const NetworkConfig& config, TileId first_tile,
           TileId end_tile, std::size_t ring_size);
  };

  std::size_t domain_of(TileId tile) const {
    return row_domain_[tile / cols_];
  }
  Bucket& bucket_at(Domain& d, Cycle cycle);
  TileId neighbor(TileId tile, PortDir dir) const;

  /// The parallel phase of one cycle for one domain: deliver due events,
  /// inject from NIs, tick routers. Touches only `d`'s state (plus the
  /// disjoint nis_ entries of `d`'s tiles).
  void step_domain(Domain& d);
  void deliver_due_events(Domain& d);
  void inject_from_nis(Domain& d);
  void tick_routers(Domain& d);
  void process_sink(Domain& d, const PendingSink& sink);
  /// The serial phase: routes staged boundary events into the owning
  /// domains' rings and concatenates fresh ejections in domain order.
  void commit_cycle();

  const Mesh* mesh_;
  NetworkConfig config_;
  std::uint32_t cols_ = 1;
  Cycle now_ = 0;

  std::vector<Domain> domains_;
  std::vector<std::size_t> row_domain_;  ///< mesh row -> owning domain
  std::unique_ptr<CycleWorkerTeam> team_;  // null when stepping serially

  std::vector<Ni> nis_;
  std::vector<Ejection> ejections_;
  std::uint64_t packets_injected_ = 0;
  std::uint64_t boundary_flits_ = 0;

  // Measurement-window snapshot (snapshot_activity).
  std::vector<ActivityCounters> measured_activity_;
  std::uint64_t measured_link_traversals_ = 0;
  bool have_snapshot_ = false;
};

}  // namespace nocmap
