#include "netsim/network.h"

#include <algorithm>
#include <bit>
#include <thread>
#include <utility>

#include "util/rng.h"

namespace nocmap {

namespace {

/// Constructor gate: the engines are members, so validate before they build.
const Mesh& require_simulable(const Mesh& mesh) {
  NOCMAP_REQUIRE(!mesh.is_torus(),
                 "the cycle-level simulator models meshes only (the torus "
                 "is an analytic extension; see ext_torus)");
  return mesh;
}

std::size_t resolve_sim_workers(std::size_t sim_workers) {
  if (sim_workers != 0) return sim_workers;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

Network::Domain::Domain(const Mesh& mesh, const NetworkConfig& config,
                        TileId first_tile, TileId end_tile,
                        std::size_t ring_size)
    : first(first_tile),
      end(end_tile),
      engine(mesh, config, end_tile - first_tile, first_tile) {
  ring.resize(ring_size);
  ni_active_words.assign((end_tile - first_tile + 63) / 64, 0);
}

Network::Network(const Mesh& mesh, const NetworkConfig& config,
                 std::size_t sim_workers)
    : mesh_(&require_simulable(mesh)), config_(config), cols_(mesh.cols()) {
  NOCMAP_REQUIRE(
      config.routing != RoutingAlgo::kO1Turn || config.vcs_per_port >= 2,
      "O1TURN needs at least two VCs to partition between sub-routes");
  const std::size_t n = mesh.num_tiles();
  nis_.resize(n);
  for (auto& ni : nis_) {
    ni.credits.assign(config.vcs_per_port, config.buffer_depth);
  }

  // Row-band partition: min(workers, global rows) contiguous bands, the
  // remainder rows spread over the leading bands. Global rows count
  // layers*rows — the layer-major layout makes a band of them a contiguous
  // (layer, row) slab of a stacked mesh. Any partition yields bit-identical
  // results (header determinism argument); the band count only sets how
  // many workers can help.
  const std::uint32_t rows = mesh.rows() * mesh.layers();
  const auto num_domains = static_cast<std::uint32_t>(
      std::min<std::size_t>(resolve_sim_workers(sim_workers), rows));
  // Horizon: all internal delays are <= max(planar/TSV link latency, 1) + 1.
  const std::size_t ring_size = static_cast<std::size_t>(
      std::max({config.link_latency, config.tsv_link_latency, 1u}) + 2);
  domains_.reserve(num_domains);
  row_domain_.reserve(rows);
  const std::uint32_t base = rows / num_domains;
  const std::uint32_t extra = rows % num_domains;
  std::uint32_t row = 0;
  for (std::uint32_t d = 0; d < num_domains; ++d) {
    const std::uint32_t band = base + (d < extra ? 1 : 0);
    domains_.emplace_back(mesh, config, row * cols_, (row + band) * cols_,
                          ring_size);
    for (std::uint32_t r = 0; r < band; ++r) row_domain_.push_back(d);
    row += band;
  }
  if (domains_.size() > 1) {
    team_ = std::make_unique<CycleWorkerTeam>(domains_.size());
  }
}

Network::Bucket& Network::bucket_at(Domain& d, Cycle cycle) {
  NOCMAP_ASSERT(cycle >= now_ && cycle - now_ < d.ring.size());
  return d.ring[cycle % d.ring.size()];
}

TileId Network::neighbor(TileId tile, PortDir dir) const {
  const TileCoord c = mesh_->coord_of(tile);
  switch (dir) {
    case PortDir::kNorth:
      NOCMAP_REQUIRE(c.row > 0, "no north neighbor");
      return mesh_->tile_at(c.layer, c.row - 1, c.col);
    case PortDir::kSouth:
      NOCMAP_REQUIRE(c.row + 1 < mesh_->rows(), "no south neighbor");
      return mesh_->tile_at(c.layer, c.row + 1, c.col);
    case PortDir::kEast:
      NOCMAP_REQUIRE(c.col + 1 < mesh_->cols(), "no east neighbor");
      return mesh_->tile_at(c.layer, c.row, c.col + 1);
    case PortDir::kWest:
      NOCMAP_REQUIRE(c.col > 0, "no west neighbor");
      return mesh_->tile_at(c.layer, c.row, c.col - 1);
    case PortDir::kUp:
      NOCMAP_REQUIRE(c.layer + 1 < mesh_->layers(), "no up neighbor");
      return mesh_->tile_at(c.layer + 1, c.row, c.col);
    case PortDir::kDown:
      NOCMAP_REQUIRE(c.layer > 0, "no down neighbor");
      return mesh_->tile_at(c.layer - 1, c.row, c.col);
    case PortDir::kLocal:
      break;
  }
  throw Error("local port has no neighbor");
}

void Network::inject_packet(const PacketInfo& info) {
  NOCMAP_REQUIRE(info.src != info.dst,
                 "local accesses bypass the network (traffic layer bug)");
  NOCMAP_REQUIRE(info.src < mesh_->num_tiles() && info.dst < mesh_->num_tiles(),
                 "packet endpoint out of range");
  NOCMAP_REQUIRE(info.flits >= 1, "packet must have at least one flit");

  // The packet table lives with the domain that will eject it.
  Domain& sink_domain = domains_[domain_of(info.dst)];
  NOCMAP_REQUIRE(sink_domain.expected.emplace(info.id, info).second,
                 "duplicate packet id");
  ++packets_injected_;

  Ni& ni = nis_[info.src];
  // Sub-route choice: fixed by the routing algorithm, or (O1TURN) a
  // deterministic balanced pick keyed on the packet id.
  bool yx = false;
  switch (config_.routing) {
    case RoutingAlgo::kXY: yx = false; break;
    case RoutingAlgo::kYX: yx = true; break;
    case RoutingAlgo::kO1Turn: yx = (splitmix64(info.id) & 1u) != 0; break;
  }
  for (std::uint32_t f = 0; f < info.flits; ++f) {
    Flit flit;
    flit.packet = info.id;
    flit.index = f;
    flit.is_head = (f == 0);
    flit.is_tail = (f + 1 == info.flits);
    flit.yx = yx;
    flit.dst = info.dst;
    ni.source_queue.push_back(flit);
  }
  Domain& src_domain = domains_[domain_of(info.src)];
  const TileId local = info.src - src_domain.first;
  src_domain.ni_active_words[local >> 6] |= 1ull << (local & 63);
}

void Network::deliver_due_events(Domain& d) {
  Bucket& bucket = d.ring[now_ % d.ring.size()];
  for (const auto& pf : bucket.flits) {
    d.engine.receive_flit(pf.router - d.first, pf.port, pf.vc, pf.flit, now_);
  }
  for (const auto& pc : bucket.credits) {
    d.engine.receive_credit(pc.router - d.first, pc.port, pc.vc);
  }
  for (const auto& nc : bucket.ni_credits) {
    Ni& ni = nis_[nc.router];
    NOCMAP_ASSERT(ni.credits[nc.vc] < config_.buffer_depth);
    ++ni.credits[nc.vc];
  }
  for (const auto& sink : bucket.sinks) {
    process_sink(d, sink);
  }
  bucket.flits.clear();
  bucket.credits.clear();
  bucket.ni_credits.clear();
  bucket.sinks.clear();
}

void Network::inject_from_nis(Domain& d) {
  // Ascending-tile scan of the domain's NIs with queued flits (same visit
  // order as the dense loop; an empty NI's iteration was a no-op).
  for (std::size_t w = 0; w < d.ni_active_words.size(); ++w) {
    std::uint64_t bits = d.ni_active_words[w];
    while (bits) {
      const auto t = static_cast<TileId>(
          d.first + w * 64 +
          static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      Ni& ni = nis_[t];
      const Flit& front = ni.source_queue.front();

      if (front.is_head && !ni.vc_held) {
        // Claim a local-input VC with available credit for the new packet,
        // restricted to the packet's sub-route class.
        std::uint32_t lo = 0;
        std::uint32_t hi = config_.vcs_per_port;
        config_.vc_range(front.yx, lo, hi);
        for (std::uint32_t v = lo; v < hi; ++v) {
          if (ni.credits[v] > 0) {
            ni.vc_held = true;
            ni.held_vc = v;
            break;
          }
        }
      }
      if (!ni.vc_held || ni.credits[ni.held_vc] == 0) continue;

      --ni.credits[ni.held_vc];
      d.engine.receive_flit(t - d.first, PortDir::kLocal, ni.held_vc, front,
                            now_);
      ++d.flits_injected;
      if (front.is_tail) ni.vc_held = false;
      ni.source_queue.pop_front();
      if (ni.source_queue.empty()) {
        const TileId local = t - d.first;
        d.ni_active_words[local >> 6] &= ~(1ull << (local & 63));
      }
    }
  }
}

void Network::tick_routers(Domain& d) {
  // Ascending-tile scan of the domain's routers with buffered flits. A
  // router without buffered flits changes no state in a tick (route/VA
  // touch only occupied VCs, the switch allocator has no candidates and
  // the distance-weighted arbiter draws no random number), so skipping it
  // is exact, and the scan order keeps bucket push order — flits, credits,
  // sinks — identical to ticking every router in tile order.
  for (std::size_t w = 0; w < d.engine.num_active_words(); ++w) {
    std::uint64_t bits = d.engine.active_word(w);
    while (bits) {
      const auto local = static_cast<std::size_t>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      const auto t = static_cast<TileId>(d.first + local);
      d.scratch.clear();
      d.engine.tick(local, now_, d.scratch);
      for (const Departure& dep : d.scratch) {
        // Credit for the freed input buffer slot, one cycle upstream.
        if (dep.in_port == PortDir::kLocal) {
          bucket_at(d, now_ + 1).ni_credits.push_back(
              {t, PortDir::kLocal, dep.in_vc});
        } else {
          const TileId up = neighbor(t, dep.in_port);
          const PendingCredit credit{up, opposite(dep.in_port), dep.in_vc};
          if (up >= d.first && up < d.end) {
            bucket_at(d, now_ + 1).credits.push_back(credit);
          } else {
            d.out_credits.push_back({now_ + 1, credit});
          }
        }
        // The flit itself.
        if (dep.out_port == PortDir::kLocal) {
          bucket_at(d, now_ + 1).sinks.push_back({t, dep.out_vc, dep.flit});
        } else {
          const TileId down = neighbor(t, dep.out_port);
          Flit forwarded = dep.flit;
          ++forwarded.hops;  // distance credit for the arbiter
          const bool vertical = dep.out_port == PortDir::kUp ||
                                dep.out_port == PortDir::kDown;
          const Cycle due =
              now_ + (vertical ? config_.tsv_link_latency
                               : config_.link_latency);
          const PendingFlit pf{down, opposite(dep.out_port), dep.out_vc,
                               forwarded};
          if (down >= d.first && down < d.end) {
            bucket_at(d, due).flits.push_back(pf);
          } else {
            d.out_flits.push_back({due, pf});
          }
          ++d.link_traversals;
        }
      }
      d.engine.retire_if_idle(local);
    }
  }
}

void Network::process_sink(Domain& d, const PendingSink& sink) {
  Ni& ni = nis_[sink.tile];
  ++d.flits_ejected;
  // The NI consumes the flit immediately; recredit the router's local
  // output VC so ejection never stalls.
  d.engine.receive_credit(sink.tile - d.first, PortDir::kLocal, sink.out_vc);
  const std::uint32_t seen = ++ni.sink_flits[sink.flit.packet];
  if (!sink.flit.is_tail) return;

  auto it = d.expected.find(sink.flit.packet);
  NOCMAP_REQUIRE(it != d.expected.end(), "tail for unknown packet");
  NOCMAP_REQUIRE(seen == it->second.flits,
                 "tail ejected before all body flits");
  NOCMAP_REQUIRE(it->second.dst == sink.tile, "packet ejected at wrong tile");
  d.fresh_ejections.push_back({it->second, now_});
  ni.sink_flits.erase(sink.flit.packet);
  d.expected.erase(it);
  ++d.packets_completed;
}

void Network::step_domain(Domain& d) {
  deliver_due_events(d);
  inject_from_nis(d);
  tick_routers(d);
}

void Network::commit_cycle() {
  // Serial phase. Domains ascend, so concatenating fresh ejections (each
  // ascending-tile within its domain) reproduces the serial engine's
  // ascending-tile ejection order; staged boundary events commute with the
  // target bucket's existing entries (header determinism argument).
  for (Domain& d : domains_) {
    for (const StagedFlit& sf : d.out_flits) {
      bucket_at(domains_[domain_of(sf.flit.router)], sf.due)
          .flits.push_back(sf.flit);
    }
    boundary_flits_ += d.out_flits.size();
    d.out_flits.clear();
    for (const StagedCredit& sc : d.out_credits) {
      bucket_at(domains_[domain_of(sc.credit.router)], sc.due)
          .credits.push_back(sc.credit);
    }
    d.out_credits.clear();
    if (!d.fresh_ejections.empty()) {
      ejections_.insert(ejections_.end(), d.fresh_ejections.begin(),
                        d.fresh_ejections.end());
      d.fresh_ejections.clear();
    }
  }
}

void Network::step() {
  if (team_ != nullptr) {
    team_->run([this](std::size_t d) { step_domain(domains_[d]); });
  } else {
    for (Domain& d : domains_) step_domain(d);
  }
  commit_cycle();
  ++now_;
}

std::vector<Ejection> Network::take_ejections() {
  return std::exchange(ejections_, {});
}

std::size_t Network::packets_in_flight() const {
  std::uint64_t completed = 0;
  for (const Domain& d : domains_) completed += d.packets_completed;
  return static_cast<std::size_t>(packets_injected_ - completed);
}

std::uint64_t Network::flits_injected() const {
  std::uint64_t total = 0;
  for (const Domain& d : domains_) total += d.flits_injected;
  return total;
}

std::uint64_t Network::flits_ejected() const {
  std::uint64_t total = 0;
  for (const Domain& d : domains_) total += d.flits_ejected;
  return total;
}

const ActivityCounters& Network::router_activity(TileId t) const {
  NOCMAP_REQUIRE(t < mesh_->num_tiles(), "router id out of range");
  const Domain& d = domains_[domain_of(t)];
  return d.engine.activity(t - d.first);
}

ActivityCounters Network::total_activity() const {
  ActivityCounters total;
  std::uint64_t links = 0;
  for (const Domain& d : domains_) {
    for (std::size_t r = 0; r < d.engine.num_routers(); ++r) {
      total += d.engine.activity(r);
    }
    links += d.link_traversals;
  }
  total.link_traversals = links;
  return total;
}

void Network::reset_activity() {
  for (Domain& d : domains_) {
    d.engine.reset_activity();
    d.link_traversals = 0;
  }
  have_snapshot_ = false;
}

void Network::snapshot_activity() {
  const std::size_t n = mesh_->num_tiles();
  measured_activity_.resize(n);
  measured_link_traversals_ = 0;
  for (const Domain& d : domains_) {
    for (std::size_t r = 0; r < d.engine.num_routers(); ++r) {
      measured_activity_[d.first + r] = d.engine.activity(r);
    }
    measured_link_traversals_ += d.link_traversals;
  }
  have_snapshot_ = true;
}

const ActivityCounters& Network::measured_router_activity(TileId t) const {
  NOCMAP_REQUIRE(t < mesh_->num_tiles(), "router id out of range");
  return have_snapshot_ ? measured_activity_[t] : router_activity(t);
}

ActivityCounters Network::measured_total_activity() const {
  if (!have_snapshot_) return total_activity();
  ActivityCounters total;
  for (const auto& a : measured_activity_) total += a;
  total.link_traversals = measured_link_traversals_;
  return total;
}

}  // namespace nocmap
