#include "netsim/network.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/rng.h"

namespace nocmap {

namespace {

/// Constructor gate: the engine is a member, so validate before it builds.
const Mesh& require_simulable(const Mesh& mesh) {
  NOCMAP_REQUIRE(!mesh.is_torus(),
                 "the cycle-level simulator models meshes only (the torus "
                 "is an analytic extension; see ext_torus)");
  return mesh;
}

}  // namespace

Network::Network(const Mesh& mesh, const NetworkConfig& config)
    : mesh_(&mesh),
      config_(config),
      engine_(require_simulable(mesh), config, mesh.num_tiles(), 0) {
  NOCMAP_REQUIRE(
      config.routing != RoutingAlgo::kO1Turn || config.vcs_per_port >= 2,
      "O1TURN needs at least two VCs to partition between sub-routes");
  const std::size_t n = mesh.num_tiles();
  nis_.resize(n);
  for (auto& ni : nis_) {
    ni.credits.assign(config.vcs_per_port, config.buffer_depth);
  }
  ni_active_words_.assign((n + 63) / 64, 0);
  // Horizon: all internal delays are <= max(link_latency, 1) + 1.
  ring_.resize(static_cast<std::size_t>(
      std::max<std::uint32_t>(config.link_latency, 1) + 2));
}

Network::Bucket& Network::bucket_at(Cycle cycle) {
  NOCMAP_ASSERT(cycle >= now_ && cycle - now_ < ring_.size());
  return ring_[cycle % ring_.size()];
}

TileId Network::neighbor(TileId tile, PortDir dir) const {
  const TileCoord c = mesh_->coord_of(tile);
  switch (dir) {
    case PortDir::kNorth:
      NOCMAP_REQUIRE(c.row > 0, "no north neighbor");
      return mesh_->tile_at(c.row - 1, c.col);
    case PortDir::kSouth:
      NOCMAP_REQUIRE(c.row + 1 < mesh_->rows(), "no south neighbor");
      return mesh_->tile_at(c.row + 1, c.col);
    case PortDir::kEast:
      NOCMAP_REQUIRE(c.col + 1 < mesh_->cols(), "no east neighbor");
      return mesh_->tile_at(c.row, c.col + 1);
    case PortDir::kWest:
      NOCMAP_REQUIRE(c.col > 0, "no west neighbor");
      return mesh_->tile_at(c.row, c.col - 1);
    case PortDir::kLocal:
      break;
  }
  throw Error("local port has no neighbor");
}

void Network::inject_packet(const PacketInfo& info) {
  NOCMAP_REQUIRE(info.src != info.dst,
                 "local accesses bypass the network (traffic layer bug)");
  NOCMAP_REQUIRE(info.src < mesh_->num_tiles() && info.dst < mesh_->num_tiles(),
                 "packet endpoint out of range");
  NOCMAP_REQUIRE(info.flits >= 1, "packet must have at least one flit");
  NOCMAP_REQUIRE(!packets_.contains(info.id), "duplicate packet id");

  packets_.emplace(info.id, info);
  Ni& ni = nis_[info.src];
  // Sub-route choice: fixed by the routing algorithm, or (O1TURN) a
  // deterministic balanced pick keyed on the packet id.
  bool yx = false;
  switch (config_.routing) {
    case RoutingAlgo::kXY: yx = false; break;
    case RoutingAlgo::kYX: yx = true; break;
    case RoutingAlgo::kO1Turn: yx = (splitmix64(info.id) & 1u) != 0; break;
  }
  for (std::uint32_t f = 0; f < info.flits; ++f) {
    Flit flit;
    flit.packet = info.id;
    flit.index = f;
    flit.is_head = (f == 0);
    flit.is_tail = (f + 1 == info.flits);
    flit.yx = yx;
    flit.dst = info.dst;
    ni.source_queue.push_back(flit);
  }
  ni_active_words_[info.src >> 6] |= 1ull << (info.src & 63);
}

void Network::deliver_due_events() {
  Bucket& bucket = ring_[now_ % ring_.size()];
  for (const auto& pf : bucket.flits) {
    engine_.receive_flit(pf.router, pf.port, pf.vc, pf.flit, now_);
  }
  for (const auto& pc : bucket.credits) {
    engine_.receive_credit(pc.router, pc.port, pc.vc);
  }
  for (const auto& nc : bucket.ni_credits) {
    Ni& ni = nis_[nc.router];
    NOCMAP_ASSERT(ni.credits[nc.vc] < config_.buffer_depth);
    ++ni.credits[nc.vc];
  }
  for (const auto& sink : bucket.sinks) {
    process_sink(sink);
  }
  bucket.flits.clear();
  bucket.credits.clear();
  bucket.ni_credits.clear();
  bucket.sinks.clear();
}

void Network::inject_from_nis() {
  // Ascending-tile scan of NIs with queued flits (same visit order as the
  // dense loop; an empty NI's iteration was a no-op).
  for (std::size_t w = 0; w < ni_active_words_.size(); ++w) {
    std::uint64_t bits = ni_active_words_[w];
    while (bits) {
      const auto t =
          static_cast<TileId>(w * 64 +
                              static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      Ni& ni = nis_[t];
      const Flit& front = ni.source_queue.front();

      if (front.is_head && !ni.vc_held) {
        // Claim a local-input VC with available credit for the new packet,
        // restricted to the packet's sub-route class.
        std::uint32_t lo = 0;
        std::uint32_t hi = config_.vcs_per_port;
        config_.vc_range(front.yx, lo, hi);
        for (std::uint32_t v = lo; v < hi; ++v) {
          if (ni.credits[v] > 0) {
            ni.vc_held = true;
            ni.held_vc = v;
            break;
          }
        }
      }
      if (!ni.vc_held || ni.credits[ni.held_vc] == 0) continue;

      --ni.credits[ni.held_vc];
      engine_.receive_flit(t, PortDir::kLocal, ni.held_vc, front, now_);
      ++flits_injected_;
      if (front.is_tail) ni.vc_held = false;
      ni.source_queue.pop_front();
      if (ni.source_queue.empty()) {
        ni_active_words_[t >> 6] &= ~(1ull << (t & 63));
      }
    }
  }
}

void Network::tick_routers() {
  // Ascending-tile scan of routers with buffered flits. A router without
  // buffered flits changes no state in a tick (route/VA touch only
  // occupied VCs, the switch allocator has no candidates and the
  // distance-weighted arbiter draws no random number), so skipping it is
  // exact, and the scan order keeps bucket push order — flits, credits,
  // sinks — identical to ticking every router in tile order.
  for (std::size_t w = 0; w < engine_.num_active_words(); ++w) {
    std::uint64_t bits = engine_.active_word(w);
    while (bits) {
      const auto t =
          static_cast<TileId>(w * 64 +
                              static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      departures_scratch_.clear();
      engine_.tick(t, now_, departures_scratch_);
      for (const Departure& dep : departures_scratch_) {
        // Credit for the freed input buffer slot, one cycle upstream.
        if (dep.in_port == PortDir::kLocal) {
          bucket_at(now_ + 1).ni_credits.push_back({t, PortDir::kLocal,
                                                    dep.in_vc});
        } else {
          const TileId up = neighbor(t, dep.in_port);
          bucket_at(now_ + 1).credits.push_back(
              {up, opposite(dep.in_port), dep.in_vc});
        }
        // The flit itself.
        if (dep.out_port == PortDir::kLocal) {
          bucket_at(now_ + 1).sinks.push_back({t, dep.out_vc, dep.flit});
        } else {
          const TileId down = neighbor(t, dep.out_port);
          Flit forwarded = dep.flit;
          ++forwarded.hops;  // distance credit for the arbiter
          bucket_at(now_ + config_.link_latency)
              .flits.push_back(
                  {down, opposite(dep.out_port), dep.out_vc, forwarded});
          ++link_traversals_;
        }
      }
      engine_.retire_if_idle(t);
    }
  }
}

void Network::process_sink(const PendingSink& sink) {
  Ni& ni = nis_[sink.tile];
  ++flits_ejected_;
  // The NI consumes the flit immediately; recredit the router's local
  // output VC so ejection never stalls.
  engine_.receive_credit(sink.tile, PortDir::kLocal, sink.out_vc);
  const std::uint32_t seen = ++ni.sink_flits[sink.flit.packet];
  if (!sink.flit.is_tail) return;

  auto it = packets_.find(sink.flit.packet);
  NOCMAP_REQUIRE(it != packets_.end(), "tail for unknown packet");
  NOCMAP_REQUIRE(seen == it->second.flits,
                 "tail ejected before all body flits");
  NOCMAP_REQUIRE(it->second.dst == sink.tile, "packet ejected at wrong tile");
  ejections_.push_back({it->second, now_});
  ni.sink_flits.erase(sink.flit.packet);
  packets_.erase(it);
}

void Network::step() {
  deliver_due_events();
  inject_from_nis();
  tick_routers();
  ++now_;
}

std::vector<Ejection> Network::take_ejections() {
  return std::exchange(ejections_, {});
}

const ActivityCounters& Network::router_activity(TileId t) const {
  NOCMAP_REQUIRE(t < engine_.num_routers(), "router id out of range");
  return engine_.activity(t);
}

ActivityCounters Network::total_activity() const {
  ActivityCounters total;
  for (std::size_t t = 0; t < engine_.num_routers(); ++t) {
    total += engine_.activity(t);
  }
  total.link_traversals = link_traversals_;
  return total;
}

void Network::reset_activity() {
  engine_.reset_activity();
  link_traversals_ = 0;
  have_snapshot_ = false;
}

void Network::snapshot_activity() {
  const std::size_t n = engine_.num_routers();
  measured_activity_.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    measured_activity_[t] = engine_.activity(t);
  }
  measured_link_traversals_ = link_traversals_;
  have_snapshot_ = true;
}

const ActivityCounters& Network::measured_router_activity(TileId t) const {
  NOCMAP_REQUIRE(t < engine_.num_routers(), "router id out of range");
  return have_snapshot_ ? measured_activity_[t] : engine_.activity(t);
}

ActivityCounters Network::measured_total_activity() const {
  if (!have_snapshot_) return total_activity();
  ActivityCounters total;
  for (const auto& a : measured_activity_) total += a;
  total.link_traversals = measured_link_traversals_;
  return total;
}

}  // namespace nocmap
