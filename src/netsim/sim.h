// One-call simulation driver: run a mapping on the cycle-level network and
// measure what the paper measures — per-application average packet latency,
// global APL, and the activity counters that feed the power model.
//
// Protocol: a warmup window (activity and latency samples discarded), a
// measurement window, then a drain phase (no new requests; in-flight packets
// finish so measured packets are not censored). Per-router activity is
// snapshotted at the end of the measurement window, so drain traffic can
// never inflate the per-cycle load summary.
#pragma once

#include <vector>

#include "core/parallel.h"
#include "core/problem.h"
#include "netsim/traffic.h"
#include "util/stats.h"

namespace nocmap {

struct SimConfig {
  Cycle warmup_cycles = 5000;
  Cycle measure_cycles = 100000;
  /// Safety cap on the drain phase (should never bind at sane loads).
  Cycle max_drain_cycles = 200000;
  /// Per-application latency histograms cover [0, histogram_max) cycles
  /// with histogram_bins bins (tail percentiles; QoS studies).
  double histogram_max = 400.0;
  std::size_t histogram_bins = 400;
  /// Workers stepping *this one simulation*: the mesh is spatially
  /// partitioned into min(sim_workers, rows) row-band domains advanced in
  /// parallel each cycle (DESIGN.md §16). Results are bit-identical at
  /// every value; 0 resolves to the hardware concurrency. Default 1 is the
  /// serial engine — exactly the pre-partitioning behavior. Orthogonal to
  /// run_simulation_batch's across-scenario parallelism: use sim_workers
  /// for one large mesh, batch workers for many scenarios.
  std::size_t sim_workers = 1;
  TrafficConfig traffic;
  NetworkConfig network;
};

/// Directed inter-router links in the mesh: each adjacent tile pair
/// contributes one link per direction. Torus wrap links only count where
/// the wrapped dimension has >= 3 tiles — at width 2 the wrap coincides
/// with the existing adjacent-pair link and at width 1 it is a self-loop,
/// so counting it would deflate link_utilization.
std::uint64_t num_directed_links(const Mesh& mesh);

/// Measurement-window load digest across routers and links — the netsim
/// counters surfaced through RunReports (docs/metrics-schema.md). All rates
/// are per measured cycle; utilizations are in [0, 1].
struct RouterLoadSummary {
  /// Max / mean over routers of crossbar traversals per cycle (a 5-port
  /// router can move up to 5 flits per cycle, so this is util·5).
  double max_crossbar_per_cycle = 0.0;
  double mean_crossbar_per_cycle = 0.0;
  /// Largest per-router average queuing delay (cycles per buffered flit
  /// beyond the pipeline minimum) — the hotspot counterpart of td_q.
  double max_avg_queue_wait = 0.0;
  /// Largest per-router input-buffer occupancy integral per cycle
  /// (queue_wait_cycles / measured_cycles): mean number of flits queued
  /// at the busiest router.
  double max_queue_occupancy = 0.0;
  /// Fraction of directed mesh links busy, averaged over the window:
  /// link_traversals / (num_directed_links · measured_cycles).
  double link_utilization = 0.0;
  /// Router with the most crossbar traversals (hotspot location).
  TileId hottest_router = 0;
};

struct SimResult {
  /// Per-application measured APL (cycles), index-aligned with the
  /// workload's applications. Zero-traffic applications report 0.
  std::vector<double> apl;
  double max_apl = 0.0;
  double dev_apl = 0.0;
  double g_apl = 0.0;

  /// Per-application full latency statistics.
  std::vector<RunningStats> per_app;
  /// All packets combined.
  RunningStats overall;
  /// Per packet class (indexed by PacketClass).
  std::vector<RunningStats> per_class;
  /// Per-application latency histograms (tail percentiles). The QoS story
  /// (paper Section I) cares about worst-case experience, not just means.
  std::vector<Histogram> per_app_histogram;

  /// p-quantile (0..1) of application `app`'s packet latency.
  double app_percentile(std::size_t app, double p) const {
    return per_app_histogram.at(app).percentile(p);
  }

  /// Fabric activity during the measurement window (for DSENT-lite),
  /// snapshotted at the window's end before any drain traffic.
  ActivityCounters activity;
  /// Activity from the last reset (measurement start) through the end of
  /// the drain phase. With warmup_cycles == 0 this covers the whole run, so
  /// exact flit-conservation identities hold and are enforced by the check
  /// subsystem (DESIGN.md §10): every crossbar departure is either a link
  /// traversal or an ejection, and every buffered flit arrived either from
  /// the local NI or over a link:
  ///   crossbar_traversals == link_traversals + flits_ejected
  ///   buffer_writes       == flits_injected + link_traversals
  ActivityCounters activity_with_drain;
  /// Per-router / per-link load digest over the same window (computed from
  /// the measurement-window snapshot; unaffected by drain length).
  RouterLoadSummary load;
  /// Cycles actually simulated inside the measurement window (the divisor
  /// of every per-cycle rate above; 0 when the window is empty).
  Cycle measured_cycles = 0;

  std::uint64_t packets_measured = 0;
  std::uint64_t local_accesses = 0;
  /// Whole-run flit conservation endpoints (injection == ejection once the
  /// drain completes).
  std::uint64_t flits_injected = 0;
  std::uint64_t flits_ejected = 0;
  /// True if the drain phase hit its cap with packets still in flight.
  bool drain_incomplete = false;
};

/// Runs the full warmup/measure/drain protocol. Deterministic for a fixed
/// (problem, mapping, config).
SimResult run_simulation(const ObmProblem& problem, const Mapping& mapping,
                         const SimConfig& config);

/// One element of a simulation batch. The problem and mapping must outlive
/// the run_simulation_batch call.
struct BatchScenario {
  const ObmProblem* problem = nullptr;
  const Mapping* mapping = nullptr;
  SimConfig config;
};

/// Runs every scenario through run_simulation, sharding the batch across
/// the parallel runner (src/core/parallel.h discipline: fixed geometry,
/// pure units, slotted results). Results are index-aligned with the input
/// and bit-identical at any worker count — each scenario is itself
/// deterministic and writes only its own slot, so the merge is the
/// identity.
std::vector<SimResult> run_simulation_batch(
    const std::vector<BatchScenario>& scenarios,
    const ParallelConfig& parallel);

}  // namespace nocmap
