// Trace-driven traffic generation on top of the Network (substitution for
// the paper's Simics/GEMS-driven PARSEC traces).
//
// Each mapped thread injects, from its tile, two open-loop Bernoulli
// streams derived from its workload rates: shared-L2 cache requests whose
// destination bank is uniformly address-hashed over all tiles (Section
// II.C), and memory requests whose MC destination follows the configured
// MemoryTrafficMode — nearest MC (the paper's proximity principle),
// per-thread round-robin over all MCs (DRAM address interleaving), or a
// dimension-order multicast tree that replicates the request to every MC
// at branch routers (the NI re-injects child segments where tree branches
// diverge, so the router fabric itself stays unicast; the nearest MC is
// the designated responder for the data reply).
// A request that hits its own tile never enters the network and
// is recorded as a zero-latency access, exactly as the analytic model's
// H = 0 / no-serialization case. When a request ejects at its destination,
// the serviced reply (5-flit data packet) is scheduled back after the L2 or
// memory service latency. Optionally, a fraction of cache requests take the
// coherence forwarding path of Section II.B: bank → owner L1 (short
// forward) → requester (data reply).
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "core/problem.h"
#include "latency/model.h"
#include "netsim/network.h"
#include "util/rng.h"

namespace nocmap {

struct TrafficConfig {
  std::uint64_t seed = 1;
  /// Multiplier applied to workload rates (rates are per kilocycle).
  double injection_scale = 1.0;
  std::uint32_t l2_service_latency = 6;      ///< paper Table 2
  std::uint32_t memory_service_latency = 128;  ///< paper Table 2
  /// Fraction of cache requests whose line is dirty in another private L1:
  /// the L2 bank sends a short forward to the owner tile, which supplies
  /// the data reply to the requester directly (paper Section II.B's
  /// "checking/forwarding packets"). 0 disables the three-hop chain.
  double forward_probability = 0.0;
  /// Bursty (two-state Markov on/off) injection. When enabled, each thread
  /// alternates between ON phases at rate/duty and OFF phases at zero,
  /// preserving its mean rate — real applications burst, and bursts stress
  /// queuing in ways the mean cannot. Disabled (steady Bernoulli) by
  /// default, matching the analytic model's assumptions.
  bool bursty = false;
  double burst_duty = 0.3;          ///< fraction of time in the ON state
  double burst_dwell_cycles = 200;  ///< mean ON+OFF period length
  /// How memory requests pick their MC destination (latency/model.h).
  MemoryTrafficMode memory_mode = MemoryTrafficMode::kProximity;
};

/// A zero-latency access that never entered the network (src == dst).
struct LocalAccess {
  PacketClass cls;
  std::size_t app;
  std::size_t thread;
};

class TrafficEngine {
 public:
  TrafficEngine(const ObmProblem& problem, const Mapping& mapping,
                const TrafficConfig& config);

  /// Generates this cycle's new requests and due replies into the network.
  /// Appends zero-latency local accesses (if any) to `locals`.
  ///
  /// Two-phase for the partitioned network (DESIGN.md §16): every tile's
  /// draws (burst transitions, emission counts, destinations) touch only
  /// that tile's RNG stream, so the per-tile loop fans out over the
  /// network's row-band domains on its worker team; packet ids are then
  /// assigned and packets injected in a serial commit that walks domains —
  /// and tiles within them — in ascending order, reproducing the serial
  /// engine's id sequence and local-access order bit for bit.
  void generate(Network& net, Cycle now, std::vector<LocalAccess>& locals);

  /// Feeds back an ejected request (or forward) so the next packet of its
  /// transaction gets scheduled. Multicast segments re-inject their child
  /// segments into `net` directly (serial phase).
  void on_ejection(Network& net, const Ejection& ejection, Cycle now);

  /// True when no replies remain to be issued (for drain phases).
  bool idle() const { return pending_replies_.empty(); }

  /// Stops creating *new* requests (drain mode); due replies still issue.
  void stop_generation() { generating_ = false; }

 private:
  struct TileSource {
    std::size_t thread = 0;
    std::size_t app = 0;
    double cache_per_cycle = 0.0;
    double memory_per_cycle = 0.0;
    /// Per-thread stream (forked from the config seed by *thread* id, not
    /// tile), so a thread emits the identical request sequence under every
    /// mapping — mappings are compared on paired traffic.
    Rng rng{0};
    bool burst_on = true;  ///< current Markov state (bursty mode only)
    /// Next MC index in the round-robin rotation (interleaved mode only).
    /// Seeded from the *thread* id so the rotation, like the RNG stream,
    /// is paired across mappings.
    std::uint32_t interleave_next = 0;
  };

  /// One emission decided during the draw phase: a request of class `cls`
  /// from `tile` to `dst` (dst == tile → zero-latency local access). The
  /// commit phase turns these into packet ids and injections.
  struct DrawEntry {
    TileId tile;
    PacketClass cls;
    TileId dst;
  };

  /// Draw phase for one tile: advances the tile's RNG/burst state and
  /// appends this cycle's emissions to `out`. Domain-parallel safe — reads
  /// and writes only sources_[tile] and `out`.
  void draw_tile(TileId tile, std::vector<DrawEntry>& out);

  /// Schedules a follow-up packet (reply or forward) of a transaction.
  void schedule(Cycle due, PacketClass cls, TileId src, TileId dst,
                std::size_t app, std::size_t thread);

  /// Multicast memory mode: expands the dimension-order tree rooted at
  /// `from` one level, injecting a unicast segment toward each branch point
  /// (kMemoryRequest when the endpoint is an MC delivery, kMemoryForward
  /// when it is a pure branch router). Segments carry the original request
  /// creation cycle so each delivery's recorded latency is end-to-end.
  /// `record_local_delivery` is true only for the root call (an ejection
  /// already counts as the delivery sample otherwise). Serial-phase only.
  void emit_multicast(Network& net, TileId from, std::vector<TileId> dests,
                      Cycle created, Cycle now, std::size_t app,
                      std::size_t thread,
                      std::vector<LocalAccess>* locals,
                      bool record_local_delivery);

  const ObmProblem* problem_;
  TrafficConfig config_;
  std::vector<TileSource> sources_;   // indexed by tile
  std::vector<TileId> thread_tile_;   // requester tile per thread
  Rng coherence_rng_{0};              // owner-tile / dirty-line draws
  PacketId next_id_ = 1;
  bool generating_ = true;
  // Follow-up packets due at a cycle.
  std::multimap<Cycle, PacketInfo> pending_replies_;
  /// In-flight multicast tree segments: the sub-destinations the segment's
  /// endpoint must fan out to (plus the original creation cycle).
  struct MulticastBranch {
    std::vector<TileId> dests;
    Cycle created = 0;
  };
  std::unordered_map<PacketId, MulticastBranch> multicast_;
  // Per-domain draw buffers, reused across cycles (indexed by domain).
  std::vector<std::vector<DrawEntry>> draw_entries_;
};

}  // namespace nocmap
