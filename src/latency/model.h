// Analytic per-tile packet-latency model (paper Section II.C).
//
// A packet's service latency is
//     TD = H · (td_r + td_w + td_q) + td_s                       (eq. 2)
// where H is the XY-routing hop count, td_r/td_w are the per-hop router and
// wire delays, td_q is the average per-hop queuing delay (0–1 cycles at the
// loads studied), and td_s is the serialization latency (packet length /
// channel bandwidth). Serialization is skipped when source == destination
// (no network traversal).
//
// Two per-tile latency arrays summarize the chip:
//   TC(k): expected latency of a cache packet originating at tile k. Cache
//          banks are address-hashed uniformly over all N tiles (eq. 3), so
//          TC(k) = HC_k · per_hop + td_s · (N-1)/N — the (N-1)/N factor is
//          the probability that the hashed bank is a *different* tile. This
//          factor is pinned by the paper's own Figure-5 arithmetic
//          (10.3375 / 11.5375 cycles), which our tests reproduce exactly.
//   TM(k): latency of a memory-controller request from tile k (eq. 4);
//          serialization applies unless the request stays on-tile. The
//          destination depends on the memory-traffic mode: the nearest MC
//          under proximity routing (the paper's rule, generalized to a
//          weighted-distance Voronoi partition over arbitrary MC sets), the
//          mean over all MCs under DRAM interleaving (round-robin converges
//          to the uniform average), or the farthest MC under multicast (the
//          request completes when the last replica arrives).
//
// On a 3D stacked mesh all hop counts are TSV-weighted (Mesh::weighted_hops),
// which reduces to the plain Manhattan distance on a 2D mesh.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "topology/mesh.h"

namespace nocmap {

/// How memory requests pick their MC destination (Section II.C generalized).
enum class MemoryTrafficMode : std::uint8_t {
  kProximity,    ///< nearest MC by weighted distance (the paper's rule)
  kInterleaved,  ///< round-robin over all MCs (address-interleaved DRAM)
  kMulticast,    ///< one request replicated to every MC at branch routers
};

/// Mode name used by scenario repro files and sweep specs.
const char* memory_traffic_mode_name(MemoryTrafficMode mode);

/// Parses a mode name; returns false (and leaves `out` untouched) for an
/// unknown name.
bool memory_traffic_mode_from_name(const std::string& name,
                                   MemoryTrafficMode& out);

/// Timing parameters of eq. 2, in cycles.
struct LatencyParams {
  double td_r = 3.0;  ///< per-hop router pipeline delay (3-stage router)
  double td_w = 1.0;  ///< per-hop link/wire delay
  double td_q = 0.3;  ///< average per-hop queuing delay (calibrated, §II.C)
  double td_s = 1.8;  ///< average serialization delay over the packet mix

  /// Combined per-hop delay td_r + td_w + td_q.
  double per_hop() const { return td_r + td_w + td_q; }
};

/// Serialization parameters for deriving an average td_s from a packet mix.
/// With 128-bit links, a 16-bit short packet is 1 flit and a 64-byte-payload
/// long packet is 5 flits (paper Section V.A); serialization in cycles
/// equals the flit count.
struct PacketMix {
  double short_flits = 1.0;
  double long_flits = 5.0;
  /// Fraction of packets that are short (requests vs. data replies).
  double short_fraction = 0.8;

  double average_serialization() const {
    return short_fraction * short_flits + (1.0 - short_fraction) * long_flits;
  }
};

/// Per-tile latency arrays for one chip: the {TC(k)} and {TM(k)} of the
/// problem statement (Section III.B). Immutable after construction.
class TileLatencyModel {
 public:
  TileLatencyModel(const Mesh& mesh, const LatencyParams& params,
                   MemoryTrafficMode mode = MemoryTrafficMode::kProximity);

  const Mesh& mesh() const { return mesh_; }
  const LatencyParams& params() const { return params_; }
  MemoryTrafficMode mode() const { return mode_; }

  /// Expected cache-packet latency from tile k (cycles).
  double tc(TileId k) const { return tc_[k]; }
  /// Memory-request latency from tile k (cycles; destination per mode()).
  double tm(TileId k) const { return tm_[k]; }

  std::span<const double> tc_array() const { return tc_; }
  std::span<const double> tm_array() const { return tm_; }

  /// Average hop count HC_k of eq. 3 (exposed for Fig. 3 and validation;
  /// TSV-weighted on a stacked mesh).
  double hc(TileId k) const { return hc_[k]; }
  /// Memory hop count HM_k of eq. 4 generalized per mode(): nearest /
  /// mean / farthest weighted MC distance.
  double hm(TileId k) const { return hm_[k]; }

 private:
  Mesh mesh_;
  LatencyParams params_;
  MemoryTrafficMode mode_ = MemoryTrafficMode::kProximity;
  std::vector<double> hc_;
  std::vector<double> hm_;
  std::vector<double> tc_;
  std::vector<double> tm_;
};

/// Latency of one specific packet per eq. 2 (used by tests and the netsim
/// validation example to compare against measured values).
double packet_latency(const Mesh& mesh, const LatencyParams& params,
                      TileId src, TileId dst);

}  // namespace nocmap
