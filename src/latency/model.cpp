#include "latency/model.h"

namespace nocmap {

TileLatencyModel::TileLatencyModel(const Mesh& mesh,
                                   const LatencyParams& params)
    : mesh_(mesh), params_(params) {
  const std::size_t n = mesh_.num_tiles();
  hc_.resize(n);
  hm_.resize(n);
  tc_.resize(n);
  tm_.resize(n);

  const double per_hop = params_.per_hop();
  const double off_tile_probability =
      static_cast<double>(n - 1) / static_cast<double>(n);

  for (TileId k = 0; k < n; ++k) {
    hc_[k] = mesh_.avg_hops_to_all(k);
    hm_[k] = static_cast<double>(mesh_.hops_to_nearest_mc(k));
    // Cache: destination bank is uniform over all N tiles; serialization is
    // paid only when the bank is a different tile.
    tc_[k] = hc_[k] * per_hop + params_.td_s * off_tile_probability;
    // Memory: destination MC is deterministic; serialization unless this
    // tile hosts the MC itself.
    tm_[k] = hm_[k] * per_hop + (mesh_.is_mc(k) ? 0.0 : params_.td_s);
  }
}

double packet_latency(const Mesh& mesh, const LatencyParams& params,
                      TileId src, TileId dst) {
  if (src == dst) return 0.0;
  return static_cast<double>(mesh.hops(src, dst)) * params.per_hop() +
         params.td_s;
}

}  // namespace nocmap
