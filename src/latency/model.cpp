#include "latency/model.h"

#include <algorithm>

namespace nocmap {

const char* memory_traffic_mode_name(MemoryTrafficMode mode) {
  switch (mode) {
    case MemoryTrafficMode::kProximity: return "proximity";
    case MemoryTrafficMode::kInterleaved: return "interleaved";
    case MemoryTrafficMode::kMulticast: return "multicast";
  }
  return "proximity";
}

bool memory_traffic_mode_from_name(const std::string& name,
                                   MemoryTrafficMode& out) {
  if (name == "proximity") out = MemoryTrafficMode::kProximity;
  else if (name == "interleaved") out = MemoryTrafficMode::kInterleaved;
  else if (name == "multicast") out = MemoryTrafficMode::kMulticast;
  else return false;
  return true;
}

TileLatencyModel::TileLatencyModel(const Mesh& mesh,
                                   const LatencyParams& params,
                                   MemoryTrafficMode mode)
    : mesh_(mesh), params_(params), mode_(mode) {
  const std::size_t n = mesh_.num_tiles();
  hc_.resize(n);
  hm_.resize(n);
  tc_.resize(n);
  tm_.resize(n);

  const double per_hop = params_.per_hop();
  const double off_tile_probability =
      static_cast<double>(n - 1) / static_cast<double>(n);
  const auto mcs = mesh_.mc_tiles();

  for (TileId k = 0; k < n; ++k) {
    hc_[k] = mesh_.avg_weighted_hops_to_all(k);
    // Cache: destination bank is uniform over all N tiles; serialization is
    // paid only when the bank is a different tile.
    tc_[k] = hc_[k] * per_hop + params_.td_s * off_tile_probability;

    switch (mode_) {
      case MemoryTrafficMode::kProximity:
        // Destination MC is deterministic; serialization unless this tile
        // hosts the MC itself.
        hm_[k] = mesh_.weighted_hops_to_nearest_mc(k);
        tm_[k] = hm_[k] * per_hop + (mesh_.is_mc(k) ? 0.0 : params_.td_s);
        break;
      case MemoryTrafficMode::kInterleaved: {
        // Round-robin over MCs converges to the uniform average; each
        // off-tile request pays serialization.
        double dist_sum = 0.0;
        double ser_sum = 0.0;
        for (TileId mc : mcs) {
          dist_sum += mesh_.weighted_hops(k, mc);
          if (mc != k) ser_sum += params_.td_s;
        }
        const auto m = static_cast<double>(mcs.size());
        hm_[k] = dist_sum / m;
        tm_[k] = hm_[k] * per_hop + ser_sum / m;
        break;
      }
      case MemoryTrafficMode::kMulticast: {
        // The request completes when the last replica reaches the farthest
        // MC; per-hop delays on the shared tree prefix overlap, so the
        // critical path is the longest branch.
        double dist_max = 0.0;
        for (TileId mc : mcs) {
          dist_max = std::max(dist_max, mesh_.weighted_hops(k, mc));
        }
        hm_[k] = dist_max;
        tm_[k] = dist_max * per_hop + (dist_max > 0.0 ? params_.td_s : 0.0);
        break;
      }
    }
  }
}

double packet_latency(const Mesh& mesh, const LatencyParams& params,
                      TileId src, TileId dst) {
  if (src == dst) return 0.0;
  return mesh.weighted_hops(src, dst) * params.per_hop() + params.td_s;
}

}  // namespace nocmap
