#!/usr/bin/env python3
"""Dead-link checker for the repo's Markdown docs.

Scans every *.md file (build directories and .git excluded) for inline
Markdown links/images [text](target) and fails when a relative target does
not exist on disk. External schemes (http/https/mailto) and pure #anchors
are skipped; "path#fragment" targets are checked against the path part only.

Usage:
    python3 tools/check_md_links.py [root]

Exits 0 when every relative link resolves, 1 otherwise (listing each dead
link as file:line: target).
"""

import os
import re
import sys

_SKIP_DIRS = {".git", ".github", "node_modules"}
_SKIP_DIR_PREFIXES = ("build",)

# Inline links/images: [text](target "optional title"). Reference-style and
# autolinks are rare in this repo and intentionally out of scope.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in _SKIP_DIRS and not d.startswith(_SKIP_DIR_PREFIXES)
        ]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(md_path, root):
    """Returns [(line_number, target)] dead links in one file."""
    dead = []
    base = os.path.dirname(md_path)
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for match in _LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL) or target.startswith("#"):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                if path.startswith("/"):
                    resolved = os.path.join(root, path.lstrip("/"))
                else:
                    resolved = os.path.join(base, path)
                if not os.path.exists(resolved):
                    dead.append((lineno, target))
    return dead


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    files = 0
    failures = []
    for md_path in iter_markdown_files(root):
        files += 1
        for lineno, target in check_file(md_path, root):
            failures.append(f"{os.path.relpath(md_path, root)}:{lineno}: "
                            f"{target}")

    if failures:
        print(f"FAIL: {len(failures)} dead relative link(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: all relative Markdown links in {files} file(s) resolve.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
