// nocmap_sweep — campaign sweep driver over src/sweep/ (DESIGN.md §15,
// docs/campaigns.md is the operator guide, docs/sweep-spec.md the spec
// reference).
//
//   nocmap_sweep expand spec.json                # validate + expansion stats
//   nocmap_sweep expand spec.json --list 5       # ... and first 5 scenarios
//   nocmap_sweep run spec.json --out DIR         # run / resume the campaign
//   nocmap_sweep aggregate DIR                   # fold log -> frontier doc
//   nocmap_sweep bench --out DIR                 # write BENCH_sweep.json
//
// Exit codes: 0 success, 1 the campaign/aggregate hit a failure, 2 usage or
// spec error. `run` writes a RunReport with the sweep.* counter snapshot to
// <out>/REPORT_nocmap_sweep.json next to the campaign log.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/run_report.h"
#include "sweep/aggregate.h"
#include "sweep/runner.h"
#include "sweep/spec.h"
#include "util/error.h"

namespace {

using namespace nocmap;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " <command> [options]\n"
      << "commands:\n"
      << "  expand SPEC            parse + expand a campaign spec\n"
      << "    --list N             also print the first N scenarios\n"
      << "    --digest             print only the spec digest\n"
      << "  run SPEC               run (or resume) the campaign\n"
      << "    --out DIR            campaign directory (default 'campaign')\n"
      << "    --threads N          workers (default $NOCMAP_THREADS, 0=all)\n"
      << "    --sim-workers N      spatial-partition workers inside each\n"
      << "                         simulation (default 1, 0=all cores;\n"
      << "                         results are bit-identical at any value)\n"
      << "    --chunk N            scenarios per commit chunk (default 64)\n"
      << "    --max-scenarios N    stop after N new scenarios (0 = all)\n"
      << "    --quiet              no per-chunk progress lines\n"
      << "  aggregate DIR|LOG      fold a campaign log into the frontier\n"
      << "    --out FILE           write the document here (default stdout)\n"
      << "  bench                  time a reference campaign + resume scan\n"
      << "    --out DIR            output directory (default 'bench_results')\n"
      << "    --scenarios N        campaign size (default 96)\n";
  return 2;
}

std::size_t env_threads() {
  if (const char* env = std::getenv("NOCMAP_THREADS")) {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 0;
}

const char* require_value(int argc, char** argv, int& i, const char* flag) {
  NOCMAP_REQUIRE(i + 1 < argc, std::string(flag) + " needs a value");
  return argv[++i];
}

int cmd_expand(int argc, char** argv) {
  std::string spec_path;
  std::size_t list = 0;
  bool digest_only = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = std::stoull(require_value(argc, argv, i, "--list"));
    } else if (arg == "--digest") {
      digest_only = true;
    } else if (spec_path.empty() && !arg.empty() && arg[0] != '-') {
      spec_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  const sweep::CampaignSpec spec = sweep::load_spec(spec_path);
  if (digest_only) {
    std::cout << sweep::spec_digest(spec) << "\n";
    return 0;
  }
  const sweep::Expansion expansion = sweep::expand_spec(spec);
  std::cout << "spec:         " << spec.name << "\n"
            << "digest:       " << sweep::spec_digest(spec) << "\n"
            << "combinations: " << expansion.combinations << "\n"
            << "skipped:      " << expansion.skipped << "\n"
            << "scenarios:    " << expansion.scenarios.size() << "\n";
  for (std::size_t i = 0; i < list && i < expansion.scenarios.size(); ++i) {
    const sweep::SweepScenario& s = expansion.scenarios[i];
    std::cout << "  #" << s.id << " mesh " << s.spec.mesh_side << "x"
              << s.spec.mesh_side << (s.spec.torus ? " torus" : " mesh")
              << " config " << s.spec.config << " apps "
              << s.spec.num_applications << "x" << s.spec.threads_per_app
              << " inj " << s.spec.injection_scale << " seed " << s.spec.seed
              << " mapper " << s.mapper << "\n";
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  std::string spec_path;
  sweep::CampaignOptions options;
  options.parallel.num_threads = env_threads();
  options.verbose = true;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      options.out_dir = require_value(argc, argv, i, "--out");
    } else if (arg == "--threads") {
      options.parallel.num_threads =
          std::stoull(require_value(argc, argv, i, "--threads"));
    } else if (arg == "--sim-workers") {
      options.sim_workers =
          std::stoull(require_value(argc, argv, i, "--sim-workers"));
    } else if (arg == "--chunk") {
      options.chunk_size =
          std::stoull(require_value(argc, argv, i, "--chunk"));
    } else if (arg == "--max-scenarios") {
      options.max_scenarios =
          std::stoull(require_value(argc, argv, i, "--max-scenarios"));
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else if (spec_path.empty() && !arg.empty() && arg[0] != '-') {
      spec_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  const sweep::CampaignSpec spec = sweep::load_spec(spec_path);
  const sweep::CampaignResult result = sweep::run_campaign(spec, options);
  std::cout << "campaign " << spec.name << ": " << result.completed
            << " new, " << result.resumed << " resumed, " << result.total
            << " total -> " << result.log_path
            << (result.finished ? " (complete)" : " (partial)") << "\n";

  obs::RunReport& report = obs::RunReport::global();
  report.set_binary("nocmap_sweep");
  report.set("setup.spec", spec_path);
  report.set("setup.spec_digest", sweep::spec_digest(spec));
  report.set("setup.threads",
             std::uint64_t{options.parallel.resolved_threads()});
  report.set("sweep.total", std::uint64_t{result.total});
  report.set("sweep.resumed", std::uint64_t{result.resumed});
  report.set("sweep.completed", std::uint64_t{result.completed});
  report.set("sweep.finished", result.finished);
  report.note_artifact(result.log_path);
  report.attach_metrics();
  const std::string report_path =
      (std::filesystem::path(options.out_dir) / "REPORT_nocmap_sweep.json")
          .string();
  if (report.save(report_path)) {
    std::cout << "[report: " << report_path << "]\n";
  }
  return result.finished ? 0 : 1;
}

int cmd_aggregate(int argc, char** argv) {
  std::string target;
  std::string out_file;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      out_file = require_value(argc, argv, i, "--out");
    } else if (target.empty() && !arg.empty() && arg[0] != '-') {
      target = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (target.empty()) return usage(argv[0]);
  if (std::filesystem::is_directory(target)) {
    target = (std::filesystem::path(target) / "campaign.jsonl").string();
  }

  const obs::JsonValue frontier = sweep::aggregate_file(target);
  const std::string text = frontier.dump(2) + "\n";
  if (out_file.empty()) {
    std::cout << text;
  } else {
    std::ofstream out(out_file, std::ios::binary | std::ios::trunc);
    out << text;
    NOCMAP_REQUIRE(out.good(), "cannot write " + out_file);
    std::cout << "[frontier: " << out_file << "]\n";
  }
  const obs::JsonValue* complete = frontier.find("complete");
  return complete != nullptr && complete->as_bool() ? 0 : 1;
}

/// Reference campaign for the perf gate: analytic-only, one cheap and one
/// search mapper, sized by --scenarios. Timings go to BENCH_sweep.json in
/// the compare_bench.py flat-leaf format (keys must keep their _us suffix).
int cmd_bench(int argc, char** argv) {
  std::string out_dir = "bench_results";
  std::uint32_t scenarios = 96;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      out_dir = require_value(argc, argv, i, "--out");
    } else if (arg == "--scenarios") {
      scenarios = static_cast<std::uint32_t>(
          std::stoul(require_value(argc, argv, i, "--scenarios")));
    } else {
      return usage(argv[0]);
    }
  }

  sweep::CampaignSpec spec;
  spec.name = "bench-sweep";
  spec.mesh_side = {8};
  spec.config = {"C1", "C3"};
  spec.num_applications = {4};
  spec.injection_scale = {0.5, 1.0};
  spec.mappers = {"Global", "SSS"};
  // 8 scenarios per seed (2 configs x 2 injections x 2 mappers).
  spec.seed.count = std::max<std::uint32_t>(1, scenarios / 8);

  sweep::CampaignOptions options;
  options.parallel.num_threads = env_threads();
  options.out_dir =
      (std::filesystem::path(out_dir) / "bench_sweep_campaign").string();
  std::filesystem::remove_all(options.out_dir);

  using clock = std::chrono::steady_clock;
  const auto run_start = clock::now();
  const sweep::CampaignResult result = sweep::run_campaign(spec, options);
  const double run_us = std::chrono::duration<double, std::micro>(
                            clock::now() - run_start)
                            .count();

  // Resume overhead: re-running over the finished log is a pure scan
  // (parse every record, truncate nothing, execute nothing).
  const auto resume_start = clock::now();
  const sweep::CampaignResult resumed = sweep::run_campaign(spec, options);
  const double resume_us = std::chrono::duration<double, std::micro>(
                               clock::now() - resume_start)
                               .count();
  NOCMAP_REQUIRE(resumed.completed == 0 && resumed.finished,
                 "bench resume scan unexpectedly re-ran scenarios");

  obs::JsonValue doc = obs::JsonValue::object();
  doc["bench"] = "nocmap_sweep";
  doc["unit"] = "us";
  doc["scenarios"] = std::uint64_t{result.total};
  doc["threads"] = std::uint64_t{options.parallel.resolved_threads()};
  doc["scenario_us"] = run_us / static_cast<double>(result.total);
  doc["resume_scan_us"] = resume_us;
  std::filesystem::create_directories(out_dir);
  const std::string path =
      (std::filesystem::path(out_dir) / "BENCH_sweep.json").string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << doc.dump(2) << "\n";
  NOCMAP_REQUIRE(out.good(), "cannot write " + path);
  std::cout << doc.dump(2) << "\n[bench: " << path << "]\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  try {
    if (command == "expand") return cmd_expand(argc, argv);
    if (command == "run") return cmd_run(argc, argv);
    if (command == "aggregate") return cmd_aggregate(argc, argv);
    if (command == "bench") return cmd_bench(argc, argv);
    std::cerr << "unknown command '" << command << "'\n";
    return usage(argv[0]);
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
