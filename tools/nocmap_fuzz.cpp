// nocmap_fuzz — seeded differential fuzzing CLI over src/check/
// (DESIGN.md §10).
//
//   nocmap_fuzz --iterations 200 --seed 1           # fuzz from one seed
//   nocmap_fuzz --replay tests/corpus/*.scenario    # re-run repro files
//   nocmap_fuzz --dump-scenario 42 out.scenario     # spec of one seed
//   nocmap_fuzz --canary                            # mutation-canary self-test
//   nocmap_fuzz --list-oracles
//
// Exit codes: 0 all checks passed (for --canary: the seeded bug was caught
// and shrunk), 1 a property failed (minimized repro written to --out), 2
// usage error. A RunReport with the check.* counter snapshot is written to
// <out>/REPORT_nocmap_fuzz.json.
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "core/cost_cache.h"
#include "util/error.h"

namespace {

using namespace nocmap;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --iterations N       scenarios to fuzz (default 100)\n"
      << "  --seed S             base seed for the scenario stream "
         "(default 1)\n"
      << "  --oracle NAME        restrict to one oracle (repeatable)\n"
      << "  --out DIR            repro/report output directory (default "
         "'repros')\n"
      << "  --no-shrink          report failures unminimized\n"
      << "  --replay FILE...     re-execute repro/corpus files instead of "
         "fuzzing\n"
      << "  --dump-scenario S F  write the scenario of seed S to file F\n"
      << "  --canary             self-test: seed an off-by-one bug, prove "
         "the\n"
      << "                       oracles catch and shrink it\n"
      << "  --list-oracles       print the oracle registry\n";
  return 2;
}

void print_failure(const check::FuzzFailure& failure) {
  std::cout << "FAIL [" << failure.oracle << "] seed "
            << failure.original.seed << "\n  " << failure.detail << "\n";
  if (failure.original != failure.minimal) {
    std::cout << "  minimized: mesh " << failure.minimal.mesh_side << "x"
              << failure.minimal.mesh_side << ", "
              << failure.minimal.num_applications << " app(s) x "
              << failure.minimal.threads_per_app << " thread(s), config "
              << failure.minimal.config << " (" << failure.shrink_attempts
              << " shrink attempts)\n";
  }
  if (!failure.repro_path.empty()) {
    std::cout << "  repro: " << failure.repro_path << "\n";
  }
}

void save_run_report(const check::FuzzOptions& options,
                     const check::FuzzReport& report) {
  obs::RunReport& out = obs::RunReport::global();
  out.set_binary("nocmap_fuzz");
  check::write_report(options, report, out);
  const std::filesystem::path dir =
      options.repro_dir.empty() ? "." : options.repro_dir;
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "REPORT_nocmap_fuzz.json").string();
  if (out.save(path)) std::cout << "[report: " << path << "]\n";
}

int run_replay(const std::vector<std::string>& files) {
  bool all_ok = true;
  for (const std::string& file : files) {
    const check::ReplayResult result = check::replay_repro(file);
    if (result.ok) {
      std::cout << "OK   " << file << "\n";
    } else {
      all_ok = false;
      std::cout << "FAIL " << file << " [" << result.oracle << "]\n  "
                << result.detail << "\n";
    }
  }
  return all_ok ? 0 : 1;
}

/// Mutation-canary self-test: enable the seeded off-by-one in the cost
/// cache and require the fuzzer to catch it within a few iterations and
/// shrink it to a trivial (≤2-application) scenario.
int run_canary(check::FuzzOptions options) {
  struct HookGuard {
    HookGuard() { check_hooks::set_cost_cache_off_by_one(true); }
    ~HookGuard() { check_hooks::set_cost_cache_off_by_one(false); }
  } guard;

  options.iterations = std::max<std::size_t>(options.iterations, 10);
  options.max_failures = 1;
  const check::FuzzReport report = check::run_fuzz(options);
  save_run_report(options, report);
  if (report.failures.empty()) {
    std::cout << "CANARY NOT CAUGHT within " << options.iterations
              << " iterations — the oracles are blind to a seeded "
                 "cost-copy bug\n";
    return 1;
  }
  const check::FuzzFailure& failure = report.failures.front();
  print_failure(failure);
  if (failure.minimal.num_applications > 2) {
    std::cout << "CANARY caught but shrunk only to "
              << failure.minimal.num_applications
              << " applications (want <= 2)\n";
    return 1;
  }
  std::cout << "CANARY caught after " << report.scenarios
            << " scenario(s) and shrunk to "
            << failure.minimal.num_applications << " application(s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  check::FuzzOptions options;
  options.repro_dir = "repros";
  std::vector<std::string> replay_files;
  bool canary = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    try {
      if (arg == "--iterations") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.iterations = std::stoull(v);
      } else if (arg == "--seed") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.seed = std::stoull(v);
      } else if (arg == "--oracle") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.oracles.emplace_back(v);
      } else if (arg == "--out") {
        const char* v = next();
        if (v == nullptr) return usage(argv[0]);
        options.repro_dir = v;
      } else if (arg == "--no-shrink") {
        options.shrink = false;
      } else if (arg == "--replay") {
        while (i + 1 < argc && argv[i + 1][0] != '-') {
          replay_files.emplace_back(argv[++i]);
        }
        if (replay_files.empty()) return usage(argv[0]);
      } else if (arg == "--dump-scenario") {
        const char* seed = next();
        const char* file = next();
        if (seed == nullptr || file == nullptr) return usage(argv[0]);
        const check::ScenarioSpec spec =
            check::generate_scenario(std::stoull(seed));
        check::save_repro(file, spec);
        std::cout << check::to_repro(spec);
        return 0;
      } else if (arg == "--canary") {
        canary = true;
      } else if (arg == "--list-oracles") {
        for (const check::Oracle& oracle : check::all_oracles()) {
          std::cout << oracle.name << " — " << oracle.what << "\n";
        }
        return 0;
      } else {
        std::cerr << "unknown option '" << arg << "'\n";
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "bad argument for " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }

  try {
    if (canary) return run_canary(options);
    if (!replay_files.empty()) return run_replay(replay_files);

    const check::FuzzReport report = check::run_fuzz(options);
    save_run_report(options, report);
    std::cout << "fuzzed " << report.scenarios << " scenario(s), "
              << report.oracle_checks << " oracle check(s), "
              << report.failures.size() << " failure(s) [seed "
              << options.seed << "]\n";
    for (const check::FuzzFailure& failure : report.failures) {
      print_failure(failure);
    }
    return report.ok() ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
