// Event-trace replay driver for the online mapping service (DESIGN.md §13).
//
//   nocmap_service_replay --events 100000 --seed 1 --mesh 8 --budget 8
//   nocmap_service_replay --events 5000 --workers 8 --json out.json
//
// Synthesizes a deterministic event trace, replays it through one
// MappingService, and prints throughput (decisions/sec), decision-latency
// percentiles, admission and fallback statistics, and the decision digest
// (byte-identical across worker counts; diff digests across runs/machines
// to prove replay determinism). --json writes the same summary as a small
// machine-readable file.
//
// Exit codes: 0 success, 2 bad usage.
#include <fstream>
#include <iostream>
#include <string>

#include "latency/model.h"
#include "service/replay.h"
#include "topology/mesh.h"
#include "util/error.h"
#include "util/table.h"

namespace {

using namespace nocmap;

void usage(std::ostream& os) {
  os << "usage: nocmap_service_replay [options]\n"
     << "  --events N      trace length (default 10000)\n"
     << "  --seed S        trace seed (default 1)\n"
     << "  --mesh N        square mesh side (default 8)\n"
     << "  --budget M      per-event migration budget (default 8)\n"
     << "  --threshold X   fallback degradation threshold (default 1.25)\n"
     << "  --workers W     fallback-SSS worker count (default 1; any value\n"
     << "                  yields the identical decision stream)\n"
     << "  --config CN     fixed Table-3 config C1..C8 (default: cycle)\n"
     << "  --max-app N     largest application thread count (default 16)\n"
     << "  --sample K      sample incremental-vs-fresh objective every K\n"
     << "                  events (default 0 = off)\n"
     << "  --simulate      after the replay, run the final placement\n"
     << "                  through the cycle-accurate netsim (measured\n"
     << "                  ground truth for the analytic decisions)\n"
     << "  --sim-workers W spatial-partition workers for --simulate\n"
     << "                  (default 1, 0=all cores; results identical)\n"
     << "  --json PATH     also write the summary as JSON\n";
}

}  // namespace

int main(int argc, char** argv) {
  service::TraceConfig trace_config;
  trace_config.num_events = 10000;
  service::ServiceConfig service_config;
  service_config.migration_budget = 8;
  std::uint32_t mesh_side = 8;
  std::size_t workers = 1;
  std::size_t sample_period = 0;
  bool simulate = false;
  std::size_t sim_workers = 1;
  std::string json_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--events") {
        trace_config.num_events = std::stoul(value());
      } else if (arg == "--seed") {
        trace_config.seed = std::stoull(value());
      } else if (arg == "--mesh") {
        mesh_side = static_cast<std::uint32_t>(std::stoul(value()));
      } else if (arg == "--budget") {
        service_config.migration_budget = std::stoul(value());
      } else if (arg == "--threshold") {
        service_config.degradation_threshold = std::stod(value());
      } else if (arg == "--workers") {
        workers = std::stoul(value());
        service_config.sss.parallel = {workers, true};
      } else if (arg == "--config") {
        trace_config.config = value();
      } else if (arg == "--max-app") {
        trace_config.max_threads_per_app =
            static_cast<std::uint32_t>(std::stoul(value()));
      } else if (arg == "--sample") {
        sample_period = std::stoul(value());
      } else if (arg == "--simulate") {
        simulate = true;
      } else if (arg == "--sim-workers") {
        sim_workers = std::stoul(value());
      } else if (arg == "--json") {
        json_path = value();
      } else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else {
        throw Error("unknown option: " + arg);
      }
    }

    const Mesh mesh = Mesh::square(mesh_side);
    trace_config.num_tiles = static_cast<std::uint32_t>(mesh.num_tiles());
    const std::vector<service::Event> events =
        service::generate_trace(trace_config);

    service::MappingService engine(TileLatencyModel(mesh, LatencyParams{}),
                                   service_config);
    service::ReplayOptions replay_options;
    replay_options.collect_latencies = true;
    replay_options.objective_sample_period = sample_period;
    const service::ReplayStats stats =
        service::replay_trace(engine, events, replay_options);

    const double decisions_per_sec =
        stats.wall_ms > 0.0
            ? 1000.0 * static_cast<double>(stats.events) / stats.wall_ms
            : 0.0;
    const double mean_us =
        stats.wall_ms * 1000.0 / static_cast<double>(stats.events);
    const double p50 = service::percentile_us(stats.decision_us, 50.0);
    const double p99 = service::percentile_us(stats.decision_us, 99.0);

    std::cout << "nocmap_service_replay — " << stats.events
              << " events on a " << mesh_side << "x" << mesh_side
              << " chip (seed " << trace_config.seed << ", budget "
              << service_config.migration_budget << ", " << workers
              << " worker(s))\n\n";
    TextTable t({"metric", "value"});
    t.add_row({"decisions/sec", fmt(decisions_per_sec)});
    t.add_row({"mean decision [us]", fmt(mean_us)});
    t.add_row({"p50 decision [us]", fmt(p50)});
    t.add_row({"p99 decision [us]", fmt(p99)});
    t.add_row({"accepted / rejected",
               std::to_string(stats.accepted) + " / " +
                   std::to_string(stats.rejected)});
    t.add_row({"fallback re-solves", std::to_string(stats.fallbacks)});
    t.add_row({"degraded decisions", std::to_string(stats.degraded)});
    t.add_row({"threads migrated", std::to_string(stats.moved_threads)});
    if (stats.objective_samples > 0) {
      t.add_row({"mean obj / fresh-SSS obj",
                 fmt(stats.mean_objective_ratio, 4)});
    }
    t.print(std::cout);
    std::cout << "\ndecision digest: " << std::hex << stats.digest
              << std::dec << "\n";

    bool simulated = false;
    SimResult sim;
    if (simulate) {
      // Measured ground truth for the final chip state the analytic
      // decisions produced — one large scenario, so the partition workers
      // are the only parallelism that helps.
      SimConfig sim_config;
      sim_config.warmup_cycles = 500;
      sim_config.measure_cycles = 5000;
      sim_config.sim_workers = sim_workers;
      sim = service::simulate_snapshot(engine, sim_config);
      simulated = sim.packets_measured > 0;
      std::cout << "\nfinal-snapshot netsim (" << sim_workers
                << " sim worker(s)):\n";
      TextTable st({"metric", "value"});
      st.add_row({"measured G-APL [cycles]", fmt(sim.g_apl)});
      st.add_row({"measured max APL [cycles]", fmt(sim.max_apl)});
      st.add_row({"packets measured",
                  std::to_string(sim.packets_measured)});
      st.add_row({"link utilization", fmt(sim.load.link_utilization, 4)});
      st.print(std::cout);
      if (!simulated) {
        std::cout << "(snapshot has no resident traffic to simulate)\n";
      }
    }

    if (!json_path.empty()) {
      std::ofstream os(json_path);
      if (!os) throw Error("cannot write " + json_path);
      os << "{\n"
         << "  \"events\": " << stats.events << ",\n"
         << "  \"decisions_per_sec\": " << decisions_per_sec << ",\n"
         << "  \"mean_decision_us\": " << mean_us << ",\n"
         << "  \"p99_decision_us\": " << p99 << ",\n"
         << "  \"accepted\": " << stats.accepted << ",\n"
         << "  \"rejected\": " << stats.rejected << ",\n"
         << "  \"fallbacks\": " << stats.fallbacks << ",\n"
         << "  \"degraded\": " << stats.degraded << ",\n"
         << "  \"moved_threads\": " << stats.moved_threads << ",\n"
         << "  \"mean_objective_ratio\": " << stats.mean_objective_ratio
         << ",\n";
      if (simulate) {
        os << "  \"sim_g_apl\": " << sim.g_apl << ",\n"
           << "  \"sim_max_apl\": " << sim.max_apl << ",\n"
           << "  \"sim_packets_measured\": " << sim.packets_measured
           << ",\n"
           << "  \"sim_workers\": " << sim_workers << ",\n";
      }
      os << "  \"digest\": \"" << std::hex << stats.digest << std::dec
         << "\"\n"
         << "}\n";
      std::cout << "[json: " << json_path << "]\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }
  return 0;
}
