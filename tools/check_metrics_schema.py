#!/usr/bin/env python3
"""Schema-drift checker for docs/metrics-schema.md.

Cross-checks the metric names registered in the C++ sources (every
`obs::Counter/Timer/Gauge("name")` construction under src/, bench/ and
tools/) against the names documented in docs/metrics-schema.md, in both
directions:

  * a registered metric missing from the doc is drift (new instrumentation
    landed without its schema entry);
  * a documented metric that no source registers is drift (the code moved
    or the metric was renamed/removed and the doc still advertises it).

Names matching _BENCH_INTERNAL are bench-local probes the doc explicitly
declares meaningless; they are exempt from the per-name table requirement
(the doc covers them with one sentence, not one row each).

Usage:
    python3 tools/check_metrics_schema.py [root]

Exits 0 when the doc and the registry agree, 1 otherwise.
"""

import os
import re
import sys

_SOURCE_DIRS = ("src", "bench", "tools")
_SCHEMA_DOC = os.path.join("docs", "metrics-schema.md")

# Metric registrations: obs::Counter c("name") / Counter c{"name"} — the
# constructor takes the registry name as its first (string literal) argument.
_REGISTRATION_RE = re.compile(
    r"\bobs::(?:Counter|Timer|Gauge)\s+\w+\s*[({]\s*\"([^\"]+)\"")

# Documented names: the first |-column of a table row when it is a
# `code`-formatted metric name (tables also document RunReport fields like
# `schema`; only dotted names are registry metrics).
_DOC_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_.]*\.[a-z0-9_.<>]+)`\s*\|")

# Bench-internal probe names the doc covers in prose instead of tables.
_BENCH_INTERNAL = re.compile(r"^micro_obs\.")

# RunReport *fields* documented in the binary-specific table also match
# _DOC_ROW_RE; they are set via RunReport::set, not registered, so the
# reverse check only applies to names that look like registry metrics
# (documented under the Counters / Timers / Gauges sections).
_REGISTRY_SECTIONS = ("## Counters", "## Timers", "## Gauges")


def registered_metrics(root):
    """{name: file:line} for every metric constructed in the sources."""
    out = {}
    for top in _SOURCE_DIRS:
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, top)):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for name in sorted(filenames):
                if not name.endswith((".cpp", ".h")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as f:
                    for lineno, line in enumerate(f, start=1):
                        for match in _REGISTRATION_RE.finditer(line):
                            where = f"{os.path.relpath(path, root)}:{lineno}"
                            out.setdefault(match.group(1), where)
    return out


def documented_metrics(doc_path):
    """(all_names, registry_names): every `dotted.name` table entry, and
    the subset under the Counters/Timers/Gauges sections."""
    all_names = set()
    registry_names = set()
    in_registry_section = False
    with open(doc_path, encoding="utf-8") as f:
        for line in f:
            if line.startswith("## "):
                in_registry_section = line.strip().startswith(
                    _REGISTRY_SECTIONS)
            match = _DOC_ROW_RE.match(line)
            if match:
                all_names.add(match.group(1))
                if in_registry_section:
                    registry_names.add(match.group(1))
    return all_names, registry_names


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    doc_path = os.path.join(root, _SCHEMA_DOC)
    if not os.path.exists(doc_path):
        print(f"FAIL: {_SCHEMA_DOC} not found under {root}")
        return 1

    registered = registered_metrics(root)
    documented, documented_registry = documented_metrics(doc_path)

    failures = []
    for name in sorted(registered):
        if _BENCH_INTERNAL.match(name):
            continue
        if name not in documented:
            failures.append(
                f"undocumented metric `{name}` (registered at "
                f"{registered[name]}) — add it to {_SCHEMA_DOC}")
    for name in sorted(documented_registry):
        if name not in registered:
            failures.append(
                f"stale doc entry `{name}` — no source under "
                f"{'/'.join(_SOURCE_DIRS)} registers it")

    if failures:
        print(f"FAIL: {len(failures)} schema drift issue(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: {len(registered)} registered metric(s) and "
          f"{len(documented_registry)} documented registry entr(ies) agree.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
