// Capacity planning with the online mapping service: replay one synthetic
// churn trace against candidate chip configurations (mesh size × memory-
// controller placement) and compare how much of the offered workload each
// one admits and how well it keeps latency balanced while doing so — the
// what-if analysis an operator would run before committing a deployment.
//
// Where the batch mappers answer "how good is the balance on a fixed
// instance", the service answers the operational questions: admission rate
// under churn, migrations paid per event, and how often the incremental
// path needed a from-scratch fallback.
#include <iostream>
#include <string>

#include "service/replay.h"
#include "util/table.h"

namespace {

using namespace nocmap;

const char* placement_name(McPlacement p) {
  switch (p) {
    case McPlacement::kCorners: return "corners";
    case McPlacement::kEdgeMiddles: return "edge middles";
    case McPlacement::kDiamond: return "center diamond";
  }
  return "?";
}

}  // namespace

int main() {
  std::cout << "Capacity planner: one churn trace replayed through "
               "MappingService per chip candidate\n\n";

  service::ServiceConfig config;
  config.migration_budget = 6;

  TextTable t({"mesh", "MC placement", "admitted", "rejected", "objective",
               "migrations", "fallbacks"});
  for (std::uint32_t side : {4u, 6u, 8u}) {
    for (McPlacement placement :
         {McPlacement::kCorners, McPlacement::kEdgeMiddles,
          McPlacement::kDiamond}) {
      const Mesh mesh = Mesh::square_with_placement(side, placement);

      // The same offered load for every candidate of a given size: the
      // trace is a pure function of (seed, tile count).
      service::TraceConfig trace;
      trace.seed = 99;
      trace.num_events = 400;
      trace.num_tiles = static_cast<std::uint32_t>(mesh.num_tiles());
      trace.max_threads_per_app =
          std::max(2u, trace.num_tiles / 4);

      service::MappingService engine(
          TileLatencyModel(mesh, LatencyParams{}), config);
      const service::ReplayStats stats =
          service::replay_trace(engine, service::generate_trace(trace));

      t.add_row({std::to_string(side) + "x" + std::to_string(side),
                 placement_name(placement), std::to_string(stats.accepted),
                 std::to_string(stats.rejected), fmt(engine.objective()),
                 std::to_string(stats.moved_threads),
                 std::to_string(stats.fallbacks)});
    }
  }
  t.print(std::cout);

  std::cout << "\nReading: 'rejected' counts arrivals denied for lack of "
               "free tiles — the capacity\nsignal. 'objective' is the final "
               "max-APL over residents (smaller chips run\nhotter); "
               "'migrations' is the total threads moved across all 400 "
               "events under the\n6-per-event budget, and 'fallbacks' how "
               "often the incremental path degraded far\nenough to warrant "
               "a bounded from-scratch re-solve.\n";
  return 0;
}
