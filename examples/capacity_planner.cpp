// Capacity planning with the public API: sweep chip sizes and memory-
// controller placements to see how far latency balancing can go for a given
// multi-application consolidation plan — the kind of what-if analysis a
// system operator would run before committing a deployment.
#include <iostream>
#include <vector>

#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/sss_mapper.h"
#include "util/table.h"
#include "workload/synthesis.h"

namespace {

using namespace nocmap;

const char* placement_name(McPlacement p) {
  switch (p) {
    case McPlacement::kCorners: return "corners";
    case McPlacement::kEdgeMiddles: return "edge middles";
    case McPlacement::kDiamond: return "center diamond";
  }
  return "?";
}

}  // namespace

int main() {
  std::cout << "Capacity planner: 4-application consolidation across mesh "
               "sizes and MC placements\n\n";

  TextTable t({"mesh", "MC placement", "SSS max-APL", "SSS dev-APL",
               "Global max-APL", "balance gain"});

  for (std::uint32_t side : {4u, 6u, 8u, 12u}) {
    for (McPlacement placement :
         {McPlacement::kCorners, McPlacement::kEdgeMiddles,
          McPlacement::kDiamond}) {
      const Mesh mesh = Mesh::square_with_placement(side, placement);
      const TileLatencyModel chip(mesh, LatencyParams{});

      SynthesisOptions opt;
      opt.num_applications = 4;
      opt.threads_per_app = mesh.num_tiles() / 4;
      const Workload workload =
          synthesize_workload(parsec_config("C1"), 99, opt);
      const ObmProblem problem(chip, workload);

      SortSelectSwapMapper sss;
      GlobalMapper global;
      const LatencyReport rs = evaluate(problem, sss.map(problem));
      const LatencyReport rg = evaluate(problem, global.map(problem));

      t.add_row({std::to_string(side) + "x" + std::to_string(side),
                 placement_name(placement), fmt(rs.max_apl),
                 fmt(rs.dev_apl, 3), fmt(rg.max_apl),
                 fmt_percent(rs.max_apl / rg.max_apl - 1.0)});
    }
  }
  t.print(std::cout);

  std::cout << "\nReading: 'balance gain' is SSS's max-APL change vs the "
               "throughput-oriented Global\nmapping (negative = better "
               "worst-application latency). Larger meshes have more\n"
               "latency spread to balance; MC placement shifts where "
               "memory-heavy threads want to sit.\n";
  return 0;
}
