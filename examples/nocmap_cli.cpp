// Command-line mapper: read a workload CSV, solve OBM, print the mapping —
// the tool a scheduler/operator would wire into a job-placement pipeline.
//
// Usage:
//   nocmap_cli --sample workload.csv          # write an example CSV
//   nocmap_cli workload.csv [options]
//
// Options:
//   --mesh N           mesh side (default: smallest square fitting threads)
//   --algorithm NAME   sss | global | mc | sa | ga   (default sss)
//   --seed S           algorithm seed (default 1)
//   --td_q Q --td_s S  latency-model overrides
//   --output FILE      save the computed mapping as CSV (thread,tile)
//   --mapping FILE     skip solving; evaluate an existing mapping CSV
#include <cmath>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/annealing_mapper.h"
#include "core/genetic_mapper.h"
#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/mapping_io.h"
#include "core/monte_carlo_mapper.h"
#include "core/sss_mapper.h"
#include "workload/io.h"
#include "workload/synthesis.h"

namespace {

using namespace nocmap;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " <workload.csv> [--mesh N]"
            << " [--algorithm sss|global|mc|sa|ga] [--seed S]"
            << " [--td_q Q] [--td_s S] [--output map.csv]"
            << " [--mapping map.csv]\n"
            << "       " << argv0 << " --sample <workload.csv>\n";
  return 2;
}

std::unique_ptr<Mapper> make_mapper(const std::string& name,
                                    std::uint64_t seed) {
  if (name == "sss") return std::make_unique<SortSelectSwapMapper>();
  if (name == "global") return std::make_unique<GlobalMapper>();
  if (name == "mc") return std::make_unique<MonteCarloMapper>(10000, seed);
  if (name == "sa") {
    return std::make_unique<AnnealingMapper>(
        AnnealingParams{.iterations = 50000, .seed = seed});
  }
  if (name == "ga") {
    return std::make_unique<GeneticMapper>(GeneticParams{.seed = seed});
  }
  throw Error("unknown algorithm: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::strcmp(argv[1], "--sample") == 0) {
      const Workload sample =
          synthesize_workload(parsec_config("C1"), 1);
      save_workload_csv(sample, argv[2]);
      std::cout << "wrote sample 4-application workload to " << argv[2]
                << "\n";
      return 0;
    }
    if (argc < 2) return usage(argv[0]);

    std::string path = argv[1];
    std::uint32_t mesh_side = 0;
    std::string algorithm = "sss";
    std::string output_path;
    std::string mapping_path;
    std::uint64_t seed = 1;
    LatencyParams params;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw Error("missing value for " + arg);
        return argv[++i];
      };
      if (arg == "--mesh") {
        mesh_side = static_cast<std::uint32_t>(std::stoul(next()));
      } else if (arg == "--algorithm") {
        algorithm = next();
      } else if (arg == "--seed") {
        seed = std::stoull(next());
      } else if (arg == "--td_q") {
        params.td_q = std::stod(next());
      } else if (arg == "--td_s") {
        params.td_s = std::stod(next());
      } else if (arg == "--output") {
        output_path = next();
      } else if (arg == "--mapping") {
        mapping_path = next();
      } else {
        return usage(argv[0]);
      }
    }

    Workload workload = load_workload_csv(path);
    if (mesh_side == 0) {
      mesh_side = static_cast<std::uint32_t>(std::ceil(
          std::sqrt(static_cast<double>(workload.num_threads()))));
      mesh_side = std::max(mesh_side, 2u);
    }
    const Mesh mesh = Mesh::square(mesh_side);
    NOCMAP_REQUIRE(workload.num_threads() <= mesh.num_tiles(),
                   "workload has more threads than tiles; pass a larger "
                   "--mesh");
    workload = workload.padded_to(mesh.num_tiles());

    const ObmProblem problem(TileLatencyModel(mesh, params), workload);
    Mapping mapping;
    std::string algorithm_label;
    if (!mapping_path.empty()) {
      mapping = load_mapping_csv(mapping_path);
      NOCMAP_REQUIRE(mapping.is_valid_permutation(problem.num_threads()),
                     "mapping size does not match workload/mesh");
      algorithm_label = "(loaded from " + mapping_path + ")";
    } else {
      auto mapper = make_mapper(algorithm, seed);
      mapping = mapper->map(problem);
      algorithm_label = mapper->name();
    }
    if (!output_path.empty()) {
      save_mapping_csv(mapping, output_path);
      std::cout << "mapping written to " << output_path << "\n";
    }
    const LatencyReport report = evaluate(problem, mapping);

    std::cout << "algorithm: " << algorithm_label << " on " << mesh_side
              << "x" << mesh_side << " mesh\n\nthread placements:\n";
    for (std::size_t a = 0; a < workload.num_applications(); ++a) {
      const Application& app = workload.application(a);
      if (app.name == "idle") continue;
      std::cout << "  " << app.name << " (APL " << report.apl[a]
                << " cycles): tiles";
      for (std::size_t j = workload.first_thread(a);
           j < workload.last_thread(a); ++j) {
        std::cout << ' ' << mesh.paper_number(mapping.tile_of(j));
      }
      std::cout << "\n";
    }
    std::cout << "\nmax-APL " << report.max_apl << ", dev-APL "
              << report.dev_apl << ", g-APL " << report.g_apl << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
