// Model-vs-measurement walkthrough: maps a workload, predicts per-
// application latency with the analytic Section-II.C model, then replays
// the same mapping on the cycle-level wormhole network simulator and
// compares. Demonstrates the netsim + power public APIs.
#include <iostream>

#include "core/metrics.h"
#include "core/sss_mapper.h"
#include "netsim/sim.h"
#include "power/dsent_lite.h"
#include "workload/synthesis.h"

int main() {
  using namespace nocmap;

  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel chip(mesh, LatencyParams{});
  const Workload workload = synthesize_workload(parsec_config("C3"), 7);
  const ObmProblem problem(chip, workload);

  SortSelectSwapMapper mapper;
  const Mapping mapping = mapper.map(problem);
  const LatencyReport analytic = evaluate(problem, mapping);

  SimConfig cfg;
  cfg.warmup_cycles = 3000;
  cfg.measure_cycles = 80000;
  std::cout << "Replaying the SSS mapping of C3 on the cycle-level "
               "simulator (" << cfg.measure_cycles << " measured cycles)...\n\n";
  const SimResult measured = run_simulation(problem, mapping, cfg);

  std::cout << "Per-application APL [cycles]:\n";
  std::cout << "  application        analytic   measured   delta\n";
  for (std::size_t a = 0; a < workload.num_applications(); ++a) {
    std::printf("  %-16s %9.2f %10.2f %7.2f\n",
                workload.application(a).name.c_str(), analytic.apl[a],
                measured.apl[a], measured.apl[a] - analytic.apl[a]);
  }
  std::printf("\n  g-APL            %9.2f %10.2f\n", analytic.g_apl,
              measured.g_apl);
  std::printf("  max-APL          %9.2f %10.2f\n", analytic.max_apl,
              measured.max_apl);
  std::printf("  dev-APL          %9.3f %10.3f\n", analytic.dev_apl,
              measured.dev_apl);

  std::cout << "\nThe constant delta is the source-router pipeline + "
               "ejection cost the analytic\nmodel folds away; the *ordering* "
               "across applications is what the mapper optimizes.\n";

  // Power from the measured activity.
  const DsentLitePowerModel power;
  const PowerReport pr = power.report(measured.activity,
                                      measured.measured_cycles,
                                      mesh.num_tiles(),
                                      mesh_link_count(mesh));
  std::cout << "\nDSENT-lite power during the run:\n"
            << "  dynamic " << pr.dynamic_mw << " mW (buffers "
            << pr.buffer_mw << ", crossbars " << pr.crossbar_mw
            << ", arbiters " << pr.arbiter_mw << ", links " << pr.link_mw
            << ")\n  static  " << pr.static_mw << " mW\n"
            << "  packets measured: " << measured.packets_measured << "\n";
  return 0;
}
