// Dynamic remapping scenario (paper Section IV.B): because sort-select-swap
// runs in O(N^3) — milliseconds for a 64-tile chip — the OBM problem can be
// re-solved whenever applications start or finish. This example walks a
// timeline of application arrivals/departures, re-solving at each change,
// and shows that latency balance is maintained throughout while a Global
// policy degrades it.
#include <iostream>
#include <vector>

#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/remap.h"
#include "core/sss_mapper.h"

namespace {

using namespace nocmap;

Application make_app(const std::string& name, std::size_t threads,
                     double cache_rate, double memory_rate) {
  Application app;
  app.name = name;
  app.threads.assign(threads, ThreadProfile{cache_rate, memory_rate});
  // Mild heterogeneity inside the application so SAM has work to do.
  for (std::size_t j = 0; j < threads; ++j) {
    const double k =
        0.5 + static_cast<double>(j) / static_cast<double>(threads);
    app.threads[j].cache_rate *= k;
    app.threads[j].memory_rate *= k;
  }
  return app;
}

void report_phase(const std::string& phase, const ObmProblem& problem) {
  SortSelectSwapMapper sss;
  GlobalMapper global;
  const LatencyReport rs = evaluate(problem, sss.map(problem));
  const LatencyReport rg = evaluate(problem, global.map(problem));
  std::cout << phase << "\n"
            << "  SSS:    max-APL " << rs.max_apl << ", dev-APL "
            << rs.dev_apl << ", g-APL " << rs.g_apl << "\n"
            << "  Global: max-APL " << rg.max_apl << ", dev-APL "
            << rg.dev_apl << ", g-APL " << rg.g_apl << "\n\n";
}

}  // namespace

int main() {
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel chip(mesh, LatencyParams{});

  std::cout << "Dynamic multi-application timeline on an 8x8 CMP\n"
            << "(each phase re-solves OBM from the current rate statistics, "
               "as Section IV.B proposes)\n\n";

  // Phase 1: two applications share the chip; rest idle.
  const Application web = make_app("web", 24, 6.0, 0.8);
  const Application db = make_app("db", 16, 12.0, 2.0);
  report_phase("Phase 1: {web x24, db x16} + 24 idle tiles",
               ObmProblem(chip, Workload({web, db}).padded_to(64)));

  // Phase 2: a batch-analytics job arrives.
  const Application batch = make_app("batch", 24, 2.5, 0.3);
  report_phase("Phase 2: + {batch x24} (chip now full)",
               ObmProblem(chip, Workload({web, db, batch})));

  // Phase 3: db finishes; a latency-sensitive stream job takes its place.
  const Application stream = make_app("stream", 16, 9.0, 1.1);
  report_phase("Phase 3: db leaves, {stream x16} arrives",
               ObmProblem(chip, Workload({web, stream, batch})));

  // Phase 4: consolidation — only web remains.
  report_phase("Phase 4: only {web x24} remains",
               ObmProblem(chip, Workload({web}).padded_to(64)));

  std::cout << "Observation: SSS keeps dev-APL near zero at every phase; "
               "Global's dev-APL grows\nwith application-load disparity — "
               "the imbalance the paper sets out to fix.\n";

  // Migration-aware transition: moving from the Phase-2 placement to the
  // Phase-3 one without shuffling every thread (core/remap.h).
  const ObmProblem phase2(chip, Workload({web, db, batch}));
  const ObmProblem phase3(chip, Workload({web, stream, batch}));
  SortSelectSwapMapper sss;
  const Mapping before = sss.map(phase2);
  std::cout << "\nMigration-aware Phase 2 -> Phase 3 transition:\n";
  for (double lambda : {0.0, 2.0, 50.0}) {
    const RemapResult r = remap_balanced(phase3, before, lambda);
    std::cout << "  penalty " << lambda << " cycles: moved "
              << r.moved_threads << "/64 threads, max-APL "
              << r.report.max_apl << ", dev-APL " << r.report.dev_apl
              << "\n";
  }
  std::cout << "A small migration penalty avoids most moves while keeping "
               "the balance.\n";
  return 0;
}
