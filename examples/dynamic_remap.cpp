// Dynamic remapping through the online mapping service (DESIGN.md §13).
//
// The paper (Section IV.B) argues OBM is cheap enough to re-solve whenever
// applications start or finish. src/service/ productionizes that idea: a
// MappingService holds the chip state and turns each arrival / departure /
// phase-change event into one incremental remap decision, falling back to a
// bounded from-scratch re-solve only when quality degrades. This example
// walks the same timeline as before — web + db, batch arrives, db hands
// over to stream, consolidation — but as a literal event stream against one
// long-lived service, with a migration budget capping how many threads any
// single transition may move.
#include <iostream>
#include <vector>

#include "service/mapping_service.h"

namespace {

using namespace nocmap;

Application make_app(const std::string& name, std::size_t threads,
                     double cache_rate, double memory_rate) {
  Application app;
  app.name = name;
  app.threads.assign(threads, ThreadProfile{cache_rate, memory_rate});
  // Mild heterogeneity inside the application so the placement solves have
  // work to do.
  for (std::size_t j = 0; j < threads; ++j) {
    const double k =
        0.5 + static_cast<double>(j) / static_cast<double>(threads);
    app.threads[j].cache_rate *= k;
    app.threads[j].memory_rate *= k;
  }
  return app;
}

void show(const char* label, const service::Decision& d) {
  std::cout << "  " << label << ": "
            << (d.accepted ? "accepted" : "REJECTED") << ", objective "
            << d.objective << " (lower bound " << d.lower_bound
            << "), moved " << d.moved_threads << " resident thread(s)"
            << (d.used_fallback ? ", used fallback re-solve" : "")
            << (d.quality_degraded ? ", quality degraded" : "") << "\n";
}

}  // namespace

int main() {
  const Mesh mesh = Mesh::square(8);
  service::ServiceConfig config;
  config.migration_budget = 8;  // at most 8 thread migrations per event
  config.degradation_threshold = 1.25;
  service::MappingService engine(TileLatencyModel(mesh, LatencyParams{}),
                                 config);

  std::cout << "Dynamic multi-application timeline on an 8x8 CMP, driven "
               "through MappingService\n(budget 8 migrations/event, "
               "fallback threshold 1.25x the relaxed lower bound)\n\n";

  std::cout << "Phase 1: web x24 and db x16 arrive (24 tiles stay idle)\n";
  show("web  x24",
       engine.handle({service::EventKind::kArrival, 1,
                      make_app("web", 24, 6.0, 0.8)}));
  show("db   x16",
       engine.handle({service::EventKind::kArrival, 2,
                      make_app("db", 16, 12.0, 2.0)}));

  std::cout << "\nPhase 2: batch x24 arrives — the chip is now full\n";
  show("batch x24",
       engine.handle({service::EventKind::kArrival, 3,
                      make_app("batch", 24, 2.5, 0.3)}));
  show("denied x4 (no capacity)",
       engine.handle({service::EventKind::kArrival, 4,
                      make_app("late", 4, 1.0, 0.1)}));

  std::cout << "\nPhase 3: db departs, stream x16 takes its place\n";
  show("db leaves", engine.handle({service::EventKind::kDeparture, 2, {}}));
  show("stream x16",
       engine.handle({service::EventKind::kArrival, 5,
                      make_app("stream", 16, 9.0, 1.1)}));

  std::cout << "\nPhase 4: web doubles its request rates (phase change; "
               "same 24 threads)\n";
  show("web phase",
       engine.handle({service::EventKind::kPhaseChange, 1,
                      make_app("web", 24, 12.0, 1.6)}));

  std::cout << "\nPhase 5: consolidation — only web remains\n";
  show("batch leaves",
       engine.handle({service::EventKind::kDeparture, 3, {}}));
  show("stream leaves",
       engine.handle({service::EventKind::kDeparture, 5, {}}));

  std::cout << "\nFinal state: " << engine.residents().size()
            << " resident application(s) on " << engine.occupied_tiles()
            << "/" << engine.num_tiles() << " tiles, objective "
            << engine.objective() << "\n\n"
            << "Observation: every transition moved at most the budgeted "
               "number of threads, while\nthe objective stayed within the "
               "fallback threshold of the per-application lower\nbound — "
               "incremental decisions, batch-quality balance.\n";
  return 0;
}
