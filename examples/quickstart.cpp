// Quickstart: the minimal end-to-end use of the nocmap public API.
//
//   1. Describe the chip: an 8x8 mesh with corner memory controllers and
//      the analytic latency model.
//   2. Describe the workload: four 16-thread applications (here synthesized
//      from the paper's C1 configuration; real users would fill Application
//      structs from measured per-thread request rates).
//   3. Solve the OBM problem with sort-select-swap.
//   4. Inspect the mapping and its latency metrics.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/metrics.h"
#include "core/sss_mapper.h"
#include "workload/synthesis.h"

int main() {
  using namespace nocmap;

  // 1. The chip: mesh geometry + latency parameters => TC/TM arrays.
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel chip(mesh, LatencyParams{});

  // 2. The workload: four applications, 64 threads total (= tile count).
  const Workload workload =
      synthesize_workload(parsec_config("C1"), /*seed=*/2026);

  // 3. Solve.
  const ObmProblem problem(chip, workload);
  SortSelectSwapMapper mapper;
  const Mapping mapping = mapper.map(problem);

  // 4. Report.
  const LatencyReport report = evaluate(problem, mapping);
  std::cout << "sort-select-swap mapping on an 8x8 CMP\n\n";
  std::cout << "Tile grid (application ID per tile):\n";
  const auto tile_to_thread = mapping.tile_to_thread();
  for (std::uint32_t r = 0; r < mesh.rows(); ++r) {
    for (std::uint32_t c = 0; c < mesh.cols(); ++c) {
      const std::size_t app =
          workload.application_of(tile_to_thread[mesh.tile_at(r, c)]);
      std::cout << (app + 1) << (c + 1 < mesh.cols() ? ' ' : '\n');
    }
  }

  std::cout << "\nPer-application average packet latency:\n";
  for (std::size_t a = 0; a < workload.num_applications(); ++a) {
    std::cout << "  " << workload.application(a).name << ": "
              << report.apl[a] << " cycles\n";
  }
  std::cout << "\nmax-APL = " << report.max_apl
            << " cycles (the OBM objective)\n"
            << "dev-APL = " << report.dev_apl << " cycles\n"
            << "g-APL   = " << report.g_apl << " cycles\n";
  return 0;
}
