#include "core/bounds.h"

#include <gtest/gtest.h>

#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/sss_mapper.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

LatencyParams fig5_params() {
  return {.td_r = 3.0, .td_w = 1.0, .td_q = 0.0, .td_s = 1.0};
}

ObmProblem c1_problem() {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), 5));
}

TEST(Bounds, OptimalGaplMatchesGlobalMapper) {
  const ObmProblem p = c1_problem();
  GlobalMapper global;
  EXPECT_NEAR(optimal_gapl(p), evaluate(p, global.map(p)).g_apl, 1e-9);
}

TEST(Bounds, RelaxedMinAplIsAchievedOnFig5Instance) {
  // On the Figure-5 instance, the chip is symmetric and every application
  // identical, so the optimum achieves each application's relaxed minimum?
  // No — tiles are contested; but the relaxed bound must not exceed the
  // achieved optimal APL of 10.3375 and must be positive.
  const Mesh mesh = Mesh::square(4);
  std::vector<Application> apps(4);
  for (auto& a : apps) {
    a.threads = {{0.1, 0.0}, {0.2, 0.0}, {0.3, 0.0}, {0.4, 0.0}};
  }
  const ObmProblem p(TileLatencyModel(mesh, fig5_params()),
                     Workload(std::move(apps)));
  for (std::size_t a = 0; a < 4; ++a) {
    const double relaxed = relaxed_min_apl(p, a);
    EXPECT_GT(relaxed, 0.0);
    EXPECT_LE(relaxed, 10.3375 + 1e-9);
  }
}

TEST(Bounds, RelaxedMinAplZeroForIdleApp) {
  const Mesh mesh = Mesh::square(4);
  Application live;
  live.threads.assign(8, ThreadProfile{1.0, 0.1});
  const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                     Workload({live}).padded_to(16));
  EXPECT_DOUBLE_EQ(relaxed_min_apl(p, 1), 0.0);
}

TEST(Bounds, LowerBoundBelowEveryAchievableMaxApl) {
  const ObmProblem p = c1_problem();
  const double lb = max_apl_lower_bound(p);
  SortSelectSwapMapper sss;
  GlobalMapper global;
  MonteCarloMapper mc(2000, 3);
  EXPECT_LE(lb, evaluate(p, sss.map(p)).max_apl + 1e-9);
  EXPECT_LE(lb, evaluate(p, global.map(p)).max_apl + 1e-9);
  EXPECT_LE(lb, evaluate(p, mc.map(p)).max_apl + 1e-9);
}

TEST(Bounds, LowerBoundAtLeastOptimalGapl) {
  const ObmProblem p = c1_problem();
  EXPECT_GE(max_apl_lower_bound(p), optimal_gapl(p) - 1e-9);
}

TEST(Bounds, SssIsNearTheLowerBoundOnAllConfigs) {
  // Empirical tightness: SSS lands within 10% of the combined bound on the
  // standard configurations — the optimality-gap story of ext_optimality_gap.
  for (const auto& spec : parsec_table3_configs()) {
    const Mesh mesh = Mesh::square(8);
    const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                       synthesize_workload(spec, 7));
    SortSelectSwapMapper sss;
    const double achieved = evaluate(p, sss.map(p)).max_apl;
    const double lb = max_apl_lower_bound(p);
    EXPECT_LE(achieved, lb * 1.10) << spec.name;
  }
}

}  // namespace
}  // namespace nocmap
