#include "core/exact_solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/bounds.h"
#include "core/metrics.h"
#include "core/sss_mapper.h"
#include "util/rng.h"

namespace nocmap {
namespace {

LatencyParams fig5_params() {
  return {.td_r = 3.0, .td_w = 1.0, .td_q = 0.0, .td_s = 1.0};
}

/// Random small instance: 2x2..4x3 tiles, 2 applications.
ObmProblem random_small_problem(std::uint64_t seed, std::size_t n_threads) {
  NOCMAP_REQUIRE(n_threads % 2 == 0 && n_threads >= 4, "test helper misuse");
  Rng rng(seed);
  const auto side = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(n_threads))));
  // Use a rows x cols mesh with exactly n_threads tiles when possible.
  std::uint32_t rows = side;
  std::uint32_t cols = side;
  while (static_cast<std::size_t>(rows) * cols > n_threads && rows > 2) {
    --rows;
  }
  if (static_cast<std::size_t>(rows) * cols != n_threads) {
    rows = 2;
    cols = static_cast<std::uint32_t>(n_threads / 2);
  }
  const Mesh mesh(rows, cols, {0});
  std::vector<Application> apps(2);
  for (auto& a : apps) {
    a.threads.resize(n_threads / 2);
    for (auto& t : a.threads) {
      t = {rng.uniform(0.1, 10.0), rng.uniform(0.0, 2.0)};
    }
  }
  return ObmProblem(TileLatencyModel(mesh, fig5_params()),
                    Workload(std::move(apps)));
}

/// Ground truth by full enumeration (only for tiny n).
double brute_force_max_apl(const ObmProblem& p) {
  const std::size_t n = p.num_threads();
  std::vector<TileId> perm(n);
  std::iota(perm.begin(), perm.end(), TileId{0});
  double best = std::numeric_limits<double>::infinity();
  do {
    Mapping m;
    m.thread_to_tile = perm;
    best = std::min(best, evaluate(p, m).max_apl);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(ExactSolver, MatchesBruteForceOnTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const ObmProblem p = random_small_problem(seed, 6);
    const ExactResult exact = solve_obm_exact(p);
    EXPECT_TRUE(exact.proven_optimal);
    EXPECT_TRUE(exact.mapping.is_valid_permutation(6));
    EXPECT_NEAR(exact.max_apl, brute_force_max_apl(p), 1e-9) << seed;
    EXPECT_NEAR(evaluate(p, exact.mapping).max_apl, exact.max_apl, 1e-9);
  }
}

TEST(ExactSolver, RespectsLowerBound) {
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    const ObmProblem p = random_small_problem(seed, 8);
    const ExactResult exact = solve_obm_exact(p);
    EXPECT_TRUE(exact.proven_optimal);
    EXPECT_GE(exact.max_apl, max_apl_lower_bound(p) - 1e-9);
  }
}

TEST(ExactSolver, NeverWorseThanSss) {
  for (std::uint64_t seed = 20; seed <= 25; ++seed) {
    const ObmProblem p = random_small_problem(seed, 10);
    const ExactResult exact = solve_obm_exact(p);
    SortSelectSwapMapper sss;
    const double sss_obj = evaluate(p, sss.map(p)).max_apl;
    EXPECT_LE(exact.max_apl, sss_obj + 1e-9) << seed;
  }
}

TEST(ExactSolver, Fig5InstanceOptimumIsPaperValue) {
  const Mesh mesh = Mesh::square(4);
  std::vector<Application> apps(4);
  for (auto& a : apps) {
    a.threads = {{0.1, 0.0}, {0.2, 0.0}, {0.3, 0.0}, {0.4, 0.0}};
  }
  const ObmProblem p(TileLatencyModel(mesh, fig5_params()),
                     Workload(std::move(apps)));
  // 16 threads is at the edge of exact tractability; bound the node budget
  // and accept the incumbent if the proof does not finish — the SSS warm
  // start is already optimal on this instance, so the value must be exact
  // either way.
  ExactSolverOptions opt;
  opt.max_nodes = 5'000'000;
  const ExactResult exact = solve_obm_exact(p, opt);
  EXPECT_NEAR(exact.max_apl, 10.3375, 1e-9);
  EXPECT_TRUE(exact.mapping.is_valid_permutation(16));
}

TEST(ExactSolver, SizeGuard) {
  const Mesh mesh = Mesh::square(8);
  Application a;
  a.threads.assign(64, ThreadProfile{1.0, 0.1});
  const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                     Workload({a}));
  EXPECT_THROW(solve_obm_exact(p), Error);
}

TEST(ExactSolver, NodeBudgetReportsIncompleteness) {
  const ObmProblem p = random_small_problem(33, 12);
  ExactSolverOptions opt;
  opt.max_nodes = 10;  // absurdly small
  const ExactResult exact = solve_obm_exact(p, opt);
  EXPECT_FALSE(exact.proven_optimal);
  // Incumbent (SSS warm start) must still be a valid mapping.
  EXPECT_TRUE(exact.mapping.is_valid_permutation(12));
  EXPECT_NEAR(evaluate(p, exact.mapping).max_apl, exact.max_apl, 1e-9);
}

TEST(ExactSolver, ReportsNodeCount) {
  const ObmProblem p = random_small_problem(44, 8);
  const ExactResult exact = solve_obm_exact(p);
  EXPECT_GT(exact.nodes_explored, 0u);
}

}  // namespace
}  // namespace nocmap
