#include <gtest/gtest.h>

#include <memory>

#include "core/annealing_mapper.h"
#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/random_mapper.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem make_problem(const std::string& config, std::uint64_t seed) {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config(config), seed));
}

TEST(AllMappers, ProduceValidPermutations) {
  const ObmProblem p = make_problem("C1", 1);
  std::vector<std::unique_ptr<Mapper>> mappers;
  mappers.push_back(std::make_unique<GlobalMapper>());
  mappers.push_back(std::make_unique<RandomMapper>(1));
  mappers.push_back(std::make_unique<MonteCarloMapper>(500, 1));
  mappers.push_back(std::make_unique<AnnealingMapper>(
      AnnealingParams{.iterations = 2000, .seed = 1}));
  for (auto& m : mappers) {
    const Mapping result = m->map(p);
    EXPECT_TRUE(result.is_valid_permutation(p.num_threads())) << m->name();
  }
}

TEST(GlobalMapper, MinimizesGapl) {
  const ObmProblem p = make_problem("C1", 2);
  GlobalMapper global;
  const double g_opt = evaluate(p, global.map(p)).g_apl;
  // No other tested mapping may achieve a lower g-APL (Global is exact).
  RandomMapper random(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(g_opt, evaluate(p, random.map(p)).g_apl + 1e-9);
  }
  MonteCarloMapper mc(1000, 3);
  EXPECT_LE(g_opt, evaluate(p, mc.map(p)).g_apl + 1e-9);
}

TEST(GlobalMapper, Deterministic) {
  const ObmProblem p = make_problem("C2", 3);
  GlobalMapper a, b;
  EXPECT_EQ(a.map(p).thread_to_tile, b.map(p).thread_to_tile);
}

// The paper's Section II.D phenomenon: Global improves g-APL over random
// but worsens max-APL and dev-APL.
TEST(GlobalMapper, ExacerbatesImbalance) {
  const ObmProblem p = make_problem("C1", 4);
  GlobalMapper global;
  const LatencyReport g = evaluate(p, global.map(p));

  RandomMapper random(11);
  double avg_g = 0.0, avg_max = 0.0, avg_dev = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const LatencyReport r = evaluate(p, random.map(p));
    avg_g += r.g_apl;
    avg_max += r.max_apl;
    avg_dev += r.dev_apl;
  }
  avg_g /= trials;
  avg_max /= trials;
  avg_dev /= trials;

  EXPECT_LT(g.g_apl, avg_g);      // better overall latency...
  EXPECT_GT(g.max_apl, avg_max);  // ...but worse worst-application latency
  EXPECT_GT(g.dev_apl, avg_dev);  // ...and worse balance
}

TEST(RandomMapper, SuccessiveCallsDiffer) {
  const ObmProblem p = make_problem("C1", 5);
  RandomMapper random(13);
  const Mapping a = random.map(p);
  const Mapping b = random.map(p);
  EXPECT_NE(a.thread_to_tile, b.thread_to_tile);
}

TEST(MonteCarloMapper, MoreTrialsNeverWorse) {
  const ObmProblem p = make_problem("C3", 6);
  // With a shared seed, the first 200 trials of the 2000-trial search are
  // the same shards, so the 2000-trial result can only be better or equal.
  MonteCarloMapper small(256, 9, ParallelConfig::serial_config());
  MonteCarloMapper large(2048, 9, ParallelConfig::serial_config());
  const double small_obj = evaluate(p, small.map(p)).max_apl;
  const double large_obj = evaluate(p, large.map(p)).max_apl;
  EXPECT_LE(large_obj, small_obj + 1e-9);
}

TEST(MonteCarloMapper, ParallelMatchesSequential) {
  const ObmProblem p = make_problem("C4", 7);
  MonteCarloMapper seq(2000, 21, ParallelConfig::serial_config());
  MonteCarloMapper par(2000, 21, ParallelConfig{4});
  EXPECT_EQ(seq.map(p).thread_to_tile, par.map(p).thread_to_tile);
}

TEST(MonteCarloMapper, BeatsSingleRandomOnAverage) {
  const ObmProblem p = make_problem("C1", 8);
  MonteCarloMapper mc(2000, 5);
  const double mc_obj = evaluate(p, mc.map(p)).max_apl;
  RandomMapper random(17);
  double avg_random = 0.0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    avg_random += evaluate(p, random.map(p)).max_apl;
  }
  EXPECT_LT(mc_obj, avg_random / trials);
}

TEST(AnnealingMapper, ImprovesOverRandomAverage) {
  const ObmProblem p = make_problem("C1", 9);
  AnnealingMapper sa(AnnealingParams{.iterations = 20000, .seed = 3});
  const double sa_obj = evaluate(p, sa.map(p)).max_apl;
  RandomMapper random(19);
  double avg_random = 0.0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    avg_random += evaluate(p, random.map(p)).max_apl;
  }
  EXPECT_LT(sa_obj, avg_random / trials);
}

TEST(AnnealingMapper, MoreIterationsHelpOnAverage) {
  // SA is stochastic; compare averages over seeds rather than single runs.
  const ObmProblem p = make_problem("C5", 10);
  double short_total = 0.0, long_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    AnnealingMapper quick(AnnealingParams{.iterations = 500, .seed = seed});
    AnnealingMapper thorough(
        AnnealingParams{.iterations = 50000, .seed = seed});
    short_total += evaluate(p, quick.map(p)).max_apl;
    long_total += evaluate(p, thorough.map(p)).max_apl;
  }
  EXPECT_LT(long_total, short_total);
}

TEST(AnnealingMapper, DeterministicForSeed) {
  const ObmProblem p = make_problem("C6", 11);
  AnnealingMapper a(AnnealingParams{.iterations = 5000, .seed = 77});
  AnnealingMapper b(AnnealingParams{.iterations = 5000, .seed = 77});
  EXPECT_EQ(a.map(p).thread_to_tile, b.map(p).thread_to_tile);
}

TEST(MapperNames, MatchPaperLabels) {
  EXPECT_EQ(GlobalMapper().name(), "Global");
  EXPECT_EQ(RandomMapper().name(), "Random");
  EXPECT_EQ(MonteCarloMapper().name(), "MC");
  EXPECT_EQ(AnnealingMapper().name(), "SA");
}

}  // namespace
}  // namespace nocmap
