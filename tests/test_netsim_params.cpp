// Network micro-architecture parameter sweeps: the simulator must stay
// correct (conservation, drain, latency ordering) across VC counts, buffer
// depths, link latencies and pipeline depths — not just the paper's
// Table-2 point.
#include <gtest/gtest.h>

#include "netsim/sim.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

struct ParamCase {
  std::uint32_t vcs;
  std::uint32_t depth;
  std::uint32_t link_latency;
  std::uint32_t pipeline;
};

std::string case_name(const ::testing::TestParamInfo<ParamCase>& info) {
  const ParamCase& c = info.param;
  return "vc" + std::to_string(c.vcs) + "_d" + std::to_string(c.depth) +
         "_l" + std::to_string(c.link_latency) + "_p" +
         std::to_string(c.pipeline);
}

class NetParamSweep : public ::testing::TestWithParam<ParamCase> {
 protected:
  NetworkConfig config() const {
    const ParamCase& c = GetParam();
    NetworkConfig cfg;
    cfg.vcs_per_port = c.vcs;
    cfg.buffer_depth = c.depth;
    cfg.link_latency = c.link_latency;
    cfg.router_pipeline = c.pipeline;
    return cfg;
  }
};

TEST_P(NetParamSweep, AllToAllConserves) {
  const Mesh mesh = Mesh::square(4);
  Network net(mesh, config());
  PacketId id = 1;
  std::uint64_t flits = 0;
  for (TileId src = 0; src < 16; ++src) {
    for (TileId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      const std::uint32_t f = (src * 3 + dst) % 2 ? 1 : 5;
      PacketInfo p;
      p.id = id++;
      p.src = src;
      p.dst = dst;
      p.flits = f;
      net.inject_packet(p);
      flits += f;
    }
  }
  std::size_t ejected = 0;
  for (Cycle c = 0; c < 100000 && net.packets_in_flight() > 0; ++c) {
    net.step();
    ejected += net.take_ejections().size();
  }
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(ejected, id - 1);
  EXPECT_EQ(net.flits_ejected(), flits);
}

TEST_P(NetParamSweep, UnloadedLatencyMatchesParameters) {
  const Mesh mesh = Mesh::square(4);
  const ParamCase& c = GetParam();
  Network a(mesh, config());
  PacketInfo p;
  p.id = 1;
  p.src = mesh.tile_at(0, 0);
  p.dst = mesh.tile_at(0, 2);
  p.flits = 1;
  a.inject_packet(p);
  Cycle latency = 0;
  for (Cycle cyc = 0; cyc < 1000 && a.packets_in_flight() > 0; ++cyc) {
    a.step();
    for (const auto& e : a.take_ejections()) latency = e.latency();
  }
  // 2 hops: (hops+1) routers x pipeline + hops x link + 1 cycle ejection.
  const Cycle expected = 3 * c.pipeline + 2 * c.link_latency + 1;
  EXPECT_EQ(latency, expected);
}

TEST_P(NetParamSweep, SimulationRunsAndDrains) {
  const Mesh mesh = Mesh::square(4);
  Application a;
  a.name = "a";
  a.threads.assign(16, ThreadProfile{4.0, 0.5});
  const ObmProblem problem(TileLatencyModel(mesh, LatencyParams{}),
                           Workload({a}));
  SimConfig cfg;
  cfg.warmup_cycles = 500;
  cfg.measure_cycles = 8000;
  cfg.network = config();
  const SimResult r = run_simulation(problem, problem.identity_mapping(),
                                     cfg);
  EXPECT_FALSE(r.drain_incomplete);
  EXPECT_GT(r.packets_measured, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NetParamSweep,
    ::testing::Values(ParamCase{1, 1, 1, 1}, ParamCase{1, 5, 1, 3},
                      ParamCase{2, 2, 1, 3}, ParamCase{3, 5, 1, 3},
                      ParamCase{3, 5, 2, 3}, ParamCase{4, 8, 1, 2},
                      ParamCase{8, 5, 3, 4}, ParamCase{2, 1, 2, 1}),
    case_name);

// Link counting feeds link_utilization's denominator. Torus wrap links are
// distinct only when the wrapped dimension has >= 3 tiles: at width 2 the
// wrap joins the same two tiles as the existing mesh link (a double-counted
// pair would silently deflate utilization), and at width 1 it would be a
// self-loop.
TEST(NetParams, DirectedLinkCountHandlesDegenerateTorusWidths) {
  // Plain meshes: 2 * (r*(c-1) + c*(r-1)).
  EXPECT_EQ(num_directed_links(Mesh(4, 4, {0})), 48u);
  EXPECT_EQ(num_directed_links(Mesh(2, 4, {0})), 20u);
  EXPECT_EQ(num_directed_links(Mesh(1, 4, {0})), 6u);

  // Full-size torus: one extra wrap per row and per column.
  EXPECT_EQ(num_directed_links(Mesh(4, 4, {0}, Wraparound::kTorus)), 64u);
  EXPECT_EQ(num_directed_links(Mesh(3, 3, {0}, Wraparound::kTorus)), 36u);

  // Degenerate widths: a 2-wide dimension's wrap duplicates an existing
  // link; a 1-wide dimension's wrap is a self-loop. Neither adds links.
  EXPECT_EQ(num_directed_links(Mesh(2, 4, {0}, Wraparound::kTorus)), 24u);
  EXPECT_EQ(num_directed_links(Mesh(4, 2, {0}, Wraparound::kTorus)), 24u);
  EXPECT_EQ(num_directed_links(Mesh(2, 2, {0}, Wraparound::kTorus)), 8u);
  EXPECT_EQ(num_directed_links(Mesh(1, 4, {0}, Wraparound::kTorus)), 8u);
  EXPECT_EQ(num_directed_links(Mesh(1, 2, {0}, Wraparound::kTorus)), 2u);
}

// Deeper buffers / more VCs must not hurt latency under contention.
TEST(NetParams, MoreBuffersHelpUnderLoad) {
  const Mesh mesh = Mesh::square(4);
  Application a;
  a.name = "hot";
  a.threads.assign(16, ThreadProfile{40.0, 4.0});
  const ObmProblem problem(TileLatencyModel(mesh, LatencyParams{}),
                           Workload({a}));
  auto g_apl_with = [&](std::uint32_t vcs, std::uint32_t depth) {
    SimConfig cfg;
    cfg.warmup_cycles = 1000;
    cfg.measure_cycles = 15000;
    cfg.network.vcs_per_port = vcs;
    cfg.network.buffer_depth = depth;
    return run_simulation(problem, problem.identity_mapping(), cfg).g_apl;
  };
  const double tight = g_apl_with(1, 1);
  const double roomy = g_apl_with(4, 8);
  EXPECT_LT(roomy, tight);
}

}  // namespace
}  // namespace nocmap
