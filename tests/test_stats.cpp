#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace nocmap {
namespace {

TEST(Mean, Basic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Mean, Empty) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stddev, PopulationKnownValue) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stddev_population(xs), 2.0);
}

TEST(Stddev, SampleVsPopulation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_NEAR(stddev_population(xs), std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_NEAR(stddev_sample(xs), 1.0, 1e-12);
}

TEST(Stddev, ConstantIsZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(stddev_population(xs), 0.0);
  EXPECT_DOUBLE_EQ(stddev_sample(xs), 0.0);
}

TEST(Stddev, DegenerateSizes) {
  EXPECT_DOUBLE_EQ(stddev_population({}), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(stddev_sample(one), 0.0);
}

TEST(MinMax, Basic) {
  const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(MinMax, EmptyThrows) {
  EXPECT_THROW(min_value({}), Error);
  EXPECT_THROW(max_value({}), Error);
}

TEST(MinToMaxRatio, Basic) {
  const std::vector<double> xs{2.0, 4.0};
  EXPECT_DOUBLE_EQ(min_to_max_ratio(xs), 0.5);
}

TEST(MinToMaxRatio, Degenerate) {
  EXPECT_DOUBLE_EQ(min_to_max_ratio({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(min_to_max_ratio(zeros), 0.0);
}

TEST(RunningStats, MatchesBatchFormulas) {
  Rng rng(7);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 11.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev_population(), stddev_population(xs), 1e-9);
  EXPECT_NEAR(rs.stddev_sample(), stddev_sample(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
  EXPECT_NEAR(rs.sum(), mean(xs) * 1000.0, 1e-6);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev_population(), 0.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(9);
  RunningStats a, b, combined;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    a.add(x);
    combined.add(x);
  }
  for (int i = 0; i < 700; ++i) {
    const double x = rng.normal(-1.0, 0.5);
    b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance_population(), combined.variance_population(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double m = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), m);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), m);
}

TEST(InverseNormalCdf, KnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(inverse_normal_cdf(0.841344746), 1.0, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.158655254), -1.0, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.97724987), 2.0, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.0013498980), -3.0, 1e-5);
}

TEST(InverseNormalCdf, Symmetry) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(inverse_normal_cdf(p), -inverse_normal_cdf(1.0 - p), 1e-8);
  }
}

TEST(InverseNormalCdf, DomainChecked) {
  EXPECT_THROW(inverse_normal_cdf(0.0), Error);
  EXPECT_THROW(inverse_normal_cdf(1.0), Error);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 4.0);
}

TEST(Histogram, PercentileUniform) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 1.5);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace nocmap
