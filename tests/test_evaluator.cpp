#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "util/rng.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem c1_problem() {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), 17));
}

Mapping random_mapping(std::size_t n, Rng& rng) {
  Mapping m;
  for (std::size_t v : random_permutation(n, rng)) {
    m.thread_to_tile.push_back(static_cast<TileId>(v));
  }
  return m;
}

TEST(Evaluator, InitialStateMatchesEvaluate) {
  const ObmProblem p = c1_problem();
  Rng rng(1);
  const Mapping m = random_mapping(p.num_threads(), rng);
  const MappingEvaluator eval(p, m);
  const LatencyReport r = evaluate(p, m);
  EXPECT_NEAR(eval.max_apl(), r.max_apl, 1e-9);
  EXPECT_NEAR(eval.g_apl(), r.g_apl, 1e-9);
  for (std::size_t i = 0; i < p.num_applications(); ++i) {
    EXPECT_NEAR(eval.apl(i), r.apl[i], 1e-9);
  }
}

TEST(Evaluator, InvalidInitialMappingRejected) {
  const ObmProblem p = c1_problem();
  Mapping bad;
  bad.thread_to_tile.assign(p.num_threads(), 0);
  EXPECT_THROW(MappingEvaluator(p, bad), Error);
}

TEST(Evaluator, TileToThreadConsistent) {
  const ObmProblem p = c1_problem();
  Rng rng(2);
  const Mapping m = random_mapping(p.num_threads(), rng);
  const MappingEvaluator eval(p, m);
  for (std::size_t j = 0; j < p.num_threads(); ++j) {
    EXPECT_EQ(eval.thread_on(m.tile_of(j)), j);
  }
}

TEST(Evaluator, SwapUpdatesMapping) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  eval.swap_threads(3, 9);
  EXPECT_EQ(eval.mapping().tile_of(3), 9u);
  EXPECT_EQ(eval.mapping().tile_of(9), 3u);
  EXPECT_EQ(eval.thread_on(9), 3u);
  EXPECT_EQ(eval.thread_on(3), 9u);
}

TEST(Evaluator, SwapSelfIsNoOp) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const double before = eval.max_apl();
  eval.swap_threads(5, 5);
  EXPECT_DOUBLE_EQ(eval.max_apl(), before);
  EXPECT_EQ(eval.mapping().tile_of(5), 5u);
}

TEST(Evaluator, SwapIsInvolution) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const double before = eval.max_apl();
  eval.swap_threads(1, 50);
  eval.swap_threads(1, 50);
  EXPECT_NEAR(eval.max_apl(), before, 1e-9);
  EXPECT_EQ(eval.mapping().tile_of(1), 1u);
}

// Property sweep: after many random swaps the incremental state must still
// agree with a from-scratch recomputation.
class EvaluatorDriftProperty : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorDriftProperty, NoDriftAfterRandomSwaps) {
  const ObmProblem p = c1_problem();
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  MappingEvaluator eval(p, random_mapping(p.num_threads(), rng));
  const auto n = static_cast<std::uint32_t>(p.num_threads());
  for (int step = 0; step < 500; ++step) {
    eval.swap_threads(rng.uniform_u32(n), rng.uniform_u32(n));
  }
  EXPECT_NEAR(eval.max_apl(), eval.recomputed_max_apl(), 1e-8);
  EXPECT_TRUE(eval.mapping().is_valid_permutation(p.num_threads()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorDriftProperty,
                         ::testing::Range(0, 10));

TEST(Evaluator, ApplyGroupPermutesWithinGroup) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const std::vector<std::size_t> threads{2, 7, 11, 30};
  const std::vector<TileId> rotated{7, 11, 30, 2};  // rotate assignments
  eval.apply_group(threads, rotated);
  EXPECT_EQ(eval.mapping().tile_of(2), 7u);
  EXPECT_EQ(eval.mapping().tile_of(7), 11u);
  EXPECT_EQ(eval.mapping().tile_of(11), 30u);
  EXPECT_EQ(eval.mapping().tile_of(30), 2u);
  EXPECT_TRUE(eval.mapping().is_valid_permutation(p.num_threads()));
  EXPECT_NEAR(eval.max_apl(), eval.recomputed_max_apl(), 1e-9);
}

TEST(Evaluator, ApplyGroupRevert) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const double before = eval.max_apl();
  const std::vector<std::size_t> threads{1, 2, 3, 4};
  const std::vector<TileId> perm{4, 3, 2, 1};
  const std::vector<TileId> original{1, 2, 3, 4};
  eval.apply_group(threads, perm);
  eval.apply_group(threads, original);
  EXPECT_NEAR(eval.max_apl(), before, 1e-9);
}

TEST(Evaluator, ApplyGroupArityChecked) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const std::vector<std::size_t> threads{1, 2};
  const std::vector<TileId> tiles{1};
  EXPECT_THROW(eval.apply_group(threads, tiles), Error);
}

TEST(Evaluator, ThreadCostMatchesFormula) {
  const ObmProblem p = c1_problem();
  const MappingEvaluator eval(p, p.identity_mapping());
  const ThreadProfile& t = p.workload().thread(5);
  const double expected = t.cache_rate * p.model().tc(20) +
                          t.memory_rate * p.model().tm(20);
  EXPECT_NEAR(eval.thread_cost(5, 20), expected, 1e-12);
}

TEST(Evaluator, SwapAcrossAppsChangesBothApls) {
  const ObmProblem p = c1_problem();
  // Threads 0 and 63 are in different applications (4 x 16 layout).
  ASSERT_NE(p.workload().application_of(0), p.workload().application_of(63));
  MappingEvaluator eval(p, p.identity_mapping());
  const double a0 = eval.apl(p.workload().application_of(0));
  const double a3 = eval.apl(p.workload().application_of(63));
  eval.swap_threads(0, 63);
  // Tiles 0 (corner) and 63 (corner) have equal TC but the threads' rates
  // differ, so at least the numerators moved; verify against recompute.
  EXPECT_NEAR(eval.max_apl(), eval.recomputed_max_apl(), 1e-9);
  // And a swap between corner and center tiles definitely changes APLs.
  eval.swap_threads(0, eval.thread_on(27));
  const double b0 = eval.apl(p.workload().application_of(0));
  EXPECT_NE(a0, b0);
  (void)a3;
}

}  // namespace
}  // namespace nocmap
