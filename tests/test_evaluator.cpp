#include "core/evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/metrics.h"
#include "util/rng.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem c1_problem() {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), 17));
}

Mapping random_mapping(std::size_t n, Rng& rng) {
  Mapping m;
  for (std::size_t v : random_permutation(n, rng)) {
    m.thread_to_tile.push_back(static_cast<TileId>(v));
  }
  return m;
}

TEST(Evaluator, InitialStateMatchesEvaluate) {
  const ObmProblem p = c1_problem();
  Rng rng(1);
  const Mapping m = random_mapping(p.num_threads(), rng);
  const MappingEvaluator eval(p, m);
  const LatencyReport r = evaluate(p, m);
  EXPECT_NEAR(eval.max_apl(), r.max_apl, 1e-9);
  EXPECT_NEAR(eval.g_apl(), r.g_apl, 1e-9);
  for (std::size_t i = 0; i < p.num_applications(); ++i) {
    EXPECT_NEAR(eval.apl(i), r.apl[i], 1e-9);
  }
}

TEST(Evaluator, InvalidInitialMappingRejected) {
  const ObmProblem p = c1_problem();
  Mapping bad;
  bad.thread_to_tile.assign(p.num_threads(), 0);
  EXPECT_THROW(MappingEvaluator(p, bad), Error);
}

TEST(Evaluator, TileToThreadConsistent) {
  const ObmProblem p = c1_problem();
  Rng rng(2);
  const Mapping m = random_mapping(p.num_threads(), rng);
  const MappingEvaluator eval(p, m);
  for (std::size_t j = 0; j < p.num_threads(); ++j) {
    EXPECT_EQ(eval.thread_on(m.tile_of(j)), j);
  }
}

TEST(Evaluator, SwapUpdatesMapping) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  eval.swap_threads(3, 9);
  EXPECT_EQ(eval.mapping().tile_of(3), 9u);
  EXPECT_EQ(eval.mapping().tile_of(9), 3u);
  EXPECT_EQ(eval.thread_on(9), 3u);
  EXPECT_EQ(eval.thread_on(3), 9u);
}

TEST(Evaluator, SwapSelfIsNoOp) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const double before = eval.max_apl();
  eval.swap_threads(5, 5);
  EXPECT_DOUBLE_EQ(eval.max_apl(), before);
  EXPECT_EQ(eval.mapping().tile_of(5), 5u);
}

TEST(Evaluator, SwapIsInvolution) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const double before = eval.max_apl();
  eval.swap_threads(1, 50);
  eval.swap_threads(1, 50);
  EXPECT_NEAR(eval.max_apl(), before, 1e-9);
  EXPECT_EQ(eval.mapping().tile_of(1), 1u);
}

// Property sweep: after many random swaps the incremental state must still
// agree with a from-scratch recomputation.
class EvaluatorDriftProperty : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorDriftProperty, NoDriftAfterRandomSwaps) {
  const ObmProblem p = c1_problem();
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  MappingEvaluator eval(p, random_mapping(p.num_threads(), rng));
  const auto n = static_cast<std::uint32_t>(p.num_threads());
  for (int step = 0; step < 500; ++step) {
    eval.swap_threads(rng.uniform_u32(n), rng.uniform_u32(n));
  }
  EXPECT_NEAR(eval.max_apl(), eval.recomputed_max_apl(), 1e-8);
  EXPECT_TRUE(eval.mapping().is_valid_permutation(p.num_threads()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorDriftProperty,
                         ::testing::Range(0, 10));

TEST(Evaluator, ApplyGroupPermutesWithinGroup) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const std::vector<std::size_t> threads{2, 7, 11, 30};
  const std::vector<TileId> rotated{7, 11, 30, 2};  // rotate assignments
  eval.apply_group(threads, rotated);
  EXPECT_EQ(eval.mapping().tile_of(2), 7u);
  EXPECT_EQ(eval.mapping().tile_of(7), 11u);
  EXPECT_EQ(eval.mapping().tile_of(11), 30u);
  EXPECT_EQ(eval.mapping().tile_of(30), 2u);
  EXPECT_TRUE(eval.mapping().is_valid_permutation(p.num_threads()));
  EXPECT_NEAR(eval.max_apl(), eval.recomputed_max_apl(), 1e-9);
}

TEST(Evaluator, ApplyGroupRevert) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const double before = eval.max_apl();
  const std::vector<std::size_t> threads{1, 2, 3, 4};
  const std::vector<TileId> perm{4, 3, 2, 1};
  const std::vector<TileId> original{1, 2, 3, 4};
  eval.apply_group(threads, perm);
  eval.apply_group(threads, original);
  EXPECT_NEAR(eval.max_apl(), before, 1e-9);
}

TEST(Evaluator, ApplyGroupArityChecked) {
  const ObmProblem p = c1_problem();
  MappingEvaluator eval(p, p.identity_mapping());
  const std::vector<std::size_t> threads{1, 2};
  const std::vector<TileId> tiles{1};
  EXPECT_THROW(eval.apply_group(threads, tiles), Error);
}

TEST(Evaluator, ThreadCostMatchesFormula) {
  const ObmProblem p = c1_problem();
  const MappingEvaluator eval(p, p.identity_mapping());
  const ThreadProfile& t = p.workload().thread(5);
  const double expected = t.cache_rate * p.model().tc(20) +
                          t.memory_rate * p.model().tm(20);
  EXPECT_NEAR(eval.thread_cost(5, 20), expected, 1e-12);
}

// ---------------------------------------------------------------------------
// Long mixed-operation property sweeps. These lock in the purity invariant
// the parallel SSS sweep depends on: evaluator state must be a function of
// the current mapping only, never of the mutation history that produced it.

/// One random mutation: a two-thread swap or a small group permutation.
void random_op(MappingEvaluator& eval, std::size_t n, Rng& rng) {
  if (rng.uniform_u32(2) == 0) {
    eval.swap_threads(rng.uniform_u32(static_cast<std::uint32_t>(n)),
                      rng.uniform_u32(static_cast<std::uint32_t>(n)));
    return;
  }
  const std::size_t k = 3 + rng.uniform_u32(3);  // group of 3..5 threads
  const std::vector<std::size_t> perm = random_permutation(n, rng);
  const std::vector<std::size_t> threads(perm.begin(),
                                         perm.begin() +
                                             static_cast<std::ptrdiff_t>(k));
  std::vector<TileId> tiles(k);
  for (std::size_t i = 0; i < k; ++i) {
    tiles[i] = eval.mapping().tile_of(threads[i]);
  }
  // Rotate by a random amount so the group actually moves.
  std::rotate(tiles.begin(),
              tiles.begin() + 1 + rng.uniform_u32(static_cast<std::uint32_t>(
                                      k - 1)),
              tiles.end());
  eval.apply_group(threads, tiles);
}

void run_mixed_op_sweep(const ObmProblem& p, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = p.num_threads();
  Mapping start;
  for (std::size_t v : random_permutation(n, rng)) {
    start.thread_to_tile.push_back(static_cast<TileId>(v));
  }
  MappingEvaluator eval(p, start);
  for (int step = 1; step <= 10000; ++step) {
    random_op(eval, n, rng);
    if (step % 500 == 0) {
      // Incremental objective vs. a full from-scratch evaluation.
      const LatencyReport r = evaluate(p, eval.mapping());
      ASSERT_NEAR(eval.objective(), r.objective, 1e-9) << "step " << step;
      ASSERT_NEAR(eval.max_apl(), r.max_apl, 1e-9) << "step " << step;
    }
  }
  ASSERT_TRUE(eval.mapping().is_valid_permutation(n));
  // Purity: the state must be bit-identical to a fresh evaluator built from
  // the final mapping — 10k mutations may leave no floating-point residue.
  const MappingEvaluator fresh(p, eval.mapping());
  EXPECT_EQ(eval.objective(), fresh.objective());
  EXPECT_EQ(eval.max_apl(), fresh.max_apl());
  EXPECT_EQ(eval.g_apl(), fresh.g_apl());
  for (std::size_t i = 0; i < p.num_applications(); ++i) {
    EXPECT_EQ(eval.apl(i), fresh.apl(i)) << "app " << i;
  }
}

TEST(EvaluatorProperty, TenThousandMixedOpsNoDrift) {
  run_mixed_op_sweep(c1_problem(), 2024);
}

TEST(EvaluatorProperty, TenThousandMixedOpsWeightedQos) {
  // Weighted objective max_i w_i·APL_i must track the recomputed report
  // through the same mutation storm.
  const Mesh mesh = Mesh::square(8);
  ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
               synthesize_workload(parsec_config("C4"), 23),
               {2.0, 0.5, 1.0, 1.25});
  ASSERT_TRUE(p.is_weighted());
  run_mixed_op_sweep(p, 777);
}

TEST(EvaluatorProperty, CachedAndUncachedEvaluatorsAgree) {
  const ObmProblem p = c1_problem();
  const ThreadCostCache cache(p.workload(), p.model());
  Rng rng(9);
  const Mapping m = random_mapping(p.num_threads(), rng);
  MappingEvaluator plain(p, m);
  MappingEvaluator cached(p, m, cache);
  Rng ops_a(55), ops_b(55);
  for (int step = 0; step < 2000; ++step) {
    random_op(plain, p.num_threads(), ops_a);
    random_op(cached, p.num_threads(), ops_b);
    ASSERT_EQ(plain.mapping().thread_to_tile, cached.mapping().thread_to_tile);
  }
  // The cache stores exactly the values the uncached path computes, so the
  // two evaluators agree bit-for-bit, not just within tolerance.
  EXPECT_EQ(plain.objective(), cached.objective());
  EXPECT_EQ(plain.max_apl(), cached.max_apl());
}

TEST(EvaluatorProperty, ZeroTrafficApplicationIsIgnoredByMaxApl) {
  // An application whose threads never issue requests has an undefined APL;
  // the evaluator defines it as 0 and must keep it out of max/objective.
  const Mesh mesh = Mesh::square(4);
  Application busy{"busy", std::vector<ThreadProfile>(
                               8, ThreadProfile{0.4, 0.1})};
  Application idle{"idle", std::vector<ThreadProfile>(
                               8, ThreadProfile{0.0, 0.0})};
  ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
               Workload({busy, idle}));
  MappingEvaluator eval(p, p.identity_mapping());
  EXPECT_EQ(eval.apl(1), 0.0);
  EXPECT_GT(eval.apl(0), 0.0);
  EXPECT_EQ(eval.max_apl(), eval.apl(0));
  EXPECT_EQ(eval.objective(), eval.apl(0));
  // Swapping an idle thread with a busy one only moves the busy APL, and
  // the incremental state stays exact.
  Rng rng(3);
  for (int step = 0; step < 1000; ++step) {
    random_op(eval, p.num_threads(), rng);
    ASSERT_EQ(eval.apl(1), 0.0);
  }
  const MappingEvaluator fresh(p, eval.mapping());
  EXPECT_EQ(eval.max_apl(), fresh.max_apl());
  EXPECT_NEAR(eval.max_apl(), eval.recomputed_max_apl(), 1e-9);
}

TEST(EvaluatorProperty, StateIsIndependentOfMutationHistory) {
  // Two different mutation paths that land on the same mapping must produce
  // bit-identical evaluator state (the core of parallel determinism: a
  // snapshot that churns through candidates and reverts equals one that
  // never touched them).
  const ObmProblem p = c1_problem();
  MappingEvaluator churned(p, p.identity_mapping());
  Rng rng(12);
  for (int step = 0; step < 200; ++step) {
    const auto j1 =
        rng.uniform_u32(static_cast<std::uint32_t>(p.num_threads()));
    const auto j2 =
        rng.uniform_u32(static_cast<std::uint32_t>(p.num_threads()));
    churned.swap_threads(j1, j2);
    churned.swap_threads(j1, j2);  // and immediately undo
  }
  const MappingEvaluator untouched(p, p.identity_mapping());
  EXPECT_EQ(churned.objective(), untouched.objective());
  EXPECT_EQ(churned.mapping().thread_to_tile,
            untouched.mapping().thread_to_tile);
}

TEST(Evaluator, SwapAcrossAppsChangesBothApls) {
  const ObmProblem p = c1_problem();
  // Threads 0 and 63 are in different applications (4 x 16 layout).
  ASSERT_NE(p.workload().application_of(0), p.workload().application_of(63));
  MappingEvaluator eval(p, p.identity_mapping());
  const double a0 = eval.apl(p.workload().application_of(0));
  const double a3 = eval.apl(p.workload().application_of(63));
  eval.swap_threads(0, 63);
  // Tiles 0 (corner) and 63 (corner) have equal TC but the threads' rates
  // differ, so at least the numerators moved; verify against recompute.
  EXPECT_NEAR(eval.max_apl(), eval.recomputed_max_apl(), 1e-9);
  // And a swap between corner and center tiles definitely changes APLs.
  eval.swap_threads(0, eval.thread_on(27));
  const double b0 = eval.apl(p.workload().application_of(0));
  EXPECT_NE(a0, b0);
  (void)a3;
}

}  // namespace
}  // namespace nocmap
