// Tests for the differential fuzzing & invariant-checking subsystem
// (src/check/, DESIGN.md §10): scenario-generator determinism, the repro
// round trip, every oracle on clean scenarios, the shrinker, and the
// mutation-canary loop proving a seeded bug is caught and minimized.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>

#include "check/fuzzer.h"
#include "check/oracles.h"
#include "check/scenario.h"
#include "check/shrink.h"
#include "core/cost_cache.h"
#include "util/error.h"

namespace nocmap::check {
namespace {

/// RAII enable/disable of the cost-cache fault so no test can leak the
/// canary into the rest of the suite.
struct CanaryGuard {
  CanaryGuard() { check_hooks::set_cost_cache_off_by_one(true); }
  ~CanaryGuard() { check_hooks::set_cost_cache_off_by_one(false); }
};

std::filesystem::path fresh_temp_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("nocmap_check_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(ScenarioGenerator, IsDeterministic) {
  for (const std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xffffffffffffffffULL}) {
    const ScenarioSpec a = generate_scenario(seed);
    const ScenarioSpec b = generate_scenario(seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_EQ(to_repro(a), to_repro(b));
  }
}

TEST(ScenarioGenerator, SeedsProduceVariedValidSpecs) {
  std::set<std::string> distinct;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    EXPECT_NO_THROW(validate_scenario(spec)) << "seed " << seed;
    EXPECT_LE(spec.num_threads(), spec.num_tiles());
    distinct.insert(to_repro(spec));
  }
  // 100 seeds must not collapse onto a handful of shapes.
  EXPECT_GT(distinct.size(), 50u);
}

TEST(ScenarioGenerator, BuildProblemPadsToTileCount) {
  const ScenarioSpec spec = generate_scenario(7);
  const ObmProblem problem = build_problem(spec);
  EXPECT_EQ(problem.num_threads(), problem.num_tiles());
  EXPECT_GE(problem.num_applications(), spec.num_applications);
}

TEST(Repro, RoundTripsExactly) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    std::string oracle;
    const ScenarioSpec parsed = from_repro(to_repro(spec, "hungarian"),
                                           &oracle);
    EXPECT_EQ(parsed, spec) << "seed " << seed;
    EXPECT_EQ(oracle, "hungarian");
  }
}

TEST(Repro, RejectsMalformedInput) {
  EXPECT_THROW(from_repro("seed=1\n"), Error);          // missing keys
  EXPECT_THROW(from_repro("not a repro"), Error);       // no key=value
  const std::string valid = to_repro(generate_scenario(3));
  EXPECT_THROW(from_repro(valid + "bogus_key=1\n"), Error);
  EXPECT_THROW(from_repro(valid + "seed=2\n"), Error);  // duplicate key
}

TEST(Repro, SaveLoadFileRoundTrip) {
  const auto dir = fresh_temp_dir("repro_io");
  const ScenarioSpec spec = generate_scenario(11);
  const std::string path = (dir / "r.scenario").string();
  save_repro(path, spec, "exact_bound");
  std::string oracle;
  EXPECT_EQ(load_repro(path, &oracle), spec);
  EXPECT_EQ(oracle, "exact_bound");
  EXPECT_THROW(load_repro((dir / "missing.scenario").string()), Error);
}

TEST(ScenarioGenerator, CoversGeneralizedAxes) {
  // The generator must actually exercise the extended scenario space:
  // stacked meshes, non-unit TSV costs, seed-drawn MC sets, and all three
  // memory-traffic modes.
  bool stacked = false, cheap_tsv = false, random_mcs = false;
  bool interleaved = false, multicast = false;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    const ScenarioSpec spec = generate_scenario(seed);
    if (spec.mesh_layers > 1) stacked = true;
    if (spec.tsv_hop_cost != 1.0) cheap_tsv = true;
    if (spec.mc_placement == McPlacement::kRandom) {
      random_mcs = true;
      EXPECT_GE(spec.mc_count, 1u);
    }
    if (spec.traffic_mode == MemoryTrafficMode::kInterleaved) {
      interleaved = true;
    }
    if (spec.traffic_mode == MemoryTrafficMode::kMulticast) multicast = true;
  }
  EXPECT_TRUE(stacked);
  EXPECT_TRUE(cheap_tsv);
  EXPECT_TRUE(random_mcs);
  EXPECT_TRUE(interleaved);
  EXPECT_TRUE(multicast);
}

TEST(Scenario, ValidateRejectsBadGeneralizedCombos) {
  ScenarioSpec base = generate_scenario(1);
  base.mesh_layers = 1;
  base.torus = false;
  base.mc_placement = McPlacement::kCorners;
  base.mc_count = 0;
  ASSERT_NO_THROW(validate_scenario(base));

  ScenarioSpec torus_stack = base;
  torus_stack.torus = true;
  torus_stack.mesh_layers = 2;
  EXPECT_THROW(validate_scenario(torus_stack), Error);

  ScenarioSpec too_tall = base;
  too_tall.mesh_layers = 9;
  EXPECT_THROW(validate_scenario(too_tall), Error);

  ScenarioSpec stray_count = base;
  stray_count.mc_count = 3;  // mc_count without random placement
  EXPECT_THROW(validate_scenario(stray_count), Error);

  ScenarioSpec missing_count = base;
  missing_count.mc_placement = McPlacement::kRandom;  // random without count
  EXPECT_THROW(validate_scenario(missing_count), Error);

  ScenarioSpec bad_tsv = base;
  bad_tsv.tsv_hop_cost = 0.0;
  EXPECT_THROW(validate_scenario(bad_tsv), Error);
}

TEST(Scenario, SimulatorSupportClassifiesTorus) {
  // Satellite fix: torus scenarios must be classified as
  // simulator-unsupported up front — previously they reached the Network
  // ctor and died on its NOCMAP_REQUIRE.
  ScenarioSpec spec = generate_scenario(2);
  spec.torus = false;
  spec.mesh_layers = 1;
  EXPECT_TRUE(simulator_supported(spec));
  spec.mesh_layers = 4;
  spec.tsv_hop_cost = 0.5;
  EXPECT_TRUE(simulator_supported(spec));  // stacks simulate fine
  spec.mesh_layers = 1;
  spec.torus = true;
  spec.mc_placement = McPlacement::kCorners;
  spec.mc_count = 0;
  EXPECT_FALSE(simulator_supported(spec));
  // The netsim oracles must agree — none may claim a torus scenario.
  validate_scenario(spec);
  for (const char* name : {"netsim_conservation", "netsim_rank"}) {
    const Oracle* oracle = find_oracle(name);
    ASSERT_NE(oracle, nullptr);
    EXPECT_FALSE(oracle->applicable(spec)) << name;
  }
}

TEST(Scenario, RandomMcSetIsSeedStablePrefix) {
  ScenarioSpec spec = generate_scenario(4);
  spec.torus = false;
  spec.mesh_side = 6;
  spec.mesh_layers = 1;
  spec.tsv_hop_cost = 1.0;
  spec.mc_placement = McPlacement::kRandom;
  spec.mc_count = 6;
  validate_scenario(spec);

  const Mesh big = build_mesh(spec);
  ASSERT_EQ(big.mc_tiles().size(), 6u);
  std::set<TileId> big_set(big.mc_tiles().begin(), big.mc_tiles().end());
  EXPECT_EQ(big_set.size(), 6u);  // distinct draws

  // Shrinking the count keeps a subset of the larger set (the shrinker
  // relies on this: a smaller mc_count is the same set minus tail draws).
  spec.mc_count = 3;
  const Mesh small = build_mesh(spec);
  ASSERT_EQ(small.mc_tiles().size(), 3u);
  for (TileId mc : small.mc_tiles()) {
    EXPECT_TRUE(big_set.count(mc)) << "MC " << mc << " not in the 6-set";
  }

  // Same spec, same set — the draw depends only on the scenario seed.
  const Mesh again = build_mesh(spec);
  EXPECT_TRUE(std::equal(small.mc_tiles().begin(), small.mc_tiles().end(),
                         again.mc_tiles().begin(), again.mc_tiles().end()));
}

TEST(Repro, ClassicFormatWithoutNewKeysParses) {
  // A pre-extension repro (the v1 corpus format) carries only the classic
  // nine keys; the new ones must default to the 2D/proximity scenario.
  const std::string classic =
      "# nocmap_fuzz repro v1\n"
      "seed=42\n"
      "mesh_side=5\n"
      "mc_placement=corners\n"
      "torus=0\n"
      "config=C3\n"
      "num_applications=2\n"
      "threads_per_app=4\n"
      "injection_scale=0.75\n"
      "bursty=1\n";
  const ScenarioSpec spec = from_repro(classic);
  EXPECT_EQ(spec.mesh_layers, 1u);
  EXPECT_DOUBLE_EQ(spec.tsv_hop_cost, 1.0);
  EXPECT_EQ(spec.mc_count, 0u);
  EXPECT_EQ(spec.traffic_mode, MemoryTrafficMode::kProximity);
  EXPECT_EQ(spec.mesh_side, 5u);
  EXPECT_TRUE(spec.bursty);
}

TEST(Repro, GeneralizedScenarioRoundTrips) {
  ScenarioSpec spec = generate_scenario(6);
  spec.torus = false;
  spec.mesh_side = 4;
  spec.mesh_layers = 3;
  spec.tsv_hop_cost = 0.5;
  spec.mc_placement = McPlacement::kRandom;
  spec.mc_count = 5;
  spec.traffic_mode = MemoryTrafficMode::kMulticast;
  spec.threads_per_app = std::min(spec.threads_per_app, 8u);
  validate_scenario(spec);
  EXPECT_EQ(from_repro(to_repro(spec)), spec);
}

TEST(Oracles, RegistryLookup) {
  EXPECT_GE(all_oracles().size(), 6u);
  for (const Oracle& oracle : all_oracles()) {
    EXPECT_EQ(find_oracle(oracle.name), &oracle);
  }
  EXPECT_EQ(find_oracle("no_such_oracle"), nullptr);
}

/// Every oracle must pass on clean scenarios it declares itself applicable
/// to (three per oracle keeps the suite fast; the fuzz smoke test covers
/// breadth).
TEST(Oracles, PassOnCleanScenarios) {
  for (const Oracle& oracle : all_oracles()) {
    int ran = 0;
    for (std::uint64_t seed = 0; seed < 64 && ran < 3; ++seed) {
      const ScenarioSpec spec = generate_scenario(seed);
      if (!oracle.applicable(spec)) continue;
      ++ran;
      const OracleResult result = oracle.run(spec);
      EXPECT_TRUE(result.ok)
          << oracle.name << " failed on seed " << seed << ": "
          << result.detail;
    }
    EXPECT_EQ(ran, 3) << "no applicable scenarios found for " << oracle.name;
  }
}

TEST(Fuzzer, IterationSeedsAreDecorrelated) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 100; ++i) {
    seeds.insert(iteration_seed(1, i));
    seeds.insert(iteration_seed(2, i));
  }
  EXPECT_EQ(seeds.size(), 200u);  // overlapping bases explore new streams
  EXPECT_EQ(iteration_seed(1, 0), iteration_seed(1, 0));
}

TEST(Fuzzer, CleanRunReportsNoFailures) {
  FuzzOptions options;
  options.iterations = 10;
  options.seed = 1;
  options.repro_dir = "";  // no repro writing
  const FuzzReport report = run_fuzz(options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.scenarios, 10u);
  EXPECT_GT(report.oracle_checks, report.scenarios);
}

TEST(Fuzzer, RejectsUnknownOracleName) {
  FuzzOptions options;
  options.oracles = {"not_an_oracle"};
  EXPECT_THROW(run_fuzz(options), Error);
}

TEST(Fuzzer, WriteReportPublishesStats) {
  FuzzOptions options;
  options.iterations = 3;
  options.repro_dir = "";
  const FuzzReport report = run_fuzz(options);
  obs::RunReport run_report("test_check");
  write_report(options, report, run_report);
  const std::string json = run_report.to_json();
  EXPECT_NE(json.find("\"fuzz\""), std::string::npos);
  EXPECT_NE(json.find("\"scenarios\": 3"), std::string::npos);
}

// --- The mutation-canary loop: seed a deliberate off-by-one into the cost
// cache and require the whole pipeline — detection, shrinking, repro
// writing, replay — to work end to end.

TEST(Canary, FuzzerCatchesSeededBugAndShrinksIt) {
  const auto dir = fresh_temp_dir("canary");
  FuzzOptions options;
  options.iterations = 10;
  options.seed = 1;
  options.repro_dir = dir.string();

  FuzzReport report;
  {
    CanaryGuard canary;
    report = run_fuzz(options);
  }
  ASSERT_EQ(report.failures.size(), 1u)
      << "seeded cost-copy bug not caught within 10 iterations";
  const FuzzFailure& failure = report.failures.front();
  EXPECT_EQ(failure.oracle, "mapper_sanity");
  EXPECT_NE(failure.detail.find("cost cache incoherent"), std::string::npos)
      << failure.detail;
  // The acceptance bar: shrunk to a trivial scenario.
  EXPECT_LE(failure.minimal.num_applications, 2u);
  EXPECT_LE(failure.minimal.threads_per_app, 2u);

  // The repro file exists, fails under the fault, and passes without it.
  ASSERT_FALSE(failure.repro_path.empty());
  ASSERT_TRUE(std::filesystem::exists(failure.repro_path));
  {
    CanaryGuard canary;
    const ReplayResult replay = replay_repro(failure.repro_path);
    EXPECT_FALSE(replay.ok);
    EXPECT_EQ(replay.oracle, "mapper_sanity");
  }
  EXPECT_TRUE(replay_repro(failure.repro_path).ok);
}

TEST(Canary, ShrinkerMinimizesLargeScenario) {
  // Start from a deliberately big spec so every phase has work to do.
  ScenarioSpec spec = generate_scenario(3);
  ASSERT_GE(spec.num_tiles(), 36u);
  const Oracle* oracle = find_oracle("mapper_sanity");
  ASSERT_NE(oracle, nullptr);

  CanaryGuard canary;
  const ShrinkResult result = shrink_scenario(spec, *oracle);
  EXPECT_FALSE(oracle->run(result.minimal).ok);
  EXPECT_EQ(result.minimal.num_applications, 1u);
  EXPECT_EQ(result.minimal.threads_per_app, 1u);
  // 2×2 meshes are fully symmetric (the off-by-one copies an identical
  // cost), so the smallest mesh that still exposes the fault is 3×3.
  EXPECT_EQ(result.minimal.mesh_side, 3u);
  EXPECT_GT(result.attempts, 0u);
  EXPECT_GT(result.accepted, 0u);
}

TEST(Canary, ShrinkIsNoOpOnPassingScenario) {
  const ScenarioSpec spec = generate_scenario(5);
  const Oracle* oracle = find_oracle("mapper_sanity");
  ASSERT_NE(oracle, nullptr);
  const ShrinkResult result = shrink_scenario(spec, *oracle);
  EXPECT_EQ(result.minimal, spec);
  EXPECT_EQ(result.accepted, 0u);
}

}  // namespace
}  // namespace nocmap::check
