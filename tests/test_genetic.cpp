#include "core/genetic_mapper.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/random_mapper.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem c1_problem(std::uint64_t seed = 3) {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config("C1"), seed));
}

TEST(Genetic, ProducesValidPermutation) {
  const ObmProblem p = c1_problem();
  GeneticMapper ga(GeneticParams{.generations = 20, .seed = 1});
  EXPECT_TRUE(ga.map(p).is_valid_permutation(p.num_threads()));
}

TEST(Genetic, DeterministicForSeed) {
  const ObmProblem p = c1_problem();
  GeneticMapper a(GeneticParams{.generations = 15, .seed = 9});
  GeneticMapper b(GeneticParams{.generations = 15, .seed = 9});
  EXPECT_EQ(a.map(p).thread_to_tile, b.map(p).thread_to_tile);
}

TEST(Genetic, ImprovesOverRandomAverage) {
  const ObmProblem p = c1_problem();
  GeneticMapper ga(GeneticParams{.generations = 100, .seed = 2});
  const double ga_obj = evaluate(p, ga.map(p)).max_apl;
  RandomMapper random(5);
  double avg = 0.0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    avg += evaluate(p, random.map(p)).max_apl;
  }
  EXPECT_LT(ga_obj, avg / trials);
}

TEST(Genetic, MoreGenerationsHelpOnAverage) {
  const ObmProblem p = c1_problem();
  double short_total = 0.0, long_total = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    GeneticMapper quick(GeneticParams{.generations = 5, .seed = seed});
    GeneticMapper thorough(GeneticParams{.generations = 150, .seed = seed});
    short_total += evaluate(p, quick.map(p)).max_apl;
    long_total += evaluate(p, thorough.map(p)).max_apl;
  }
  EXPECT_LT(long_total, short_total);
}

TEST(Genetic, ElitismMonotonicBestFitness) {
  // With elitism the best individual can never regress; approximate check:
  // doubling generations with the same seed is never worse.
  const ObmProblem p = c1_problem();
  GeneticMapper g50(GeneticParams{.generations = 50, .seed = 4});
  GeneticMapper g100(GeneticParams{.generations = 100, .seed = 4});
  const double o50 = evaluate(p, g50.map(p)).max_apl;
  const double o100 = evaluate(p, g100.map(p)).max_apl;
  EXPECT_LE(o100, o50 + 1e-9);
}

TEST(Genetic, ParameterValidation) {
  const ObmProblem p = c1_problem();
  GeneticMapper tiny(GeneticParams{.population = 1});
  EXPECT_THROW(tiny.map(p), Error);
  GeneticMapper bad_elite(GeneticParams{.population = 4, .elites = 4});
  EXPECT_THROW(bad_elite.map(p), Error);
  GeneticMapper no_tournament(GeneticParams{.tournament = 0});
  EXPECT_THROW(no_tournament.map(p), Error);
}

TEST(Genetic, Name) { EXPECT_EQ(GeneticMapper().name(), "GA"); }

// Crossover preserves permutations even with aggressive rates.
TEST(Genetic, AggressiveOperatorsStillValid) {
  const ObmProblem p = c1_problem(11);
  GeneticMapper ga(GeneticParams{.population = 8,
                                 .generations = 30,
                                 .crossover_rate = 1.0,
                                 .mutation_rate = 1.0,
                                 .seed = 6});
  EXPECT_TRUE(ga.map(p).is_valid_permutation(p.num_threads()));
}

}  // namespace
}  // namespace nocmap
