#include "latency/model.h"

#include <gtest/gtest.h>

namespace nocmap {
namespace {

LatencyParams fig5_params() {
  // The parameters of the paper's Figure-5 worked example.
  return {.td_r = 3.0, .td_w = 1.0, .td_q = 0.0, .td_s = 1.0};
}

TEST(LatencyParams, PerHop) {
  const LatencyParams p{.td_r = 3.0, .td_w = 1.0, .td_q = 0.5, .td_s = 2.0};
  EXPECT_DOUBLE_EQ(p.per_hop(), 4.5);
}

TEST(PacketMix, AverageSerialization) {
  const PacketMix mix{.short_flits = 1.0, .long_flits = 5.0,
                      .short_fraction = 0.5};
  EXPECT_DOUBLE_EQ(mix.average_serialization(), 3.0);
}

TEST(TileLatencyModel, TcFormulaOn4x4) {
  // 4x4 mesh, Fig-5 parameters: corner HC = 3.0, edge HC = 2.5,
  // center HC = 2.0; TC = HC*4 + 1*(15/16).
  const Mesh mesh = Mesh::square(4);
  const TileLatencyModel model(mesh, fig5_params());
  const double ser = 15.0 / 16.0;
  EXPECT_DOUBLE_EQ(model.tc(mesh.tile_at(0, 0)), 12.0 + ser);
  EXPECT_DOUBLE_EQ(model.tc(mesh.tile_at(0, 1)), 10.0 + ser);
  EXPECT_DOUBLE_EQ(model.tc(mesh.tile_at(1, 1)), 8.0 + ser);
}

TEST(TileLatencyModel, HcAnchors8x8) {
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, fig5_params());
  EXPECT_DOUBLE_EQ(model.hc(mesh.from_paper_number(1)), 7.0);
  EXPECT_DOUBLE_EQ(model.hc(mesh.from_paper_number(28)), 4.0);
}

TEST(TileLatencyModel, TmZeroSerializationOnMcTile) {
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, fig5_params());
  for (TileId mc : mesh.mc_tiles()) {
    EXPECT_DOUBLE_EQ(model.tm(mc), 0.0);  // zero hops, no serialization
  }
}

TEST(TileLatencyModel, TmFormulaForNonMcTiles) {
  const Mesh mesh = Mesh::square(8);
  const LatencyParams p = fig5_params();
  const TileLatencyModel model(mesh, p);
  for (TileId t = 0; t < mesh.num_tiles(); ++t) {
    if (mesh.is_mc(t)) continue;
    const double expected =
        static_cast<double>(mesh.hops_to_nearest_mc(t)) * p.per_hop() +
        p.td_s;
    EXPECT_DOUBLE_EQ(model.tm(t), expected);
  }
}

// The paper's Fig. 3 observation: cache latency is lowest in the center and
// highest in the corners; memory latency is the opposite.
TEST(TileLatencyModel, CacheAndMemoryGradientsOppose) {
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, LatencyParams{});
  const TileId corner = mesh.tile_at(0, 0);
  const TileId center = mesh.tile_at(3, 3);
  EXPECT_GT(model.tc(corner), model.tc(center));
  EXPECT_LT(model.tm(corner), model.tm(center));
}

TEST(TileLatencyModel, SymmetryOfTcUnderMeshSymmetry) {
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, LatencyParams{});
  // 4-fold rotational symmetry: the four corners share one TC value.
  const double c = model.tc(mesh.tile_at(0, 0));
  EXPECT_DOUBLE_EQ(model.tc(mesh.tile_at(0, 7)), c);
  EXPECT_DOUBLE_EQ(model.tc(mesh.tile_at(7, 0)), c);
  EXPECT_DOUBLE_EQ(model.tc(mesh.tile_at(7, 7)), c);
}

TEST(TileLatencyModel, ArraysSizedToMesh) {
  const Mesh mesh = Mesh::square(6);
  const TileLatencyModel model(mesh, LatencyParams{});
  EXPECT_EQ(model.tc_array().size(), mesh.num_tiles());
  EXPECT_EQ(model.tm_array().size(), mesh.num_tiles());
  for (TileId t = 0; t < mesh.num_tiles(); ++t) {
    EXPECT_DOUBLE_EQ(model.tc_array()[t], model.tc(t));
    EXPECT_DOUBLE_EQ(model.tm_array()[t], model.tm(t));
  }
}

TEST(PacketLatency, Eq2Formula) {
  const Mesh mesh = Mesh::square(8);
  const LatencyParams p = fig5_params();
  const TileId a = mesh.tile_at(0, 0);
  const TileId b = mesh.tile_at(2, 3);
  EXPECT_DOUBLE_EQ(packet_latency(mesh, p, a, b), 5.0 * 4.0 + 1.0);
  EXPECT_DOUBLE_EQ(packet_latency(mesh, p, a, a), 0.0);  // no network
}

// TC(k) must equal the average of eq.-2 packet latencies over all
// destinations (the definition from which the closed form is derived).
TEST(TileLatencyModel, TcEqualsAverageOfPacketLatencies) {
  const Mesh mesh = Mesh::square(5);
  const LatencyParams p{.td_r = 2.0, .td_w = 1.5, .td_q = 0.25, .td_s = 3.0};
  const TileLatencyModel model(mesh, p);
  for (TileId k = 0; k < mesh.num_tiles(); ++k) {
    double avg = 0.0;
    for (TileId d = 0; d < mesh.num_tiles(); ++d) {
      avg += packet_latency(mesh, p, k, d);
    }
    avg /= static_cast<double>(mesh.num_tiles());
    EXPECT_NEAR(model.tc(k), avg, 1e-12);
  }
}

}  // namespace
}  // namespace nocmap
