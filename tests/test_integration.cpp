// Cross-module integration tests: the full paper pipeline — synthesize a
// configuration, map it with every algorithm, check the paper's qualitative
// orderings, and replay mappings on the cycle-level simulator.
#include <gtest/gtest.h>

#include <memory>

#include "core/annealing_mapper.h"
#include "core/global_mapper.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/sss_mapper.h"
#include "netsim/sim.h"
#include "power/dsent_lite.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

ObmProblem make_problem(const std::string& config, std::uint64_t seed) {
  const Mesh mesh = Mesh::square(8);
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(parsec_config(config), seed));
}

// Paper Figure 9 + Table 4 ordering on every configuration: SSS achieves
// the lowest max-APL of the OBM heuristics and beats Global.
TEST(Integration, Figure9OrderingAcrossConfigs) {
  int sss_best_count = 0;
  for (const auto& spec : parsec_table3_configs()) {
    const Mesh mesh = Mesh::square(8);
    const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                       synthesize_workload(spec, 101));
    GlobalMapper global;
    MonteCarloMapper mc(10000, 1);
    AnnealingMapper sa(AnnealingParams{.iterations = 50000, .seed = 1});
    SortSelectSwapMapper sss;

    const double g = evaluate(p, global.map(p)).max_apl;
    const double m = evaluate(p, mc.map(p)).max_apl;
    const double a = evaluate(p, sa.map(p)).max_apl;
    const double s = evaluate(p, sss.map(p)).max_apl;

    EXPECT_LT(s, g) << spec.name;  // SSS beats Global on max-APL
    EXPECT_LT(m, g) << spec.name;  // so do the search baselines
    EXPECT_LT(a, g) << spec.name;
    if (s <= m && s <= a) ++sss_best_count;
  }
  // SSS should win or tie on the clear majority of configurations.
  EXPECT_GE(sss_best_count, 5);
}

// Paper Table 4: dev-APL ordering Global >> MC/SA > SSS.
TEST(Integration, Table4DevAplOrdering) {
  double global_sum = 0.0, mc_sum = 0.0, sa_sum = 0.0, sss_sum = 0.0;
  for (const auto& spec : parsec_table3_configs()) {
    const Mesh mesh = Mesh::square(8);
    const ObmProblem p(TileLatencyModel(mesh, LatencyParams{}),
                       synthesize_workload(spec, 202));
    GlobalMapper global;
    MonteCarloMapper mc(10000, 2);
    AnnealingMapper sa(AnnealingParams{.iterations = 50000, .seed = 2});
    SortSelectSwapMapper sss;
    global_sum += evaluate(p, global.map(p)).dev_apl;
    mc_sum += evaluate(p, mc.map(p)).dev_apl;
    sa_sum += evaluate(p, sa.map(p)).dev_apl;
    sss_sum += evaluate(p, sss.map(p)).dev_apl;
  }
  EXPECT_LT(sss_sum, mc_sum);
  // Our SA implementation balances better than the paper's (dev-APL is a
  // side effect of its max-APL descent), so unlike the paper SSS does not
  // beat SA by ~6x here; both sit orders of magnitude below Global. Assert
  // the defensible part: same order of magnitude as SA, far below Global.
  EXPECT_LT(sss_sum, sa_sum * 5.0);
  EXPECT_LT(sa_sum, global_sum * 0.1);
  EXPECT_LT(sss_sum, global_sum * 0.1);  // paper reports 99.65% reduction
}

// Paper Figure 10: every OBM heuristic stays within a few percent of the
// Global optimum on g-APL.
TEST(Integration, Figure10GaplOverheadBounded) {
  for (const char* cfg : {"C1", "C5", "C7"}) {
    const ObmProblem p = make_problem(cfg, 303);
    GlobalMapper global;
    SortSelectSwapMapper sss;
    const double g = evaluate(p, global.map(p)).g_apl;
    const double s = evaluate(p, sss.map(p)).g_apl;
    EXPECT_GE(s, g - 1e-9) << cfg;  // Global is exact: nothing beats it
    EXPECT_LE((s - g) / g, 0.08) << cfg;
  }
}

// End-to-end netsim replay: the analytic max-APL ordering between SSS and
// Global must survive on the measured network (the paper's actual
// experiment, which runs mappings through Garnet).
TEST(Integration, MeasuredOrderingSurvivesSimulation) {
  const ObmProblem p = make_problem("C1", 404);
  GlobalMapper global;
  SortSelectSwapMapper sss;
  const Mapping mg = global.map(p);
  const Mapping ms = sss.map(p);

  SimConfig cfg;
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 60000;
  const SimResult rg = run_simulation(p, mg, cfg);
  const SimResult rs = run_simulation(p, ms, cfg);

  EXPECT_FALSE(rg.drain_incomplete);
  EXPECT_FALSE(rs.drain_incomplete);
  EXPECT_LT(rs.max_apl, rg.max_apl);
  EXPECT_LT(rs.dev_apl, rg.dev_apl);
}

// Paper Figure 11: SSS dynamic power within a few percent of Global.
TEST(Integration, Figure11PowerOverheadSmall) {
  const ObmProblem p = make_problem("C1", 505);
  GlobalMapper global;
  SortSelectSwapMapper sss;
  SimConfig cfg;
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 60000;
  const SimResult rg = run_simulation(p, global.map(p), cfg);
  const SimResult rs = run_simulation(p, sss.map(p), cfg);

  const DsentLitePowerModel power;
  const std::size_t links = mesh_link_count(p.mesh());
  const double pg = power
                        .report(rg.activity, rg.measured_cycles,
                                p.mesh().num_tiles(), links)
                        .dynamic_mw;
  const double ps = power
                        .report(rs.activity, rs.measured_cycles,
                                p.mesh().num_tiles(), links)
                        .dynamic_mw;
  EXPECT_GT(pg, 0.0);
  EXPECT_LT(std::abs(ps - pg) / pg, 0.10);  // paper: <= 2.7% overhead
}

// Analytic model vs measured simulation: per-application APLs must be
// strongly rank-correlated (the analytic model is the paper's optimization
// surrogate for the measured network).
TEST(Integration, AnalyticPredictsMeasuredPerAppOrdering) {
  const ObmProblem p = make_problem("C3", 606);
  GlobalMapper global;
  const Mapping m = global.map(p);
  const LatencyReport analytic = evaluate(p, m);
  SimConfig cfg;
  cfg.warmup_cycles = 2000;
  cfg.measure_cycles = 60000;
  const SimResult measured = run_simulation(p, m, cfg);

  // The application with the analytically worst APL must also be measured
  // worst (or within noise of the worst).
  std::size_t analytic_worst = 0, measured_worst = 0;
  for (std::size_t i = 1; i < analytic.apl.size(); ++i) {
    if (analytic.apl[i] > analytic.apl[analytic_worst]) analytic_worst = i;
    if (measured.apl[i] > measured.apl[measured_worst]) measured_worst = i;
  }
  EXPECT_NEAR(measured.apl[analytic_worst], measured.apl[measured_worst],
              measured.apl[measured_worst] * 0.05);
}

// Dynamic remapping scenario (paper Section IV.B): re-solving after an
// application change keeps the balance property.
TEST(Integration, DynamicRemapKeepsBalance) {
  const Mesh mesh = Mesh::square(8);
  const TileLatencyModel model(mesh, LatencyParams{});
  // Phase 1: two applications + idle pad.
  Application a;
  a.name = "a";
  a.threads.assign(24, ThreadProfile{5.0, 0.6});
  Application b;
  b.name = "b";
  b.threads.assign(24, ThreadProfile{2.0, 0.2});
  const ObmProblem phase1(model, Workload({a, b}).padded_to(64));
  SortSelectSwapMapper sss;
  const LatencyReport r1 = evaluate(phase1, sss.map(phase1));
  EXPECT_LT(r1.dev_apl, 0.5);

  // Phase 2: a third application arrives; re-solve from scratch.
  Application c;
  c.name = "c";
  c.threads.assign(16, ThreadProfile{9.0, 1.0});
  const ObmProblem phase2(model, Workload({a, b, c}));
  const LatencyReport r2 = evaluate(phase2, sss.map(phase2));
  EXPECT_LT(r2.dev_apl, 0.5);
}

}  // namespace
}  // namespace nocmap
