// Race-proofing regression layer for the deterministic parallel mapping
// engine: for every parallelized algorithm (SSS window sweep + SAM fan-out,
// Monte-Carlo shards, SA restarts, GA fitness), the mapping produced at 2
// and 8 workers must be byte-identical to the 1-worker/serial mapping on
// every seeded workload. Any scheduling-dependent read, stale snapshot
// commit, or non-canonical merge shows up here as a mapping mismatch long
// before it would show up as a subtle quality regression.
//
// Suites named *Large* run the 12x12 / 144-thread instances; they carry the
// ctest label "slow" (see tests/CMakeLists.txt) so sanitizer jobs can run
// the tier1 subset quickly, while a full `ctest` still covers them.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/annealing_mapper.h"
#include "core/genetic_mapper.h"
#include "core/metrics.h"
#include "core/monte_carlo_mapper.h"
#include "core/sss_mapper.h"
#include "netsim/sim.h"
#include "workload/synthesis.h"

namespace nocmap {
namespace {

constexpr std::size_t kNumSeeds = 20;
// 1 covers the "parallel-configured but single-worker" path (the batched
// fan-outs still run through the runner); 2 and 8 cover real interleavings.
constexpr std::array<std::size_t, 3> kWorkerCounts = {1, 2, 8};

/// Square mesh of the given side, four applications, C1..C8 rate statistics
/// cycled by seed so the 20 workloads span the paper's configuration table.
ObmProblem seeded_problem(std::uint32_t side, std::uint64_t seed) {
  const Mesh mesh = Mesh::square(side);
  SynthesisOptions opt;
  opt.num_applications = 4;
  opt.threads_per_app = mesh.num_tiles() / 4;
  const auto configs = parsec_table3_configs();
  const ConfigSpec& spec = configs[seed % configs.size()];
  return ObmProblem(TileLatencyModel(mesh, LatencyParams{}),
                    synthesize_workload(spec, 1000 + seed, opt));
}

void expect_identical(const ObmProblem& problem, const Mapping& serial,
                      const Mapping& parallel, std::size_t workers,
                      std::uint64_t seed, const char* what) {
  EXPECT_EQ(serial.thread_to_tile, parallel.thread_to_tile)
      << what << ": mapping diverged at " << workers << " workers (seed "
      << seed << ")";
  // Byte-identical objectives follow from byte-identical mappings, but
  // assert them independently so a failure names the damage.
  EXPECT_EQ(evaluate(problem, serial).objective,
            evaluate(problem, parallel).objective)
      << what << ": objective diverged at " << workers << " workers (seed "
      << seed << ")";
}

// ---------------------------------------------------------------------------
// SSS: the stage-3 speculative window sweep plus the stage-2/4 SAM fan-out.

void check_sss_determinism(std::uint32_t side) {
  for (std::uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    const ObmProblem p = seeded_problem(side, seed);
    const Mapping serial =
        SortSelectSwapMapper(
            SssOptions{.parallel = ParallelConfig::serial_config()})
            .map(p);
    ASSERT_TRUE(serial.is_valid_permutation(p.num_threads()));
    for (const std::size_t workers : kWorkerCounts) {
      const Mapping parallel =
          SortSelectSwapMapper(SssOptions{.parallel = {workers, true}})
              .map(p);
      expect_identical(p, serial, parallel, workers, seed, "SSS");
    }
  }
}

TEST(ParallelDeterminismSss, Mesh4x4) { check_sss_determinism(4); }
TEST(ParallelDeterminismSss, Mesh8x8) { check_sss_determinism(8); }
TEST(ParallelDeterminismSssLarge, Mesh12x12) { check_sss_determinism(12); }

TEST(ParallelDeterminismSss, AblationVariantsMatchToo) {
  // The parallel protocol must hold for every stage combination, not just
  // the default pipeline.
  const ObmProblem p = seeded_problem(8, 3);
  const std::vector<SssOptions> variants = {
      {.window_swaps = false},
      {.final_sam = false},
      {.window_size = 3},
      {.max_step = 2},
  };
  for (SssOptions opt : variants) {
    opt.parallel = ParallelConfig::serial_config();
    const Mapping serial = SortSelectSwapMapper(opt).map(p);
    opt.parallel = {8, true};
    const Mapping parallel = SortSelectSwapMapper(opt).map(p);
    EXPECT_EQ(serial.thread_to_tile, parallel.thread_to_tile);
  }
}

TEST(ParallelDeterminismSss, BatchedModeIsReproducibleAndValid) {
  // deterministic=false trades the canonical commit order for fewer
  // discarded speculations; it must still be race-free: the same thread
  // count twice gives the same mapping, and the result is a permutation.
  const ObmProblem p = seeded_problem(8, 5);
  const SssOptions batched{.parallel = {4, false}};
  const Mapping a = SortSelectSwapMapper(batched).map(p);
  const Mapping b = SortSelectSwapMapper(batched).map(p);
  EXPECT_EQ(a.thread_to_tile, b.thread_to_tile);
  EXPECT_TRUE(a.is_valid_permutation(p.num_threads()));
  // And it should not be far from the canonical result in quality.
  const Mapping canonical =
      SortSelectSwapMapper(
          SssOptions{.parallel = ParallelConfig::serial_config()})
          .map(p);
  EXPECT_LE(evaluate(p, a).objective,
            1.05 * evaluate(p, canonical).objective);
}

// ---------------------------------------------------------------------------
// Monte-Carlo: fixed shard geometry + per-shard forked streams.

void check_mc_determinism(std::uint32_t side) {
  for (std::uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    const ObmProblem p = seeded_problem(side, seed);
    const Mapping serial =
        MonteCarloMapper(2048, seed + 1, ParallelConfig::serial_config())
            .map(p);
    for (const std::size_t workers : kWorkerCounts) {
      const Mapping parallel =
          MonteCarloMapper(2048, seed + 1, ParallelConfig{workers, true})
              .map(p);
      expect_identical(p, serial, parallel, workers, seed, "MC");
    }
  }
}

TEST(ParallelDeterminismMc, Mesh4x4) { check_mc_determinism(4); }
TEST(ParallelDeterminismMc, Mesh8x8) { check_mc_determinism(8); }
TEST(ParallelDeterminismMcLarge, Mesh12x12) { check_mc_determinism(12); }

// ---------------------------------------------------------------------------
// Simulated annealing: independent restart chains, canonical argmin merge.

void check_sa_determinism(std::uint32_t side) {
  for (std::uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    const ObmProblem p = seeded_problem(side, seed);
    AnnealingParams params{.iterations = 4000, .seed = seed + 1,
                           .restarts = 4};
    params.parallel = ParallelConfig::serial_config();
    const Mapping serial = AnnealingMapper(params).map(p);
    for (const std::size_t workers : kWorkerCounts) {
      params.parallel = {workers, true};
      const Mapping parallel = AnnealingMapper(params).map(p);
      expect_identical(p, serial, parallel, workers, seed, "SA");
    }
  }
}

TEST(ParallelDeterminismSa, Mesh4x4) { check_sa_determinism(4); }
TEST(ParallelDeterminismSa, Mesh8x8) { check_sa_determinism(8); }
TEST(ParallelDeterminismSaLarge, Mesh12x12) { check_sa_determinism(12); }

TEST(ParallelDeterminismSa, SingleRestartIsTheClassicChain) {
  // restarts=1 must reproduce the pre-parallel annealer exactly: same seed,
  // same chain, regardless of the parallel config.
  const ObmProblem p = seeded_problem(8, 7);
  AnnealingParams classic{.iterations = 10000, .seed = 42};
  AnnealingParams configured{.iterations = 10000, .seed = 42};
  configured.parallel = {8, true};
  EXPECT_EQ(AnnealingMapper(classic).map(p).thread_to_tile,
            AnnealingMapper(configured).map(p).thread_to_tile);
}

TEST(ParallelDeterminismSa, MoreRestartsNeverWorse) {
  // Chains 0..R-1 are a prefix of chains 0..R'-1 for R' > R, and the merge
  // keeps the best, so more restarts can only improve the objective.
  const ObmProblem p = seeded_problem(8, 11);
  AnnealingParams one{.iterations = 3000, .seed = 5, .restarts = 1};
  AnnealingParams four{.iterations = 3000, .seed = 5, .restarts = 4};
  // Note: restarts=1 uses the unforked classic stream, so compare 2 vs 4,
  // which share fork(0) and fork(1).
  AnnealingParams two{.iterations = 3000, .seed = 5, .restarts = 2};
  const double obj2 = evaluate(p, AnnealingMapper(two).map(p)).objective;
  const double obj4 = evaluate(p, AnnealingMapper(four).map(p)).objective;
  EXPECT_LE(obj4, obj2 + 1e-12);
  (void)one;
}

// ---------------------------------------------------------------------------
// Netsim batches: each scenario is a pure, deterministic unit writing only
// its own result slot, so a batch's per-app APL vectors and latency
// histograms must be byte-identical at any worker count.

TEST(ParallelDeterminismNetsim, BatchAcrossWorkerCounts) {
  const ObmProblem p = seeded_problem(4, 2);
  const Mapping id = p.identity_mapping();

  std::vector<SimConfig> configs(4);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].warmup_cycles = 500;
    configs[i].measure_cycles = 4000;
    configs[i].traffic.injection_scale = 1.0 + static_cast<double>(i);
  }
  std::vector<BatchScenario> batch;
  for (const SimConfig& c : configs) batch.push_back({&p, &id, c});

  const std::vector<SimResult> serial =
      run_simulation_batch(batch, ParallelConfig::serial_config());
  ASSERT_EQ(serial.size(), batch.size());

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    const std::vector<SimResult> parallel =
        run_simulation_batch(batch, ParallelConfig{workers, true});
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("scenario " + std::to_string(i) + " at " +
                   std::to_string(workers) + " workers");
      const SimResult& s = serial[i];
      const SimResult& q = parallel[i];
      ASSERT_EQ(q.apl.size(), s.apl.size());
      for (std::size_t a = 0; a < s.apl.size(); ++a) {
        EXPECT_EQ(q.apl[a], s.apl[a]) << "app " << a;
      }
      EXPECT_EQ(q.max_apl, s.max_apl);
      EXPECT_EQ(q.dev_apl, s.dev_apl);
      EXPECT_EQ(q.g_apl, s.g_apl);
      EXPECT_EQ(q.packets_measured, s.packets_measured);
      EXPECT_EQ(q.flits_injected, s.flits_injected);
      EXPECT_EQ(q.flits_ejected, s.flits_ejected);
      ASSERT_EQ(q.per_app_histogram.size(), s.per_app_histogram.size());
      for (std::size_t a = 0; a < s.per_app_histogram.size(); ++a) {
        const Histogram& hs = s.per_app_histogram[a];
        const Histogram& hq = q.per_app_histogram[a];
        ASSERT_EQ(hq.bins(), hs.bins());
        EXPECT_EQ(hq.total(), hs.total());
        for (std::size_t b = 0; b < hs.bins(); ++b) {
          EXPECT_EQ(hq.bin_count(b), hs.bin_count(b))
              << "app " << a << " bin " << b;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Spatially partitioned netsim (DESIGN.md §16): one simulation stepped by
// several workers over row-band domains must be bit-identical to the serial
// engine — full SimResult, histograms included. This is within-simulation
// parallelism, orthogonal to the batch fan-out above.

void expect_sim_results_identical(const SimResult& s, const SimResult& q) {
  ASSERT_EQ(q.apl.size(), s.apl.size());
  for (std::size_t a = 0; a < s.apl.size(); ++a) {
    EXPECT_EQ(q.apl[a], s.apl[a]) << "app " << a;
  }
  EXPECT_EQ(q.max_apl, s.max_apl);
  EXPECT_EQ(q.dev_apl, s.dev_apl);
  EXPECT_EQ(q.g_apl, s.g_apl);
  EXPECT_EQ(q.packets_measured, s.packets_measured);
  EXPECT_EQ(q.local_accesses, s.local_accesses);
  EXPECT_EQ(q.flits_injected, s.flits_injected);
  EXPECT_EQ(q.flits_ejected, s.flits_ejected);
  EXPECT_EQ(q.activity.crossbar_traversals, s.activity.crossbar_traversals);
  EXPECT_EQ(q.activity.link_traversals, s.activity.link_traversals);
  EXPECT_EQ(q.activity.queue_wait_cycles, s.activity.queue_wait_cycles);
  EXPECT_EQ(q.load.max_crossbar_per_cycle, s.load.max_crossbar_per_cycle);
  EXPECT_EQ(q.load.link_utilization, s.load.link_utilization);
  EXPECT_EQ(q.load.hottest_router, s.load.hottest_router);
  ASSERT_EQ(q.per_app_histogram.size(), s.per_app_histogram.size());
  for (std::size_t a = 0; a < s.per_app_histogram.size(); ++a) {
    const Histogram& hs = s.per_app_histogram[a];
    const Histogram& hq = q.per_app_histogram[a];
    ASSERT_EQ(hq.bins(), hs.bins());
    EXPECT_EQ(hq.total(), hs.total());
    for (std::size_t b = 0; b < hs.bins(); ++b) {
      EXPECT_EQ(hq.bin_count(b), hs.bin_count(b))
          << "app " << a << " bin " << b;
    }
  }
}

TEST(ParallelDeterminismNetsim, PartitionedSimAcrossWorkerCounts) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const ObmProblem p = seeded_problem(8, seed);
    const Mapping id = p.identity_mapping();
    SimConfig config;
    config.warmup_cycles = 500;
    config.measure_cycles = 4000;
    config.traffic.injection_scale = 1.0 + static_cast<double>(seed);
    config.sim_workers = 1;
    const SimResult serial = run_simulation(p, id, config);
    for (const std::size_t workers : kWorkerCounts) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " at " +
                   std::to_string(workers) + " sim workers");
      config.sim_workers = workers;
      expect_sim_results_identical(serial, run_simulation(p, id, config));
    }
  }
}

TEST(ParallelDeterminismNetsim, PartitionedSimComposesWithBatchWorkers) {
  // Both levels at once: a batch fanned over scenario workers where each
  // scenario also partitions its own mesh. The two teams must not
  // interfere — results stay bit-identical to fully-serial execution.
  const ObmProblem p = seeded_problem(8, 2);
  const Mapping id = p.identity_mapping();
  std::vector<SimConfig> configs(3);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    configs[i].warmup_cycles = 500;
    configs[i].measure_cycles = 3000;
    configs[i].traffic.injection_scale = 1.0 + static_cast<double>(i);
  }

  std::vector<BatchScenario> serial_batch;
  for (const SimConfig& c : configs) serial_batch.push_back({&p, &id, c});
  const std::vector<SimResult> serial =
      run_simulation_batch(serial_batch, ParallelConfig::serial_config());

  std::vector<SimConfig> partitioned = configs;
  for (SimConfig& c : partitioned) c.sim_workers = 4;
  std::vector<BatchScenario> nested_batch;
  for (const SimConfig& c : partitioned) nested_batch.push_back({&p, &id, c});
  const std::vector<SimResult> nested =
      run_simulation_batch(nested_batch, ParallelConfig{2, true});

  ASSERT_EQ(nested.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("scenario " + std::to_string(i));
    expect_sim_results_identical(serial[i], nested[i]);
  }
}

// ---------------------------------------------------------------------------
// Genetic search: serial breeding stream, parallel fitness slots.

TEST(ParallelDeterminismGa, Mesh8x8AcrossWorkerCounts) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const ObmProblem p = seeded_problem(8, seed);
    GeneticParams params{.population = 32, .generations = 25,
                         .seed = seed + 1};
    params.parallel = ParallelConfig::serial_config();
    const Mapping serial = GeneticMapper(params).map(p);
    for (const std::size_t workers : kWorkerCounts) {
      params.parallel = {workers, true};
      const Mapping parallel = GeneticMapper(params).map(p);
      expect_identical(p, serial, parallel, workers, seed, "GA");
    }
  }
}

}  // namespace
}  // namespace nocmap
